#!/usr/bin/env python
"""Sweep the paper's three communication granularities over the three
Table 2 workloads (smaller instances, value-mode execution).

The paper leaves granularity selection to the user (§5.6); this example
is the tuning session that choice implies: compile each workload at
fine / middle / coarse and compare communication time, message counts,
and strided-vs-contiguous primitive mix.

Run:  python examples/granularity_tuning.py
"""

from repro import compile_source, run_program
from repro.workloads import cffzinit, mm, swim

WORKLOADS = [
    ("MM 64x64", lambda: mm.source(64), lambda: mm.init_arrays(64)),
    ("SWIM 32x32 (ITMAX=1)", lambda: swim.source(32, 1), lambda: None),
    ("CFFZINIT M=9", lambda: cffzinit.source(9), lambda: None),
]

header = (
    f"{'workload':24s} {'grain':7s} {'comm(ms)':>9s} {'msgs':>6s} "
    f"{'strided':>8s} {'contig':>7s} {'demoted?':10s}"
)
print(header)
print("-" * len(header))

for name, make_src, make_init in WORKLOADS:
    src = make_src()
    init = make_init()
    for grain in ("fine", "middle", "coarse"):
        program = compile_source(src, nprocs=4, granularity=grain)
        report = run_program(program, init=init)
        demoted = [
            aplan.demotion_reason is not None
            for plan in program.plans.values()
            for aplan in plan.arrays.values()
        ]
        note = "yes" if any(demoted) else ""
        print(
            f"{name:24s} {grain:7s} {report.comm_max_s * 1e3:9.3f} "
            f"{int(report.hw['messages']):6d} {report.strided_transfers:8d} "
            f"{report.contiguous_transfers:7d} {note:10s}"
        )
    print()

print("Reading the table:")
print(" * CFFZINIT's stride-2 regions make fine grain pay per-element")
print("   programmed I/O; middle converts them to contiguous DMA (50%")
print("   redundant bytes, still cheaper); coarse sends one region.")
print(" * MM/SWIM regions are already unit-stride, so middle buys")
print("   nothing; coarse may be demoted back to fine for collects whose")
print("   bounding regions would overlap across ranks (the 5.6 check).")
