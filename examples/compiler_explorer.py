#!/usr/bin/env python
"""Compiler explorer: watch every analysis stage on one small program.

Prints the products of each pipeline phase — tokens, the lowered IR,
LMADs, summary sets, the dependence verdicts, the AVPG, per-rank
partitioning, and the final Fortran77+MPI-2 target — for a program with
a deliberately mixed structure (a parallel init, a serial recurrence, a
stride-2 loop, and a reduction).

Run:  python examples/compiler_explorer.py
"""

from repro.compiler.analysis.art import test_loop_parallel
from repro.compiler.analysis.summary import summarize_loop
from repro.compiler.frontend import fast as F
from repro.compiler.frontend.lower import lower_program
from repro.compiler.frontend.parser import parse
from repro.compiler.pipeline import compile_source
from repro.compiler.postpass.spmd import ParRegion, iter_regions

SRC = """
      PROGRAM DEMO
      PARAMETER (N = 24)
      REAL*8 A(N), B(N), T(2*N)
      REAL*8 S
      INTEGER I
C     parallel elementwise init
      DO I = 1, N
        A(I) = DBLE(I) * 0.5
      ENDDO
C     serial recurrence (flow dependence)
      B(1) = 1.0
      DO I = 2, N
        B(I) = B(I-1) + A(I)
      ENDDO
C     stride-2 table fill (the CFFZINIT pattern)
      DO I = 1, N
        T(2*I-1) = A(I)
        T(2*I) = -A(I)
      ENDDO
C     sum reduction
      S = 0.0
      DO I = 1, N
        S = S + T(2*I)
      ENDDO
      PRINT *, S
      END
"""

unit = lower_program(parse(SRC)).main
loops = [s for s in unit.body if isinstance(s, F.Do)]

print("== 1. per-loop analysis ==")
for loop in loops:
    print(f"\nDO {loop.var} (loop id {loop.loop_id})")
    summary, _ctx = summarize_loop(loop, unit.symtab)
    for name, arr in sorted(summary.arrays.items()):
        regions = arr.writes or arr.reads
        print(f"  {name:4s} {arr.classification:10s} "
              + ", ".join(str(l) for l in regions[:2]))
    verdict = test_loop_parallel(loop, unit.symtab)
    state = "PARALLEL" if verdict.independent else "serial"
    why = "" if verdict.independent else f"  ({verdict.conflicts[0]})"
    print(f"  -> {state}{why}")

print("\n== 2. the MPI-2 postpass ==")
program = compile_source(SRC, nprocs=4, granularity="middle")
print(program.parallelization_log)

print("\n-- AVPG attributes (rows: regions; columns: arrays) --")
g = program.avpg
cols = g.arrays
print(f"  {'node':10s} " + " ".join(f"{a:>9s}" for a in cols))
for node in g.nodes:
    print(f"  {node.label:10s} "
          + " ".join(f"{node.attrs[a]:>9s}" for a in cols))

print("\n-- partitioning + plans --")
for region in iter_regions(program.regions):
    if not isinstance(region, ParRegion):
        continue
    part = region.partition
    plan = program.plans[region.region_id]
    chunks = []
    for r in range(4):
        ctx = part.rank_ctx(r)
        chunks.append("-" if ctx is None else f"{ctx.lo}:{ctx.hi}:{ctx.step}")
    print(f"  region {region.region_id}: DO {region.loop.var} "
          f"[{part.strategy}]  ranks: {', '.join(chunks)}")
    for name, aplan in sorted(plan.arrays.items()):
        print(f"    {name}: scatter {aplan.scatter_messages()} msg(s)"
              f"{' (bcast)' if aplan.scatter_bcast else ''}, collect "
              f"{aplan.collect_messages()} msg(s) at {aplan.collect_grain}"
              + (f" [demoted: {aplan.demotion_reason}]"
                 if aplan.demotion_reason else ""))

print("\n== 3. generated Fortran77 + MPI-2 ==")
print(program.fortran)
