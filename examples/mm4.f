      PROGRAM MM4
C     24x24 matrix multiply -- the worked tracing example from
C     docs/TRACE_FORMAT.md.  Run it with:
C
C         PYTHONPATH=src python -m repro trace examples/mm4.f --nprocs 4
C
      PARAMETER (N = 24)
      REAL*8 A(N,N), B(N,N), C(N,N)
      INTEGER I, J, K
      DO I = 1, N
        DO J = 1, N
          A(I,J) = I + J
          B(I,J) = I - J
        ENDDO
      ENDDO
      DO I = 1, N
        DO J = 1, N
          C(I,J) = 0.0
          DO K = 1, N
            C(I,J) = C(I,J) + A(I,K) * B(K,J)
          ENDDO
        ENDDO
      ENDDO
      PRINT *, 'C(1,1) =', C(1,1)
      PRINT *, 'C(N,N) =', C(N,N)
      END
