#!/usr/bin/env python
"""Hardware-level demo: what the virtual bus actually does.

Launches a long point-to-point wormhole transfer across the mesh, then
issues a V-Bus broadcast mid-flight: the broadcast freezes the p2p
message in its router buffers, claims the transient bus, delivers one
wave to every node, and releases — the p2p transfer resumes where it
stopped.  Compares broadcast latency against a software tree and the
Fast Ethernet physical bus.

Run:  python examples/vbus_broadcast_demo.py
"""

import numpy as np

from repro.mpi2 import Mpi2Runtime
from repro.vbus import ETHERNET_100, build_cluster
from repro.vbus.params import ClusterParams, cluster_for

PAYLOAD = 4096  # broadcast payload, bytes
P2P_BYTES = 200_000

print("== 1. freeze/resume mechanics on a 2x2 V-Bus mesh ==")
cluster = build_cluster(4)
sim = cluster.sim
events = []


def p2p():
    receipt = yield from cluster.transfer(0, 3, P2P_BYTES)
    events.append(("p2p done", sim.now, receipt.total_s))


def bcaster():
    yield sim.timeout(200e-6)  # let the p2p stream get going
    t0 = sim.now
    yield from cluster.hw_broadcast(1, PAYLOAD)
    events.append(("broadcast done", sim.now, sim.now - t0))


sim.process(p2p())
sim.process(bcaster())
sim.run()
for name, at, took in sorted(events, key=lambda e: e[1]):
    print(f"  {name:16s} at {at * 1e6:9.1f} us (took {took * 1e6:7.1f} us)")
print(f"  p2p traffic frozen {cluster.domain.freeze_count} time(s), "
      f"{cluster.domain.total_frozen_s * 1e6:.1f} us total")
from repro.vbus import usage_report  # noqa: E402

print()
print(usage_report(cluster, top=4))

print(f"\n== 2. broadcast latency, {PAYLOAD} B to all nodes ==")


def time_broadcast(params, use_hw):
    cl = build_cluster(4, params=params)
    rt = Mpi2Runtime(cl)
    done = {}

    def body(rank):
        comm = rt.comm(rank)
        data = np.zeros(PAYLOAD // 8) if rank == 0 else None
        yield from comm.bcast(data, root=0)
        done[rank] = cl.sim.now

    for r in range(4):
        cl.sim.process(body(r), name=f"r{r}")
    cl.sim.run()
    return max(done.values())


t_vbus = time_broadcast(None, True)
t_tree = time_broadcast(cluster_for(4, ClusterParams(vbus_broadcast=False)), False)
t_ether = time_broadcast(cluster_for(4, ETHERNET_100), True)

print(f"  V-Bus hardware broadcast : {t_vbus * 1e6:8.1f} us")
print(f"  software binomial tree   : {t_tree * 1e6:8.1f} us"
      f"  ({t_tree / t_vbus:.1f}x slower)")
print(f"  Fast Ethernet (phys bus) : {t_ether * 1e6:8.1f} us"
      f"  ({t_ether / t_vbus:.1f}x slower)")
print("\nThe paper's claim: the V-Bus card delivers about 4x lower "
      "latency than Fast Ethernet.")
