#!/usr/bin/env python
"""Tour of the MPI-2 library on a simulated 2x2 V-Bus mesh.

Shows the primitive set the paper's compiler targets, used directly:
two-sided send/recv, collectives on the V-Bus hardware broadcast, and
one-sided Put/Get on memory windows with fence epochs and locks.

Run:  python examples/mpi2_api_tour.py
"""

import numpy as np

from repro.mpi2 import Mpi2Runtime, SUM
from repro.mpi2.window import Win
from repro.vbus import build_cluster

NPROCS = 4

cluster = build_cluster(NPROCS)
runtime = Mpi2Runtime(cluster)
comms = [runtime.comm(r) for r in range(NPROCS)]
buffers = [np.zeros(16) for _ in range(NPROCS)]
wins = Win.create(comms, buffers)

log = []


def rank_body(rank):
    comm = comms[rank]
    win = wins[rank]

    # --- two-sided -----------------------------------------------------
    if rank == 0:
        yield from comm.send({"hello": "from master"}, dest=1, tag=1)
    elif rank == 1:
        msg = yield from comm.recv(source=0, tag=1)
        log.append(f"[rank 1] recv: {msg}")

    # --- collective: V-Bus hardware broadcast ----------------------------
    data = np.arange(4.0) if rank == 0 else None
    data = yield from comm.bcast(data, root=0)
    if rank == 2:
        log.append(f"[rank 2] bcast got {data.tolist()}")

    # --- reduction -------------------------------------------------------
    total = yield from comm.allreduce(rank + 1, SUM)
    if rank == 3:
        log.append(f"[rank 3] allreduce sum(1..4) = {total}")

    # --- one-sided: put/get + fence epochs -----------------------------
    yield from win.fence()
    if rank == 0:
        # Contiguous put rides the DMA engine...
        yield from win.put(np.full(4, 7.0), target=1, offset=0)
        # ...strided put uses programmed I/O, element by element.
        yield from win.put(np.full(3, 9.0), target=1, offset=8, stride=2)
    yield from win.fence()
    if rank == 1:
        log.append(f"[rank 1] window after puts: {win.local.tolist()}")
    if rank == 2:
        vals = yield from win.get(target=1, offset=0, count=4)
        log.append(f"[rank 2] got from rank 1's window: {vals.tolist()}")
    yield from win.fence()

    # --- lock-protected accumulate (how reductions combine) -------------
    yield from win.lock(0)
    yield from win.accumulate(np.array([float(rank)]), target=0, op=SUM, offset=15)
    win.unlock(0)
    yield from win.fence()
    if rank == 0:
        log.append(f"[rank 0] accumulated slot: {win.local[15]}")


for r in range(NPROCS):
    cluster.sim.process(rank_body(r), name=f"rank{r}")
cluster.sim.run()

print("\n".join(log))
print()
stats = cluster.stats()
print(f"simulated time      : {cluster.sim.now * 1e6:.1f} us")
print(f"messages            : {int(stats['messages'])}")
print(f"V-Bus broadcasts    : {int(stats.get('hw_broadcasts', 0))}")
print(f"p2p freezes by bus  : {int(stats['freezes'])}")
print(f"PIO elements copied : {int(stats['pio_elements'])}")
