#!/usr/bin/env python
"""Jacobi relaxation on the simulated cluster: time-stepping, stencil
sweeps, and a global residual reduction in one compiled program.

Shows the pieces working together across iterations: the AVPG's validity
masks keep re-scatters down to halo points, the residual combines via
lock + MPI_ACCUMULATE on the master, and the per-region profile
identifies where the time goes.

Run:  python examples/jacobi_solver.py
"""

import numpy as np

from repro import compile_source, run_program, run_sequential
from repro.tools.autotune import choose_granularity
from repro.workloads import jacobi

N, STEPS = 16384, 20

print(f"== Jacobi: {N}-point grid, {STEPS} sweeps, 4 nodes ==")
tune = choose_granularity(jacobi.source(N, STEPS), nprocs=4, metric="comm")
print(tune.summary())

program = tune.program
seq = run_sequential(program)
par = run_program(program)

x_ref, res_ref = jacobi.reference(N, STEPS)
x = par.memory.array("X")
print()
print(f"matches numpy reference : {np.allclose(x, x_ref)}")
print(f"residual (printed)      : {par.stdout[0]}")
print(f"residual (reference)    : {res_ref:.6g}")
print(f"speedup                 : {seq.total_s / par.total_s:.2f}x")
print(f"compute (max rank)      : {par.compute_max_s * 1e3:8.3f} ms")
print(f"comm    (max rank)      : {par.comm_max_s * 1e3:8.3f} ms")

print("\nper-region profile (master-observed):")
for rid, (visits, elapsed) in par.region_profile.items():
    print(f"  region {rid:2d}: {visits:3d} visit(s), {elapsed * 1e3:8.3f} ms total")

print("""
Why no speedup?  Every sweep writes whole blocks of XNEW and X, and the
paper's master/slave coherence scheme collects every written region back
to the master at each region boundary: for a 1-D stencil the per-element
communication cost rivals the ~30-cycle per-element compute, so the
program is communication-bound at any granularity.  This is the paper's
own closing lesson — "any single technique does not work for all types
of communication patterns" — and exactly the workload class where its
AVPG/granularity machinery can only mitigate, not remove, the
master-centric round trip.  Compare examples/quickstart.py (MM), where
O(N^3) compute amortizes O(N^2) communication and 4 nodes pay off.""")
