#!/usr/bin/env python
"""Quickstart: compile MM for the 4-node V-Bus cluster and run it.

This is the paper's whole pipeline in one page: Fortran 77 in, automatic
parallelization, the MPI-2 postpass, and simulated execution with a
speedup report.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import compile_source, run_program, run_sequential
from repro.workloads import mm

N = 64

print(f"== compiling MM ({N}x{N}) for 4 nodes, coarse granularity ==")
program = compile_source(mm.source(N), nprocs=4, granularity="coarse")

print("\n-- parallelization log --")
print(program.parallelization_log)

print("\n-- communication plan --")
print(program.summary())

print("\n-- generated Fortran77 + MPI-2 (head) --")
print("\n".join(program.fortran.splitlines()[:30]))

init = mm.init_arrays(N)
seq = run_sequential(program, init=init)
par = run_program(program, init=init)

ok = np.allclose(par.memory.shaped("C"), mm.reference(init))
print("\n-- results --")
print(f"numerically correct : {ok}")
print(f"sequential time     : {seq.total_s * 1e3:9.3f} ms (simulated)")
print(f"parallel time       : {par.total_s * 1e3:9.3f} ms (simulated)")
print(f"speedup             : {seq.total_s / par.total_s:.2f}x on 4 PCs")
print()
print(par.summary())
