"""The paper's benchmark programs as parameterized Fortran 77 sources.

* :mod:`repro.workloads.mm` — the MM matrix multiply of Table 1/Table 2;
* :mod:`repro.workloads.swim` — a SWIM-like shallow-water kernel with the
  SPEC code's loop/stencil structure (Table 2, ITMAX=1);
* :mod:`repro.workloads.cffzinit` — a CFFZINIT-like stride-2 trig-table
  initialization from the NASA TFFT code (Table 2, M=11);
* :mod:`repro.workloads.synthetic` — microkernels for the figure
  reproductions and ablations (stride-k sweeps, triangular loops,
  reductions, AVPG chains).

Real SPEC/NASA sources are not redistributable; these kernels preserve
the loop nests and LMAD stride structure the paper's evaluation depends
on (see DESIGN.md §2 for the substitution argument).

This package also owns the **workload spec grammar** shared by the sweep
engine, the autotuner, and the benchmark tools: ``KIND[-SIZE[xEXTRA]]``
strings such as ``MM-256``, ``SWIM-64x2``, ``JACOBI-64x10``, or
``CFFZINIT-9`` (:func:`parse_spec` / :func:`source_for`).
"""

from __future__ import annotations

import re
from typing import Optional, Tuple

from repro.workloads import cffzinit, jacobi, mm, swim, synthetic

__all__ = [
    "cffzinit",
    "jacobi",
    "mm",
    "swim",
    "synthetic",
    "WorkloadSpecError",
    "WORKLOAD_KINDS",
    "parse_spec",
    "source_for",
    "is_spec",
]


class WorkloadSpecError(ValueError):
    """A malformed or unknown workload spec string."""


#: Spec kinds with real Fortran sources.  ``CRASH`` (test-only: kills the
#: worker process running it) parses but has no source here — it lives in
#: :mod:`repro.sweep.runner`, which pins the engine's lost-worker path.
WORKLOAD_KINDS = ("MM", "SWIM", "CFFZINIT", "JACOBI", "XOVER", "PXOVER")

_SPEC_RE = re.compile(r"^([A-Z]+)(?:-(\d+)(?:x(\d+))?)?$")


def parse_spec(spec: str) -> Tuple[str, Optional[int], Optional[int]]:
    """Split a workload spec like ``MM-256`` or ``JACOBI-64x10``.

    Grammar: ``KIND[-SIZE[xEXTRA]]``.  Kinds: ``MM`` (matrix multiply,
    SIZE = n), ``SWIM`` (shallow water, SIZE = n, EXTRA = itmax),
    ``CFFZINIT`` (trig tables, SIZE = m), ``JACOBI`` (SIZE = n, EXTRA =
    steps), ``XOVER`` (the mixed-grain crossover kernel, SIZE = n,
    EXTRA = stride), ``PXOVER`` (the mixed-partition crossover kernel,
    SIZE = n, EXTRA = width), and the test-only ``CRASH``.  Raises
    :class:`WorkloadSpecError` on anything else.
    """
    m = _SPEC_RE.match(spec or "")
    if not m:
        raise WorkloadSpecError(f"bad workload spec {spec!r}")
    kind, size, extra = m.group(1), m.group(2), m.group(3)
    size = int(size) if size is not None else None
    extra = int(extra) if extra is not None else None
    if kind == "CRASH":
        return kind, size, extra
    if kind not in WORKLOAD_KINDS:
        raise WorkloadSpecError(f"unknown workload kind {kind!r} in {spec!r}")
    if size is None:
        raise WorkloadSpecError(
            f"workload {spec!r} needs a size (e.g. {kind}-64)"
        )
    return kind, size, extra


def source_for(spec: str) -> str:
    """The Fortran source of a workload spec (``MM-256`` → MM at 256²)."""
    kind, size, extra = parse_spec(spec)
    if kind == "MM":
        return mm.source(size)
    if kind == "SWIM":
        return swim.source(size, itmax=extra if extra is not None else 1)
    if kind == "CFFZINIT":
        return cffzinit.source(size)
    if kind == "JACOBI":
        return jacobi.source(n=size, steps=extra if extra is not None else 25)
    if kind == "XOVER":
        return synthetic.crossover_kernel(
            size, stride=extra if extra is not None else 8
        )
    if kind == "PXOVER":
        return synthetic.partition_crossover_kernel(
            size, width=extra if extra is not None else 4
        )
    raise WorkloadSpecError(f"workload {spec!r} has no Fortran source")


def is_spec(candidate: str) -> bool:
    """Whether a string parses as a runnable workload spec."""
    try:
        return parse_spec(candidate)[0] in WORKLOAD_KINDS
    except WorkloadSpecError:
        return False
