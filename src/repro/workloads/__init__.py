"""The paper's benchmark programs as parameterized Fortran 77 sources.

* :mod:`repro.workloads.mm` — the MM matrix multiply of Table 1/Table 2;
* :mod:`repro.workloads.swim` — a SWIM-like shallow-water kernel with the
  SPEC code's loop/stencil structure (Table 2, ITMAX=1);
* :mod:`repro.workloads.cffzinit` — a CFFZINIT-like stride-2 trig-table
  initialization from the NASA TFFT code (Table 2, M=11);
* :mod:`repro.workloads.synthetic` — microkernels for the figure
  reproductions and ablations (stride-k sweeps, triangular loops,
  reductions, AVPG chains).

Real SPEC/NASA sources are not redistributable; these kernels preserve
the loop nests and LMAD stride structure the paper's evaluation depends
on (see DESIGN.md §2 for the substitution argument).
"""

from repro.workloads import cffzinit, jacobi, mm, swim, synthetic

__all__ = ["cffzinit", "jacobi", "mm", "swim", "synthetic"]
