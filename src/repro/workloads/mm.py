"""MM: dense matrix multiplication (paper Tables 1 and 2).

The classic ijk nest over ``REAL*8`` column-major matrices.  The outer I
loop parallelizes (row-block partitioning); B is read identically by all
ranks, so its scatter becomes one V-Bus broadcast; C is WriteFirst and is
collected back to the master.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["source", "init_arrays", "reference", "SIZES"]

#: The matrix sizes of Table 1.
SIZES = (256, 512, 1024)


def source(n: int = 1024) -> str:
    """Fortran source of MM for an n x n problem."""
    if n < 1:
        raise ValueError("n must be positive")
    return f"""
      PROGRAM MM
      PARAMETER (N = {n})
      REAL*8 A(N,N), B(N,N), C(N,N)
      INTEGER I, J, K
      DO I = 1, N
        DO J = 1, N
          C(I,J) = 0.0
          DO K = 1, N
            C(I,J) = C(I,J) + A(I,K) * B(K,J)
          ENDDO
        ENDDO
      ENDDO
      END
"""


def init_arrays(n: int, seed: int = 7) -> Dict[str, np.ndarray]:
    """Random input matrices for the run (master-side initial memory)."""
    rng = np.random.default_rng(seed)
    return {
        "A": rng.standard_normal((n, n)),
        "B": rng.standard_normal((n, n)),
    }


def reference(init: Dict[str, np.ndarray]) -> np.ndarray:
    """The expected C for a given initialization."""
    return init["A"] @ init["B"]
