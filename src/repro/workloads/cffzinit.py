"""CFFZINIT-like FFT table initialization (paper Table 2, NASA TFFT).

Initializes the interleaved complex trig table of a 2^M-point FFT:
``TRIG(2*I-1) = cos``, ``TRIG(2*I) = sin`` — exactly the "several LMADs
with the stride of 2" the paper credits for CFFZINIT's middle-grain win:
fine grain must use strided (programmed-I/O) MPI_PUTs; the middle grain
converts each to its bounding contiguous run (50% redundant bytes, DMA),
and because the two statements' inflated regions are covered by the
union of the rank's own writes, the §5.6 bound check keeps it safe.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["source", "init_arrays", "reference", "DEFAULT_M"]

DEFAULT_M = 11


def source(m: int = DEFAULT_M) -> str:
    """Fortran source for a 2^m-point table."""
    if not 2 <= m <= 24:
        raise ValueError("m out of range")
    nn = 1 << m
    return f"""
      PROGRAM CFFZ
      PARAMETER (M = {m}, NN = {nn})
      REAL*8 TRIG(2*NN)
      REAL*8 PI
      INTEGER I
      PI = 3.14159265358979323846
      DO I = 1, NN
        TRIG(2*I-1) = COS(2.0 * PI * DBLE(I-1) / DBLE(NN))
        TRIG(2*I)   = SIN(2.0 * PI * DBLE(I-1) / DBLE(NN))
      ENDDO
      END
"""


def init_arrays(m: int) -> Dict[str, np.ndarray]:
    """No inputs; the kernel generates the table."""
    return {}


def reference(m: int) -> np.ndarray:
    """The expected interleaved table."""
    nn = 1 << m
    k = np.arange(nn, dtype=np.float64)
    ang = 2.0 * np.pi * k / nn
    out = np.empty(2 * nn)
    out[0::2] = np.cos(ang)
    out[1::2] = np.sin(ang)
    return out
