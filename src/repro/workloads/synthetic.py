"""Synthetic microkernels for the figure reproductions and ablations."""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = [
    "stride_kernel",
    "phased_stride_kernel",
    "crossover_kernel",
    "partition_crossover_kernel",
    "copy_kernel",
    "reduction_kernel",
    "triangular_kernel",
    "avpg_chain",
    "figure9_kernel",
]


def stride_kernel(n: int, stride: int) -> str:
    """Writes every ``stride``-th element: A(stride*(I-1)+1) = f(I).

    The granularity crossover workload: fine grain needs strided
    (programmed-I/O) collects; middle inflates bytes by ~``stride``;
    coarse sends one bounding region.  Sweeping ``stride`` maps the
    middle-vs-fine crossover (PIO per-element cost vs DMA per-byte cost),
    the regime distinction behind the paper's CFFZINIT (stride 2, middle
    wins) vs MM/SWIM (middle buys nothing or loses) results.
    """
    if stride < 1:
        raise ValueError("stride must be >= 1")
    size = stride * (n - 1) + 1
    return f"""
      PROGRAM STRIDEK
      PARAMETER (N = {n}, NS = {size})
      REAL*8 A(NS), B(N)
      INTEGER I
      DO I = 1, N
        B(I) = DBLE(I) * 0.5
      ENDDO
      DO I = 1, N
        A({stride}*(I-1)+1) = B(I) + 1.0
      ENDDO
      END
"""


def phased_stride_kernel(n: int, stride: int) -> str:
    """Writes all ``stride`` phases of each group, one statement per phase
    (the generalized CFFZINIT pattern: interleaved-component tables).

    Every statement's LMAD has the given stride, but their union covers
    the region densely — so the §5.6 bound check allows middle/coarse
    collects, exposing the PIO-vs-redundant-DMA crossover as the stride
    grows.
    """
    if stride < 1:
        raise ValueError("stride must be >= 1")
    size = stride * n
    stmts = "\n".join(
        f"        A({stride}*(I-1)+{p}) = B(I) + {float(p)}"
        for p in range(1, stride + 1)
    )
    return f"""
      PROGRAM PHASEK
      PARAMETER (N = {n}, NS = {size})
      REAL*8 A(NS), B(N)
      INTEGER I
      DO I = 1, N
        B(I) = DBLE(I) * 0.5
      ENDDO
      DO I = 1, N
{stmts}
      ENDDO
      END
"""


def crossover_kernel(n: int, stride: int = 8) -> str:
    """Two parallel regions with *opposing* grain preferences.

    Region 1 reads every ``stride``-th element of a big table: its exact
    (fine) scatter moves ``1/stride`` of the bytes a coarse bounding
    interval would, in the same number of messages — fine wins wherever
    bytes cost anything.  Region 2 row-reduces a column-major 2D array
    partitioned over rows: each rank's exact scatter is one segment per
    *column* (many small messages), which a coarse bounding interval
    fuses into one — coarse wins wherever per-message latency dominates
    (switched GigE's kernel stack).  No single global grain can win both
    regions, which makes this the canonical mixed-grain-plan workload
    for the per-region autotuner (docs/AUTOTUNE.md).

    The two init loops are deliberately sequential (a first-order
    recurrence and a scalar accumulator) so the master owns all data and
    both parallel regions pay full, comparable scatters.
    """
    if stride < 1:
        raise ValueError("stride must be >= 1")
    if n < 8:
        raise ValueError("n must be >= 8")
    size = stride * (n - 1) + 1
    rows = max(n // 4, 8)
    return f"""
      PROGRAM XOVERK
      PARAMETER (N = {n}, NS = {size}, NR = {rows}, NC = 24)
      REAL*8 A(NS), B(N), X(NR, NC), C(NR)
      REAL*8 T
      INTEGER I, J
      A(1) = 1.0
      DO I = 2, NS
        A(I) = A(I-1) + 0.5
      ENDDO
      T = 0.0
      DO J = 1, NC
        DO I = 1, NR
          T = T + 1.0
          X(I, J) = T
        ENDDO
      ENDDO
      DO I = 1, N
        B(I) = A({stride}*(I-1)+1) * 0.5
      ENDDO
      DO I = 1, NR
        C(I) = 0.0
        DO J = 1, NC
          C(I) = C(I) + X(I, J)
        ENDDO
      ENDDO
      END
"""


def partition_crossover_kernel(n: int, width: int = 4) -> str:
    """Two parallel regions with *opposing* §5.3 partition preferences.

    Region 1 is a triangular nest (``DO I / DO J = 1, I``): under block
    partitioning the high-``I`` ranks carry quadratically more work, so
    the light ranks burn the difference in fence waits — which the
    ``comm`` metric counts — while cyclic interleaving balances it.
    Region 2 is a 3-point stencil over a ``width * n`` vector: a block
    rank reads one contiguous chunk (plus halo) and writes one
    contiguous run, but a cyclic rank's read set is a comb of 3-element
    windows no single (offset, count, stride) transfer can describe, so
    its scatters fall back to wider regions and strided traffic that
    every backend prices above the block plan.  No single global
    strategy wins both regions; the paper's §5.3 ``auto`` rule (cyclic
    for triangular, block otherwise) *is* the mixed plan, which makes
    this the canonical workload for the partition autotuner and its
    results-invariance contract (docs/PARTITION.md).

    The init loop is deliberately sequential (a recurrence) so the
    master owns all data and both parallel regions pay full, comparable
    scatters and collects.
    """
    if n < 8:
        raise ValueError("n must be >= 8")
    if width < 1:
        raise ValueError("width must be >= 1")
    return f"""
      PROGRAM PXOVERK
      PARAMETER (N = {n}, NR = {width * n})
      REAL*8 L(N, N), X(NR), Y(NR)
      REAL*8 T
      INTEGER I, J
      T = 0.0
      DO I = 1, NR
        T = T + 0.5
        X(I) = T
      ENDDO
      DO I = 1, N
        DO J = 1, I
          L(J, I) = DBLE(I) + 0.001 * DBLE(J)
        ENDDO
      ENDDO
      DO I = 2, NR - 1
        Y(I) = (X(I-1) + X(I) + X(I+1)) * 0.5
      ENDDO
      END
"""


def copy_kernel(n: int) -> str:
    """Unit-stride elementwise copy/scale (the trivial parallel loop)."""
    return f"""
      PROGRAM COPYK
      PARAMETER (N = {n})
      REAL*8 A(N), B(N)
      INTEGER I
      DO I = 1, N
        B(I) = DBLE(I)
      ENDDO
      DO I = 1, N
        A(I) = 2.0 * B(I) + 1.0
      ENDDO
      END
"""


def reduction_kernel(n: int) -> str:
    """Global sum: exercises lock + MPI_ACCUMULATE reduction combining."""
    return f"""
      PROGRAM REDK
      PARAMETER (N = {n})
      REAL*8 A(N)
      REAL*8 S
      INTEGER I
      DO I = 1, N
        A(I) = DBLE(I)
      ENDDO
      S = 0.0
      DO I = 1, N
        S = S + A(I)
      ENDDO
      PRINT *, 'SUM', S
      END
"""


def triangular_kernel(n: int) -> str:
    """Triangular nest: DO I / DO J=1,I — cyclic partitioning territory."""
    return f"""
      PROGRAM TRIK
      PARAMETER (N = {n})
      REAL*8 L(N,N)
      INTEGER I, J
      DO I = 1, N
        DO J = 1, I
          L(J,I) = DBLE(I) + 0.001 * DBLE(J)
        ENDDO
      ENDDO
      END
"""


def avpg_chain(n: int) -> str:
    """The Figure 7 shape: arrays with Valid/Propagate/Invalid patterns.

    Loop sequence (loop i+0 .. i+3) over arrays A, B, C:
      * A: used in loop 0, idle in 1-2, used again in loop 3 (Propagate
        span: its communication is delayed across the middle loops);
      * B: used in loop 0, never again (Invalid: collect eliminated when
        B is not in live_out);
      * C: used in loops 1 and 2.
    """
    return f"""
      PROGRAM AVPGK
      PARAMETER (N = {n})
      REAL*8 A(N), B(N), C(N), D(N)
      INTEGER I
      DO I = 1, N
        A(I) = DBLE(I)
        B(I) = DBLE(2 * I)
      ENDDO
      DO I = 1, N
        C(I) = DBLE(I) * 0.5
      ENDDO
      DO I = 1, N
        D(I) = C(I) + 1.0
      ENDDO
      DO I = 1, N
        D(I) = D(I) + A(I)
      ENDDO
      END
"""


def figure9_kernel(n_groups: int = 2) -> str:
    """The Figure 9 access: REAL A(14,*) touched at stride 3 per group.

    Each group of 14 elements has the pattern {0,3,6,9,12} touched; the
    figure's fine/middle/coarse regions fall out of the granularity
    planner applied to the WriteFirst LMAD.
    """
    size = 14 * n_groups
    return f"""
      PROGRAM FIG9
      PARAMETER (NG = {n_groups}, NS = {size})
      REAL*8 A(14, NG)
      INTEGER I, K
      DO I = 1, NG
        DO K = 1, 13, 3
          A(K, I) = DBLE(K + I)
        ENDDO
      ENDDO
      END
"""
