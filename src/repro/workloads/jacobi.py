"""Jacobi relaxation: an iterative solver with a per-step residual.

Not one of the paper's three benchmarks, but exactly the class its
introduction motivates: a time-stepping loop whose body mixes parallel
stencil sweeps with a global reduction (the residual) — exercising
replicated control flow, scatter validity across iterations, and the
lock+accumulate reduction path in one program.

Solves the 1-D Poisson-like system ``2*x_i - x_{i-1} - x_{i+1} = b_i``
with Dirichlet boundaries ``x_1 = x_N = 0``.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

__all__ = ["source", "init_arrays", "reference"]


def source(n: int = 128, steps: int = 25) -> str:
    if n < 8:
        raise ValueError("grid too small")
    return f"""
      PROGRAM JACOBI
      PARAMETER (N = {n}, STEPS = {steps})
      REAL*8 X(N), XNEW(N), B(N)
      REAL*8 RES
      INTEGER I, T
      DO I = 1, N
        B(I) = SIN(0.1 * DBLE(I)) * 0.01
        X(I) = 0.0
        XNEW(I) = 0.0
      ENDDO
      DO T = 1, STEPS
        DO I = 2, N-1
          XNEW(I) = (B(I) + X(I-1) + X(I+1)) / 2.0
        ENDDO
        RES = 0.0
        DO I = 2, N-1
          RES = RES + ABS(XNEW(I) - X(I))
        ENDDO
        DO I = 2, N-1
          X(I) = XNEW(I)
        ENDDO
      ENDDO
      PRINT *, 'residual', RES
      END
"""


def init_arrays(n: int) -> Dict[str, np.ndarray]:
    return {}


def reference(n: int, steps: int) -> Tuple[np.ndarray, float]:
    """NumPy reference: (final x, final-step residual)."""
    i = np.arange(1, n + 1, dtype=np.float64)
    b = np.sin(0.1 * i) * 0.01
    x = np.zeros(n)
    xnew = np.zeros(n)
    res = 0.0
    for _ in range(steps):
        xnew[1:-1] = (b[1:-1] + x[:-2] + x[2:]) / 2.0
        res = float(np.abs(xnew[1:-1] - x[1:-1]).sum())
        x[1:-1] = xnew[1:-1]
    return x, res
