"""SWIM-like shallow-water kernel (paper Table 2, SPEC 171.swim shape).

Reproduces the structure the granularity experiment depends on: a
time-stepping loop (ITMAX outer iterations) around three parallel sweeps
— CALC1 (compute capital-U/V, vorticity, height), CALC2 (new time level
from stencils), CALC3 (time level copy-back) — over ``REAL*8`` grids.
Column-partitioned stencil sweeps produce per-column contiguous regions
with halo columns, so fine-grain communication is already contiguous and
the middle grain buys nothing (the paper reports "poor results at the
Middle grain" for SWIM), while coarse aggregation removes per-column
message setup.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["source", "init_arrays", "reference_step", "DEFAULT_N"]

DEFAULT_N = 512


def source(n: int = DEFAULT_N, itmax: int = 1) -> str:
    """Fortran source for an n x n grid and ``itmax`` time steps."""
    if n < 8:
        raise ValueError("grid too small for the stencils")
    return f"""
      PROGRAM SWIM
      PARAMETER (N = {n}, ITMAX = {itmax})
      REAL*8 U(N,N), V(N,N), P(N,N)
      REAL*8 UNEW(N,N), VNEW(N,N), PNEW(N,N)
      REAL*8 CU(N,N), CV(N,N), Z(N,N), H(N,N)
      REAL*8 TDT, FSDX, FSDY
      INTEGER I, J, NC
      TDT = 0.02
      FSDX = 4.0 / 0.25
      FSDY = 4.0 / 0.25
C     initial height/velocity fields
      DO J = 1, N
        DO I = 1, N
          P(I,J) = 2.0 + 0.1 * COS(0.3 * DBLE(I)) * SIN(0.2 * DBLE(J))
          U(I,J) = 0.1 * SIN(0.25 * DBLE(I + J))
          V(I,J) = 0.1 * COS(0.2 * DBLE(I - J))
        ENDDO
      ENDDO
      DO NC = 1, ITMAX
C     CALC1: mass fluxes, vorticity, height
        DO J = 1, N-1
          DO I = 1, N-1
            CU(I+1,J) = 0.5 * (P(I+1,J) + P(I,J)) * U(I+1,J)
            CV(I,J+1) = 0.5 * (P(I,J+1) + P(I,J)) * V(I,J+1)
            Z(I+1,J+1) = (FSDX * (V(I+1,J+1) - V(I,J+1)) - FSDY *
     &        (U(I+1,J+1) - U(I+1,J))) /
     &        (P(I,J) + P(I+1,J) + P(I+1,J+1) + P(I,J+1))
            H(I,J) = P(I,J) + 0.25 * (U(I+1,J) * U(I+1,J)
     &        + U(I,J) * U(I,J)
     &        + V(I,J+1) * V(I,J+1) + V(I,J) * V(I,J))
          ENDDO
        ENDDO
C     CALC2: new time level
        DO J = 2, N-1
          DO I = 2, N-1
            UNEW(I,J) = U(I,J) + TDT * 0.5 * (Z(I,J+1) + Z(I,J))
     &        * (CV(I,J) + CV(I-1,J)) - TDT * (H(I,J) - H(I-1,J))
            VNEW(I,J) = V(I,J) - TDT * 0.5 * (Z(I+1,J) + Z(I,J))
     &        * (CU(I,J) + CU(I,J-1)) - TDT * (H(I,J) - H(I,J-1))
            PNEW(I,J) = P(I,J) - TDT * (CU(I+1,J) - CU(I,J))
     &        - TDT * (CV(I,J+1) - CV(I,J))
          ENDDO
        ENDDO
C     CALC3: advance the time levels
        DO J = 2, N-1
          DO I = 2, N-1
            U(I,J) = UNEW(I,J)
            V(I,J) = VNEW(I,J)
            P(I,J) = PNEW(I,J)
          ENDDO
        ENDDO
      ENDDO
      END
"""


def init_arrays(n: int) -> Dict[str, np.ndarray]:
    """No external inputs: SWIM initializes its own fields."""
    return {}


def reference_step(n: int, itmax: int = 1) -> Dict[str, np.ndarray]:
    """NumPy reference of the full computation (for correctness tests)."""
    i = np.arange(1, n + 1, dtype=np.float64)[:, None]
    j = np.arange(1, n + 1, dtype=np.float64)[None, :]
    P = 2.0 + 0.1 * np.cos(0.3 * i) * np.sin(0.2 * j)
    U = 0.1 * np.sin(0.25 * (i + j))
    V = 0.1 * np.cos(0.2 * (i - j))
    TDT, FSDX, FSDY = 0.02, 16.0, 16.0
    CU = np.zeros((n, n))
    CV = np.zeros((n, n))
    Z = np.zeros((n, n))
    H = np.zeros((n, n))
    UNEW = np.zeros((n, n))
    VNEW = np.zeros((n, n))
    PNEW = np.zeros((n, n))
    for _ in range(itmax):
        s = slice(0, n - 1)
        s1 = slice(1, n)
        CU[s1, s] = 0.5 * (P[s1, s] + P[s, s]) * U[s1, s]
        CV[s, s1] = 0.5 * (P[s, s1] + P[s, s]) * V[s, s1]
        Z[s1, s1] = (
            FSDX * (V[s1, s1] - V[s, s1]) - FSDY * (U[s1, s1] - U[s1, s])
        ) / (P[s, s] + P[s1, s] + P[s1, s1] + P[s, s1])
        H[s, s] = P[s, s] + 0.25 * (
            U[s1, s] ** 2 + U[s, s] ** 2 + V[s, s1] ** 2 + V[s, s] ** 2
        )
        c = slice(1, n - 1)
        cm = slice(0, n - 2)
        cp = slice(2, n)
        UNEW[c, c] = (
            U[c, c]
            + TDT * 0.5 * (Z[c, cp] + Z[c, c]) * (CV[c, c] + CV[cm, c])
            - TDT * (H[c, c] - H[cm, c])
        )
        VNEW[c, c] = (
            V[c, c]
            - TDT * 0.5 * (Z[cp, c] + Z[c, c]) * (CU[c, c] + CU[c, cm])
            - TDT * (H[c, c] - H[c, cm])
        )
        PNEW[c, c] = (
            P[c, c]
            - TDT * (CU[cp, c] - CU[c, c])
            - TDT * (CV[c, cp] - CV[c, c])
        )
        U[c, c] = UNEW[c, c]
        V[c, c] = VNEW[c, c]
        P[c, c] = PNEW[c, c]
    return {"U": U, "V": V, "P": P, "CU": CU, "CV": CV, "Z": Z, "H": H}
