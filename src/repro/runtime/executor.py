"""The SPMD executor: master/slave execution of compiled programs.

Each rank is a simulation process walking the program's region tree:

* **sequential regions** — the master executes the statements; the
  scalar environment is then broadcast so every rank agrees on
  subsequent control flow (the paper's barrier-delimited master section);
* **parallel regions** — scatter (master one-sided puts, or a V-Bus
  broadcast when the plan detected identical slave regions), fence,
  partitioned compute, reduction combine under ``MPI_WIN_LOCK`` /
  ``MPI_ACCUMULATE``, collect (slave puts to the master), fence, barrier;
* **replicated control** (serial loops / IFs around parallel regions) —
  every rank evaluates the bounds/condition on its synchronized scalars.

``execute=False`` runs the same communication schedule and cost model
without numeric work (timing mode for the large benchmark sizes).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

import numpy as np

from repro.compiler.frontend import fast as F
from repro.compiler.postpass.spmd import (
    IfRegion,
    ParRegion,
    SeqBlock,
    SeqLoop,
)
from repro.mpi2 import MAX, MIN, Mpi2Runtime, PROD, SUM
from repro.mpi2.window import Win
from repro.runtime.interp import Interpreter
from repro.runtime.memory import RankMemory
from repro.runtime.program import SpmdProgram
from repro.runtime.report import RunReport
from repro.vbus import build_cluster
from repro.vbus.params import VBUS_SKWP, ClusterParams

__all__ = ["run_program", "run_sequential", "ExecutionError"]

_OPMAP = {"+": SUM, "*": PROD, "MAX": MAX, "MIN": MIN}
_IDENTITY = {"+": 0.0, "*": 1.0, "MAX": float("-inf"), "MIN": float("inf")}


class ExecutionError(RuntimeError):
    """Runtime failure while executing an SPMD program."""


class _Execution:
    def __init__(
        self,
        program: SpmdProgram,
        cluster_params: Optional[ClusterParams],
        execute: bool,
        init: Optional[Dict[str, np.ndarray]],
        sanitize: bool = False,
    ):
        self.program = program
        self.execute = execute
        nprocs = program.nprocs
        self.cluster = build_cluster(nprocs, params=cluster_params)
        self.sim = self.cluster.sim
        #: The attached tracer (None = tracing off).
        self.tracer = self.cluster.tracer
        self.runtime = Mpi2Runtime(self.cluster)
        self.comms = [self.runtime.comm(r) for r in range(nprocs)]
        self.memories = [
            RankMemory(program.symtab, r) for r in range(nprocs)
        ]
        if init:
            for name, values in init.items():
                self.memories[0].load(name, values)
        self.interps = [
            Interpreter(
                self.memories[r],
                program.symtab,
                self.cluster.params.cpu,
                execute=execute,
                metrics=self.tracer.metrics if self.tracer else None,
            )
            for r in range(nprocs)
        ]
        # One window per array accessed remotely.
        self.wins: Dict[str, List[Win]] = {}
        for name in program.env.window_arrays:
            buffers = [self.memories[r].arrays[name] for r in range(nprocs)]
            self.wins[name] = Win.create(self.comms, buffers)
        # A scalar window for reductions (and any replicated scalar).
        red_names = sorted(
            {
                s
                for region in program.parallel_regions()
                for s, _op in region.loop.reductions
            }
        )
        self.red_slots = {name: i for i, name in enumerate(red_names)}
        red_buffers = [
            np.zeros(max(1, len(red_names))) for _ in range(nprocs)
        ]
        self.redwin = Win.create(self.comms, red_buffers)
        # Dynamic counters.
        self.scatter_messages = 0
        self.scatter_bytes = 0
        self.collect_messages = 0
        self.collect_bytes = 0
        #: region_id -> [visits, elapsed_s] measured on the master.
        self.region_profile: Dict[int, list] = {}
        #: Shadow-access sanitizer (docs/CHECK.md); probes every array
        #: access, so it needs real values to be meaningful.
        self.san = None
        if sanitize:
            if not execute:
                raise ExecutionError(
                    "--sanitize needs value execution; timing mode "
                    "(execute=False) never touches array elements"
                )
            from repro.runtime.sanitizer import Sanitizer

            self.san = Sanitizer(program)
            for r in range(nprocs):
                self.interps[r].probe = self.san.make_probe(r)

    # -- helpers ---------------------------------------------------------
    def _compute(self, rank: int, overhead: float = 0.0):
        seconds = self.interps[rank].take_seconds() * (1.0 + overhead)
        if seconds > 0:
            if self.tracer is not None:
                # Duration is known analytically at schedule time.
                now = self.sim.now
                self.tracer.span(("rank", rank), "compute", now, now + seconds)
            return self.cluster.hosts[rank].compute_seconds(seconds)
        return self.sim.timeout(0.0)

    def _payload(self, rank: int, name: str, t, itemsize: int):
        if not self.execute:
            return None
        return self.memories[rank].arrays[name][t.indices()]

    def _sync_env(self, rank: int):
        """Master broadcasts the replicated scalar environment."""
        names = self.program.env.replicated_scalars
        payload = None
        if rank == 0:
            payload = {n: self.memories[0].scalars[n] for n in names}
        data = yield from self.comms[rank].bcast(payload, root=0)
        if rank != 0 and data:
            self.memories[rank].scalars.update(data)

    def _fence_all(self, rank: int, names):
        """Drain the named windows, then one shared barrier."""
        for name in names:
            yield from self.wins[name][rank].drain()
        yield from self.redwin[rank].drain()
        yield from self.comms[rank].barrier()

    # -- region walkers ----------------------------------------------------
    def run_rank(self, rank: int):
        yield from self._run_regions(rank, self.program.regions)

    def _run_regions(self, rank: int, regions):
        for region in regions:
            t0 = self.sim.now
            if isinstance(region, SeqBlock):
                yield from self._seq_block(rank, region)
            elif isinstance(region, ParRegion):
                yield from self._par_region(rank, region)
            elif isinstance(region, SeqLoop):
                yield from self._seq_loop(rank, region)
            elif isinstance(region, IfRegion):
                yield from self._if_region(rank, region)
            if not isinstance(region, (SeqLoop, IfRegion)):
                if rank == 0:
                    cell = self.region_profile.setdefault(
                        region.region_id, [0, 0.0]
                    )
                    cell[0] += 1
                    cell[1] += self.sim.now - t0
                if self.tracer is not None:
                    kind = "par" if isinstance(region, ParRegion) else "seq"
                    self.tracer.span(
                        ("rank", rank), f"{kind}-region {region.region_id}", t0
                    )

    def _seq_block(self, rank: int, region: SeqBlock):
        if rank == 0:
            self.interps[0].exec_stmts(region.stmts, {})
            yield self._compute(0)
        yield from self._sync_env(rank)

    def _seq_loop(self, rank: int, region: SeqLoop):
        interp = self.interps[rank]
        loop = region.loop
        lo = int(interp.eval(loop.lo, {}))
        hi = int(interp.eval(loop.hi, {}))
        step = int(interp.eval(loop.step, {}))
        niter = max(0, (hi - lo) // step + 1 if (hi - lo) * step >= 0 else 0)
        v = lo
        for _ in range(niter):
            self.memories[rank].scalars[loop.var] = v
            yield from self._run_regions(rank, region.body)
            v += step
        self.memories[rank].scalars[loop.var] = v

    def _if_region(self, rank: int, region: IfRegion):
        interp = self.interps[rank]
        if bool(interp.eval(region.cond, {})):
            yield from self._run_regions(rank, region.then)
            return
        for c, blk in region.elifs:
            if bool(interp.eval(c, {})):
                yield from self._run_regions(rank, blk)
                return
        yield from self._run_regions(rank, region.orelse)

    # -- the parallel region protocol -----------------------------------------
    def _par_region(self, rank: int, region: ParRegion):
        program = self.program
        plan = program.plans[region.region_id]
        partition = region.partition
        loop = region.loop
        comm = self.comms[rank]
        mem = self.memories[rank]
        win_names = sorted(plan.arrays)

        # Scalars slaves need (loop bounds, coefficients, ...).
        yield from self._sync_env(rank)

        # ---- data scattering -------------------------------------------------
        for name in win_names:
            aplan = plan.arrays[name]
            if aplan.scatter_bcast:
                transfers = next(iter(aplan.scatter.values()))
                for t in transfers:
                    payload = (
                        self._payload(0, name, t, aplan.itemsize)
                        if rank == 0
                        else None
                    )
                    if payload is None and rank == 0:
                        payload = np.empty(t.count, dtype=f"f{aplan.itemsize}")
                    data = yield from comm.bcast(payload, root=0)
                    if rank != 0 and self.execute:
                        mem.arrays[name][t.indices()] = data
                        if self.san is not None:
                            self.san.on_scatter(rank, name, t)
                    if rank == 0:
                        self.scatter_messages += 1
                        self.scatter_bytes += t.count * aplan.itemsize
            elif rank == 0:
                win = self.wins[name][0]
                for r, transfers in sorted(aplan.scatter.items()):
                    for t in transfers:
                        data = self._payload(0, name, t, aplan.itemsize)
                        yield from win.put(
                            data,
                            target=r,
                            offset=t.offset,
                            stride=t.stride,
                            count=t.count,
                            itemsize=aplan.itemsize,
                        )
                        self.scatter_messages += 1
                        self.scatter_bytes += t.count * aplan.itemsize
                        if self.san is not None:
                            self.san.on_scatter(r, name, t)
        if plan.scatter_fence:
            yield from self._fence_all(rank, win_names)
        elif self.san is not None:
            self.san.fence_skipped(region.region_id, "scatter", plan)

        # ---- compute -----------------------------------------------------
        reductions = loop.reductions
        if reductions and rank == 0:
            # Seed the combine slots with the master's live-in values.
            for s, op in reductions:
                self.redwin[0].local[self.red_slots[s]] = mem.scalars.get(
                    s, _IDENTITY[op]
                )
        for s, op in reductions:
            mem.scalars[s] = _IDENTITY[op]

        rctx = partition.rank_ctx(rank)
        if rctx is not None:
            if self.san is not None:
                self.san.begin_compute(rank, region.region_id)
            interp = self.interps[rank]
            if partition.split_dim == 0:
                interp.run_loop(
                    loop, {}, bounds=(rctx.lo, rctx.hi, rctx.step)
                )
            else:
                # Deeper split dimensions restrict an inner loop of a
                # perfect nest; the rank runs the outer dimensions in
                # full over a bounds-rewritten copy (docs/PARTITION.md).
                interp.run_loop(partition.rank_loop(rank, loop), {})
            if self.san is not None:
                self.san.end_compute(rank)
            yield self._compute(
                rank, overhead=self.cluster.params.cpu.spmd_compute_overhead
            )

        # ---- reduction combine (lock + accumulate on the master) -----------
        for s, op in reductions:
            partial = mem.scalars.get(s, _IDENTITY[op])
            win = self.redwin[rank]
            yield from win.lock(0)
            yield from win.accumulate(
                np.array([partial]),
                target=0,
                op=_OPMAP[op],
                offset=self.red_slots[s],
            )
            win.unlock(0)

        # ---- data collecting ---------------------------------------------
        for name in win_names:
            aplan = plan.arrays[name]
            transfers = aplan.collect.get(rank, [])
            win = self.wins[name][rank]
            for t in transfers:
                data = self._payload(rank, name, t, aplan.itemsize)
                if self.san is not None:
                    self.san.on_collect(rank, region.region_id, name, t)
                yield from win.put(
                    data,
                    target=0,
                    offset=t.offset,
                    stride=t.stride,
                    count=t.count,
                    itemsize=aplan.itemsize,
                )
                self.collect_messages += 1
                self.collect_bytes += t.count * aplan.itemsize
        if plan.collect_fence:
            yield from self._fence_all(rank, win_names)
        elif self.san is not None:
            self.san.fence_skipped(region.region_id, "collect", plan)

        # Master folds the combined reductions back into its scalars.
        if rank == 0:
            if self.san is not None:
                self.san.region_end(region.region_id, plan)
            for s, _op in reductions:
                mem.scalars[s] = float(self.redwin[0].local[self.red_slots[s]])
        if reductions:
            yield from self._sync_env(rank)

    # -- reporting --------------------------------------------------------
    def report(self) -> RunReport:
        program = self.program
        grain_map = dict(program.options.grain_map or ())
        partition_map = dict(
            getattr(program.options, "partition_map", None) or ()
        )
        rep = RunReport(
            nprocs=program.nprocs,
            granularity="mixed" if grain_map else program.options.granularity,
            grain_map=grain_map,
            partition=getattr(program.options, "partition", "auto"),
            partition_map=partition_map,
            total_s=self.sim.now,
        )
        for r in range(program.nprocs):
            rep.compute_s[r] = self.cluster.hosts[r].compute_s
            rep.comm_s[r] = self.comms[r].comm_s
            rep.comm_cpu_s[r] = self.cluster.hosts[r].comm_cpu_s
            rep.fence_wait_s[r] = sum(
                wins[r].fence_wait_s for wins in self.wins.values()
            ) + self.redwin[r].fence_wait_s
        rep.hw = self.cluster.stats()
        rep.scatter_messages = self.scatter_messages
        rep.scatter_bytes = self.scatter_bytes
        rep.collect_messages = self.collect_messages
        rep.collect_bytes = self.collect_bytes
        for wins in list(self.wins.values()) + [self.redwin]:
            for w in wins:
                rep.strided_transfers += w.puts_strided + w.gets_strided
                rep.contiguous_transfers += w.puts_contig + w.gets_contig
        rep.stdout = list(self.interps[0].prints)
        rep.memory = self.memories[0]
        if self.san is not None:
            rep.sanitizer = self.san.to_jsonable()
        if self.cluster.injector is not None:
            rep.fault_stats = self.cluster.injector.stats()
        if self.tracer is not None:
            from repro.obs.export import metrics_rows
            from repro.vbus.stats import cluster_metrics_rows

            rep.trace = self.tracer
            rep.metrics_rows = metrics_rows(
                self.tracer, cluster_metrics_rows(self.cluster)
            )
        rep.region_profile = {
            rid: (visits, elapsed)
            for rid, (visits, elapsed) in sorted(self.region_profile.items())
        }
        return rep


def run_program(
    program: SpmdProgram,
    cluster_params: Optional[ClusterParams] = None,
    execute: bool = True,
    init: Optional[Dict[str, np.ndarray]] = None,
    trace: bool = False,
    faults=None,
    sanitize: bool = False,
) -> RunReport:
    """Run a compiled SPMD program on a freshly built simulated cluster.

    ``execute=False`` skips numeric array work (timing mode); ``init``
    preloads master arrays (name -> ndarray in the declared shape);
    ``trace=True`` attaches a :class:`repro.obs.Tracer` (the report's
    ``trace`` / ``metrics_rows`` fields) without changing simulated times.
    ``faults`` (a :class:`repro.faults.FaultPlan`) injects deterministic
    faults; the run either recovers via link-level retransmission (the
    report's ``fault_stats`` shows the recovery work) or raises a typed
    :class:`~repro.mpi2.exceptions.MpiFaultError` — never a hang, never a
    silently corrupted result (see docs/FAULTS.md).  ``sanitize=True``
    installs the shadow-access sanitizer (requires value mode; the
    report's ``sanitizer`` field carries the verdict — docs/CHECK.md).
    """
    if trace or faults is not None:
        cluster_params = replace(
            cluster_params if cluster_params is not None else VBUS_SKWP,
            **{
                k: v
                for k, v in (("trace", trace or None), ("faults", faults))
                if v is not None
            },
        )
    ex = _Execution(program, cluster_params, execute, init, sanitize=sanitize)
    procs = [
        ex.sim.process(ex.run_rank(r), name=f"rank{r}")
        for r in range(program.nprocs)
    ]
    injector = ex.cluster.injector
    if injector is None:
        ex.sim.run()
        return ex.report()

    from repro.mpi2.exceptions import MpiNodeDeadError, MpiWatchdogError
    from repro.sim import AllOf, AnyOf, SimulationError

    for r, proc in enumerate(procs):
        injector.register_rank_process(r, proc)
    injector.start()

    # Run until every rank finishes — or a fault ends the run first.  A
    # node kill fails its rank's process event, which fails ``done``
    # immediately; ``max_sim_s`` bounds the run in simulated time so even
    # an unforeseen hang surfaces as a typed error, not a stuck scheduler.
    done = AllOf(ex.sim, procs)
    plan = injector.plan
    watch = (
        ex.sim.timeout(plan.max_sim_s) if plan.max_sim_s is not None else None
    )
    target = AnyOf(ex.sim, [done, watch]) if watch is not None else done
    try:
        ex.sim.run(until=target)
    except SimulationError:
        if injector.dead:
            raise MpiNodeDeadError(
                f"run deadlocked with dead node(s) {sorted(injector.dead)}"
            ) from None
        raise
    if watch is not None and not done.triggered:
        raise MpiWatchdogError(
            f"run exceeded the fault plan watchdog ({plan.max_sim_s} s); "
            f"unfinished rank(s): "
            f"{[r for r, p in enumerate(procs) if not p.triggered]}"
        )
    return ex.report()


def run_sequential(
    program: SpmdProgram,
    cluster_params: Optional[ClusterParams] = None,
    execute: bool = True,
    init: Optional[Dict[str, np.ndarray]] = None,
) -> RunReport:
    """Run the *original* (pre-SPMD) program on one simulated PC.

    The baseline for the paper's speedup numbers.
    """
    params = cluster_params.cpu if cluster_params is not None else None
    from repro.vbus.params import CpuParams

    cpu = params or CpuParams()
    mem = RankMemory(program.symtab, 0)
    if init:
        for name, values in init.items():
            mem.load(name, values)
    interp = Interpreter(mem, program.symtab, cpu, execute=execute)
    interp.exec_stmts(program.unit.body, {})
    rep = RunReport(nprocs=1, granularity="n/a")
    rep.total_s = interp.cycles / cpu.clock_hz
    rep.compute_s[0] = rep.total_s
    rep.stdout = list(interp.prints)
    rep.memory = mem
    return rep
