"""Per-rank memory: flat column-major arrays plus a scalar environment.

Matches the paper's target-code memory model: *all data declared are
intrinsically private* — every rank allocates every window array at full
size; the master's copy is the reference and scatter/collect keep slave
copies coherent at region boundaries.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.compiler.frontend.symtab import Symbol, SymbolTable

__all__ = ["RankMemory"]


def _dtype_for(sym: Symbol):
    return np.int64 if sym.ftype == "INTEGER" else np.float64


class RankMemory:
    """One rank's arrays (flat, column-major addressing) and scalars."""

    def __init__(self, symtab: SymbolTable, rank: int = 0):
        self.rank = rank
        self.symtab = symtab
        self.arrays: Dict[str, np.ndarray] = {}
        self.scalars: Dict[str, float] = {}
        for sym in symtab:
            if sym.is_param:
                continue
            if sym.is_array:
                self.arrays[sym.name] = np.zeros(sym.size, dtype=_dtype_for(sym))
            else:
                self.scalars[sym.name] = 0 if sym.ftype == "INTEGER" else 0.0

    # -- arrays --------------------------------------------------------------
    def array(self, name: str) -> np.ndarray:
        return self.arrays[name]

    def load(self, name: str, values: np.ndarray) -> None:
        """Initialize an array from an ndarray of the declared shape
        (column-major) or a flat vector."""
        buf = self.arrays[name]
        flat = np.asarray(values)
        if flat.ndim > 1:
            flat = flat.reshape(-1, order="F")
        if flat.size != buf.size:
            raise ValueError(
                f"{name}: expected {buf.size} elements, got {flat.size}"
            )
        buf[:] = flat

    def shaped(self, name: str) -> np.ndarray:
        """The array viewed with its declared shape (column-major)."""
        sym = self.symtab.lookup(name)
        return self.arrays[name].reshape(sym.extents, order="F")

    # -- scalars -----------------------------------------------------------
    def scalar_env(self) -> Dict[str, float]:
        return dict(self.scalars)

    def update_scalars(self, values: Dict[str, float]) -> None:
        self.scalars.update(values)

    def __repr__(self):
        return (
            f"<RankMemory rank={self.rank} arrays={sorted(self.arrays)} "
            f"scalars={sorted(self.scalars)}>"
        )
