"""Run reports: simulated-time accounting for executed SPMD programs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["RunReport"]


@dataclass
class RunReport:
    """Outcome of one simulated run."""

    nprocs: int
    granularity: str
    #: Per-region grain overrides the program was compiled with (empty for
    #: single-grain runs; ``granularity`` reads ``"mixed"`` when set).
    grain_map: Dict[int, str] = field(default_factory=dict)
    #: Global §5.3 partition strategy the program was compiled with.
    partition: str = "auto"
    #: Per-region partition-strategy overrides (empty when the global
    #: strategy applied everywhere — docs/PARTITION.md).
    partition_map: Dict[int, str] = field(default_factory=dict)
    #: Simulated wall-clock of the whole program (seconds).
    total_s: float = 0.0
    #: Per-rank compute seconds (interpreter bursts).
    compute_s: Dict[int, float] = field(default_factory=dict)
    #: Per-rank seconds inside MPI calls (incl. fence waits).
    comm_s: Dict[int, float] = field(default_factory=dict)
    #: Per-rank CPU seconds spent *driving* communication (message-queue
    #: enqueues, DMA descriptor programming, PIO copies) — excludes time
    #: overlapped with DMA/wire streaming.  The paper's Table 2 flavour of
    #: "communication time" under its DMA-without-interrupting-the-
    #: processor design.
    comm_cpu_s: Dict[int, float] = field(default_factory=dict)
    #: Per-rank fence-wait seconds (subset of comm_s).
    fence_wait_s: Dict[int, float] = field(default_factory=dict)
    #: Hardware counters snapshot (cluster.stats()).
    hw: Dict[str, float] = field(default_factory=dict)
    #: Messages/bytes by communication role.
    scatter_messages: int = 0
    scatter_bytes: int = 0
    collect_messages: int = 0
    collect_bytes: int = 0
    strided_transfers: int = 0
    contiguous_transfers: int = 0
    #: region_id -> (visits, total elapsed seconds), master-observed — the
    #: per-region profile the paper's §5.6 says should guide granularity
    #: selection.
    region_profile: Dict[int, tuple] = field(default_factory=dict)
    #: PRINT output produced by the master.
    stdout: List[str] = field(default_factory=list)
    #: Master memory after the run (value mode only).
    memory: Optional[object] = None
    #: The run's :class:`repro.obs.Tracer` when tracing was enabled
    #: (``run_program(..., trace=True)`` or ``ClusterParams.trace``);
    #: ``None`` otherwise.
    trace: Optional[object] = None
    #: Merged metric rows (tracer registry + hardware counters +
    #: per-channel utilization), ready for the obs exporters.  Empty
    #: unless the run was traced.
    metrics_rows: List[dict] = field(default_factory=list)
    #: Fault-injection statistics (``FaultInjector.stats()``): dropped and
    #: corrupted flits, retransmission rounds, stalls, kills.  Empty unless
    #: the run had an active fault plan.
    fault_stats: Dict[str, float] = field(default_factory=dict)
    #: Shadow-access sanitizer verdict (``Sanitizer.to_jsonable()``);
    #: ``None`` unless the run had ``sanitize=True`` (docs/CHECK.md).
    sanitizer: Optional[Dict] = None

    @property
    def comm_max_s(self) -> float:
        """Communication time: the slowest rank's time in MPI calls (the
        Table 2 metric)."""
        return max(self.comm_s.values(), default=0.0)

    @property
    def comm_master_s(self) -> float:
        return self.comm_s.get(0, 0.0)

    @property
    def comm_cpu_max_s(self) -> float:
        """CPU-occupied communication time of the busiest rank."""
        return max(self.comm_cpu_s.values(), default=0.0)

    @property
    def comm_cpu_total_s(self) -> float:
        return sum(self.comm_cpu_s.values())

    @property
    def compute_max_s(self) -> float:
        return max(self.compute_s.values(), default=0.0)

    def to_jsonable(self) -> Dict[str, object]:
        """Deterministic JSON-able digest for sweep rows and caching.

        Only simulated quantities appear — no wall-clock, no live
        objects — so two runs of the same config serialize to identical
        bytes (the property the sweep cache and the serial-vs-parallel
        byte-identity contract rely on).
        """
        out = {
            "nprocs": self.nprocs,
            "granularity": self.granularity,
            "simulated_s": self.total_s,
            "compute_max_s": self.compute_max_s,
            "comm_max_s": self.comm_max_s,
            "comm_cpu_max_s": self.comm_cpu_max_s,
            "fence_wait_max_s": max(self.fence_wait_s.values(), default=0.0),
            "messages": int(self.hw.get("messages", 0)),
            "bytes": int(self.hw.get("bytes", 0)),
            "contiguous_transfers": self.contiguous_transfers,
            "strided_transfers": self.strided_transfers,
            "hw": {key: self.hw[key] for key in sorted(self.hw)},
            "fault_stats": {
                key: self.fault_stats[key] for key in sorted(self.fault_stats)
            },
            "stdout": list(self.stdout),
            "array_digest": self.array_digest(),
        }
        # Only present for mixed-grain runs, so single-grain rows (and the
        # committed sweep results that contain them) keep their exact bytes.
        if self.grain_map:
            out["grain_map"] = {
                str(rid): self.grain_map[rid] for rid in sorted(self.grain_map)
            }
        # Same byte-compat contract for the §5.3 partition knobs: rows from
        # default (auto, no overrides) runs keep their exact bytes.
        if self.partition != "auto":
            out["partition"] = self.partition
        if self.partition_map:
            out["partition_map"] = {
                str(rid): self.partition_map[rid]
                for rid in sorted(self.partition_map)
            }
        # Sanitized runs carry their verdict; plain rows keep their bytes.
        if self.sanitizer is not None:
            out["sanitizer"] = self.sanitizer
        return out

    def array_digest(self) -> Optional[str]:
        """SHA-256 over the master's arrays (name, dtype, shape, bytes).

        ``None`` in timing mode (no memory).  Two runs recovered to
        bit-identical numeric state digest identically, so sweep rows can
        carry the "recovered vs silently corrupted" fault contract
        (docs/FAULTS.md) without shipping the arrays themselves.
        """
        if self.memory is None:
            return None
        import hashlib

        h = hashlib.sha256()
        arrays = self.memory.arrays
        for name in sorted(arrays):
            arr = arrays[name]
            h.update(name.encode("utf-8"))
            h.update(str(arr.dtype).encode("utf-8"))
            h.update(str(arr.shape).encode("utf-8"))
            h.update(arr.tobytes())
        return h.hexdigest()

    def speedup_vs(self, sequential_s: float) -> float:
        if self.total_s <= 0:
            return float("inf")
        return sequential_s / self.total_s

    def summary(self) -> str:
        grain = self.granularity
        if self.grain_map:
            grain += " (" + ", ".join(
                f"{rid}:{self.grain_map[rid]}" for rid in sorted(self.grain_map)
            ) + ")"
        part = self.partition
        if self.partition_map:
            part += " (" + ", ".join(
                f"{rid}:{self.partition_map[rid]}"
                for rid in sorted(self.partition_map)
            ) + ")"
        lines = [
            f"run: {self.nprocs} rank(s), granularity={grain},"
            f" partition={part}",
            f"  total time        : {self.total_s * 1e3:10.3f} ms",
            f"  compute (max rank): {self.compute_max_s * 1e3:10.3f} ms",
            f"  comm    (max rank): {self.comm_max_s * 1e3:10.3f} ms",
            f"  messages          : {int(self.hw.get('messages', 0))}"
            f" ({self.contiguous_transfers} contiguous,"
            f" {self.strided_transfers} strided)",
            f"  bytes moved       : {int(self.hw.get('bytes', 0))}",
        ]
        if self.hw.get("hw_broadcasts"):
            lines.append(
                f"  V-Bus broadcasts  : {int(self.hw['hw_broadcasts'])}"
            )
        if self.fault_stats:
            fs = self.fault_stats
            lines.append(
                f"  faults            : "
                f"{int(fs.get('fault_dropped_flits', 0))} dropped,"
                f" {int(fs.get('fault_corrupt_flits', 0))} corrupt flit(s);"
                f" {int(fs.get('fault_retx_rounds', 0))} retx round(s),"
                f" {int(fs.get('fault_kills', 0))} kill(s)"
            )
        return "\n".join(lines)
