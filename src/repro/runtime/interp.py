"""IR interpreter with cycle accounting.

Executes statement lists against a :class:`~repro.runtime.memory.RankMemory`
and charges 300 MHz-CPU cycles from a static per-statement cost model.
Two execution modes:

* **value mode** (``execute=True``) — real arithmetic.  Innermost loops
  whose body is a single assignment are vectorized with numpy (masks,
  index arrays, reduction folding — the guide_00/guide_02 idioms), with
  exact fallbacks to per-iteration execution whenever vectorization could
  change semantics (duplicate targets, overlapping self-reads).
* **timing mode** (``execute=False``) — array arithmetic is skipped and
  pure loop nests are charged analytically (``niter x body_cycles``), so
  the 1024x1024 benchmarks run in O(structure) rather than O(work).
  Scalar statements and control flow still execute, which is sound for
  programs whose control flow never depends on array values (checked by
  the compiler's subset).

The cost model is intentionally simple — the paper's evaluation depends
on compute/communication *ratios*, not microarchitectural detail.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np

from repro.compiler.frontend import fast as F
from repro.compiler.frontend.symtab import SymbolTable
from repro.runtime.memory import RankMemory
from repro.vbus.params import CpuParams

__all__ = ["Interpreter", "InterpError"]


class InterpError(RuntimeError):
    """Runtime evaluation failure (unbound name, bad subscript, ...)."""


def _is_int_like(x) -> bool:
    if isinstance(x, (int, np.integer)):
        return True
    return isinstance(x, np.ndarray) and x.dtype.kind in "iu"


def _trunc_div(a, b):
    """Fortran integer division: truncate toward zero, exactly.

    Must not round-trip through float64: for |operands| > 2**53 the
    division loses low bits and the truncated quotient comes out wrong
    (e.g. (2**62 + 1) / 1).  Integer-only identity instead:
    ``trunc(a/b) == sign(a)*sign(b) * (|a| // |b|)``.
    """
    if isinstance(a, (int, np.integer)) and isinstance(b, (int, np.integer)):
        a = int(a)
        b = int(b)
        q = abs(a) // abs(b)
        return -q if (a < 0) != (b < 0) else q
    aa = np.asarray(a)
    bb = np.asarray(b)
    if aa.dtype.kind in "iu" and bb.dtype.kind in "iu":
        sign = np.where((aa < 0) != (bb < 0), -1, 1)
        out = sign * (np.abs(aa.astype(np.int64)) // np.abs(bb.astype(np.int64)))
        return int(out) if out.ndim == 0 else out
    # Mixed/float operands: original float semantics.
    q = np.trunc(aa.astype(np.float64) / bb.astype(np.float64))
    out = q.astype(np.int64)
    return int(out) if out.ndim == 0 else out


_INTRINSICS = {
    "SQRT": np.sqrt,
    "SIN": np.sin,
    "COS": np.cos,
    "TAN": np.tan,
    "ATAN": np.arctan,
    "EXP": np.exp,
    "LOG": np.log,
    "ABS": np.abs,
}


class Interpreter:
    def __init__(
        self,
        mem: RankMemory,
        symtab: SymbolTable,
        cpu: CpuParams,
        execute: bool = True,
        metrics=None,
    ):
        self.mem = mem
        self.symtab = symtab
        self.cpu = cpu
        self.execute = execute
        self.cycles = 0.0
        self.prints: List[str] = []
        self._static: Dict[int, float] = {}
        #: Optional :class:`repro.obs.metrics.MetricsRegistry` — counts
        #: which loop-execution strategy fired (pure accounting; never
        #: changes evaluation order or results).
        self.metrics = metrics
        #: Optional access probe ``(name, flat_idx, is_write) -> None``
        #: installed by the ``--sanitize`` shadow-access mode.  Fires on
        #: every value-mode array read/write (scalar and vectorized
        #: paths alike); never changes evaluation order or results.
        self.probe = None

    # -- cycle accounting ---------------------------------------------------
    def take_seconds(self) -> float:
        """Drain accumulated cycles as seconds of CPU time."""
        s = self.cpu.seconds(self.cycles)
        self.cycles = 0.0
        return s

    def _w_expr(self, e: F.Expr) -> float:
        key = id(e)
        if key in self._static:
            return self._static[key]
        c = self.cpu
        if isinstance(e, (F.Num, F.Str)):
            w = 0.0
        elif isinstance(e, F.Var):
            w = c.cycles_mem * 0.5  # register-resident most of the time
        elif isinstance(e, F.ArrayRef):
            w = c.cycles_mem + sum(self._w_expr(s) for s in e.subs) + c.cycles_add
        elif isinstance(e, F.BinOp):
            op_w = {
                "+": c.cycles_add,
                "-": c.cycles_add,
                "*": c.cycles_mul,
                "/": c.cycles_div,
                "**": c.cycles_intrinsic,
            }[e.op]
            w = op_w + self._w_expr(e.left) + self._w_expr(e.right)
        elif isinstance(e, F.UnOp):
            w = c.cycles_add + self._w_expr(e.operand)
        elif isinstance(e, F.Intrinsic):
            base = c.cycles_intrinsic
            if e.name in ("ABS", "MAX", "MIN", "MOD", "INT", "DBLE", "FLOAT"):
                base = c.cycles_add * 2
            w = base + sum(self._w_expr(a) for a in e.args)
        elif isinstance(e, F.RelOp):
            w = c.cycles_add + self._w_expr(e.left) + self._w_expr(e.right)
        elif isinstance(e, F.LogOp):
            w = c.cycles_add
            if e.left is not None:
                w += self._w_expr(e.left)
            if e.right is not None:
                w += self._w_expr(e.right)
        else:  # pragma: no cover
            raise InterpError(f"unknown expr {e!r}")
        self._static[key] = w
        return w

    def _w_assign(self, s: F.Assign) -> float:
        w = self._w_expr(s.rhs) + self.cpu.cycles_mem
        if isinstance(s.lhs, F.ArrayRef):
            w += sum(self._w_expr(sub) for sub in s.lhs.subs) + self.cpu.cycles_add
        return w

    # -- evaluation -----------------------------------------------------------
    def _flat_index(self, ref: F.ArrayRef, env):
        sym = self.symtab.lookup(ref.name)
        if sym is None or not sym.is_array:
            raise InterpError(f"{ref.name} is not an array")
        idx = 0
        for sub, (lo, hi), mult in zip(ref.subs, sym.dims, sym.multipliers()):
            v = self.eval(sub, env)
            idx = idx + (np.asarray(v, dtype=np.int64) - lo) * mult
        return idx

    def eval(self, e: F.Expr, env: Dict[str, object]):
        """Evaluate an expression; numpy-vectorized when env holds arrays."""
        if isinstance(e, F.Num):
            return int(e.value) if e.is_int else float(e.value)
        if isinstance(e, F.Var):
            if e.name in env:
                return env[e.name]
            if e.name in self.mem.scalars:
                return self.mem.scalars[e.name]
            sym = self.symtab.lookup(e.name)
            if sym is not None and sym.is_param:
                return sym.param_value
            raise InterpError(f"unbound variable {e.name}")
        if isinstance(e, F.ArrayRef):
            if not self.execute:
                return 0.0
            idx = self._flat_index(e, env)
            arr = self.mem.arrays[e.name]
            if self.probe is not None:
                self.probe(e.name, idx, False)
            return arr[idx]
        if isinstance(e, F.BinOp):
            a = self.eval(e.left, env)
            b = self.eval(e.right, env)
            if e.op == "+":
                return a + b
            if e.op == "-":
                return a - b
            if e.op == "*":
                return a * b
            if e.op == "/":
                if _is_int_like(a) and _is_int_like(b):
                    return _trunc_div(a, b)
                return a / b
            if e.op == "**":
                return a**b
            raise InterpError(f"bad op {e.op}")
        if isinstance(e, F.UnOp):
            return -self.eval(e.operand, env)
        if isinstance(e, F.Intrinsic):
            return self._intrinsic(e, env)
        if isinstance(e, F.RelOp):
            a = self.eval(e.left, env)
            b = self.eval(e.right, env)
            return {
                "<": a < b,
                "<=": a <= b,
                ">": a > b,
                ">=": a >= b,
                "==": a == b,
                "/=": a != b,
            }[e.op]
        if isinstance(e, F.LogOp):
            if e.op == ".NOT.":
                return np.logical_not(self.eval(e.right, env))
            a = self.eval(e.left, env)
            b = self.eval(e.right, env)
            return np.logical_and(a, b) if e.op == ".AND." else np.logical_or(a, b)
        if isinstance(e, F.Str):
            raise InterpError("string outside PRINT")
        raise InterpError(f"unknown expr {e!r}")

    def _intrinsic(self, e: F.Intrinsic, env):
        args = [self.eval(a, env) for a in e.args]
        name = e.name
        if name in _INTRINSICS:
            return _INTRINSICS[name](args[0])
        if name == "ATAN2":
            return np.arctan2(args[0], args[1])
        if name == "MAX":
            out = args[0]
            for a in args[1:]:
                out = np.maximum(out, a)
            return out
        if name == "MIN":
            out = args[0]
            for a in args[1:]:
                out = np.minimum(out, a)
            return out
        if name == "MOD":
            if _is_int_like(args[0]) and _is_int_like(args[1]):
                q = _trunc_div(args[0], args[1])
                return args[0] - q * args[1]
            return np.fmod(args[0], args[1])
        if name == "INT":
            v = np.trunc(args[0]).astype(np.int64)
            return int(v) if np.ndim(v) == 0 else v
        if name == "NINT":
            v = np.rint(args[0]).astype(np.int64)
            return int(v) if np.ndim(v) == 0 else v
        if name in ("DBLE", "FLOAT"):
            return np.asarray(args[0], dtype=np.float64) if np.ndim(args[0]) else float(args[0])
        if name == "SIGN":
            return np.copysign(np.abs(args[0]), args[1])
        raise InterpError(f"unknown intrinsic {name}")

    # -- statement execution -------------------------------------------------
    def exec_stmts(self, stmts, env: Optional[Dict[str, object]] = None) -> None:
        env = env if env is not None else {}
        for s in stmts:
            self.exec_stmt(s, env)

    def exec_stmt(self, s: F.Stmt, env: Dict[str, object]) -> None:
        if isinstance(s, F.Assign):
            self.cycles += self._w_assign(s)
            if isinstance(s.lhs, F.Var):
                value = self.eval(s.rhs, env)
                self._store_scalar(s.lhs.name, value)
            else:
                if not self.execute:
                    return
                idx = self._flat_index(s.lhs, env)
                value = self.eval(s.rhs, env)
                if self.probe is not None:
                    self.probe(s.lhs.name, idx, True)
                self.mem.arrays[s.lhs.name][idx] = value
        elif isinstance(s, F.Do):
            self.run_loop(s, env)
        elif isinstance(s, F.If):
            self.cycles += self._w_expr(s.cond)
            if bool(self.eval(s.cond, env)):
                self.exec_stmts(s.then, env)
                return
            for c, blk in s.elifs:
                self.cycles += self._w_expr(c)
                if bool(self.eval(c, env)):
                    self.exec_stmts(blk, env)
                    return
            self.exec_stmts(s.orelse, env)
        elif isinstance(s, F.PrintStmt):
            parts = []
            for item in s.items:
                if isinstance(item, F.Str):
                    parts.append(item.value)
                else:
                    parts.append(self._fmt(self.eval(item, env)))
            self.prints.append(" ".join(parts))
        elif isinstance(s, F.Call):  # pragma: no cover - inlined by FE
            raise InterpError("CALL reached the interpreter")

    @staticmethod
    def _fmt(v) -> str:
        if isinstance(v, (float, np.floating)):
            return f"{float(v):.6g}"
        return str(v)

    def _store_scalar(self, name: str, value) -> None:
        sym = self.symtab.lookup(name)
        if sym is not None and sym.ftype == "INTEGER":
            value = int(np.trunc(value))
        else:
            value = float(value)
        self.mem.scalars[name] = value

    # -- loops --------------------------------------------------------------
    def run_loop(
        self,
        loop: F.Do,
        env: Dict[str, object],
        bounds: Optional[tuple] = None,
    ) -> None:
        """Execute a loop; ``bounds`` overrides (lo, hi, step) — the
        executor passes each rank's partition chunk this way."""
        if bounds is not None:
            lo, hi, step = bounds
        else:
            lo = int(self.eval(loop.lo, env))
            hi = int(self.eval(loop.hi, env))
            step = int(self.eval(loop.step, env))
        if step == 0:
            raise InterpError(f"DO {loop.var}: zero step")
        niter = (hi - lo) // step + 1 if (hi - lo) * step >= 0 else 0
        niter = max(0, niter)
        if niter == 0:
            return

        if not self.execute and self._pure_nest(loop):
            self.cycles += self._analytic_cycles(loop, env, lo, hi, step)
            if self.metrics is not None:
                self.metrics.counter("interp.loops_analytic").inc()
            return

        if self.execute and len(loop.body) == 1 and isinstance(loop.body[0], F.Assign):
            values = np.arange(lo, lo + niter * step, step, dtype=np.int64)
            if self._vector_assign(loop.body[0], loop.var, values, env):
                self.cycles += niter * (
                    self._w_assign(loop.body[0]) + self.cpu.cycles_loop
                )
                if self.metrics is not None:
                    self.metrics.counter("interp.loops_vectorized").inc()
                # Fortran: the DO variable holds first-past-the-end after.
                self.mem.scalars[loop.var] = lo + niter * step
                return

        had = loop.var in env
        saved = env.get(loop.var)
        v = lo
        for _ in range(niter):
            env[loop.var] = v
            self.cycles += self.cpu.cycles_loop
            for s in loop.body:
                self.exec_stmt(s, env)
            v += step
        if had:
            env[loop.var] = saved
        else:
            env.pop(loop.var, None)
        # Fortran: the DO variable holds first-past-the-end afterwards.
        self.mem.scalars[loop.var] = v

    def _pure_nest(self, loop: F.Do) -> bool:
        for s in F.walk_stmts(loop.body):
            if not isinstance(s, (F.Assign, F.Do)):
                return False
        return True

    def _bounds_mention(self, inner: F.Do, var: str) -> bool:
        for bound in (inner.lo, inner.hi):
            if any(
                isinstance(e, F.Var) and e.name == var
                for e in F.walk_exprs(bound)
            ):
                return True
        return False

    def _analytic_cycles(
        self, loop: F.Do, env: Dict[str, object], lo: int, hi: int, step: int
    ) -> float:
        niter = max(0, (hi - lo) // step + 1 if (hi - lo) * step >= 0 else 0)
        if niter == 0:
            return 0.0
        triangular = any(
            isinstance(s, F.Do) and self._bounds_mention(s, loop.var)
            for s in loop.body
        )
        if triangular:
            total = 0.0
            had = loop.var in env
            saved = env.get(loop.var)
            v = lo
            for _ in range(niter):
                env[loop.var] = v
                total += self.cpu.cycles_loop + self._body_cycles(loop.body, env)
                v += step
            if had:
                env[loop.var] = saved
            else:
                env.pop(loop.var, None)
            return total
        per_iter = self.cpu.cycles_loop + self._body_cycles(loop.body, env)
        return niter * per_iter

    def _body_cycles(self, stmts, env) -> float:
        total = 0.0
        for s in stmts:
            if isinstance(s, F.Assign):
                total += self._w_assign(s)
            elif isinstance(s, F.Do):
                lo = int(self.eval(s.lo, env))
                hi = int(self.eval(s.hi, env))
                step = int(self.eval(s.step, env))
                total += self._analytic_cycles(s, env, lo, hi, step)
            else:  # pragma: no cover - guarded by _pure_nest
                raise InterpError("non-pure statement in analytic path")
        return total

    # -- vectorization --------------------------------------------------------
    def _vector_assign(
        self,
        stmt: F.Assign,
        var: str,
        values: np.ndarray,
        env: Dict[str, object],
    ) -> bool:
        """Try to execute ``DO var: lhs = rhs`` as one numpy operation.

        Returns False (leaving memory untouched) when the transformation
        might change semantics; the caller then runs the scalar loop.
        """
        venv = dict(env)
        venv[var] = values
        try:
            if isinstance(stmt.lhs, F.Var):
                return self._vector_scalar_lhs(stmt, var, values, env, venv)
            lhs_idx = self._flat_index(stmt.lhs, venv)
        except (InterpError, KeyError):
            return False

        if np.ndim(lhs_idx) == 0:
            return self._vector_reduction(
                stmt, var, values, env, venv, int(lhs_idx)
            )

        lhs_idx = np.asarray(lhs_idx, dtype=np.int64)
        if len(np.unique(lhs_idx)) != len(lhs_idx):
            return False  # duplicate targets: order matters

        # Self-reads must be either aligned (same index vector) or disjoint.
        name = stmt.lhs.name
        for node in F.walk_exprs(stmt.rhs):
            if isinstance(node, F.ArrayRef) and node.name == name:
                try:
                    ridx = np.asarray(self._flat_index(node, venv), dtype=np.int64)
                except InterpError:
                    return False
                if np.ndim(ridx) == 0:
                    ridx = np.full(len(lhs_idx), int(ridx), dtype=np.int64)
                if np.array_equal(ridx, lhs_idx):
                    continue
                if np.intersect1d(ridx, lhs_idx).size:
                    return False
        try:
            value = self.eval(stmt.rhs, venv)
        except InterpError:
            return False
        if self.probe is not None:
            self.probe(name, lhs_idx, True)
        self.mem.arrays[name][lhs_idx] = value
        return True

    def _reduction_parts(self, stmt: F.Assign, lhs_key) -> Optional[tuple]:
        """Match ``lhs = lhs op expr`` shapes; returns (op, expr)."""
        rhs = stmt.rhs

        def is_lhs(e):
            if isinstance(stmt.lhs, F.Var):
                return isinstance(e, F.Var) and e.name == stmt.lhs.name
            return (
                isinstance(e, F.ArrayRef)
                and e.name == stmt.lhs.name
                and str(e) == str(stmt.lhs)
            )

        if isinstance(rhs, F.BinOp) and rhs.op in ("+", "-", "*"):
            if is_lhs(rhs.left):
                return (rhs.op, rhs.right)
            if rhs.op in ("+", "*") and is_lhs(rhs.right):
                return (rhs.op, rhs.left)
        if (
            isinstance(rhs, F.Intrinsic)
            and rhs.name in ("MAX", "MIN")
            and len(rhs.args) == 2
        ):
            if is_lhs(rhs.args[0]):
                return (rhs.name, rhs.args[1])
            if is_lhs(rhs.args[1]):
                return (rhs.name, rhs.args[0])
        return None

    def _mentions_lhs(self, expr: F.Expr, stmt: F.Assign) -> bool:
        if isinstance(stmt.lhs, F.Var):
            return any(
                isinstance(e, F.Var) and e.name == stmt.lhs.name
                for e in F.walk_exprs(expr)
            )
        return any(
            isinstance(e, F.ArrayRef) and e.name == stmt.lhs.name
            for e in F.walk_exprs(expr)
        )

    def _apply_reduction(self, op: str, current, vec):
        if op == "+":
            return current + np.sum(vec)
        if op == "-":
            return current - np.sum(vec)
        if op == "*":
            return current * np.prod(vec)
        if op == "MAX":
            return max(current, float(np.max(vec)))
        return min(current, float(np.min(vec)))

    def _vector_scalar_lhs(self, stmt, var, values, env, venv) -> bool:
        name = stmt.lhs.name
        parts = self._reduction_parts(stmt, name)
        if parts is not None:
            op, expr = parts
            if self._mentions_lhs(expr, stmt):
                return False
            try:
                vec = self.eval(expr, venv)
            except InterpError:
                return False
            if np.ndim(vec) == 0:
                vec = np.full(len(values), vec)
            current = self.mem.scalars.get(name, 0.0)
            self._store_scalar(name, self._apply_reduction(op, current, vec))
        else:
            if self._mentions_lhs(stmt.rhs, stmt):
                return False
            try:
                vec = self.eval(stmt.rhs, venv)
            except InterpError:
                return False
            last = vec if np.ndim(vec) == 0 else vec[-1]
            self._store_scalar(name, last)
        return True

    def _vector_reduction(self, stmt, var, values, env, venv, slot) -> bool:
        """Loop-invariant array element accumulates over the loop."""
        parts = self._reduction_parts(stmt, None)
        if parts is None:
            return False
        op, expr = parts
        if self._mentions_lhs(expr, stmt):
            return False
        try:
            vec = self.eval(expr, venv)
        except InterpError:
            return False
        if np.ndim(vec) == 0:
            vec = np.full(len(values), vec)
        arr = self.mem.arrays[stmt.lhs.name]
        if self.probe is not None:
            self.probe(stmt.lhs.name, slot, False)
            self.probe(stmt.lhs.name, slot, True)
        arr[slot] = self._apply_reduction(op, arr[slot], vec)
        return True
