"""The compiled SPMD program object the executor runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.compiler.frontend import fast as F
from repro.compiler.postpass.avpg import Avpg
from repro.compiler.postpass.env import MpiEnvironment
from repro.compiler.postpass.scatter import RegionCommPlan
from repro.compiler.postpass.spmd import Region

__all__ = ["SpmdProgram"]


@dataclass
class SpmdProgram:
    """Everything the runtime needs: the region tree with attached
    partitions and communication plans, the MPI environment, the AVPG,
    and the emitted Fortran77+MPI-2 pseudo-source."""

    unit: F.Unit
    regions: List[Region]
    env: MpiEnvironment
    avpg: Avpg
    plans: Dict[int, RegionCommPlan]
    options: "CompileOptions"  # noqa: F821 - repro.compiler.pipeline
    fortran: str = ""
    parallelization_log: str = ""

    @property
    def nprocs(self) -> int:
        return self.options.nprocs

    @property
    def symtab(self):
        return self.unit.symtab

    def parallel_regions(self) -> List[Region]:
        from repro.compiler.postpass.spmd import ParRegion, iter_regions

        return [r for r in iter_regions(self.regions) if isinstance(r, ParRegion)]

    def grain_of(self, region_id: int) -> str:
        """The effective communication grain of one parallel region."""
        return self.options.grain_for(region_id)

    def summary(self) -> str:
        if self.options.mixed_grain:
            gm = dict(self.options.grain_map)
            grain_desc = "mixed (" + ", ".join(
                f"{rid}:{g}" for rid, g in sorted(gm.items())
            ) + f"; default {self.options.granularity})"
        else:
            grain_desc = self.options.granularity
        lines = [
            f"SPMD program {self.unit.name}: nprocs={self.nprocs}, "
            f"granularity={grain_desc}",
            f"windows: {', '.join(self.env.window_arrays) or '(none)'}",
            f"parallel regions: {len(self.parallel_regions())}",
        ]
        for rid, plan in sorted(self.plans.items()):
            lines.append(
                f"  region {rid}: {plan.total_messages()} msgs, "
                f"{plan.total_bytes()} bytes"
            )
            for note in plan.notes:
                lines.append(f"    - {note}")
        return "\n".join(lines)
