"""Runtime: executes compiled SPMD programs on the simulated cluster."""

from repro.runtime.program import SpmdProgram
from repro.runtime.report import RunReport
from repro.runtime.executor import run_program, run_sequential

__all__ = ["RunReport", "SpmdProgram", "run_program", "run_sequential"]
