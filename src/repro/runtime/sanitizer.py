"""Shadow-access sanitizer (`repro run --sanitize`, docs/CHECK.md).

The dynamic cross-check of the static verifier: during value-mode
simulation every array access runs through a probe that maintains a
shadow validity plane per (array, rank) — "does this rank's copy of
this element hold the semantically current value?"  Scatters propagate
the master's validity, collects propagate the sender's, writes validate
locally and invalidate everyone else at region end — the same dataflow
the communication planner reasons about statically, now replayed against
what the simulated ranks *actually* read and wrote.

Violation codes mirror the static ones they cross-validate:

* ``S-READ``  — a rank read an element whose copy was stale (RV101/RV102
  fallout observed at the faulting read);
* ``S-STALE`` — a collect sent elements the sender never held current
  values for (RV202);
* ``S-RACE``  — two ranks' recorded accesses of one region conflict:
  write/write overlap (RV201) or a read of another rank's fresh write
  (RV401);
* ``S-FENCE`` — a transfer phase ran without its closing fence epoch
  (RV301/RV302).

The contract asserted over the whole corpus (tools/check_smoke.py):
**static-clean implies sanitizer-clean**.  The converse is not promised —
the sanitizer only sees one partition/grain execution, the verifier all
of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

__all__ = ["Violation", "Sanitizer"]


@dataclass
class Violation:
    """One observed shadow-state violation (deduplicated; counted)."""

    code: str
    region_id: Optional[int]
    detail: str
    array: Optional[str] = None
    rank: Optional[int] = None
    count: int = 1

    def to_jsonable(self) -> Dict:
        out = {"code": self.code, "detail": self.detail, "count": self.count}
        if self.region_id is not None:
            out["region_id"] = self.region_id
        if self.array is not None:
            out["array"] = self.array
        if self.rank is not None:
            out["rank"] = self.rank
        return out


class Sanitizer:
    """Shadow validity planes + per-region access recording."""

    def __init__(self, program):
        self.program = program
        nprocs = program.nprocs
        self.shadow: Dict[str, np.ndarray] = {
            name: np.zeros((nprocs, program.env.sizes[name]), dtype=bool)
            for name in program.env.window_arrays
        }
        for plane in self.shadow.values():
            plane[0, :] = True  # master memory starts as the reference
        self.violations: List[Violation] = []
        self._by_key: Dict[tuple, Violation] = {}
        #: rank -> region id while that rank is inside a compute phase.
        self._active: Dict[int, int] = {}
        #: region_id -> array -> rank -> access mask.
        self._reads: Dict[int, Dict[str, Dict[int, np.ndarray]]] = {}
        self._writes: Dict[int, Dict[str, Dict[int, np.ndarray]]] = {}
        #: region_id -> array -> elements collected with a valid source.
        self._collected: Dict[int, Dict[str, np.ndarray]] = {}

    # -- violation bookkeeping -------------------------------------------
    def _flag(self, code, region_id, detail, array=None, rank=None):
        key = (code, region_id, array, rank)
        hit = self._by_key.get(key)
        if hit is not None:
            hit.count += 1
            return
        v = Violation(
            code=code, region_id=region_id, detail=detail,
            array=array, rank=rank,
        )
        self._by_key[key] = v
        self.violations.append(v)

    @property
    def clean(self) -> bool:
        return not self.violations

    def to_jsonable(self) -> Dict:
        return {
            "clean": self.clean,
            "violations": [v.to_jsonable() for v in self.violations],
        }

    # -- probes -----------------------------------------------------------
    def make_probe(self, rank: int):
        """The per-rank access probe installed on the interpreter."""

        def probe(name: str, idx, is_write: bool):
            plane = self.shadow.get(name)
            if plane is None:
                return  # master-private array: never communicated
            rid = self._active.get(rank)
            if is_write:
                plane[rank, idx] = True
                if rid is not None:
                    self._record(self._writes, rid, name, rank, idx)
                elif rank == 0:
                    # Master sequential write: slave copies go stale.
                    plane[1:, idx] = False
            else:
                if rid is not None:
                    self._record(self._reads, rid, name, rank, idx)
                    if not np.all(plane[rank, idx]):
                        self._flag(
                            "S-READ", rid,
                            "read of element(s) whose copy is stale",
                            array=name, rank=rank,
                        )
                elif rank == 0 and not np.all(plane[0, idx]):
                    self._flag(
                        "S-READ", None,
                        "master read of element(s) never collected",
                        array=name, rank=0,
                    )

        return probe

    def _record(self, store, rid, name, rank, idx):
        mask = (
            store.setdefault(rid, {})
            .setdefault(name, {})
            .get(rank)
        )
        if mask is None:
            mask = np.zeros(self.shadow[name].shape[1], dtype=bool)
            store[rid][name][rank] = mask
        mask[idx] = True

    # -- executor hooks ---------------------------------------------------
    def begin_compute(self, rank: int, region_id: int) -> None:
        self._active[rank] = region_id

    def end_compute(self, rank: int) -> None:
        self._active.pop(rank, None)

    def on_scatter(self, rank: int, name: str, transfer) -> None:
        """Master -> ``rank`` transfer applied: propagate master validity."""
        plane = self.shadow.get(name)
        if plane is None or rank == 0:
            return
        idx = transfer.indices()
        plane[rank, idx] = plane[0, idx]

    def on_collect(self, rank: int, region_id: int, name: str, transfer):
        """``rank`` -> master transfer initiated: stale check + propagate."""
        plane = self.shadow.get(name)
        if plane is None or rank == 0:
            return
        idx = transfer.indices()
        valid = plane[rank, idx]
        if not np.all(valid):
            self._flag(
                "S-STALE", region_id,
                f"collect sent {int((~valid).sum())} stale element(s)",
                array=name, rank=rank,
            )
        plane[0, idx] = valid
        coll = self._collected.setdefault(region_id, {}).get(name)
        if coll is None:
            coll = np.zeros(plane.shape[1], dtype=bool)
            self._collected[region_id][name] = coll
        got = np.zeros(plane.shape[1], dtype=bool)
        got[idx] = valid
        coll |= got

    def fence_skipped(self, region_id: int, phase: str, plan) -> None:
        has = any(
            (a.scatter if phase == "scatter" else a.collect)
            for a in plan.arrays.values()
        )
        if has:
            self._flag(
                "S-FENCE", region_id,
                f"{phase} transfers ran without a closing fence epoch",
            )

    def region_end(self, region_id: int, plan) -> None:
        """Master passed the closing barrier: judge the region's accesses."""
        reads = self._reads.pop(region_id, {})
        writes = self._writes.pop(region_id, {})
        collected = self._collected.pop(region_id, {})
        nprocs = self.program.nprocs
        for name in sorted(set(reads) | set(writes)):
            plane = self.shadow.get(name)
            if plane is None:
                continue
            w = writes.get(name, {})
            r = reads.get(name, {})
            ranks = sorted(set(w) | set(r))
            # Write/write overlap between ranks.
            wranks = sorted(w)
            for i, r1 in enumerate(wranks):
                for r2 in wranks[i + 1:]:
                    if (w[r1] & w[r2]).any():
                        self._flag(
                            "S-RACE", region_id,
                            f"ranks {r1} and {r2} wrote overlapping "
                            "element(s)",
                            array=name, rank=r1,
                        )
            # Read of another rank's fresh write (flow across ranks).
            for q in ranks:
                rq = r.get(q)
                if rq is None:
                    continue
                own = w.get(q)
                exposed = rq if own is None else (rq & ~own)
                for p in wranks:
                    if p == q:
                        continue
                    if (exposed & w[p]).any():
                        self._flag(
                            "S-RACE", region_id,
                            f"rank {q} read element(s) rank {p} wrote in "
                            "the same region",
                            array=name, rank=q,
                        )
            # Cross-rank invalidation, then collected results stay valid
            # on the master (recorded with sender validity at put time).
            allw = np.zeros(plane.shape[1], dtype=bool)
            for p in w:
                allw |= w[p]
            for q in range(nprocs):
                own = w.get(q)
                stale = allw if own is None else (allw & ~own)
                plane[q, stale] = False
            got = collected.get(name)
            if got is not None:
                plane[0, got] = True
