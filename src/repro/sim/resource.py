"""Queued resources for the simulation kernel: Resource and Store.

Both carry an optional ``obs_name``: when the owning simulator has a
tracer attached, a request that has to *queue* (contention) increments
the ``resource.wait.<obs_name>`` counter — the cheapest possible signal
for "which shared unit is the bottleneck" (DMA engines, window locks,
the V-Bus arbiter) without per-wait span bookkeeping.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.kernel import Event, SimulationError, Simulator

__all__ = ["Resource", "Store"]


class Resource:
    """A counted resource with FIFO request queueing.

    ``capacity`` units exist; a process yields :meth:`request` to obtain one
    and must call :meth:`release` when done.  Used for router output ports,
    DMA engines, and the shared Ethernet medium.
    """

    def __init__(
        self, sim: Simulator, capacity: int = 1, obs_name: Optional[str] = None
    ):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.obs_name = obs_name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    def request(self) -> Event:
        """Event that triggers when a unit has been granted to the caller."""
        ev = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed()
        else:
            tr = self.sim.tracer
            if tr is not None:
                tr.count(f"resource.wait.{self.obs_name or 'anonymous'}")
            self._waiters.append(ev)
        return ev

    def try_acquire(self) -> bool:
        """Take one unit immediately if available; never queues.

        Returns True on success (caller owns a unit and must ``release``),
        False when the resource is saturated.  The transfer fast path uses
        this to claim a whole channel path atomically or not at all.
        """
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            return True
        return False

    def release(self) -> None:
        """Return one unit; the oldest waiter (if any) is granted immediately."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1

    def __repr__(self) -> str:
        return (
            f"<Resource {self._in_use}/{self.capacity} busy,"
            f" {len(self._waiters)} queued>"
        )


class Store:
    """An unbounded-or-bounded FIFO store of items.

    ``put`` blocks when the store is full (bounded case); ``get`` blocks when
    empty.  This models message queues shared between NICs and MPI daemons.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Event that triggers once ``item`` has entered the store."""
        ev = Event(self.sim)
        if self._getters:
            # Hand the item straight to the oldest blocked getter.
            self._getters.popleft().succeed(item)
            ev.succeed()
        elif self.capacity is None or len(self.items) < self.capacity:
            self.items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Event that triggers with the oldest item in the store."""
        ev = Event(self.sim)
        if self.items:
            item = self.items.popleft()
            if self._putters:
                pev, pitem = self._putters.popleft()
                self.items.append(pitem)
                pev.succeed()
            ev.succeed(item)
        else:
            self._getters.append(ev)
        return ev

    def __repr__(self) -> str:
        cap = "inf" if self.capacity is None else str(self.capacity)
        return f"<Store {len(self.items)}/{cap} items>"
