"""A small discrete-event simulation kernel.

This is the substrate under the hardware models in :mod:`repro.vbus`.
Processes are Python generators that yield :class:`Event` objects; the
:class:`Simulator` advances virtual time and resumes processes when the
events they wait on are triggered.  The design follows the familiar
SimPy shape (built from scratch — no external dependency) with the small
feature set the cluster models need:

* :class:`Event` — one-shot triggerable event carrying a value.
* :class:`Timeout` — event triggered after a fixed delay.
* :class:`Process` — generator-backed process; itself an event that
  triggers when the generator returns.
* :class:`AllOf` / :class:`AnyOf` — composite conditions.
* :class:`Resource` — counted resource with FIFO queueing.
* :class:`Store` — FIFO object store (used for message queues).
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.resource import Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
]
