"""Discrete-event simulation kernel: events, processes, and the scheduler.

The kernel is the wall-clock bottleneck of the whole simulator (every NIC
setup, DMA grant, router hop, and fence turns into events), so the data
structures are tuned:

* events carry ``__slots__`` and store their first waiter in a dedicated
  slot (``_cb1``) — the common single-waiter case never allocates a
  callback list;
* a monotonically increasing sequence number breaks heap ties, giving
  deterministic FIFO ordering of same-time, same-priority events;
* scheduled events can be *cancelled* lazily (the heap entry is skipped
  when popped) — the batched transfer fast path uses this to retract an
  analytically scheduled completion when a V-Bus freeze interrupts it;
* internal single-shot timeouts can be *pooled*: the fast path marks them
  ``_poolable`` and the kernel recycles them through a free list instead
  of allocating a fresh object per event.

Fast-path / stepwise equivalence contract
-----------------------------------------

The batched transfer fast path (:mod:`repro.vbus.fastpath`) is an
*accounting* optimization layered on this kernel, and the kernel supplies
the three primitives its bit-identity proof needs:

* :meth:`Simulator.timeout_at` and :meth:`Simulator.pooled_timeout_at`
  schedule at **absolute** timestamps.  The fast path precomputes an end
  time with the same sequence of float additions the stepwise timeouts
  would perform (``t += delay`` per step); scheduling that value directly
  means no ``now + delay`` re-rounding can perturb the final bits.
* :meth:`Simulator.cancel` retracts a scheduled event lazily, so a V-Bus
  freeze can *demote* an analytically charged transfer back to the
  stepwise oracle without disturbing heap order.
* :meth:`Simulator.peek` exposes the next live event time, letting the
  fast path prove "no other process can run inside my head window"
  before claiming a whole route at once.

Changing tie-breaking (the ``(time, priority, seq)`` heap key), timestamp
arithmetic, or cancellation semantics invalidates that proof — the
equivalence suite (``tests/test_fastpath_equivalence.py``) asserts ``==``
on end times, receipts, and counters, never ``pytest.approx``.

Observability
-------------

``Simulator.tracer`` (default ``None``) may hold a
:class:`repro.obs.tracer.Tracer`; instrumented layers consult it with a
single ``is None`` guard, so tracing off costs one attribute test and
tracing on only *records* — it never schedules, so simulated results are
identical either way.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "SimulationError",
    "Interrupt",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Simulator",
]

#: Scheduling priorities: URGENT items at the same timestamp run before NORMAL.
URGENT = 0
NORMAL = 1

#: Sentinel distinguishing "not yet triggered" from a triggered None value.
_PENDING = object()

#: Upper bound on the recycled-timeout free list.
_POOL_MAX = 256


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double trigger, yielding a non-event, ...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event.

    An event starts *pending*; :meth:`succeed` (or :meth:`fail`) triggers it,
    scheduling all registered callbacks at the current simulation time.
    Processes wait on events by yielding them.
    """

    __slots__ = (
        "sim",
        "_cb1",
        "_cbs",
        "_value",
        "_ok",
        "_processed",
        "_defused",
        "_cancelled",
        "_poolable",
    )

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._cb1: Optional[Callable[["Event"], None]] = None
        self._cbs: Optional[List[Callable[["Event"], None]]] = None
        self._value: Any = _PENDING
        self._ok = True
        self._processed = False
        self._defused = False
        self._cancelled = False
        self._poolable = False

    # -- callback storage --------------------------------------------------
    # The first waiter lives in ``_cb1``; only a second waiter allocates the
    # overflow list.  ``processed`` is a flag, not "callbacks is None", so
    # the single-waiter case costs one attribute store.
    def _add_cb(self, cb: Callable[["Event"], None]) -> None:
        if self._cb1 is None and self._cbs is None:
            self._cb1 = cb
        elif self._cbs is None:
            self._cbs = [cb]
        else:
            self._cbs.append(cb)

    def _remove_cb(self, cb: Callable[["Event"], None]) -> None:
        # ``==`` not ``is``: bound methods are re-created on each attribute
        # access, so identity would never match a previously stored one.
        if self._cb1 == cb:
            self._cb1 = None
            if self._cbs:
                self._cb1 = self._cbs.pop(0)
        elif self._cbs is not None:
            try:
                self._cbs.remove(cb)
            except ValueError:
                pass

    @property
    def callbacks(self) -> Optional[List[Callable[["Event"], None]]]:
        """Pending callbacks (None once processed) — debugging/introspection."""
        if self._processed:
            return None
        out: List[Callable[["Event"], None]] = []
        if self._cb1 is not None:
            out.append(self._cb1)
        if self._cbs:
            out.extend(self._cbs)
        return out

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been given a value (or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event is fully consumed)."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True when triggered with :meth:`succeed` rather than :meth:`fail`."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event with ``value``; callbacks run at the current time."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self.sim._schedule(self, priority=NORMAL)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiters will see ``exc`` raised."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exc
        self.sim._schedule(self, priority=NORMAL)
        return self

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.sim.now:.9g}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        sim._schedule(self, priority=NORMAL, delay=delay)


class _Initialize(Event):
    """Internal: kicks a new process on the next scheduler step."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process"):
        super().__init__(sim)
        self._value = None
        self._cb1 = process._resume
        sim._schedule(self, priority=URGENT)


class Process(Event):
    """A running process wrapping a generator.

    The process is itself an event: it triggers with the generator's return
    value when the generator finishes, so processes can wait on each other.
    """

    __slots__ = ("name", "_generator", "_target")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._target: Optional[Event] = _Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self._target is not None and not isinstance(self._target, _Initialize):
            # Detach from the event we were waiting on.
            if not self._target._processed:
                self._target._remove_cb(self._resume)
        hit = Event(self.sim)
        hit._value = Interrupt(cause)
        hit._ok = False
        hit._defused = True
        hit._cb1 = self._resume
        self.sim._schedule(hit, priority=URGENT)

    def kill(self, cause: Any = None) -> None:
        """Terminate the process immediately, without resuming it.

        Unlike :meth:`interrupt` (which throws a catchable
        :class:`Interrupt` *into* the generator), ``kill`` closes the
        generator — ``finally`` blocks run, so held resources and channels
        are released — and fails the process event with ``cause`` so
        waiters (e.g. an :class:`AllOf` over all ranks) see a typed error.

        The event the process was waiting on is detached and, when it is a
        scheduled one-shot nobody else waits on (a timeout or an init
        ping), eagerly reclaimed via :meth:`Simulator.reclaim` — a lazy
        ``cancel`` would still drag the clock to the orphan's timestamp
        when the entry is popped.  Events owned by other parties (resource
        grants, peer processes) are merely detached; their owner remains
        responsible for them.

        No-op on an already-finished process.  Must not be called from
        inside the process itself (a running generator cannot be closed).
        """
        if self.triggered:
            return
        sim = self.sim
        target = self._target
        self._target = None
        if target is not None and not target._processed:
            target._remove_cb(self._resume)
            self._reclaim_orphan(target)
        self._generator.close()
        exc = cause if isinstance(cause, BaseException) else Interrupt(cause)
        self._ok = False
        self._value = exc
        # Pre-defused: the kill is deliberate, so a kill nobody waits on
        # must not crash the event loop.
        self._defused = True
        sim._schedule(self, priority=URGENT)

    def _reclaim_orphan(self, event: Event) -> None:
        """Reclaim scheduled one-shots orphaned by a kill (best effort).

        Guarded on ``_processed``, not ``triggered``: timeouts preload
        their value at construction, so they are *born* triggered.
        """
        if event._processed or event.callbacks:
            return
        if isinstance(event, _Condition):
            for ev in event.events:
                if not ev._processed:
                    ev._remove_cb(event._check)
                    self._reclaim_orphan(ev)
        elif isinstance(event, (Timeout, _Initialize)):
            self.sim.reclaim(event)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the event's outcome."""
        if self.triggered:
            # Killed while a stale resume (e.g. an already-processed-target
            # ping) was still queued: the generator is closed, drop it.
            return
        sim = self.sim
        sim._active_process = self
        try:
            if event._ok:
                step = self._generator.send(event._value)
            else:
                event._defused = True
                step = self._generator.throw(event._value)
        except StopIteration as stop:
            sim._active_process = None
            self._target = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            sim._active_process = None
            self._target = None
            self.fail(exc)
            return
        sim._active_process = None

        if not isinstance(step, Event):
            raise SimulationError(
                f"process {self.name!r} yielded non-event {step!r}"
            )
        if step.sim is not sim:
            raise SimulationError("yielded event belongs to another simulator")
        self._target = step
        if step._processed:
            # Already processed: resume immediately on the next step.
            ping = Event(sim)
            ping._value = step._value
            ping._ok = step._ok
            ping._cb1 = self._resume
            sim._schedule(ping, priority=URGENT)
        else:
            step._add_cb(self._resume)

    def __repr__(self) -> str:
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name} {state}>"


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes simulators")
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev._processed:
                self._check(ev)
            else:
                ev._add_cb(self._check)

    def _collect(self) -> dict:
        # Only *processed* events count: a Timeout carries its value from
        # construction, so `triggered` alone would over-collect.
        return {
            i: ev._value
            for i, ev in enumerate(self.events)
            if ev._processed and ev._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every constituent event has triggered."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Triggers as soon as any constituent event triggers."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Simulator:
    """The event loop: a priority queue of (time, priority, seq, event)."""

    def __init__(self):
        self._now: float = 0.0
        self._queue: list = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._tpool: List[Timeout] = []
        #: Optional :class:`repro.obs.tracer.Tracer`; ``None`` = tracing off.
        #: Instrumented layers guard every hook with ``if tracer is not
        #: None`` — the tracer observes, it never schedules.
        self.tracer = None

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def completed_event(self, value: Any = None) -> Event:
        """An event that is already triggered *and* processed.

        Waiting on it resumes on the next step at the current time, with
        no scheduling of its own — the zero-cost stand-in for degenerate
        work (e.g. a rank-local transfer) on the fast path.
        """
        ev = Event(self)
        ev._value = value
        ev._processed = True
        return ev

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def timeout_at(self, at: float, value: Any = None) -> Timeout:
        """A timeout firing at *absolute* time ``at``.

        Unlike ``timeout(at - now)``, the heap entry carries ``at`` exactly
        — no ``now + delay`` re-rounding — which the batched transfer fast
        path relies on to reproduce stepwise float arithmetic bit-for-bit.
        """
        if at < self._now:
            raise SimulationError(f"timeout at {at} lies in the past")
        t = Timeout.__new__(Timeout)
        Event.__init__(t, self)
        t.delay = at - self._now
        t._value = value
        self._schedule_at(t, at, priority=NORMAL)
        return t

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- pooled one-shot timeouts -----------------------------------------
    def pooled_timeout_at(
        self, at: float, callback: Callable[[Event], None]
    ) -> Timeout:
        """A recycled single-callback timeout scheduled at absolute time ``at``.

        Internal fast-path use only: the caller promises to drop its
        reference once the timeout fires or is cancelled, so the kernel may
        hand the object out again.  ``at`` must not lie in the past.
        """
        if at < self._now:
            raise SimulationError(f"pooled timeout at {at} lies in the past")
        if self._tpool:
            t = self._tpool.pop()
            t.delay = at - self._now
            t._value = None
        else:
            t = Timeout.__new__(Timeout)
            Event.__init__(t, self)
            t.delay = at - self._now
            t._value = None
        t._poolable = True
        t._cb1 = callback
        self._schedule_at(t, at, priority=NORMAL)
        return t

    def _recycle(self, t: Timeout) -> None:
        if len(self._tpool) < _POOL_MAX:
            t._cb1 = None
            t._cbs = None
            t._value = _PENDING
            t._ok = True
            t._processed = False
            t._defused = False
            t._cancelled = False
            t._poolable = False
            self._tpool.append(t)

    def cancel(self, event: Event) -> None:
        """Retract a scheduled-but-unprocessed event (lazy heap deletion)."""
        if event._processed:
            raise SimulationError("cannot cancel a processed event")
        event._cancelled = True

    def reclaim(self, event: Event) -> None:
        """Eagerly remove a scheduled-but-unprocessed event from the queue.

        ``cancel`` leaves the heap entry behind and the clock still
        advances to its timestamp when it is popped; ``reclaim`` filters
        the entry out (one O(n) pass + heapify), so an orphaned far-future
        timeout — e.g. one owned by a killed process — cannot drag ``now``
        forward or keep the run alive.  Poolable timeouts go back to the
        free list immediately.
        """
        if event._processed:
            raise SimulationError("cannot reclaim a processed event")
        event._cancelled = True
        # In place: run() holds a reference to the queue list, so rebinding
        # self._queue would desynchronize an in-flight run loop.
        kept = [entry for entry in self._queue if entry[3] is not event]
        if len(kept) != len(self._queue):
            heapq.heapify(kept)
            self._queue[:] = kept
        if event._poolable:
            self._recycle(event)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))
        self._seq += 1

    def _schedule_at(self, event: Event, at: float, priority: int) -> None:
        """Schedule at an absolute timestamp (no ``now + delay`` rounding)."""
        heapq.heappush(self._queue, (at, priority, self._seq, event))
        self._seq += 1

    def _step(self) -> None:
        when, _prio, _seq, event = heapq.heappop(self._queue)
        if event._cancelled:
            # Lazily deleted: advance the clock (monotonic; `when` is still
            # the earliest queued timestamp) and recycle if pooled.
            self._now = when
            if event._poolable:
                self._recycle(event)
            return
        self._now = when
        event._processed = True
        cb1, event._cb1 = event._cb1, None
        if cb1 is not None:
            cb1(event)
        if event._cbs is not None:
            cbs, event._cbs = event._cbs, None
            for cb in cbs:
                cb(event)
        if not event._ok and not event._defused:
            # A failure nobody waited on must not pass silently.
            raise event._value
        if event._poolable:
            self._recycle(event)

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until the queue drains, a time limit, or an event triggers.

        ``until`` may be ``None`` (drain), a number (absolute time), or an
        :class:`Event` (stop when it is processed, returning its value).
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[float] = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError("until lies in the past")

        queue = self._queue
        step = self._step
        while queue:
            if stop_event is not None and stop_event._processed:
                break
            if stop_time is not None and queue[0][0] > stop_time:
                self._now = stop_time
                return None
            step()

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "run() ended before the target event triggered (deadlock?)"
                )
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        if stop_time is not None:
            self._now = stop_time
        return None

    def peek(self) -> float:
        """Time of the next live scheduled event, or +inf when drained.

        Cancelled entries are discarded (and recycled) on the way."""
        q = self._queue
        while q and q[0][3]._cancelled:
            _, _, _, ev = heapq.heappop(q)
            if ev._poolable:
                self._recycle(ev)
        return q[0][0] if q else float("inf")
