"""Discrete-event simulation kernel: events, processes, and the scheduler."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "SimulationError",
    "Interrupt",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Simulator",
]

#: Scheduling priorities: URGENT items at the same timestamp run before NORMAL.
URGENT = 0
NORMAL = 1

#: Sentinel distinguishing "not yet triggered" from a triggered None value.
_PENDING = object()


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double trigger, yielding a non-event, ...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event.

    An event starts *pending*; :meth:`succeed` (or :meth:`fail`) triggers it,
    scheduling all registered callbacks at the current simulation time.
    Processes wait on events by yielding them.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok = True

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been given a value (or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event is fully consumed)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when triggered with :meth:`succeed` rather than :meth:`fail`."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event with ``value``; callbacks run at the current time."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self.sim._schedule(self, priority=NORMAL)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiters will see ``exc`` raised."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exc
        self.sim._schedule(self, priority=NORMAL)
        return self

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.sim.now:.9g}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        sim._schedule(self, priority=NORMAL, delay=delay)


class _Initialize(Event):
    """Internal: kicks a new process on the next scheduler step."""

    def __init__(self, sim: "Simulator", process: "Process"):
        super().__init__(sim)
        self._value = None
        self.callbacks.append(process._resume)
        sim._schedule(self, priority=URGENT)


class Process(Event):
    """A running process wrapping a generator.

    The process is itself an event: it triggers with the generator's return
    value when the generator finishes, so processes can wait on each other.
    """

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._target: Optional[Event] = _Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self._target is not None and not isinstance(self._target, _Initialize):
            # Detach from the event we were waiting on.
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        hit = Event(self.sim)
        hit._value = Interrupt(cause)
        hit._ok = False
        hit._defused = True
        hit.callbacks = [self._resume]
        self.sim._schedule(hit, priority=URGENT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the event's outcome."""
        self.sim._active_process = self
        try:
            if event._ok:
                step = self._generator.send(event._value)
            else:
                event._defused = True
                step = self._generator.throw(event._value)
        except StopIteration as stop:
            self.sim._active_process = None
            self._target = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.sim._active_process = None
            self._target = None
            self.fail(exc)
            return
        self.sim._active_process = None

        if not isinstance(step, Event):
            raise SimulationError(
                f"process {self.name!r} yielded non-event {step!r}"
            )
        if step.sim is not self.sim:
            raise SimulationError("yielded event belongs to another simulator")
        self._target = step
        if step.callbacks is None:
            # Already processed: resume immediately on the next step.
            ping = Event(self.sim)
            ping._value = step._value
            ping._ok = step._ok
            ping.callbacks = [self._resume]
            self.sim._schedule(ping, priority=URGENT)
        else:
            step.callbacks.append(self._resume)

    def __repr__(self) -> str:
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name} {state}>"


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes simulators")
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict:
        # Only *processed* events count: a Timeout carries its value from
        # construction, so `triggered` alone would over-collect.
        return {
            i: ev._value
            for i, ev in enumerate(self.events)
            if ev.processed and ev._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every constituent event has triggered."""

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Triggers as soon as any constituent event triggers."""

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Simulator:
    """The event loop: a priority queue of (time, priority, seq, event)."""

    def __init__(self):
        self._now: float = 0.0
        self._queue: list = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))
        self._seq += 1

    def _step(self) -> None:
        when, _prio, _seq, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for cb in callbacks:
            cb(event)
        if not event._ok and not getattr(event, "_defused", False):
            # A failure nobody waited on must not pass silently.
            raise event._value

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until the queue drains, a time limit, or an event triggers.

        ``until`` may be ``None`` (drain), a number (absolute time), or an
        :class:`Event` (stop when it is processed, returning its value).
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[float] = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError("until lies in the past")

        while self._queue:
            if stop_event is not None and stop_event.processed:
                break
            if stop_time is not None and self._queue[0][0] > stop_time:
                self._now = stop_time
                return None
            self._step()

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "run() ended before the target event triggered (deadlock?)"
                )
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        if stop_time is not None:
            self._now = stop_time
        return None

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf when drained."""
        return self._queue[0][0] if self._queue else float("inf")
