"""``python -m repro`` — the command-line driver."""

import sys

from repro.tools.cli import main

sys.exit(main())
