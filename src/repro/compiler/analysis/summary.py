"""Summary sets: classified access regions per program section (paper §4.2).

For a code section (loop body, loop, region) and each array we maintain
the three classified LMAD groups the paper defines:

* **ReadOnly** — regions only read;
* **WriteFirst** — regions written before any (possible) read;
* **ReadWrite** — regions read first, then read or written.

The postpass consumes the classification directly (§5.4): ReadOnly →
data-scattering, WriteFirst → data-collecting, ReadWrite → both.

Classification walks the section's statements in execution order,
tracking which regions have certainly been written (a read covered by an
earlier write in the same iteration is not *exposed*).  Writes under IF
guards are treated as both read and written (scatter + collect), since a
slave that skips the guarded write must still hold current values for the
inflated collect regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.compiler.analysis.access import (
    AccessError,
    LoopCtx,
    loop_context,
    ref_lmad,
    whole_array,
)
from repro.compiler.analysis.lmad import LMAD
from repro.compiler.frontend import fast as F
from repro.compiler.frontend.symtab import SymbolTable

__all__ = [
    "READ_ONLY",
    "WRITE_FIRST",
    "READ_WRITE",
    "ArraySummary",
    "ScalarSummary",
    "SummarySet",
    "summarize_loop",
    "summarize_statements",
]

READ_ONLY = "ReadOnly"
WRITE_FIRST = "WriteFirst"
READ_WRITE = "ReadWrite"


@dataclass
class ArraySummary:
    """Per-array regions and classification within one section."""

    array: str
    reads: List[LMAD] = field(default_factory=list)
    writes: List[LMAD] = field(default_factory=list)
    exposed_read: bool = False
    conditional_write: bool = False

    @property
    def classification(self) -> str:
        if not self.writes:
            return READ_ONLY
        if self.exposed_read or self.conditional_write:
            return READ_WRITE
        return WRITE_FIRST

    def union_reads(self) -> List[LMAD]:
        return list(self.reads)

    def union_writes(self) -> List[LMAD]:
        return list(self.writes)


@dataclass
class ScalarSummary:
    """Scalar usage inside a section (feeds privatization/reduction)."""

    name: str
    read: bool = False
    written: bool = False
    exposed_read: bool = False  # read before any write in the section


@dataclass
class SummarySet:
    """All array and scalar summaries for a section."""

    arrays: Dict[str, ArraySummary] = field(default_factory=dict)
    scalars: Dict[str, ScalarSummary] = field(default_factory=dict)

    def array(self, name: str) -> ArraySummary:
        if name not in self.arrays:
            self.arrays[name] = ArraySummary(name)
        return self.arrays[name]

    def scalar(self, name: str) -> ScalarSummary:
        if name not in self.scalars:
            self.scalars[name] = ScalarSummary(name)
        return self.scalars[name]

    def classified(self, cls: str) -> List[ArraySummary]:
        return [a for a in self.arrays.values() if a.classification == cls]


class _Collector:
    def __init__(
        self,
        symtab: SymbolTable,
        loops: Sequence[LoopCtx],
        env: Mapping[str, int],
    ):
        self.symtab = symtab
        self.loops = list(loops)
        self.env = dict(env)
        self.summary = SummarySet()
        #: Regions certainly written so far, per array.
        self._written: Dict[str, List[LMAD]] = {}
        self._scalar_written: Set[str] = set()

    # -- expression reads ----------------------------------------------------
    def read_expr(self, expr: F.Expr, conditional: bool) -> None:
        for node in F.walk_exprs(expr):
            if isinstance(node, F.ArrayRef):
                self._read_array(node, conditional)
            elif isinstance(node, F.Var):
                self._read_scalar(node.name)

    def _lmad(self, ref: F.ArrayRef) -> LMAD:
        try:
            return ref_lmad(ref, self.symtab, self.loops, self.env)
        except AccessError:
            sym = self.symtab.lookup(ref.name)
            if sym is None or not sym.is_array:
                raise
            return whole_array(sym)

    def _read_array(self, ref: F.ArrayRef, conditional: bool) -> None:
        region = self._lmad(ref)
        a = self.summary.array(ref.name)
        a.reads.append(region)
        covered = any(w.contains(region) for w in self._written.get(ref.name, []))
        if not covered:
            a.exposed_read = True
        # Subscript sub-expressions contain scalar reads.
        for sub in ref.subs:
            for node in F.walk_exprs(sub):
                if isinstance(node, F.Var):
                    self._read_scalar(node.name)
                elif isinstance(node, F.ArrayRef):
                    self._read_array(node, conditional)

    def _read_scalar(self, name: str) -> None:
        sym = self.symtab.lookup(name)
        if sym is not None and (sym.is_param or sym.is_array):
            return
        if any(c.var == name for c in self.loops):
            return  # loop indices are implicitly private
        s = self.summary.scalar(name)
        s.read = True
        if name not in self._scalar_written:
            s.exposed_read = True

    # -- statement walk -----------------------------------------------------
    def walk(self, stmts: Sequence[F.Stmt], conditional: bool = False) -> None:
        for stmt in stmts:
            self._stmt(stmt, conditional)

    def _stmt(self, stmt: F.Stmt, conditional: bool) -> None:
        if isinstance(stmt, F.Assign):
            self.read_expr(stmt.rhs, conditional)
            if isinstance(stmt.lhs, F.ArrayRef):
                for sub in stmt.lhs.subs:
                    self.read_expr(sub, conditional)
                region = self._lmad(stmt.lhs)
                a = self.summary.array(stmt.lhs.name)
                a.writes.append(region)
                if conditional:
                    a.conditional_write = True
                else:
                    self._written.setdefault(stmt.lhs.name, []).append(region)
            else:
                name = stmt.lhs.name
                s = self.summary.scalar(name)
                s.written = True
                if not conditional:
                    self._scalar_written.add(name)
        elif isinstance(stmt, F.Do):
            saved = self.loops
            try:
                inner = loop_context(stmt, self.loops, self.env)
                self.loops = self.loops + [inner]
            except AccessError:
                # Bounds depend on symbols outside this context (e.g. the
                # index of a loop we are summarizing the body of); keep the
                # context as-is — array refs degrade to whole-array.
                pass
            self.walk(stmt.body, conditional)
            self.loops = saved
        elif isinstance(stmt, F.If):
            self.read_expr(stmt.cond, conditional)
            self.walk(stmt.then, True)
            for c, blk in stmt.elifs:
                self.read_expr(c, conditional)
                self.walk(blk, True)
            self.walk(stmt.orelse, True)
        elif isinstance(stmt, F.PrintStmt):
            for item in stmt.items:
                if not isinstance(item, F.Str):
                    self.read_expr(item, conditional)
        elif isinstance(stmt, F.Call):  # pragma: no cover - inlined earlier
            raise AccessError("CALL must be inlined before summarization")


def summarize_statements(
    stmts: Sequence[F.Stmt],
    symtab: SymbolTable,
    loops: Sequence[LoopCtx] = (),
    env: Optional[Mapping[str, int]] = None,
) -> SummarySet:
    """Summary set of a statement sequence under the given loop context."""
    col = _Collector(symtab, loops, env or {})
    col.walk(stmts)
    return col.summary


def summarize_loop(
    loop: F.Do,
    symtab: SymbolTable,
    outer: Sequence[LoopCtx] = (),
    env: Optional[Mapping[str, int]] = None,
) -> Tuple[SummarySet, LoopCtx]:
    """Summary set of a whole loop (its body expanded by its own index)."""
    ctx = loop_context(loop, outer, env or {})
    col = _Collector(symtab, list(outer) + [ctx], env or {})
    col.walk(loop.body)
    return col.summary, ctx
