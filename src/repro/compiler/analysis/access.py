"""Extract LMADs from array references inside loop nests (paper §4.1).

The subscript tuple of a reference is linearized against the array's
column-major layout into a single affine offset expression; every loop
index with a non-zero coefficient contributes one LMAD dimension with
stride ``coef * step`` and count ``niter``.  Non-affine subscripts fall
back to a conservative whole-array descriptor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.compiler.analysis.intaffine import Affine, affine_from_expr
from repro.compiler.analysis.lmad import LMAD
from repro.compiler.frontend import fast as F
from repro.compiler.frontend.lower import expr_as_int
from repro.compiler.frontend.symtab import Symbol, SymbolTable

__all__ = [
    "AccessError",
    "LoopCtx",
    "loop_context",
    "ref_lmad",
    "ref_offset_affine",
    "whole_array",
]


class AccessError(ValueError):
    """Reference cannot be summarized even conservatively."""


@dataclass(frozen=True)
class LoopCtx:
    """One enclosing loop with concrete (possibly widened) bounds.

    ``exact`` is False when the bounds were widened to cover a
    triangular/imperfect nest conservatively.
    """

    var: str
    lo: int
    hi: int
    step: int
    exact: bool = True

    @property
    def count(self) -> int:
        if self.step > 0:
            n = (self.hi - self.lo) // self.step + 1
        else:
            n = (self.lo - self.hi) // (-self.step) + 1
        return max(0, n)

    @property
    def first(self) -> int:
        return self.lo

    def values(self) -> range:
        return range(self.lo, self.hi + (1 if self.step > 0 else -1), self.step)


def _affine_bound(
    expr: F.Expr, outer: Sequence[LoopCtx], env: Mapping[str, int], want: str
) -> Optional[int]:
    """Min or max of an affine bound over the outer iteration space."""
    aff = affine_from_expr(expr, env)
    if aff is None:
        return None
    total = aff.const
    by_var: Dict[str, LoopCtx] = {c.var: c for c in outer}
    for v, coef in aff.terms.items():
        ctx = by_var.get(v)
        if ctx is None:
            return None  # depends on a non-loop symbol with unknown value
        exts = (ctx.lo, ctx.lo + ctx.step * (ctx.count - 1))
        vals = (coef * exts[0], coef * exts[1])
        total += min(vals) if want == "min" else max(vals)
    return total


def loop_context(
    loop: F.Do,
    outer: Sequence[LoopCtx] = (),
    env: Optional[Mapping[str, int]] = None,
) -> LoopCtx:
    """Concrete bounds for a loop, widening over outer indices if needed."""
    env = env or {}
    step = expr_as_int(loop.step)
    if step is None or step == 0:
        raise AccessError(f"DO {loop.var}: non-constant step")
    lo = expr_as_int(loop.lo)
    hi = expr_as_int(loop.hi)
    exact = True
    if lo is None:
        lo_aff = affine_from_expr(loop.lo, env)
        if lo_aff is not None and lo_aff.is_const:
            lo = lo_aff.const
        else:
            lo = _affine_bound(loop.lo, outer, env, "min" if step > 0 else "max")
            exact = False
    if hi is None:
        hi_aff = affine_from_expr(loop.hi, env)
        if hi_aff is not None and hi_aff.is_const:
            hi = hi_aff.const
        else:
            hi = _affine_bound(loop.hi, outer, env, "max" if step > 0 else "min")
            exact = False
    if lo is None or hi is None:
        raise AccessError(
            f"DO {loop.var}: bounds not resolvable to integers "
            f"({loop.lo} .. {loop.hi})"
        )
    return LoopCtx(var=loop.var, lo=lo, hi=hi, step=step, exact=exact)


def whole_array(sym: Symbol) -> LMAD:
    """Conservative descriptor covering the entire array."""
    return LMAD.from_counts(sym.name, 0, [(1, sym.size)], exact=False)


def ref_offset_affine(
    ref: F.ArrayRef,
    symtab: SymbolTable,
    env: Optional[Mapping[str, int]] = None,
) -> Optional[Affine]:
    """The raw linearized offset of a reference as an affine expression.

    Loop indices stay symbolic; returns None when any subscript is
    non-affine.  This is the form the Access Region Test consumes.
    """
    sym = symtab.lookup(ref.name)
    if sym is None or not sym.is_array:
        raise AccessError(f"{ref.name} is not a declared array")
    if len(ref.subs) != sym.rank:
        raise AccessError(
            f"{ref.name}: {len(ref.subs)} subscripts for rank {sym.rank}"
        )
    env = env or {}
    offset = Affine.constant(0)
    for sub, (lower, _), mult in zip(ref.subs, sym.dims, sym.multipliers()):
        aff = affine_from_expr(sub, env)
        if aff is None:
            return None
        offset = offset + (aff - Affine.constant(lower)).scale(mult)
    return offset


def ref_lmad(
    ref: F.ArrayRef,
    symtab: SymbolTable,
    loops: Sequence[LoopCtx],
    env: Optional[Mapping[str, int]] = None,
) -> LMAD:
    """The LMAD of one reference under the given enclosing loops.

    ``env`` supplies integer values for non-loop scalars appearing in
    subscripts; unresolvable subscripts yield the whole-array descriptor.
    """
    sym = symtab.lookup(ref.name)
    if sym is None or not sym.is_array:
        raise AccessError(f"{ref.name} is not a declared array")
    if len(ref.subs) != sym.rank:
        raise AccessError(
            f"{ref.name}: {len(ref.subs)} subscripts for rank {sym.rank}"
        )
    env = env or {}

    # Linearize: offset = Σ (sub_k - lower_k) * mult_k.
    offset = Affine.constant(0)
    mults = sym.multipliers()
    for sub, (lower, _), mult in zip(ref.subs, sym.dims, mults):
        aff = affine_from_expr(sub, env)
        if aff is None:
            return whole_array(sym)
        offset = offset + (aff - Affine.constant(lower)).scale(mult)

    loop_by_var = {c.var: c for c in loops}
    # Any symbolic term that is not a loop index means we cannot pin the
    # access down; fall back to the whole array.
    for v in offset.vars():
        if v not in loop_by_var:
            return whole_array(sym)

    base_env = {c.var: c.first for c in loops}
    base = offset.evaluate(base_env)
    dims: List[Tuple[int, int]] = []
    indices: List[str] = []
    exact = True
    for c in loops:
        coef = offset.coef(c.var)
        if coef == 0 or c.count <= 1:
            continue
        dims.append((coef * c.step, c.count))
        indices.append(c.var)
        exact = exact and c.exact
    lmad = LMAD.from_counts(sym.name, base, dims, indices, exact=exact)
    if lmad.min_offset < 0 or lmad.max_offset >= sym.size:
        # Widened (triangular) bounds can step outside the array; clamp to
        # the whole array conservatively.
        return whole_array(sym)
    return lmad
