"""The Access Region Test: loop-carried dependence testing on LMADs
(paper §4, ref [2]).

For a candidate parallel loop with index values ``v = lo + step*t``,
``t in [0, n)``, every (write, other-access) pair on the same array is
tested for a *cross-iteration* conflict: offsets touched at iteration t1
by the write intersecting offsets touched at a different iteration t2 by
the other access.  Same-iteration conflicts do not block parallelization.

Three verdict tiers, most precise first:

1. **exact** — when the iteration space is small enough, per-iteration
   offset sets are enumerated and compared (no approximation);
2. **interval + stride arithmetic** — closed-form test when both sides
   move with the same per-iteration stride;
3. **GCD/interval conservative** — anything else conflicts unless the
   bounding intervals or the stride lattice rule it out.

The test never reports independence for a loop with a real conflict
(checked by the hypothesis suite against brute-force execution).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.compiler.analysis.access import (
    AccessError,
    LoopCtx,
    loop_context,
    ref_offset_affine,
)
from repro.compiler.analysis.intaffine import Affine
from repro.compiler.frontend import fast as F
from repro.compiler.frontend.symtab import SymbolTable

__all__ = ["DependenceReport", "ArrayAccess", "collect_accesses", "test_loop_parallel"]

#: Caps for the exact tier.
_EXACT_MAX_ITERS = 768
_EXACT_MAX_POINTS = 400_000


@dataclass
class ArrayAccess:
    """One array reference inside the candidate loop body."""

    kind: str  # "r" | "w"
    name: str
    aff: Optional[Affine]  # None => non-affine (conservative)
    inner: Tuple[LoopCtx, ...]  # loops between the candidate and the ref
    conditional: bool = False

    def inner_vars(self) -> Set[str]:
        return {c.var for c in self.inner}


@dataclass
class DependenceReport:
    independent: bool
    conflicts: List[str] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Access collection
# ---------------------------------------------------------------------------


def collect_accesses(
    loop: F.Do,
    symtab: SymbolTable,
    env: Optional[Dict[str, int]] = None,
    pctx: Optional[LoopCtx] = None,
) -> List[ArrayAccess]:
    """All array accesses in the loop body, with their inner-loop context.

    ``pctx`` (the candidate loop's own bounds) lets triangular inner loops
    widen conservatively instead of degrading to non-affine.
    """
    env = env or {}
    out: List[ArrayAccess] = []

    def ref_access(ref: F.ArrayRef, kind: str, inner, conditional) -> None:
        try:
            aff = ref_offset_affine(ref, symtab, env)
        except AccessError:
            aff = None
        out.append(
            ArrayAccess(
                kind=kind,
                name=ref.name,
                aff=aff,
                inner=tuple(inner),
                conditional=conditional,
            )
        )

    def scan_expr(expr: F.Expr, inner, conditional) -> None:
        for node in F.walk_exprs(expr):
            if isinstance(node, F.ArrayRef):
                ref_access(node, "r", inner, conditional)

    def walk(stmts: Sequence[F.Stmt], inner: List[LoopCtx], conditional: bool):
        for stmt in stmts:
            if isinstance(stmt, F.Assign):
                scan_expr(stmt.rhs, inner, conditional)
                if isinstance(stmt.lhs, F.ArrayRef):
                    for sub in stmt.lhs.subs:
                        scan_expr(sub, inner, conditional)
                    ref_access(stmt.lhs, "w", inner, conditional)
            elif isinstance(stmt, F.Do):
                try:
                    ctx = loop_context(stmt, inner, env)
                    walk(stmt.body, inner + [ctx], conditional)
                except AccessError:
                    # Bounds depend on the candidate index: widen over the
                    # candidate's own range (triangular nests); only if
                    # even that fails, degrade to non-affine.
                    ctx = None
                    if pctx is not None:
                        try:
                            ctx = loop_context(stmt, [pctx] + inner, env)
                        except AccessError:
                            ctx = None
                    if ctx is not None:
                        walk(stmt.body, inner + [ctx], conditional)
                    else:
                        saved = len(out)
                        walk(stmt.body, inner, conditional)
                        for acc in out[saved:]:
                            acc.aff = None
            elif isinstance(stmt, F.If):
                scan_expr(stmt.cond, inner, conditional)
                walk(stmt.then, inner, True)
                for c, blk in stmt.elifs:
                    scan_expr(c, inner, conditional)
                    walk(blk, inner, True)
                walk(stmt.orelse, inner, True)
            elif isinstance(stmt, F.PrintStmt):
                for item in stmt.items:
                    if not isinstance(item, F.Str):
                        scan_expr(item, inner, conditional)

    walk(loop.body, [], False)
    return out


# ---------------------------------------------------------------------------
# Pairwise conflict testing
# ---------------------------------------------------------------------------


def _inner_range(acc: ArrayAccess) -> Tuple[int, int, int, int]:
    """Inner-loop term geometry of an access.

    Returns ``(lo, hi, base, lattice)``: the min/max of the inner terms,
    their value at the loop-entry corner, and the GCD of the inner
    per-iteration strides — the inner point set is a subset of
    ``base + lattice * Z`` intersected with ``[lo, hi]``.
    """
    lo = hi = base = 0
    lattice = 0
    by_var = {c.var: c for c in acc.inner}
    for v, coef in acc.aff.terms.items():
        ctx = by_var.get(v)
        if ctx is None:
            continue
        a = coef * ctx.lo
        b = coef * (ctx.lo + ctx.step * (ctx.count - 1))
        lo += min(a, b)
        hi += max(a, b)
        base += a
        if ctx.count > 1:
            lattice = math.gcd(lattice, abs(coef * ctx.step))
    return lo, hi, base, lattice


def _outer_coefs(acc: ArrayAccess, pvar: str) -> Dict[str, int]:
    inner = acc.inner_vars()
    return {
        v: c for v, c in acc.aff.terms.items() if v != pvar and v not in inner
    }


def _pair_conflict(
    w: ArrayAccess, x: ArrayAccess, pctx: LoopCtx
) -> Optional[str]:
    """Cross-iteration conflict description, or None if provably absent."""
    if w.aff is None or x.aff is None:
        return f"{w.name}: non-affine access (conservative dependence)"

    pvar = pctx.var
    # Outer symbols must contribute identically to both sides: the two
    # iterations being compared share the same outer context.
    if _outer_coefs(w, pvar) != _outer_coefs(x, pvar):
        return f"{w.name}: accesses differ in outer-symbol terms"

    n = pctx.count
    if n <= 1:
        return None
    c1 = w.aff.coef(pvar) * pctx.step
    c2 = x.aff.coef(pvar) * pctx.step
    d = (w.aff.const + w.aff.coef(pvar) * pctx.lo) - (
        x.aff.const + x.aff.coef(pvar) * pctx.lo
    )
    w_lo, w_hi, w_base, w_lat = _inner_range(w)
    x_lo, x_hi, x_base, x_lat = _inner_range(x)
    # Conflict iff ∃ t1 != t2 in [0,n): c1*t1 - c2*t2 + d ∈ [L, U].
    L = x_lo - w_hi
    U = x_hi - w_lo
    # Lattice of the inner-term difference: (x_base - w_base) + g*Z.
    g = math.gcd(w_lat, x_lat)
    lat_off = x_base - w_base

    maybe = _interval_test(c1, c2, d, L, U, n, g, lat_off)
    if not maybe:
        return None
    # Ambiguous: try the exact tier before surrendering to "dependent".
    witness = _exact_pair_conflict(w, x, pctx)
    if witness == ():
        return None  # exact tier proved independence
    if witness is not None:
        t1, t2, o = witness
        return f"{w.name}: iterations {t1} and {t2} both touch offset {o}"
    return f"{w.name}: possible cross-iteration conflict (interval test)"


def _interval_test(
    c1: int,
    c2: int,
    d: int,
    L: int,
    U: int,
    n: int,
    g: int = 0,
    lat_off: int = 0,
) -> bool:
    """May ``c1*t1 - c2*t2 + d`` hit the inner-difference set for
    t1 != t2 in [0, n)?

    The inner-term difference set is bounded by ``[L, U]`` and, when
    ``g > 0``, lies on the lattice ``lat_off + g*Z`` — the modular
    refinement that separates interleaved column accesses (e.g. the MM
    rows: different iterations occupy different residues mod the leading
    dimension).
    """
    if c1 == c2:
        c = c1
        if c == 0:
            if not (L <= d <= U):
                return False
            return _lattice_hits(0, d, g, lat_off)
        # k = t1 - t2 != 0, |k| <= n-1:  c*k + d ∈ inner-difference set.
        if c > 0:
            k_lo = math.ceil((L - d) / c)
            k_hi = math.floor((U - d) / c)
        else:
            k_lo = math.ceil((U - d) / c)
            k_hi = math.floor((L - d) / c)
        k_lo = max(k_lo, -(n - 1))
        k_hi = min(k_hi, n - 1)
        if k_lo > k_hi or (k_lo == 0 == k_hi):
            return False
        if g <= 0:
            return True
        # Need k != 0 in [k_lo, k_hi] with c*k + d ≡ lat_off (mod g).
        return _congruence_has_solution(c, d - lat_off, g, k_lo, k_hi)
    # Differing strides: bounding interval of c1*t1 - c2*t2 plus GCD filter.
    ts = (0, n - 1)
    vmin = min(c1 * t for t in ts) - max(c2 * t for t in ts)
    vmax = max(c1 * t for t in ts) - min(c2 * t for t in ts)
    if vmax + d < L or vmin + d > U:
        return False
    gc = math.gcd(math.gcd(c1, c2), g)
    if gc > 1 and (d - lat_off) % gc != 0:
        # c1*t1 - c2*t2 + d - lat_off ≡ (d - lat_off) (mod gc) never ≡ 0.
        return False
    return True


def _lattice_hits(value: int, d: int, g: int, lat_off: int) -> bool:
    """Is ``value + d`` on the lattice ``lat_off + g*Z`` (g=0: anything)?"""
    if g <= 0:
        return True
    return (value + d - lat_off) % g == 0


def _congruence_has_solution(
    c: int, rhs_neg: int, g: int, k_lo: int, k_hi: int
) -> bool:
    """Does ``c*k ≡ -rhs_neg (mod g)`` have a nonzero solution in range?"""
    gc = math.gcd(abs(c), g)
    if rhs_neg % gc != 0:
        return False
    m = g // gc
    if m == 1:
        # Every k solves the congruence; a nonzero k exists in range.
        return not (k_lo == 0 == k_hi) and k_lo <= k_hi
    c_r = (c // gc) % m
    rhs = (-rhs_neg // gc) % m
    k0 = (rhs * pow(c_r, -1, m)) % m
    first = k_lo + ((k0 - k_lo) % m)
    while first <= k_hi:
        if first != 0:
            return True
        first += m
    return False


def _enumerate_points(
    acc: ArrayAccess, pvar: str, pvalue: int
) -> Optional[List[int]]:
    """Concrete offsets of an access at one parallel-index value.

    Outer symbols are pinned to 0 — sound for pair comparison because both
    sides carry identical outer terms (checked by the caller).
    """
    by_var = {c.var: c for c in acc.inner}
    base = acc.aff.const
    pts = [0]
    for v, coef in acc.aff.terms.items():
        if v == pvar:
            base += coef * pvalue
        elif v in by_var:
            ctx = by_var[v]
            vals = [coef * val for val in ctx.values()]
            new_pts = [p + q for p in pts for q in vals]
            if len(new_pts) > _EXACT_MAX_POINTS:
                return None
            pts = new_pts
        # else: outer symbol, pinned to 0.
    return [base + p for p in pts]


def _exact_pair_conflict(
    w: ArrayAccess, x: ArrayAccess, pctx: LoopCtx
) -> Optional[Tuple[int, int, int]]:
    """Exact conflict search.

    Returns a witness ``(t1, t2, offset)``, the empty tuple for proven
    independence, or None when the exact tier is infeasible.
    """
    if pctx.count > _EXACT_MAX_ITERS:
        return None
    for acc in (w, x):
        if any(not c.exact for c in acc.inner):
            return None

    w_map: Dict[int, Set[int]] = {}
    x_map: Dict[int, Set[int]] = {}
    total = 0
    for t, v in enumerate(pctx.values()):
        for acc, amap in ((w, w_map), (x, x_map)):
            pts = _enumerate_points(acc, pctx.var, v)
            if pts is None:
                return None
            total += len(pts)
            if total > _EXACT_MAX_POINTS:
                return None
            for o in pts:
                amap.setdefault(o, set()).add(t)

    for o, t_w in w_map.items():
        t_x = x_map.get(o)
        if t_x is None:
            continue
        union = t_w | t_x
        if len(union) >= 2:
            # Two distinct iterations meet at o (at least one is the write).
            it = sorted(union)
            return (it[0], it[1], o)
    return ()


# ---------------------------------------------------------------------------
# Loop-level driver
# ---------------------------------------------------------------------------


def test_loop_parallel(
    loop: F.Do,
    symtab: SymbolTable,
    outer: Sequence[LoopCtx] = (),
    env: Optional[Dict[str, int]] = None,
) -> DependenceReport:
    """Array-dependence verdict for parallelizing ``loop``."""
    env = dict(env or {})
    try:
        pctx = loop_context(loop, outer, env)
    except AccessError as exc:
        return DependenceReport(False, [str(exc)])
    accesses = collect_accesses(loop, symtab, env, pctx=pctx)

    by_array: Dict[str, List[ArrayAccess]] = {}
    for acc in accesses:
        by_array.setdefault(acc.name, []).append(acc)

    conflicts: List[str] = []
    for name, accs in sorted(by_array.items()):
        writes = [a for a in accs if a.kind == "w"]
        for wacc in writes:
            for other in accs:
                msg = _pair_conflict(wacc, other, pctx)
                if msg is not None:
                    conflicts.append(msg)
                    return DependenceReport(False, conflicts)
    return DependenceReport(True, [])
