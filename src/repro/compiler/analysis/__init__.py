"""Array access analysis: LMADs, summary sets, the Access Region Test,
reduction recognition, privatization, and the parallelism-detection driver
(the Polaris front end of the paper's Figure 1)."""

from repro.compiler.analysis.lmad import LMAD, Dim
from repro.compiler.analysis.intaffine import Affine, AffineError
from repro.compiler.analysis.summary import (
    READ_ONLY,
    READ_WRITE,
    WRITE_FIRST,
    ArraySummary,
    SummarySet,
)

__all__ = [
    "Affine",
    "AffineError",
    "ArraySummary",
    "Dim",
    "LMAD",
    "READ_ONLY",
    "READ_WRITE",
    "SummarySet",
    "WRITE_FIRST",
]
