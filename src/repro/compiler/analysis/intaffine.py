"""Affine integer expressions over symbolic names.

The LMAD machinery needs subscript expressions in the canonical form
``c0 + c1*v1 + c2*v2 + ...`` with integer coefficients.  :class:`Affine`
is that form; :func:`affine_from_expr` converts front-end expression trees
into it (returning ``None`` for non-affine shapes, which callers treat
conservatively).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.compiler.frontend import fast as F

__all__ = ["Affine", "AffineError", "affine_from_expr"]


class AffineError(ValueError):
    """Operation would leave the affine domain."""


@dataclass(frozen=True)
class Affine:
    """``const + Σ coef[v] * v`` with integer coefficients."""

    const: int = 0
    terms: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self):
        clean = {v: c for v, c in self.terms.items() if c != 0}
        object.__setattr__(self, "terms", clean)

    # -- constructors ------------------------------------------------------
    @staticmethod
    def constant(c: int) -> "Affine":
        return Affine(const=int(c))

    @staticmethod
    def var(name: str, coef: int = 1) -> "Affine":
        return Affine(const=0, terms={name: int(coef)})

    # -- algebra ----------------------------------------------------------
    def __add__(self, other: "Affine") -> "Affine":
        if isinstance(other, int):
            other = Affine.constant(other)
        terms = dict(self.terms)
        for v, c in other.terms.items():
            terms[v] = terms.get(v, 0) + c
        return Affine(self.const + other.const, terms)

    def __sub__(self, other: "Affine") -> "Affine":
        if isinstance(other, int):
            other = Affine.constant(other)
        return self + other.scale(-1)

    def scale(self, k: int) -> "Affine":
        return Affine(self.const * k, {v: c * k for v, c in self.terms.items()})

    def __mul__(self, other) -> "Affine":
        """Multiplication; defined only when one side is constant."""
        if isinstance(other, int):
            return self.scale(other)
        if isinstance(other, Affine):
            if other.is_const:
                return self.scale(other.const)
            if self.is_const:
                return other.scale(self.const)
        raise AffineError(f"non-affine product: ({self}) * ({other})")

    # -- queries --------------------------------------------------------------
    @property
    def is_const(self) -> bool:
        return not self.terms

    def coef(self, name: str) -> int:
        return self.terms.get(name, 0)

    def vars(self):
        return set(self.terms)

    def evaluate(self, env: Mapping[str, int]) -> int:
        total = self.const
        for v, c in self.terms.items():
            if v not in env:
                raise AffineError(f"unbound symbol {v} in {self}")
            total += c * env[v]
        return total

    def substitute(self, name: str, value: "Affine") -> "Affine":
        """Replace ``name`` by another affine expression."""
        c = self.coef(name)
        if c == 0:
            return self
        rest = Affine(
            self.const, {v: k for v, k in self.terms.items() if v != name}
        )
        return rest + value.scale(c)

    def drop(self, name: str) -> "Affine":
        return Affine(self.const, {v: c for v, c in self.terms.items() if v != name})

    def __str__(self):
        parts = [str(self.const)] if self.const or not self.terms else []
        for v in sorted(self.terms):
            c = self.terms[v]
            parts.append(f"{c}*{v}" if c != 1 else v)
        return " + ".join(parts) if parts else "0"


def affine_from_expr(
    expr: F.Expr, int_env: Optional[Mapping[str, int]] = None
) -> Optional[Affine]:
    """Convert an expression tree to affine form, or None if non-affine.

    ``int_env`` supplies known integer values for scalars (e.g. outer-loop
    constants); unknown names become symbolic terms.
    """
    env = int_env or {}

    def conv(e: F.Expr) -> Affine:
        if isinstance(e, F.Num):
            if not e.is_int:
                raise AffineError(f"non-integer literal {e.value}")
            return Affine.constant(int(e.value))
        if isinstance(e, F.Var):
            if e.name in env:
                return Affine.constant(int(env[e.name]))
            return Affine.var(e.name)
        if isinstance(e, F.UnOp):
            return conv(e.operand).scale(-1)
        if isinstance(e, F.BinOp):
            if e.op == "+":
                return conv(e.left) + conv(e.right)
            if e.op == "-":
                return conv(e.left) - conv(e.right)
            if e.op == "*":
                return conv(e.left) * conv(e.right)
            if e.op == "/":
                a, b = conv(e.left), conv(e.right)
                if b.is_const and b.const != 0 and a.is_const:
                    q = abs(a.const) // abs(b.const)
                    if (a.const < 0) != (b.const < 0):
                        q = -q
                    return Affine.constant(q)
                if (
                    b.is_const
                    and b.const != 0
                    and a.const % b.const == 0
                    and all(c % b.const == 0 for c in a.terms.values())
                ):
                    return Affine(
                        a.const // b.const,
                        {v: c // b.const for v, c in a.terms.items()},
                    )
                raise AffineError(f"non-affine division {e}")
            if e.op == "**":
                a, b = conv(e.left), conv(e.right)
                if a.is_const and b.is_const and b.const >= 0:
                    return Affine.constant(a.const**b.const)
                raise AffineError(f"non-affine power {e}")
        raise AffineError(f"non-affine node {e!r}")

    try:
        return conv(expr)
    except AffineError:
        return None
