"""Parallelism detection driver (the Polaris FE of Figure 1).

Walks the unit's loops outermost-first.  For each candidate:

1. recognize scalar reductions (``S = S op expr``);
2. privatize WriteFirst scalars — but only those *dead after the loop*
   (a privatized copy never flows back to the master, so a scalar read
   later in the program cannot be privatized);
3. reject if any other shared scalar is written;
4. run the Access Region Test on the array accesses;
5. on success mark the loop ``parallel`` (with its ``reductions`` and
   ``private`` annotations) and stop descending — the postpass works on
   outermost parallel loops; otherwise recurse into the body.

Loops the user annotated with ``CSRD$ PARALLEL`` are honored as-is.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.compiler.analysis.art import test_loop_parallel
from repro.compiler.analysis.privatize import find_private_scalars
from repro.compiler.analysis.reduction import find_reductions
from repro.compiler.analysis.summary import summarize_statements
from repro.compiler.frontend import fast as F

__all__ = ["detect_parallelism", "ParallelizationLog"]


class ParallelizationLog:
    """Human-readable account of what the detector decided and why."""

    def __init__(self):
        self.entries: List[str] = []

    def note(self, msg: str) -> None:
        self.entries.append(msg)

    def __str__(self):
        return "\n".join(self.entries)


def _scalar_reads(stmts: Sequence[F.Stmt]) -> Set[str]:
    """Names of scalars read anywhere in a statement list."""
    out: Set[str] = set()

    def scan(expr: F.Expr) -> None:
        for node in F.walk_exprs(expr):
            if isinstance(node, F.Var):
                out.add(node.name)

    for s in F.walk_stmts(stmts):
        if isinstance(s, F.Assign):
            scan(s.rhs)
            if isinstance(s.lhs, F.ArrayRef):
                for sub in s.lhs.subs:
                    scan(sub)
        elif isinstance(s, F.Do):
            scan(s.lo)
            scan(s.hi)
            scan(s.step)
        elif isinstance(s, F.If):
            scan(s.cond)
            for c, _blk in s.elifs:
                scan(c)
        elif isinstance(s, F.PrintStmt):
            for item in s.items:
                if not isinstance(item, F.Str):
                    scan(item)
    return out


def detect_parallelism(
    unit: F.Unit, env: Optional[Dict[str, int]] = None
) -> ParallelizationLog:
    """Annotate the unit's loops; returns the decision log."""
    log = ParallelizationLog()
    _walk(unit.body, unit, env or {}, log, live_after=set())
    return log


def _walk(
    stmts: Sequence[F.Stmt],
    unit: F.Unit,
    env,
    log,
    live_after: Set[str],
) -> None:
    for idx, stmt in enumerate(stmts):
        if isinstance(stmt, F.Do):
            later = _scalar_reads(stmts[idx + 1 :]) | live_after
            if not _try_loop(stmt, unit, env, log, later):
                # Serial loop: its body re-executes, so everything read
                # anywhere in the body is also live across inner loops.
                inner_live = later | _scalar_reads(stmt.body)
                _walk(stmt.body, unit, env, log, inner_live)
        elif isinstance(stmt, F.If):
            later = _scalar_reads(stmts[idx + 1 :]) | live_after
            _walk(stmt.then, unit, env, log, later)
            for _c, blk in stmt.elifs:
                _walk(blk, unit, env, log, later)
            _walk(stmt.orelse, unit, env, log, later)


def _try_loop(
    loop: F.Do, unit: F.Unit, env, log, live_after: Set[str]
) -> bool:
    """Attempt to mark ``loop`` parallel; True when marked."""
    if loop.parallel:
        # User directive: annotate reductions/privates, trust the directive.
        loop.reductions = find_reductions(loop)
        body_sum = summarize_statements(loop.body, unit.symtab, (), env)
        loop.private = find_private_scalars(
            loop, body_sum, exclude=[r for r, _ in loop.reductions]
        )
        log.note(f"DO {loop.var} (loop {loop.loop_id}): PARALLEL by directive")
        return True

    # Profitability: a loop with fewer than two iterations gains nothing
    # from SPMDization and would mask parallelism in its body.
    from repro.compiler.analysis.access import AccessError, loop_context

    try:
        trip = loop_context(loop, (), env).count
    except AccessError:
        trip = None
    if trip is not None and trip < 2:
        log.note(
            f"DO {loop.var} (loop {loop.loop_id}): serial "
            f"(trip count {trip}; not profitable)"
        )
        return False

    reductions = find_reductions(loop)
    red_names = [r for r, _ in reductions]
    body_sum = summarize_statements(loop.body, unit.symtab, (), env)
    private = [
        name
        for name in find_private_scalars(loop, body_sum, exclude=red_names)
        if name not in live_after
    ]

    blocked = None
    for s in body_sum.scalars.values():
        if s.written and s.name not in private and s.name not in red_names:
            blocked = f"shared scalar {s.name} is written"
            break

    if blocked is None:
        report = test_loop_parallel(loop, unit.symtab, (), env)
        if not report.independent:
            blocked = "; ".join(report.conflicts) or "dependence"

    if blocked is None:
        loop.parallel = True
        loop.reductions = reductions
        loop.private = private
        log.note(
            f"DO {loop.var} (loop {loop.loop_id}): PARALLEL"
            + (f", reductions={reductions}" if reductions else "")
            + (f", private={private}" if private else "")
        )
        return True

    log.note(f"DO {loop.var} (loop {loop.loop_id}): serial ({blocked})")
    return False
