"""The Linear Memory Access Descriptor (paper §4, refs [2,3,4]).

An LMAD describes the set of flat (column-major) array offsets a reference
touches: a *base offset* plus one dimension per participating loop, each
dimension a ``(stride, span)`` pair — stride is the distance between
consecutive accesses of that dimension's index, span the total distance
traversed.  The written form in the paper is::

    A  ^{stride_1, ..., stride_d} _{span_1, ..., span_d}  + base

All quantities here are concrete integers (parameters are folded by the
front end); dimensions are normalized to non-negative strides by folding
direction into the base.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from math import gcd
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Dim", "LMAD"]

#: Above this many points, exact set operations fall back to conservative
#: interval/GCD reasoning.
_EXACT_LIMIT = 1 << 21

#: When True, point-set operations run the original unmemoized
#: ``np.unique`` algorithm.  Only benchmarks use this — it reproduces the
#: pre-optimization baseline so speedups are measured against the real
#: thing — and tests, to assert both implementations agree.
_LEGACY_ENUMERATION = False


def set_legacy_enumeration(flag: bool) -> None:
    """Toggle the unmemoized reference enumeration (benchmarks/tests)."""
    global _LEGACY_ENUMERATION
    if flag != _LEGACY_ENUMERATION:
        _LEGACY_ENUMERATION = bool(flag)
        _enumerate_impl.cache_clear()
        _intersect_count.cache_clear()


@lru_cache(maxsize=8192)
def _enumerate_impl(lmad: "LMAD") -> np.ndarray:
    """Sorted distinct offsets of ``lmad`` (memoized, read-only array).

    LMADs are frozen/hashable and the postpass re-analyzes the same
    descriptors many times (per rank, per grain, per region), so this is
    the compiler's hottest function.  Beyond memoization, dimensions whose
    ascending strides each exceed the cumulative span of the dimensions
    below them generate points that are *already sorted and distinct* when
    built larger-stride-outermost — the `np.unique` sort (the dominant
    cost for dense descriptors) is skipped entirely.  Row-major array
    nests (stride_k = product of inner extents) always qualify.
    """
    dims = sorted((d for d in lmad.dims if d.count > 1), key=lambda d: d.stride)
    disjoint = True
    span_total = 0
    for d in dims:
        if d.stride <= span_total:
            disjoint = False
            break
        span_total += d.span
    pts = np.array([lmad.base], dtype=np.int64)
    if disjoint:
        for d in dims:
            # Larger stride outermost: blocks are disjoint and ordered.
            pts = (d.offsets()[:, None] + pts[None, :]).ravel()
    else:
        for d in dims:
            pts = (pts[:, None] + d.offsets()[None, :]).ravel()
        pts = np.unique(pts)
    pts.flags.writeable = False
    return pts


@lru_cache(maxsize=16384)
def _intersect_count(a: "LMAD", b: "LMAD") -> int:
    """Memoized |points(a) ∩ points(b)| for small exact descriptors."""
    return int(
        len(np.intersect1d(_enumerate_impl(a), _enumerate_impl(b),
                           assume_unique=True))
    )


@dataclass(frozen=True)
class Dim:
    """One access dimension: consistent stride, total span, source index."""

    stride: int
    span: int
    index: str = ""

    def __post_init__(self):
        if self.stride < 0:
            raise ValueError("Dim stride must be non-negative (normalize first)")
        if self.span < 0:
            raise ValueError("Dim span must be non-negative")
        if self.stride == 0 and self.span != 0:
            raise ValueError("zero stride with non-zero span")
        if self.stride > 0 and self.span % self.stride != 0:
            raise ValueError(
                f"span {self.span} not a multiple of stride {self.stride}"
            )

    @property
    def count(self) -> int:
        """Number of positions this dimension generates."""
        if self.stride == 0:
            return 1
        return self.span // self.stride + 1

    def offsets(self) -> np.ndarray:
        return np.arange(self.count, dtype=np.int64) * self.stride

    def __str__(self):
        tag = f"[{self.index}]" if self.index else ""
        return f"({self.stride},{self.span}){tag}"


def make_dim(stride: int, count: int, index: str = "") -> Dim:
    """Build a dim from (signed stride, iteration count); returns a
    normalized Dim and the base adjustment for negative strides."""
    if count < 1:
        raise ValueError("count must be >= 1")
    s = abs(int(stride))
    return Dim(stride=s, span=s * (count - 1), index=index)


@dataclass(frozen=True)
class LMAD:
    """Base offset + dimensions, identifying a set of flat offsets.

    ``exact`` is False for conservative over-approximations (whole-array
    fallbacks, widened triangular bounds): such descriptors are safe to
    *scatter* but must never drive a *collect* plan directly.
    """

    array: str
    base: int
    dims: Tuple[Dim, ...] = field(default_factory=tuple)
    exact: bool = True

    def __post_init__(self):
        object.__setattr__(self, "dims", tuple(self.dims))

    # -- constructors --------------------------------------------------------
    @staticmethod
    def from_counts(
        array: str,
        base: int,
        dims: Sequence[Tuple[int, int]],
        indices: Optional[Sequence[str]] = None,
        exact: bool = True,
    ) -> "LMAD":
        """Build from (signed stride, count) pairs; negative strides fold
        their traversal into the base."""
        out_dims: List[Dim] = []
        b = base
        indices = indices or [""] * len(dims)
        for (stride, count), idx in zip(dims, indices):
            if count < 1:
                raise ValueError("count must be >= 1")
            if stride < 0:
                b += stride * (count - 1)
            out_dims.append(make_dim(stride, count, idx))
        return LMAD(array=array, base=b, dims=tuple(out_dims), exact=exact)

    # -- basic geometry ---------------------------------------------------
    @property
    def min_offset(self) -> int:
        return self.base

    @property
    def max_offset(self) -> int:
        return self.base + sum(d.span for d in self.dims)

    @property
    def extent(self) -> int:
        """Size of the bounding contiguous interval."""
        return self.max_offset - self.min_offset + 1

    @property
    def nominal_count(self) -> int:
        """Product of per-dimension counts (duplicates counted once each)."""
        n = 1
        for d in self.dims:
            n *= d.count
        return n

    def sorted_dims(self) -> Tuple[Dim, ...]:
        """Dimensions by ascending stride (paper's written order)."""
        return tuple(sorted(self.dims, key=lambda d: (d.stride, d.span)))

    # -- exact point sets ------------------------------------------------------
    def enumerate(self) -> np.ndarray:
        """All touched offsets, sorted, without duplicates.

        The result is memoized per descriptor and returned as a
        **read-only** array — callers must copy before mutating.
        """
        if self.nominal_count > _EXACT_LIMIT:
            raise ValueError(
                f"LMAD too large to enumerate ({self.nominal_count} points)"
            )
        if _LEGACY_ENUMERATION:
            pts = np.array([self.base], dtype=np.int64)
            for d in self.dims:
                pts = (pts[:, None] + d.offsets()[None, :]).ravel()
            return np.unique(pts)
        return _enumerate_impl(self)

    def count_distinct(self) -> int:
        return len(self.enumerate())

    def mask(self, size: int) -> np.ndarray:
        """Boolean mask over ``[0, size)`` of touched offsets."""
        m = np.zeros(size, dtype=bool)
        pts = self.enumerate()
        if len(pts) and (pts[0] < 0 or pts[-1] >= size):
            raise ValueError(
                f"LMAD touches [{pts[0]}, {pts[-1]}] outside array of size {size}"
            )
        m[pts] = True
        return m

    # -- relations ----------------------------------------------------------
    def _small(self, other: "LMAD") -> bool:
        return (
            self.nominal_count <= _EXACT_LIMIT
            and other.nominal_count <= _EXACT_LIMIT
        )

    def overlaps(self, other: "LMAD") -> bool:
        """May the two descriptors touch a common offset?  Exact for small
        descriptors; conservative (never false-negative) otherwise."""
        if self.array != other.array:
            return False
        if self.max_offset < other.min_offset or other.max_offset < self.min_offset:
            return False
        # GCD filter: every offset of an LMAD is base + combination of
        # strides, hence ≡ base (mod g) where g = gcd of its strides.
        g = gcd(self._stride_gcd(), other._stride_gcd())
        if g > 1 and (self.base - other.base) % g != 0:
            return False
        if self._small(other):
            if _LEGACY_ENUMERATION:
                mine = self.enumerate()
                theirs = other.enumerate()
                return bool(len(np.intersect1d(mine, theirs, assume_unique=True)))
            return _intersect_count(self, other) > 0
        return True  # conservative

    def contains(self, other: "LMAD") -> bool:
        """Does this descriptor cover every offset of ``other``?  Exact for
        small descriptors; conservatively False otherwise."""
        if self.array != other.array:
            return False
        if other.min_offset < self.min_offset or other.max_offset > self.max_offset:
            return False
        if self._small(other):
            if _LEGACY_ENUMERATION:
                mine = self.enumerate()
                theirs = other.enumerate()
                inter = np.intersect1d(mine, theirs, assume_unique=True)
                return len(inter) == len(theirs)
            return _intersect_count(self, other) == other.count_distinct()
        return False  # conservative

    def _stride_gcd(self) -> int:
        g = 0
        for d in self.dims:
            if d.count > 1:
                g = gcd(g, d.stride)
        return g if g else 1

    # -- transformations ----------------------------------------------------
    def simplify(self) -> "LMAD":
        """Normalize: drop singleton dims, sort by stride, coalesce dims
        that concatenate contiguously (paper [4]'s simplification).

        Two ascending-sorted dims (s1, p1) then (s2, p2) merge into
        ``(s1, p1 + p2)`` when ``s2 == p1 + s1`` — the outer stride lands
        exactly one inner-stride past the inner span.
        """
        dims = [d for d in self.sorted_dims() if d.count > 1]
        merged: List[Dim] = []
        for d in dims:
            if merged:
                last = merged[-1]
                if d.stride == last.span + last.stride:
                    merged[-1] = Dim(
                        stride=last.stride,
                        span=last.span + d.span,
                        index=last.index or d.index,
                    )
                    continue
            merged.append(d)
        return LMAD(self.array, self.base, tuple(merged), exact=self.exact)

    def shifted(self, delta: int) -> "LMAD":
        return replace(self, base=self.base + delta)

    def with_dims(self, dims: Iterable[Dim]) -> "LMAD":
        return replace(self, dims=tuple(dims))

    def bounding(self) -> "LMAD":
        """The contiguous approximation covering min..max offset."""
        n = self.extent
        if n == 1:
            return LMAD(self.array, self.min_offset, (), exact=self.exact)
        approx = self.extent != self.nominal_count or not self.is_contiguous
        return LMAD(
            self.array,
            self.min_offset,
            (Dim(1, n - 1),),
            exact=self.exact and not approx,
        )

    @property
    def is_contiguous(self) -> bool:
        """True when the touched set is exactly one dense interval."""
        s = self.simplify()
        if not s.dims:
            return True
        return len(s.dims) == 1 and s.dims[0].stride == 1

    # -- presentation -----------------------------------------------------------
    def __str__(self):
        dims = self.sorted_dims()
        strides = ",".join(str(d.stride) for d in dims)
        spans = ",".join(str(d.span) for d in dims)
        return f"{self.array}^{{{strides}}}_{{{spans}}}+{self.base}"
