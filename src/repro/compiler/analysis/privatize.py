"""Scalar privatization (paper §3, ref [9]).

A scalar that is written before any read within every iteration of a loop
carries no value across iterations; giving each processor a private copy
removes the (anti/output) dependences it would otherwise cause.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.compiler.analysis.summary import SummarySet
from repro.compiler.frontend import fast as F
from repro.compiler.frontend.symtab import SymbolTable

__all__ = ["find_private_scalars"]


def find_private_scalars(
    loop: F.Do,
    body_summary: SummarySet,
    exclude: Sequence[str] = (),
) -> List[str]:
    """Scalars privatizable for ``loop``: written, never exposed-read.

    ``body_summary`` must be the summary of the loop *body* (one
    iteration); ``exclude`` removes reduction variables, which are handled
    separately.
    """
    excluded: Set[str] = set(exclude)
    out = []
    for s in body_summary.scalars.values():
        if s.name in excluded:
            continue
        if s.written and not s.exposed_read:
            out.append(s.name)
    # Inner loop indices are private by construction.
    for stmt in F.walk_stmts(loop.body):
        if isinstance(stmt, F.Do) and stmt.var not in excluded:
            if stmt.var not in out:
                out.append(stmt.var)
    return sorted(out)
