"""Reduction recognition (paper §3 lists it among the FE techniques).

A scalar S is a reduction over a loop when every reference to S inside the
loop body occurs in statements of the shape ``S = S op expr`` (op in +, -,
*) or ``S = MAX(S, expr)`` / ``S = MIN(S, expr)``, with a consistent
operator and with ``expr`` not reading S.  Such loops parallelize with
per-rank partial results combined under a lock (§3: "Locks are useful ...
reduction operations").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.compiler.frontend import fast as F

__all__ = ["find_reductions"]

#: op name -> neutral element
REDUCTION_IDENTITY = {"+": 0.0, "*": 1.0, "MAX": float("-inf"), "MIN": float("inf")}


def _match_reduction_stmt(stmt: F.Stmt) -> Optional[Tuple[str, str, F.Expr]]:
    """Match ``S = S op expr``; return (S, op, expr) or None."""
    if not (isinstance(stmt, F.Assign) and isinstance(stmt.lhs, F.Var)):
        return None
    s = stmt.lhs.name
    rhs = stmt.rhs
    if isinstance(rhs, F.BinOp) and rhs.op in ("+", "-", "*"):
        op = "+" if rhs.op in ("+", "-") else "*"
        if isinstance(rhs.left, F.Var) and rhs.left.name == s:
            expr = F.UnOp("-", rhs.right) if rhs.op == "-" else rhs.right
            return s, op, expr
        if rhs.op == "+" and isinstance(rhs.right, F.Var) and rhs.right.name == s:
            return s, "+", rhs.left
        if rhs.op == "*" and isinstance(rhs.right, F.Var) and rhs.right.name == s:
            return s, "*", rhs.left
    if isinstance(rhs, F.Intrinsic) and rhs.name in ("MAX", "MIN") and len(rhs.args) == 2:
        a, b = rhs.args
        if isinstance(a, F.Var) and a.name == s:
            return s, rhs.name, b
        if isinstance(b, F.Var) and b.name == s:
            return s, rhs.name, a
    return None


def _reads_var(expr: F.Expr, name: str) -> bool:
    return any(
        isinstance(e, F.Var) and e.name == name for e in F.walk_exprs(expr)
    )


def find_reductions(loop: F.Do) -> List[Tuple[str, str]]:
    """Reduction variables of a loop: list of (scalar name, op name)."""
    candidates: Dict[str, str] = {}
    disqualified = set()

    for stmt in F.walk_stmts(loop.body):
        if isinstance(stmt, F.Do) and stmt.var in candidates:
            disqualified.add(stmt.var)
        m = _match_reduction_stmt(stmt)
        if m is not None:
            s, op, expr = m
            if _reads_var(expr, s):
                disqualified.add(s)
                continue
            if s in candidates and candidates[s] != op:
                disqualified.add(s)
            else:
                candidates[s] = op

    # Any *other* appearance of a candidate disqualifies it.
    for stmt in F.walk_stmts(loop.body):
        m = _match_reduction_stmt(stmt)
        for name in list(candidates):
            if name in disqualified:
                continue
            if m is not None and m[0] == name:
                continue  # this is the reduction statement itself
            if isinstance(stmt, F.Assign):
                if isinstance(stmt.lhs, F.Var) and stmt.lhs.name == name:
                    disqualified.add(name)
                elif _reads_var(stmt.rhs, name) or (
                    isinstance(stmt.lhs, F.ArrayRef)
                    and any(_reads_var(sub, name) for sub in stmt.lhs.subs)
                ):
                    disqualified.add(name)
            elif isinstance(stmt, F.If) and _reads_var(stmt.cond, name):
                disqualified.add(name)
            elif isinstance(stmt, F.Do) and (
                _reads_var(stmt.lo, name) or _reads_var(stmt.hi, name)
            ):
                disqualified.add(name)
            elif isinstance(stmt, F.PrintStmt) and any(
                not isinstance(i, F.Str) and _reads_var(i, name)
                for i in stmt.items
            ):
                disqualified.add(name)

    return [(s, op) for s, op in candidates.items() if s not in disqualified]
