"""Lowering: parameter folding, DO normalization, inlining, induction
substitution, and loop-id assignment.

After :func:`lower_program`, every unit satisfies the invariants the
analysis phases rely on:

* PARAMETER names no longer appear in expressions (folded to literals);
* every DO step is a non-zero integer constant;
* CALL statements to units defined in the same program are inlined
  (Polaris's interprocedural story, restricted to whole-array / scalar
  arguments — the form the workloads use);
* simple additive induction variables are rewritten as affine functions
  of their loop index (paper §3 lists induction variable substitution as
  a front-end technique);
* every Do node carries a unique ``loop_id`` in program order.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from repro.compiler.frontend import fast as F
from repro.compiler.frontend.symtab import Symbol, SymbolTable

__all__ = ["LowerError", "lower_program", "map_expr", "fold_expr"]


class LowerError(ValueError):
    """Lowering failed (unfoldable step, uninlinable call, ...)."""


# ---------------------------------------------------------------------------
# Expression utilities
# ---------------------------------------------------------------------------


def map_expr(expr: F.Expr, fn: Callable[[F.Expr], Optional[F.Expr]]) -> F.Expr:
    """Bottom-up expression rewrite; ``fn`` may return a replacement."""
    if isinstance(expr, (F.Num, F.Str)):
        out = expr
    elif isinstance(expr, F.Var):
        out = expr
    elif isinstance(expr, F.ArrayRef):
        out = F.ArrayRef(expr.name, [map_expr(s, fn) for s in expr.subs])
    elif isinstance(expr, F.BinOp):
        out = F.BinOp(expr.op, map_expr(expr.left, fn), map_expr(expr.right, fn))
    elif isinstance(expr, F.UnOp):
        out = F.UnOp(expr.op, map_expr(expr.operand, fn))
    elif isinstance(expr, F.Intrinsic):
        out = F.Intrinsic(expr.name, [map_expr(a, fn) for a in expr.args])
    elif isinstance(expr, F.RelOp):
        out = F.RelOp(expr.op, map_expr(expr.left, fn), map_expr(expr.right, fn))
    elif isinstance(expr, F.LogOp):
        out = F.LogOp(
            expr.op,
            map_expr(expr.left, fn) if expr.left is not None else None,
            map_expr(expr.right, fn) if expr.right is not None else None,
        )
    else:  # pragma: no cover
        raise LowerError(f"unknown expression node {expr!r}")
    repl = fn(out)
    return out if repl is None else repl


def fold_expr(expr: F.Expr) -> F.Expr:
    """Constant-fold arithmetic on literals (post parameter substitution)."""

    def fold(e: F.Expr) -> Optional[F.Expr]:
        if isinstance(e, F.UnOp) and isinstance(e.operand, F.Num):
            return F.Num(-e.operand.value, e.operand.is_int)
        if (
            isinstance(e, F.BinOp)
            and isinstance(e.left, F.Num)
            and isinstance(e.right, F.Num)
        ):
            a, b = e.left.value, e.right.value
            is_int = e.left.is_int and e.right.is_int
            if e.op == "+":
                return F.Num(a + b, is_int)
            if e.op == "-":
                return F.Num(a - b, is_int)
            if e.op == "*":
                return F.Num(a * b, is_int)
            if e.op == "/":
                if is_int:
                    q = abs(a) // abs(b)
                    if (a < 0) != (b < 0):
                        q = -q  # Fortran integer division truncates to zero
                    return F.Num(q, True)
                return F.Num(a / b, False)
            if e.op == "**" and (is_int and b >= 0 or not is_int):
                return F.Num(a**b, is_int)
        return None

    return map_expr(expr, fold)


def expr_as_int(expr: F.Expr) -> Optional[int]:
    """The integer value of a folded expression, or None."""
    e = fold_expr(expr)
    if isinstance(e, F.Num) and e.is_int:
        return int(e.value)
    return None


def map_stmt_exprs(stmts: List[F.Stmt], fn) -> None:
    """Rewrite every expression within a statement list, in place."""
    for s in stmts:
        if isinstance(s, F.Assign):
            s.lhs = map_expr(s.lhs, fn)
            s.rhs = map_expr(s.rhs, fn)
        elif isinstance(s, F.Do):
            s.lo = map_expr(s.lo, fn)
            s.hi = map_expr(s.hi, fn)
            s.step = map_expr(s.step, fn)
            map_stmt_exprs(s.body, fn)
        elif isinstance(s, F.If):
            s.cond = map_expr(s.cond, fn)
            map_stmt_exprs(s.then, fn)
            new_elifs = []
            for c, blk in s.elifs:
                map_stmt_exprs(blk, fn)
                new_elifs.append((map_expr(c, fn), blk))
            s.elifs = new_elifs
            map_stmt_exprs(s.orelse, fn)
        elif isinstance(s, F.Call):
            s.args = [map_expr(a, fn) for a in s.args]
        elif isinstance(s, F.PrintStmt):
            s.items = [map_expr(i, fn) for i in s.items]


# ---------------------------------------------------------------------------
# Passes
# ---------------------------------------------------------------------------


def substitute_parameters(unit: F.Unit) -> None:
    """Replace PARAMETER names with literals and fold constants."""
    symtab: SymbolTable = unit.symtab
    params = symtab.params()

    def sub(e: F.Expr) -> Optional[F.Expr]:
        if isinstance(e, F.Var) and e.name in params:
            v = params[e.name]
            return F.Num(v, isinstance(v, int))
        return None

    map_stmt_exprs(unit.body, sub)
    map_stmt_exprs(unit.body, lambda e: fold_expr(e) if not isinstance(e, F.Num) else None)


def normalize_loops(unit: F.Unit) -> None:
    """Fold DO bounds; require constant non-zero integer steps."""

    def visit(stmts: List[F.Stmt]) -> None:
        for s in stmts:
            if isinstance(s, F.Do):
                s.lo = fold_expr(s.lo)
                s.hi = fold_expr(s.hi)
                s.step = fold_expr(s.step)
                step = expr_as_int(s.step)
                if step is None or step == 0:
                    raise LowerError(
                        f"DO {s.var}: step must be a non-zero integer constant,"
                        f" got {s.step}"
                    )
                visit(s.body)
            elif isinstance(s, F.If):
                visit(s.then)
                for _c, blk in s.elifs:
                    visit(blk)
                visit(s.orelse)

    visit(unit.body)


def inline_calls(program: F.Program) -> None:
    """Inline CALLs to same-program subroutines into the main unit.

    Restriction (checked): actual arguments must be whole-array names,
    scalar variables, or constants.  Callee locals are renamed with a
    unique suffix and merged into the caller's symbol table.
    """
    main = program.main
    counter = itertools.count(1)

    def inline_in(stmts: List[F.Stmt]) -> List[F.Stmt]:
        out: List[F.Stmt] = []
        for s in stmts:
            if isinstance(s, F.Call):
                out.extend(expand_call(s))
            else:
                if isinstance(s, F.Do):
                    s.body = inline_in(s.body)
                elif isinstance(s, F.If):
                    s.then = inline_in(s.then)
                    s.elifs = [(c, inline_in(b)) for c, b in s.elifs]
                    s.orelse = inline_in(s.orelse)
                out.append(s)
        return out

    def expand_call(call: F.Call) -> List[F.Stmt]:
        try:
            callee = program.unit(call.name)
        except KeyError:
            raise LowerError(f"CALL {call.name}: no such subroutine in program")
        if len(call.args) != len(callee.args):
            raise LowerError(
                f"CALL {call.name}: {len(call.args)} args, expected "
                f"{len(callee.args)}"
            )
        suffix = f"_{call.name}{next(counter)}"
        callee_tab: SymbolTable = callee.symtab
        rename: Dict[str, F.Expr] = {}
        # Bind formals to actuals.
        for formal, actual in zip(callee.args, call.args):
            fsym = callee_tab.lookup(formal)
            if isinstance(actual, F.Var):
                asym = main.symtab.lookup(actual.name)
                if fsym is not None and fsym.is_array:
                    if asym is None or not asym.is_array:
                        raise LowerError(
                            f"CALL {call.name}: {formal} expects an array"
                        )
                rename[formal] = F.Var(actual.name)
            elif isinstance(actual, F.Num):
                rename[formal] = actual
            else:
                raise LowerError(
                    f"CALL {call.name}: argument {actual} is outside the "
                    "inlinable subset (whole arrays, scalars, constants)"
                )
        # Rename locals and merge symbols.
        prologue: List[F.Stmt] = []
        for sym in callee_tab:
            if sym.name in callee.args:
                continue
            if sym.is_param:
                rename[sym.name] = F.Num(
                    sym.param_value, isinstance(sym.param_value, int)
                )
                continue
            new_name = sym.name + suffix
            rename[sym.name] = F.Var(new_name)
            main.symtab.declare(
                Symbol(new_name, ftype=sym.ftype, dims=list(sym.dims))
            )

        body = _clone_stmts(callee.body)

        def sub(e: F.Expr) -> Optional[F.Expr]:
            if isinstance(e, F.Var) and e.name in rename:
                return _clone_expr(rename[e.name])
            if isinstance(e, F.ArrayRef) and e.name in rename:
                target = rename[e.name]
                if not isinstance(target, F.Var):
                    raise LowerError(
                        f"array {e.name} bound to non-name {target}"
                    )
                return F.ArrayRef(target.name, e.subs)
            return None

        map_stmt_exprs(body, sub)
        # Rename loop variables too.
        def fix_do_vars(stmts):
            for s in stmts:
                if isinstance(s, F.Do):
                    if s.var in rename:
                        tgt = rename[s.var]
                        if isinstance(tgt, F.Var):
                            s.var = tgt.name
                    fix_do_vars(s.body)
                elif isinstance(s, F.If):
                    fix_do_vars(s.then)
                    for _c, b in s.elifs:
                        fix_do_vars(b)
                    fix_do_vars(s.orelse)

        fix_do_vars(body)
        # Nested calls inside the inlined body.
        return prologue + inline_in(body)

    main.body = inline_in(main.body)
    program.units = [main]


def substitute_inductions(unit: F.Unit) -> int:
    """Rewrite simple additive induction variables (returns count).

    Handles the pattern of a single top-level ``K = K + c`` (or ``K - c``)
    in a loop body, with c an integer constant and K an integer scalar not
    otherwise assigned in the loop.  Uses before the increment read
    ``K0 + trip*c``; uses after it read ``K0 + (trip+1)*c`` where ``trip =
    (i - lo) / step``.  After the loop, K is advanced by ``niter*c``.
    """
    count = 0

    def visit(stmts: List[F.Stmt]) -> None:
        nonlocal count
        for idx, s in enumerate(stmts):
            if isinstance(s, F.Do):
                visit(s.body)
                n = _substitute_one_loop(s, unit.symtab)
                count += n
                if n:
                    # Post-loop update statements appended by the rewrite
                    # are stored on the loop; splice them after it.
                    post = getattr(s, "_post_induction", [])
                    for j, p in enumerate(post):
                        stmts.insert(idx + 1 + j, p)
                    s._post_induction = []
            elif isinstance(s, F.If):
                visit(s.then)
                for _c, blk in s.elifs:
                    visit(blk)
                visit(s.orelse)

    visit(unit.body)
    return count


def _substitute_one_loop(loop: F.Do, symtab: SymbolTable) -> int:
    body = loop.body
    # Find candidate increments: top-level K = K + c.
    candidates = []
    for i, s in enumerate(body):
        if not (isinstance(s, F.Assign) and isinstance(s.lhs, F.Var)):
            continue
        k = s.lhs.name
        rhs = fold_expr(s.rhs)
        inc = _match_increment(k, rhs)
        if inc is not None:
            candidates.append((i, k, inc))
    done = 0
    for i, k, inc in candidates:
        sym = symtab.lookup(k)
        if sym is None or sym.ftype != "INTEGER" or sym.is_array:
            continue
        # K must not be assigned anywhere else in the loop (incl. nested).
        other_writes = 0
        for s in F.walk_stmts(body):
            if isinstance(s, F.Assign) and isinstance(s.lhs, F.Var) and s.lhs.name == k:
                other_writes += 1
            if isinstance(s, F.Do) and s.var == k:
                other_writes += 2
        if other_writes != 1:
            continue
        step = expr_as_int(loop.step)
        trips = F.BinOp(
            "/", F.BinOp("-", F.Var(loop.var), _clone_expr(loop.lo)), F.Num(step)
        )
        before = fold_expr(
            F.BinOp("+", F.Var(k), F.BinOp("*", trips, F.Num(inc)))
        )
        after = fold_expr(
            F.BinOp(
                "+",
                F.Var(k),
                F.BinOp(
                    "*", F.BinOp("+", trips, F.Num(1)), F.Num(inc)
                ),
            )
        )

        def make_sub(repl):
            def sub(e):
                if isinstance(e, F.Var) and e.name == k:
                    return _clone_expr(repl)
                return None

            return sub

        for j, s in enumerate(body):
            if j == i:
                continue
            repl = before if j < i else after
            map_stmt_exprs([s], make_sub(repl))
        del body[i]
        # Post-loop value: K += niter * inc (niter in terms of bounds).
        niter = F.BinOp(
            "+",
            F.BinOp(
                "/",
                F.BinOp("-", _clone_expr(loop.hi), _clone_expr(loop.lo)),
                F.Num(step),
            ),
            F.Num(1),
        )
        post = F.Assign(
            F.Var(k),
            fold_expr(F.BinOp("+", F.Var(k), F.BinOp("*", niter, F.Num(inc)))),
        )
        loop._post_induction = getattr(loop, "_post_induction", []) + [post]
        done += 1
        break  # one substitution per loop pass (re-run if needed)
    return done


def _match_increment(k: str, rhs: F.Expr) -> Optional[int]:
    """Match ``K + c`` / ``c + K`` / ``K - c``; return signed c."""
    if isinstance(rhs, F.BinOp) and rhs.op in ("+", "-"):
        left, right = rhs.left, rhs.right
        if isinstance(left, F.Var) and left.name == k and isinstance(right, F.Num):
            if right.is_int:
                c = int(right.value)
                return c if rhs.op == "+" else -c
        if (
            rhs.op == "+"
            and isinstance(right, F.Var)
            and right.name == k
            and isinstance(left, F.Num)
            and left.is_int
        ):
            return int(left.value)
    return None


def assign_loop_ids(unit: F.Unit) -> None:
    next_id = itertools.count()
    for s in F.walk_stmts(unit.body):
        if isinstance(s, F.Do):
            s.loop_id = next(next_id)


# ---------------------------------------------------------------------------
# Cloning
# ---------------------------------------------------------------------------


def _clone_expr(e: F.Expr) -> F.Expr:
    return map_expr(e, lambda _e: None)


def _clone_stmts(stmts: List[F.Stmt]) -> List[F.Stmt]:
    out = []
    for s in stmts:
        if isinstance(s, F.Assign):
            out.append(F.Assign(_clone_expr(s.lhs), _clone_expr(s.rhs)))
        elif isinstance(s, F.Do):
            out.append(
                F.Do(
                    var=s.var,
                    lo=_clone_expr(s.lo),
                    hi=_clone_expr(s.hi),
                    step=_clone_expr(s.step),
                    body=_clone_stmts(s.body),
                    label=s.label,
                    parallel=s.parallel,
                )
            )
        elif isinstance(s, F.If):
            out.append(
                F.If(
                    cond=_clone_expr(s.cond),
                    then=_clone_stmts(s.then),
                    elifs=[(_clone_expr(c), _clone_stmts(b)) for c, b in s.elifs],
                    orelse=_clone_stmts(s.orelse),
                )
            )
        elif isinstance(s, F.Call):
            out.append(F.Call(s.name, [_clone_expr(a) for a in s.args]))
        elif isinstance(s, F.PrintStmt):
            out.append(F.PrintStmt([_clone_expr(i) for i in s.items]))
        else:  # pragma: no cover
            raise LowerError(f"cannot clone {s!r}")
    return out


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def lower_program(program: F.Program) -> F.Program:
    """Run all lowering passes; returns the (mutated) program."""
    for unit in program.units:
        substitute_parameters(unit)
    inline_calls(program)
    main = program.main
    substitute_parameters(main)  # fold constants introduced by inlining
    normalize_loops(main)
    # Iterate induction substitution to a fixed point (nested inductions).
    for _ in range(8):
        if substitute_inductions(main) == 0:
            break
    assign_loop_ids(main)
    return program
