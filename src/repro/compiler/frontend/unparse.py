"""Unparser: render an AST/IR back to Fortran 77 source.

Used for debugging lowered programs and for the parse/unparse round-trip
property tests (the unparsed text re-parses to a structurally identical
tree).  Output is fixed-form-friendly: six-space statement indent,
comment-safe, PARAMETER-free (lowering folds parameters away).
"""

from __future__ import annotations

from typing import List

from repro.compiler.frontend import fast as F
from repro.compiler.frontend.symtab import SymbolTable

__all__ = ["unparse_unit", "unparse_expr", "unparse_stmts"]

_IND = "      "


def unparse_expr(e: F.Expr) -> str:
    if isinstance(e, F.Num):
        if e.is_int:
            return str(int(e.value))
        v = repr(float(e.value))
        return v if ("." in v or "e" in v or "E" in v) else v + ".0"
    if isinstance(e, F.Str):
        return f"'{e.value}'"
    if isinstance(e, F.Var):
        return e.name
    if isinstance(e, F.ArrayRef):
        return f"{e.name}({', '.join(unparse_expr(s) for s in e.subs)})"
    if isinstance(e, F.BinOp):
        return f"({unparse_expr(e.left)} {e.op} {unparse_expr(e.right)})"
    if isinstance(e, F.UnOp):
        return f"(-{unparse_expr(e.operand)})"
    if isinstance(e, F.Intrinsic):
        return f"{e.name}({', '.join(unparse_expr(a) for a in e.args)})"
    if isinstance(e, F.RelOp):
        dotted = {
            "<": ".LT.", "<=": ".LE.", ">": ".GT.", ">=": ".GE.",
            "==": ".EQ.", "/=": ".NE.",
        }[e.op]
        return f"({unparse_expr(e.left)} {dotted} {unparse_expr(e.right)})"
    if isinstance(e, F.LogOp):
        if e.op == ".NOT.":
            return f"(.NOT. {unparse_expr(e.right)})"
        return f"({unparse_expr(e.left)} {e.op} {unparse_expr(e.right)})"
    raise TypeError(f"cannot unparse {e!r}")


def unparse_stmts(stmts: List[F.Stmt], depth: int = 0) -> List[str]:
    pad = _IND + "  " * depth
    out: List[str] = []
    for s in stmts:
        if isinstance(s, F.Assign):
            out.append(f"{pad}{unparse_expr(s.lhs)} = {unparse_expr(s.rhs)}")
        elif isinstance(s, F.Do):
            step = ""
            if not (isinstance(s.step, F.Num) and s.step.value == 1):
                step = f", {unparse_expr(s.step)}"
            out.append(
                f"{pad}DO {s.var} = {unparse_expr(s.lo)}, "
                f"{unparse_expr(s.hi)}{step}"
            )
            out.extend(unparse_stmts(s.body, depth + 1))
            out.append(f"{pad}ENDDO")
        elif isinstance(s, F.If):
            out.append(f"{pad}IF {unparse_expr(s.cond)} THEN")
            out.extend(unparse_stmts(s.then, depth + 1))
            for c, blk in s.elifs:
                out.append(f"{pad}ELSE IF {unparse_expr(c)} THEN")
                out.extend(unparse_stmts(blk, depth + 1))
            if s.orelse:
                out.append(f"{pad}ELSE")
                out.extend(unparse_stmts(s.orelse, depth + 1))
            out.append(f"{pad}ENDIF")
        elif isinstance(s, F.PrintStmt):
            items = ", ".join(unparse_expr(i) for i in s.items)
            out.append(f"{pad}PRINT *{', ' + items if items else ''}")
        elif isinstance(s, F.Call):
            args = ", ".join(unparse_expr(a) for a in s.args)
            out.append(f"{pad}CALL {s.name}({args})")
        else:
            raise TypeError(f"cannot unparse {s!r}")
    return out


def _declarations(symtab: SymbolTable) -> List[str]:
    ints: List[str] = []
    reals: List[str] = []
    for sym in sorted(symtab, key=lambda s: s.name):
        if sym.is_param:
            continue
        if sym.is_array:
            dims = ", ".join(
                str(hi) if lo == 1 else f"{lo}:{hi}" for lo, hi in sym.dims
            )
            entity = f"{sym.name}({dims})"
        else:
            entity = sym.name
        (ints if sym.ftype == "INTEGER" else reals).append(entity)
    out = []
    if ints:
        out.append(f"{_IND}INTEGER {', '.join(ints)}")
    if reals:
        out.append(f"{_IND}REAL*8 {', '.join(reals)}")
    return out


def unparse_unit(unit: F.Unit) -> str:
    """Render a lowered unit back to compilable Fortran source."""
    head = (
        f"{_IND}PROGRAM {unit.name}"
        if unit.kind == "program"
        else f"{_IND}SUBROUTINE {unit.name}({', '.join(unit.args)})"
    )
    lines = [head]
    lines.extend(_declarations(unit.symtab))
    lines.extend(unparse_stmts(unit.body))
    lines.append(f"{_IND}END")
    return "\n".join(lines) + "\n"
