"""AST / IR node definitions for the Fortran 77 subset.

The same node classes serve as the parser's AST and (after
:mod:`repro.compiler.frontend.lower` resolves parameters, normalizes DO
loops, and substitutes induction variables) as the IR that the analysis
and postpass phases operate on.  The analyses annotate :class:`Do` nodes
in place (``parallel``, ``reductions``, ``private``), following Polaris's
directive-annotation style.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

__all__ = [
    "Num",
    "Str",
    "Var",
    "ArrayRef",
    "BinOp",
    "UnOp",
    "Intrinsic",
    "RelOp",
    "LogOp",
    "Expr",
    "Assign",
    "Do",
    "If",
    "Call",
    "PrintStmt",
    "Stmt",
    "Unit",
    "Program",
    "walk_exprs",
    "walk_stmts",
]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Num:
    """Numeric literal; ``is_int`` distinguishes 2 from 2.0/2D0."""

    value: Union[int, float]
    is_int: bool = True

    def __str__(self):
        return str(self.value)


@dataclass
class Str:
    """String literal (only meaningful inside PRINT)."""

    value: str

    def __str__(self):
        return f"'{self.value}'"


@dataclass
class Var:
    """Scalar variable reference (or whole-array name in a CALL arg)."""

    name: str

    def __str__(self):
        return self.name


@dataclass
class ArrayRef:
    """Subscripted array reference ``A(e1, e2, ...)``."""

    name: str
    subs: List["Expr"]

    def __str__(self):
        return f"{self.name}({', '.join(map(str, self.subs))})"


@dataclass
class BinOp:
    """Arithmetic: ``+ - * / **``."""

    op: str
    left: "Expr"
    right: "Expr"

    def __str__(self):
        return f"({self.left} {self.op} {self.right})"


@dataclass
class UnOp:
    """Unary minus/plus."""

    op: str
    operand: "Expr"

    def __str__(self):
        return f"({self.op}{self.operand})"


@dataclass
class Intrinsic:
    """Intrinsic function call: SQRT, SIN, COS, MOD, MAX, MIN, ..."""

    name: str
    args: List["Expr"]

    def __str__(self):
        return f"{self.name}({', '.join(map(str, self.args))})"


@dataclass
class RelOp:
    """Relational: .LT. .LE. .GT. .GE. .EQ. .NE. (stored as < <= > >= == /=)."""

    op: str
    left: "Expr"
    right: "Expr"

    def __str__(self):
        return f"({self.left} {self.op} {self.right})"


@dataclass
class LogOp:
    """Logical: .AND. .OR. .NOT. (``operand`` unused for binary forms)."""

    op: str
    left: Optional["Expr"] = None
    right: Optional["Expr"] = None

    def __str__(self):
        if self.op == ".NOT.":
            return f"(.NOT. {self.right})"
        return f"({self.left} {self.op} {self.right})"


Expr = Union[Num, Str, Var, ArrayRef, BinOp, UnOp, Intrinsic, RelOp, LogOp]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Assign:
    """``lhs = rhs`` where lhs is a Var or ArrayRef."""

    lhs: Union[Var, ArrayRef]
    rhs: Expr


@dataclass
class Do:
    """A DO loop (ENDDO or labelled-CONTINUE form, normalized by lower).

    Analysis annotations:
    ``parallel`` — marked by parallelism detection;
    ``reductions`` — scalar reduction variables with their operator names;
    ``private`` — privatized scalars (WriteFirst within an iteration).
    """

    var: str
    lo: Expr
    hi: Expr
    step: Expr
    body: List["Stmt"]
    label: Optional[str] = None
    # -- analysis annotations ------------------------------------------
    parallel: bool = False
    reductions: List[Tuple[str, str]] = field(default_factory=list)
    private: List[str] = field(default_factory=list)
    #: Stable id assigned by lower(); used by the AVPG and reports.
    loop_id: int = -1


@dataclass
class If:
    """IF/ELSE IF/ELSE/ENDIF (also represents one-line logical IF)."""

    cond: Expr
    then: List["Stmt"]
    elifs: List[Tuple[Expr, List["Stmt"]]] = field(default_factory=list)
    orelse: List["Stmt"] = field(default_factory=list)


@dataclass
class Call:
    """CALL subname(args) — inlined away by the front end."""

    name: str
    args: List[Expr]


@dataclass
class PrintStmt:
    """PRINT *, items — executed on the master, for example programs."""

    items: List[Expr]


Stmt = Union[Assign, Do, If, Call, PrintStmt]


# ---------------------------------------------------------------------------
# Program structure
# ---------------------------------------------------------------------------


@dataclass
class Unit:
    """One program unit: PROGRAM or SUBROUTINE."""

    kind: str  # "program" | "subroutine"
    name: str
    args: List[str]
    body: List[Stmt]
    #: Attached by the parser; a frontend.symtab.SymbolTable.
    symtab: object = None


@dataclass
class Program:
    units: List[Unit]

    @property
    def main(self) -> Unit:
        for u in self.units:
            if u.kind == "program":
                return u
        raise ValueError("no PROGRAM unit")

    def unit(self, name: str) -> Unit:
        for u in self.units:
            if u.name == name.upper():
                return u
        raise KeyError(f"no unit named {name}")


# ---------------------------------------------------------------------------
# Tree walking helpers
# ---------------------------------------------------------------------------


def walk_exprs(node):
    """Yield every expression node within an expression tree."""
    yield node
    if isinstance(node, (BinOp, RelOp)):
        yield from walk_exprs(node.left)
        yield from walk_exprs(node.right)
    elif isinstance(node, LogOp):
        if node.left is not None:
            yield from walk_exprs(node.left)
        if node.right is not None:
            yield from walk_exprs(node.right)
    elif isinstance(node, UnOp):
        yield from walk_exprs(node.operand)
    elif isinstance(node, (Intrinsic, ArrayRef)):
        for a in (node.args if isinstance(node, Intrinsic) else node.subs):
            yield from walk_exprs(a)


def walk_stmts(stmts):
    """Yield every statement in a body, depth-first, in execution order."""
    for s in stmts:
        yield s
        if isinstance(s, Do):
            yield from walk_stmts(s.body)
        elif isinstance(s, If):
            yield from walk_stmts(s.then)
            for _c, blk in s.elifs:
                yield from walk_stmts(blk)
            yield from walk_stmts(s.orelse)
