"""Fortran 77 subset front end."""

from repro.compiler.frontend.lexer import LexError, tokenize
from repro.compiler.frontend.parser import ParseError, parse
from repro.compiler.frontend.lower import LowerError, lower_program

__all__ = [
    "LexError",
    "LowerError",
    "ParseError",
    "lower_program",
    "parse",
    "tokenize",
]
