"""Symbol tables: variables, array shapes, parameters (paper §5.1 feeds
from this — MPI environment generation registers these symbols)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Symbol", "SymbolTable", "SymtabError"]


class SymtabError(ValueError):
    """Undeclared/odd symbol usage."""


@dataclass
class Symbol:
    """One declared name.

    ``dims`` holds per-dimension (lower, upper) bounds *after* parameter
    resolution (both inclusive, Fortran default lower bound 1); empty for
    scalars.  ``param_value`` is set for PARAMETER constants.
    """

    name: str
    ftype: str = "REAL*8"  # REAL*8 | REAL*4 | INTEGER
    dims: List[Tuple[int, int]] = field(default_factory=list)
    is_param: bool = False
    param_value: Optional[float] = None
    is_arg: bool = False

    @property
    def is_array(self) -> bool:
        return bool(self.dims)

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def extents(self) -> List[int]:
        return [hi - lo + 1 for lo, hi in self.dims]

    @property
    def size(self) -> int:
        n = 1
        for e in self.extents:
            n *= e
        return n

    @property
    def itemsize(self) -> int:
        return 4 if self.ftype in ("REAL*4", "INTEGER") else 8

    def multipliers(self) -> List[int]:
        """Column-major linearization multipliers per dimension.

        Flat offset of ``A(s1, .., sk)`` is
        ``sum((s_j - lower_j) * mult_j)`` with ``mult_1 = 1`` and
        ``mult_j = mult_{j-1} * extent_{j-1}`` — Fortran layout, the layout
        every LMAD in the paper is expressed against.
        """
        mults = []
        m = 1
        for e in self.extents:
            mults.append(m)
            m *= e
        return mults

    def flatten(self, subs: List[int]) -> int:
        """Flat column-major offset of a concrete subscript tuple."""
        if len(subs) != self.rank:
            raise SymtabError(
                f"{self.name}: {len(subs)} subscripts for rank {self.rank}"
            )
        off = 0
        for s, (lo, _hi), m in zip(subs, self.dims, self.multipliers()):
            off += (s - lo) * m
        return off

    def __repr__(self):
        if self.is_param:
            return f"<Param {self.name}={self.param_value}>"
        if self.is_array:
            shape = ",".join(f"{lo}:{hi}" for lo, hi in self.dims)
            return f"<Array {self.name}({shape}) {self.ftype}>"
        return f"<Scalar {self.name} {self.ftype}>"


class SymbolTable:
    """Per-unit symbol table with implicit-typing fallback."""

    def __init__(self):
        self._syms: Dict[str, Symbol] = {}
        self.implicit_none = False

    def declare(self, sym: Symbol) -> Symbol:
        existing = self._syms.get(sym.name)
        if existing is not None:
            # Merge: a DIMENSION after a type decl (or vice versa).
            if sym.dims and not existing.dims:
                existing.dims = sym.dims
            if sym.ftype != "REAL*8" or not existing.ftype:
                existing.ftype = sym.ftype
            return existing
        self._syms[sym.name] = sym
        return sym

    def lookup(self, name: str) -> Optional[Symbol]:
        return self._syms.get(name.upper())

    def require(self, name: str) -> Symbol:
        """Look up, applying Fortran implicit typing for new scalars."""
        name = name.upper()
        sym = self._syms.get(name)
        if sym is None:
            if self.implicit_none:
                raise SymtabError(f"undeclared symbol {name} under IMPLICIT NONE")
            ftype = "INTEGER" if name[0] in "IJKLMN" else "REAL*8"
            sym = Symbol(name, ftype=ftype)
            self._syms[name] = sym
        return sym

    def arrays(self) -> List[Symbol]:
        return [s for s in self._syms.values() if s.is_array]

    def scalars(self) -> List[Symbol]:
        return [
            s for s in self._syms.values() if not s.is_array and not s.is_param
        ]

    def params(self) -> Dict[str, float]:
        return {
            s.name: s.param_value for s in self._syms.values() if s.is_param
        }

    def __contains__(self, name: str) -> bool:
        return name.upper() in self._syms

    def __iter__(self):
        return iter(self._syms.values())
