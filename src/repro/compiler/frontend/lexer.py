"""Tokenizer for the Fortran 77 subset.

Accepts the fixed-form-flavoured sources our workloads use, liberally:

* comment lines start with ``C``/``c``/``*``/``!`` in column 1 (or ``!``
  anywhere starts a trailing comment) — except Polaris directive comments
  (``CSRD$``/``C$PAR``), which are surfaced as DIRECTIVE tokens;
* optional numeric statement labels;
* ``&`` at end of line continues the statement;
* keywords and identifiers are case-insensitive (uppercased);
* dotted operators ``.LT. .LE. .GT. .GE. .EQ. .NE. .AND. .OR. .NOT.
  .TRUE. .FALSE.`` plus the modern ``< <= > >= == /=`` spellings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

__all__ = ["Token", "LexError", "tokenize"]


class LexError(ValueError):
    """Bad character or malformed literal, with line information."""


@dataclass
class Token:
    kind: str  # NAME KEYWORD NUM DOTOP OP NEWLINE LABEL DIRECTIVE EOF
    value: str
    line: int

    def __repr__(self):
        return f"Token({self.kind},{self.value!r},L{self.line})"


KEYWORDS = {
    "PROGRAM", "SUBROUTINE", "FUNCTION", "END", "ENDDO", "ENDIF",
    "DO", "IF", "THEN", "ELSE", "ELSEIF", "CONTINUE", "CALL", "RETURN",
    "INTEGER", "REAL", "DOUBLE", "PRECISION", "DIMENSION", "PARAMETER",
    "PRINT", "IMPLICIT", "NONE", "COMMON", "DATA", "STOP", "GOTO",
}

DOT_OPS = {
    ".LT.": "<", ".LE.": "<=", ".GT.": ">", ".GE.": ">=",
    ".EQ.": "==", ".NE.": "/=",
    ".AND.": ".AND.", ".OR.": ".OR.", ".NOT.": ".NOT.",
    ".TRUE.": ".TRUE.", ".FALSE.": ".FALSE.",
}

_NUM_RE = re.compile(
    r"""
    (?:\d+\.\d*|\.\d+|\d+)            # mantissa
    (?:[EDed][+-]?\d+)?               # exponent (D = double)
    """,
    re.VERBOSE,
)
_NAME_RE = re.compile(r"[A-Za-z][A-Za-z0-9_]*")
_DOTOP_RE = re.compile(
    r"\.(?:LT|LE|GT|GE|EQ|NE|AND|OR|NOT|TRUE|FALSE)\.", re.IGNORECASE
)
_MULTI_OPS = ("**", "<=", ">=", "==", "/=", "//")
_SINGLE_OPS = "+-*/(),=<>:"

_DIRECTIVE_RE = re.compile(r"^[Cc!\*]\s*(?:SRD\$|\$PAR)\s*(.*)$")


def _is_comment(line: str) -> bool:
    return bool(line) and line[0] in "Cc*!"


def _join_continuations(lines: List[str]) -> List[str]:
    """Merge fixed-form continuation lines (leading ``&`` after indent)
    into their predecessor, preserving line count via blank placeholders."""
    out: List[str] = []
    for line in lines:
        stripped = line.lstrip()
        if stripped.startswith("&") and out:
            j = len(out) - 1
            while j >= 0 and not out[j].strip():
                j -= 1
            if j >= 0:
                out[j] = out[j] + " " + stripped[1:]
                out.append("")
                continue
        out.append(line)
    return out


def tokenize(source: str) -> List[Token]:
    """Tokenize a full source file into a flat token list."""
    tokens: List[Token] = []
    pending_continuation = False

    for lineno, raw in enumerate(_join_continuations(source.splitlines()), start=1):
        line = raw.rstrip()
        if not line.strip():
            continue
        # Fixed-form comment/directive detection uses COLUMN 1 of the raw
        # line: 'C' in column 1 is a comment, but an indented statement may
        # legitimately start with a 'C' array name (e.g. "  C(I,J) = 0").
        m = _DIRECTIVE_RE.match(line)
        if m:
            tokens.append(Token("DIRECTIVE", m.group(1).strip().upper(), lineno))
            tokens.append(Token("NEWLINE", "\n", lineno))
            continue
        if _is_comment(line) or line.lstrip().startswith("!"):
            continue

        # Trailing comment.
        bang = _find_trailing_comment(line)
        if bang is not None:
            line = line[:bang].rstrip()
            if not line.strip():
                continue

        pos = 0
        n = len(line)
        first_on_line = not pending_continuation
        pending_continuation = False

        # Optional numeric statement label at start of line.
        if first_on_line:
            lm = re.match(r"\s*(\d+)\s+(?=\S)", line)
            if lm and not line.strip()[len(lm.group(1)):].strip().startswith("="):
                tokens.append(Token("LABEL", lm.group(1), lineno))
                pos = lm.end()

        while pos < n:
            ch = line[pos]
            if ch in " \t":
                pos += 1
                continue
            if ch == "&" and line[pos:].strip() == "&":
                pending_continuation = True
                pos = n
                break
            if ch == "'":
                close = line.find("'", pos + 1)
                if close < 0:
                    raise LexError(f"line {lineno}: unterminated string")
                tokens.append(Token("STR", line[pos + 1 : close], lineno))
                pos = close + 1
                continue
            dm = _DOTOP_RE.match(line, pos)
            if dm:
                canon = dm.group(0).upper()
                tokens.append(Token("DOTOP", DOT_OPS[canon], lineno))
                pos = dm.end()
                continue
            nm = _NUM_RE.match(line, pos)
            if nm and (ch.isdigit() or ch == "."):
                text = nm.group(0)
                tokens.append(Token("NUM", text, lineno))
                pos = nm.end()
                continue
            im = _NAME_RE.match(line, pos)
            if im:
                word = im.group(0).upper()
                kind = "KEYWORD" if word in KEYWORDS else "NAME"
                tokens.append(Token(kind, word, lineno))
                pos = im.end()
                continue
            two = line[pos : pos + 2]
            if two in _MULTI_OPS:
                tokens.append(Token("OP", two, lineno))
                pos += 2
                continue
            if ch in _SINGLE_OPS:
                tokens.append(Token("OP", ch, lineno))
                pos += 1
                continue
            raise LexError(f"line {lineno}: unexpected character {ch!r}")

        if not pending_continuation:
            tokens.append(Token("NEWLINE", "\n", lineno))

    tokens.append(Token("EOF", "", len(source.splitlines()) + 1))
    return tokens


def _find_trailing_comment(line: str) -> Optional[int]:
    """Index of a trailing ``!`` comment, ignoring ones inside strings."""
    in_str = False
    for i, ch in enumerate(line):
        if ch == "'":
            in_str = not in_str
        elif ch == "!" and not in_str:
            return i
    return None
