"""Recursive-descent parser for the Fortran 77 subset.

Produces :class:`~repro.compiler.frontend.fast.Program` trees with a
resolved :class:`~repro.compiler.frontend.symtab.SymbolTable` per unit
(PARAMETER constants are folded during declaration parsing so array
extents are concrete integers by the time statements are parsed).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.compiler.frontend import fast as F
from repro.compiler.frontend.lexer import Token, tokenize
from repro.compiler.frontend.symtab import Symbol, SymbolTable

__all__ = ["ParseError", "parse", "INTRINSICS"]

#: Recognized intrinsic functions (subset the workloads use).
INTRINSICS = {
    "SQRT", "SIN", "COS", "TAN", "ATAN", "ATAN2", "EXP", "LOG",
    "ABS", "MAX", "MIN", "MOD", "INT", "DBLE", "FLOAT", "SIGN", "NINT",
}


class ParseError(SyntaxError):
    """Syntax error with source-line context."""


def parse(source: str) -> F.Program:
    """Parse Fortran source into a Program with per-unit symbol tables."""
    return _Parser(tokenize(source)).parse_program()


def _num_value(text: str) -> Tuple[float, bool]:
    """Literal text -> (value, is_int)."""
    t = text.upper().replace("D", "E")
    if "." in t or "E" in t:
        return float(t), False
    return int(t), True


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0
        self.symtab: Optional[SymbolTable] = None
        self._pending_directives: List[str] = []

    # -- token plumbing --------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.cur
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def check(self, kind: str, value: Optional[str] = None) -> bool:
        tok = self.cur
        return tok.kind == kind and (value is None or tok.value == value)

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        if not self.check(kind, value):
            tok = self.cur
            want = value or kind
            raise ParseError(
                f"line {tok.line}: expected {want}, got {tok.kind} {tok.value!r}"
            )
        return self.advance()

    def end_stmt(self) -> None:
        self.expect("NEWLINE")

    def skip_newlines(self) -> None:
        while self.accept("NEWLINE"):
            pass

    # -- program structure ----------------------------------------------
    def parse_program(self) -> F.Program:
        units: List[F.Unit] = []
        self.skip_newlines()
        while not self.check("EOF"):
            units.append(self.parse_unit())
            self.skip_newlines()
        if not units:
            raise ParseError("empty source")
        return F.Program(units)

    def parse_unit(self) -> F.Unit:
        self._drop_directives()
        if self.accept("KEYWORD", "PROGRAM"):
            kind = "program"
            name = self.expect("NAME").value
            args: List[str] = []
        elif self.accept("KEYWORD", "SUBROUTINE"):
            kind = "subroutine"
            name = self.expect("NAME").value
            args = []
            if self.accept("OP", "("):
                if not self.check("OP", ")"):
                    while True:
                        args.append(self.expect("NAME").value)
                        if not self.accept("OP", ","):
                            break
                self.expect("OP", ")")
        else:
            tok = self.cur
            raise ParseError(
                f"line {tok.line}: expected PROGRAM or SUBROUTINE, got {tok.value!r}"
            )
        self.end_stmt()

        self.symtab = SymbolTable()
        for a in args:
            self.symtab.declare(Symbol(a, is_arg=True))
        self.parse_declarations()
        body = self.parse_statements(until=("END",))
        self.expect("KEYWORD", "END")
        self.accept("NEWLINE")
        unit = F.Unit(kind=kind, name=name, args=args, body=body,
                      symtab=self.symtab)
        self.symtab = None
        return unit

    # -- declarations ------------------------------------------------------
    _TYPE_STARTERS = ("INTEGER", "REAL", "DOUBLE", "DIMENSION", "PARAMETER",
                      "IMPLICIT", "COMMON")

    def parse_declarations(self) -> None:
        while True:
            self.skip_newlines()
            if self.cur.kind == "KEYWORD" and self.cur.value in self._TYPE_STARTERS:
                self.parse_declaration()
            else:
                return

    def parse_declaration(self) -> None:
        tok = self.advance()
        kw = tok.value
        if kw == "IMPLICIT":
            self.expect("KEYWORD", "NONE")
            self.symtab.implicit_none = True
            self.end_stmt()
            return
        if kw == "PARAMETER":
            self.expect("OP", "(")
            while True:
                name = self.expect("NAME").value
                self.expect("OP", "=")
                value = self.const_expr()
                is_int = isinstance(value, int)
                self.symtab.declare(
                    Symbol(
                        name,
                        ftype="INTEGER" if is_int else "REAL*8",
                        is_param=True,
                        param_value=value,
                    )
                )
                if not self.accept("OP", ","):
                    break
            self.expect("OP", ")")
            self.end_stmt()
            return
        if kw == "COMMON":
            raise ParseError(f"line {tok.line}: COMMON is outside the subset")

        if kw == "DOUBLE":
            self.expect("KEYWORD", "PRECISION")
            ftype = "REAL*8"
        elif kw == "REAL":
            ftype = "REAL*8"
            if self.accept("OP", "*"):
                width = self.expect("NUM").value
                ftype = f"REAL*{width}"
                if ftype not in ("REAL*4", "REAL*8"):
                    raise ParseError(f"line {tok.line}: unsupported {ftype}")
        elif kw == "INTEGER":
            ftype = "INTEGER"
            if self.accept("OP", "*"):
                self.expect("NUM")  # INTEGER*4 etc., all mapped to INTEGER
        elif kw == "DIMENSION":
            ftype = None  # keep existing/implicit type
        else:  # pragma: no cover - guarded by _TYPE_STARTERS
            raise ParseError(f"line {tok.line}: bad declaration {kw}")

        while True:
            name = self.expect("NAME").value
            dims: List[Tuple[int, int]] = []
            if self.accept("OP", "("):
                while True:
                    lo = 1
                    hi = self.const_int()
                    if self.accept("OP", ":"):
                        lo = hi
                        hi = self.const_int()
                    dims.append((lo, hi))
                    if not self.accept("OP", ","):
                        break
                self.expect("OP", ")")
            sym_type = ftype
            if sym_type is None:
                existing = self.symtab.lookup(name)
                sym_type = (
                    existing.ftype
                    if existing
                    else ("INTEGER" if name[0] in "IJKLMN" else "REAL*8")
                )
            self.symtab.declare(Symbol(name, ftype=sym_type, dims=dims))
            if not self.accept("OP", ","):
                break
        self.end_stmt()

    def const_int(self) -> int:
        v = self.const_expr()
        if not isinstance(v, int):
            raise ParseError(f"line {self.cur.line}: expected integer constant")
        return v

    def const_expr(self):
        """Parse and fold a constant expression (params allowed)."""
        expr = self.expr()
        return _fold_const(expr, self.symtab)

    # -- statements ---------------------------------------------------------
    def parse_statements(
        self, until: Tuple[str, ...], end_label: Optional[str] = None
    ) -> List[F.Stmt]:
        stmts: List[F.Stmt] = []
        while True:
            self.skip_newlines()
            directives = []
            while self.check("DIRECTIVE"):
                directives.append(self.advance().value)
                self.accept("NEWLINE")
                self.skip_newlines()

            label = None
            if self.check("LABEL"):
                label = self.cur.value
                if end_label is not None and label == end_label:
                    return stmts  # caller consumes the labelled CONTINUE
                self.advance()

            if self.cur.kind == "KEYWORD" and self.cur.value in until:
                return stmts
            if self.check("EOF"):
                raise ParseError(f"unexpected EOF; expected one of {until}")

            stmt = self.parse_statement(directives)
            if stmt is not None:
                stmts.append(stmt)

    def parse_statement(self, directives: List[str]) -> Optional[F.Stmt]:
        tok = self.cur
        if tok.kind == "KEYWORD":
            if tok.value == "DO":
                return self.parse_do(directives)
            if tok.value == "IF":
                return self.parse_if()
            if tok.value == "CALL":
                return self.parse_call()
            if tok.value == "PRINT":
                return self.parse_print()
            if tok.value == "CONTINUE":
                self.advance()
                self.end_stmt()
                return None
            if tok.value in ("RETURN", "STOP"):
                self.advance()
                self.end_stmt()
                return None
            if tok.value == "GOTO":
                raise ParseError(f"line {tok.line}: GOTO is outside the subset")
            raise ParseError(f"line {tok.line}: unexpected keyword {tok.value}")
        if tok.kind == "NAME":
            return self.parse_assignment()
        raise ParseError(f"line {tok.line}: unexpected token {tok.value!r}")

    def parse_do(self, directives: List[str]) -> F.Do:
        self.expect("KEYWORD", "DO")
        end_label = None
        if self.check("NUM"):
            end_label = self.advance().value
        var = self.expect("NAME").value
        self.expect("OP", "=")
        lo = self.expr()
        self.expect("OP", ",")
        hi = self.expr()
        step: F.Expr = F.Num(1)
        if self.accept("OP", ","):
            step = self.expr()
        self.end_stmt()

        if end_label is None:
            body = self.parse_statements(until=("ENDDO",))
            self.expect("KEYWORD", "ENDDO")
            self.end_stmt()
        else:
            body = self.parse_statements(until=(), end_label=end_label)
            self.expect("LABEL", end_label)
            self.expect("KEYWORD", "CONTINUE")
            self.end_stmt()

        loop = F.Do(var=var, lo=lo, hi=hi, step=step, body=body, label=end_label)
        if any("PARALLEL" in d for d in directives):
            loop.parallel = True
        return loop

    def parse_if(self) -> F.If:
        self.expect("KEYWORD", "IF")
        self.expect("OP", "(")
        cond = self.expr()
        self.expect("OP", ")")
        if self.accept("KEYWORD", "THEN"):
            self.end_stmt()
            then = self.parse_statements(until=("ELSE", "ELSEIF", "ENDIF"))
            elifs: List[Tuple[F.Expr, List[F.Stmt]]] = []
            orelse: List[F.Stmt] = []
            while True:
                if self.accept("KEYWORD", "ELSEIF"):
                    self.expect("OP", "(")
                    c = self.expr()
                    self.expect("OP", ")")
                    self.expect("KEYWORD", "THEN")
                    self.end_stmt()
                    blk = self.parse_statements(until=("ELSE", "ELSEIF", "ENDIF"))
                    elifs.append((c, blk))
                    continue
                if self.accept("KEYWORD", "ELSE"):
                    # ELSE IF (...) THEN spelled as two words.
                    if self.check("KEYWORD", "IF"):
                        self.advance()
                        self.expect("OP", "(")
                        c = self.expr()
                        self.expect("OP", ")")
                        self.expect("KEYWORD", "THEN")
                        self.end_stmt()
                        blk = self.parse_statements(
                            until=("ELSE", "ELSEIF", "ENDIF")
                        )
                        elifs.append((c, blk))
                        continue
                    self.end_stmt()
                    orelse = self.parse_statements(until=("ENDIF",))
                self.expect("KEYWORD", "ENDIF")
                self.end_stmt()
                break
            return F.If(cond=cond, then=then, elifs=elifs, orelse=orelse)
        # One-line logical IF.
        stmt = self.parse_statement([])
        return F.If(cond=cond, then=[stmt] if stmt else [], elifs=[], orelse=[])

    def parse_call(self) -> F.Call:
        self.expect("KEYWORD", "CALL")
        name = self.expect("NAME").value
        args: List[F.Expr] = []
        if self.accept("OP", "("):
            if not self.check("OP", ")"):
                while True:
                    args.append(self.expr())
                    if not self.accept("OP", ","):
                        break
            self.expect("OP", ")")
        self.end_stmt()
        return F.Call(name=name, args=args)

    def parse_print(self) -> F.PrintStmt:
        self.expect("KEYWORD", "PRINT")
        self.expect("OP", "*")
        items: List[F.Expr] = []
        while self.accept("OP", ","):
            if self.check("STR"):
                items.append(F.Str(self.advance().value))
            else:
                items.append(self.expr())
        self.end_stmt()
        return F.PrintStmt(items=items)

    def parse_assignment(self) -> F.Assign:
        name = self.expect("NAME").value
        sym = self.symtab.require(name)
        if self.accept("OP", "("):
            subs = [self.expr()]
            while self.accept("OP", ","):
                subs.append(self.expr())
            self.expect("OP", ")")
            lhs: F.Expr = F.ArrayRef(name=sym.name, subs=subs)
        else:
            lhs = F.Var(name=sym.name)
        self.expect("OP", "=")
        rhs = self.expr()
        self.end_stmt()
        return F.Assign(lhs=lhs, rhs=rhs)

    # -- expressions (precedence climbing) ------------------------------------
    def expr(self) -> F.Expr:
        return self.or_expr()

    def or_expr(self) -> F.Expr:
        left = self.and_expr()
        while self.check("DOTOP", ".OR."):
            self.advance()
            left = F.LogOp(".OR.", left, self.and_expr())
        return left

    def and_expr(self) -> F.Expr:
        left = self.not_expr()
        while self.check("DOTOP", ".AND."):
            self.advance()
            left = F.LogOp(".AND.", left, self.not_expr())
        return left

    def not_expr(self) -> F.Expr:
        if self.check("DOTOP", ".NOT."):
            self.advance()
            return F.LogOp(".NOT.", None, self.not_expr())
        return self.rel_expr()

    _REL = ("<", "<=", ">", ">=", "==", "/=")

    def rel_expr(self) -> F.Expr:
        left = self.add_expr()
        if (self.cur.kind in ("OP", "DOTOP")) and self.cur.value in self._REL:
            op = self.advance().value
            return F.RelOp(op, left, self.add_expr())
        return left

    def add_expr(self) -> F.Expr:
        left = self.mul_expr()
        while self.cur.kind == "OP" and self.cur.value in ("+", "-"):
            op = self.advance().value
            left = F.BinOp(op, left, self.mul_expr())
        return left

    def mul_expr(self) -> F.Expr:
        left = self.unary_expr()
        while self.cur.kind == "OP" and self.cur.value in ("*", "/"):
            op = self.advance().value
            left = F.BinOp(op, left, self.unary_expr())
        return left

    def unary_expr(self) -> F.Expr:
        if self.cur.kind == "OP" and self.cur.value in ("+", "-"):
            op = self.advance().value
            operand = self.unary_expr()
            if op == "+":
                return operand
            return F.UnOp("-", operand)
        return self.pow_expr()

    def pow_expr(self) -> F.Expr:
        base = self.primary()
        if self.check("OP", "**"):
            self.advance()
            return F.BinOp("**", base, self.unary_expr())  # right-assoc
        return base

    def primary(self) -> F.Expr:
        tok = self.cur
        if tok.kind == "NUM":
            self.advance()
            value, is_int = _num_value(tok.value)
            return F.Num(value, is_int)
        if tok.kind == "OP" and tok.value == "(":
            self.advance()
            inner = self.expr()
            self.expect("OP", ")")
            return inner
        if tok.kind == "NAME":
            self.advance()
            name = tok.value
            if self.check("OP", "("):
                sym = self.symtab.lookup(name) if self.symtab else None
                if (sym is None or not sym.is_array) and name in INTRINSICS:
                    self.advance()
                    args = [self.expr()]
                    while self.accept("OP", ","):
                        args.append(self.expr())
                    self.expect("OP", ")")
                    return F.Intrinsic(name, args)
                if sym is None or not sym.is_array:
                    raise ParseError(
                        f"line {tok.line}: {name} used with subscripts but "
                        "not declared as an array (and not an intrinsic)"
                    )
                self.advance()
                subs = [self.expr()]
                while self.accept("OP", ","):
                    subs.append(self.expr())
                self.expect("OP", ")")
                return F.ArrayRef(sym.name, subs)
            self.symtab.require(name)
            return F.Var(name)
        raise ParseError(f"line {tok.line}: unexpected {tok.kind} {tok.value!r}")

    def _drop_directives(self) -> None:
        while self.check("DIRECTIVE"):
            self.advance()
            self.accept("NEWLINE")


def _fold_const(expr: F.Expr, symtab: SymbolTable):
    """Fold a constant expression using PARAMETER values."""
    if isinstance(expr, F.Num):
        return expr.value
    if isinstance(expr, F.Var):
        sym = symtab.lookup(expr.name) if symtab else None
        if sym is not None and sym.is_param:
            return sym.param_value
        raise ParseError(f"{expr.name} is not a constant")
    if isinstance(expr, F.UnOp):
        return -_fold_const(expr.operand, symtab)
    if isinstance(expr, F.BinOp):
        a = _fold_const(expr.left, symtab)
        b = _fold_const(expr.right, symtab)
        if expr.op == "+":
            return a + b
        if expr.op == "-":
            return a - b
        if expr.op == "*":
            return a * b
        if expr.op == "/":
            if isinstance(a, int) and isinstance(b, int):
                return a // b
            return a / b
        if expr.op == "**":
            return a**b
    raise ParseError(f"not a constant expression: {expr}")
