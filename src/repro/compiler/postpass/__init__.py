"""The MPI-2 postpass (paper §5, Figure 6): MPI environment generation,
AVPG construction, work partitioning, data scattering/collecting,
SPMDization, and communication granularity optimization."""

from repro.compiler.postpass.partition import Partition, choose_strategy
from repro.compiler.postpass.split import SplitLMAD, split_lmad
from repro.compiler.postpass.granularity import (
    COARSE,
    FINE,
    MIDDLE,
    Transfer,
    plan_transfers,
)

__all__ = [
    "COARSE",
    "FINE",
    "MIDDLE",
    "Partition",
    "SplitLMAD",
    "Transfer",
    "choose_strategy",
    "plan_transfers",
    "split_lmad",
]
