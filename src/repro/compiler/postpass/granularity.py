"""Communication granularity optimization (paper §5.6, Figure 9).

Three grain levels turn one region LMAD into MPI-2 transfer plans:

* **fine** — exact regions.  One primitive per ``A_offsets`` entry; the
  primitive is contiguous (DMA) when the mapping stride is 1, strided
  (programmed I/O) when it is larger.
* **middle** — the mapping dimension's stride is forced to 1, turning each
  exact strided pattern into its bounding contiguous run.  Same number of
  transfers as fine, all contiguous DMA, at the cost of redundant bytes
  (ratio ≈ the original mapping stride).
* **coarse** — the whole region collapses to its single bounding
  contiguous interval: one contiguous DMA transfer, maximum redundancy.

The transfer-count formulas the paper states are properties here:
fine/middle move ``prod_j>=2 (dj/aj + 1)`` messages, coarse moves 1 per
region (i.e. per parallel chunk — ``dp/ap + 1`` across the machine).

For data *collecting*, approximate regions may overwrite another rank's
results or master data the slave never received; :func:`collect_demotion`
implements (and extends, via exact masks) the paper's bound check that
falls back to fine grain in that case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compiler.analysis.lmad import LMAD
from repro.compiler.postpass.split import split_lmad

__all__ = [
    "FINE",
    "MIDDLE",
    "COARSE",
    "GRAINS",
    "Transfer",
    "plan_transfers",
    "plan_bytes",
    "collect_demotion",
]

FINE = "fine"
MIDDLE = "middle"
COARSE = "coarse"
GRAINS = (FINE, MIDDLE, COARSE)


@dataclass(frozen=True)
class Transfer:
    """One MPI_PUT/MPI_GET: ``count`` elements from ``offset`` every
    ``stride`` elements.  ``stride == 1`` rides the DMA engine."""

    offset: int
    count: int
    stride: int = 1

    def __post_init__(self):
        if self.count < 1:
            raise ValueError("transfer needs at least one element")
        if self.stride < 1:
            raise ValueError("stride must be >= 1")

    @property
    def contiguous(self) -> bool:
        return self.stride == 1

    @property
    def last(self) -> int:
        return self.offset + (self.count - 1) * self.stride

    def indices(self) -> np.ndarray:
        return self.offset + np.arange(self.count, dtype=np.int64) * self.stride


def plan_transfers(lmad: LMAD, grain: str) -> List[Transfer]:
    """The transfer plan for one region at one granularity."""
    if grain not in GRAINS:
        raise ValueError(f"unknown granularity {grain!r}; use {GRAINS}")
    s = lmad.simplify()
    if grain == COARSE:
        return [Transfer(offset=s.min_offset, count=s.extent, stride=1)]
    sp = split_lmad(s)
    if sp.mapping.count <= 1:
        return [Transfer(offset=o, count=1, stride=1) for o in sp.offsets]
    if grain == FINE:
        return [
            Transfer(offset=o, count=sp.mapping.count, stride=sp.mapping.stride)
            for o in sp.offsets
        ]
    # MIDDLE: bounding run of the mapping dimension, stride forced to 1.
    run = sp.mapping.span + 1
    return [Transfer(offset=o, count=run, stride=1) for o in sp.offsets]


def plan_bytes(transfers: Sequence[Transfer], itemsize: int = 8) -> int:
    return sum(t.count for t in transfers) * itemsize


def plan_mask(transfers: Sequence[Transfer], size: int) -> np.ndarray:
    m = np.zeros(size, dtype=bool)
    for t in transfers:
        if t.offset < 0 or t.last >= size:
            raise ValueError(f"{t} outside array of size {size}")
        m[t.indices()] = True
    return m


def collect_demotion(
    write_lmads_by_rank: Dict[int, List[LMAD]],
    scatter_masks_by_rank: Dict[int, np.ndarray],
    grain: str,
    size: int,
) -> Tuple[str, Optional[str]]:
    """Decide the safe collect granularity for one array.

    Approximate (middle/coarse) collect regions are *inflated*: they carry
    elements the rank did not write.  They are safe only when, for every
    rank, the inflated extras hold current values on that rank — i.e. each
    extra element was either scattered to the rank in this region or
    written by the rank itself — and no two ranks' inflated regions
    overlap except where their exact writes already coincide (which the
    exactness of fine-grain writes rules out anyway).

    Returns ``(grain_to_use, reason)`` where reason explains a demotion.
    This is the paper's §5.6 upper/lower-bound check, made exact with
    masks.
    """
    if grain == FINE:
        return FINE, None

    exact: Dict[int, np.ndarray] = {}
    inflated: Dict[int, np.ndarray] = {}
    for rank, lmads in write_lmads_by_rank.items():
        ex = np.zeros(size, dtype=bool)
        inf = np.zeros(size, dtype=bool)
        for l in lmads:
            ex |= l.mask(size)
            inf |= plan_mask(plan_transfers(l, grain), size)
        exact[rank] = ex
        inflated[rank] = inf

    ranks = sorted(write_lmads_by_rank)
    for i, r1 in enumerate(ranks):
        for r2 in ranks[i + 1 :]:
            if (inflated[r1] & inflated[r2]).any():
                return FINE, (
                    f"{grain} regions of ranks {r1} and {r2} overlap"
                )
    for r in ranks:
        extra = inflated[r] & ~exact[r]
        held = scatter_masks_by_rank.get(r)
        if held is None:
            held = np.zeros(size, dtype=bool)
        uncovered = extra & ~held
        if uncovered.any():
            return FINE, (
                f"{grain} region of rank {r} would carry "
                f"{int(uncovered.sum())} stale element(s)"
            )
    return grain, None
