"""Code generation: assemble the SPMD program and emit readable
Fortran77+MPI-2 pseudo-source (the "PP" of the paper's Figure 1).

The emitted text is documentation-grade output showing exactly where the
postpass placed ``MPI_WIN_CREATE``, barriers, fences, scatters
(``MPI_PUT`` from the master), collects (``MPI_PUT`` to the master), and
broadcasts; the *executable* form is the region tree inside
:class:`~repro.runtime.program.SpmdProgram`.
"""

from __future__ import annotations

from typing import List

from repro.compiler.frontend import fast as F
from repro.compiler.postpass.scatter import ArrayCommPlan, RegionCommPlan
from repro.compiler.postpass.spmd import (
    IfRegion,
    ParRegion,
    Region,
    SeqBlock,
    SeqLoop,
)

__all__ = ["emit_fortran"]

_IND = "      "


def _expr(e: F.Expr) -> str:
    return str(e)


def _emit_stmts(stmts, out: List[str], depth: int) -> None:
    pad = _IND + "  " * depth
    for s in stmts:
        if isinstance(s, F.Assign):
            out.append(f"{pad}{_expr(s.lhs)} = {_expr(s.rhs)}")
        elif isinstance(s, F.Do):
            step = (
                f", {_expr(s.step)}"
                if not (isinstance(s.step, F.Num) and s.step.value == 1)
                else ""
            )
            out.append(f"{pad}DO {s.var} = {_expr(s.lo)}, {_expr(s.hi)}{step}")
            _emit_stmts(s.body, out, depth + 1)
            out.append(f"{pad}ENDDO")
        elif isinstance(s, F.If):
            out.append(f"{pad}IF ({_expr(s.cond)}) THEN")
            _emit_stmts(s.then, out, depth + 1)
            for c, blk in s.elifs:
                out.append(f"{pad}ELSE IF ({_expr(c)}) THEN")
                _emit_stmts(blk, out, depth + 1)
            if s.orelse:
                out.append(f"{pad}ELSE")
                _emit_stmts(s.orelse, out, depth + 1)
            out.append(f"{pad}ENDIF")
        elif isinstance(s, F.PrintStmt):
            items = ", ".join(_expr(i) for i in s.items)
            out.append(f"{pad}PRINT *, {items}")


def _emit_transfers(
    kind: str, aplan: ArrayCommPlan, out: List[str], depth: int
) -> None:
    pad = _IND + "  " * depth
    table = aplan.scatter if kind == "scatter" else aplan.collect
    prim_dir = "MPI_PUT" if kind == "scatter" else "MPI_PUT"
    if kind == "scatter" and aplan.scatter_bcast:
        ts = next(iter(table.values()))
        for t in ts:
            mode = "contig" if t.contiguous else "stride"
            out.append(
                f"{pad}CALL MPI_BCAST(WIN_{aplan.array}, off={t.offset}, "
                f"count={t.count}, stride={t.stride})  ! {mode}, V-Bus"
            )
        return
    for r, ts in sorted(table.items()):
        target = f"rank {r}" if kind == "scatter" else "master"
        src = "master" if kind == "scatter" else f"rank {r}"
        for t in ts:
            mode = "contiguous" if t.contiguous else "stride"
            out.append(
                f"{pad}CALL {prim_dir}(WIN_{aplan.array}, off={t.offset}, "
                f"count={t.count}, stride={t.stride})"
                f"  ! {mode}, {src} -> {target}"
            )
    for r, reason in sorted(aplan.scatter_skipped.items() if kind == "scatter" else []):
        out.append(f"{pad}!  scatter to rank {r} eliminated: {reason}")
    if kind == "collect" and aplan.collect_skipped:
        out.append(f"{pad}!  collect eliminated: {aplan.collect_skipped}")


def _emit_regions(regions: List[Region], plans, out: List[str], depth: int) -> None:
    pad = _IND + "  " * depth
    for region in regions:
        if isinstance(region, SeqBlock):
            out.append(f"{pad}! --- sequential region {region.region_id} "
                       "(master only) ---")
            out.append(f"{pad}IF (MYRANK .EQ. 0) THEN")
            _emit_stmts(region.stmts, out, depth + 1)
            out.append(f"{pad}ENDIF")
            out.append(f"{pad}CALL MPI_BCAST(scalar environment)")
            out.append(f"{pad}CALL MPI_BARRIER(MPI_COMM_WORLD)")
        elif isinstance(region, ParRegion):
            plan: RegionCommPlan = plans.get(region.region_id)
            loop = region.loop
            out.append(
                f"{pad}! --- parallel region {region.region_id}: "
                f"DO {loop.var}, {region.partition.spec} partition ---"
            )
            if plan is not None:
                for aplan in plan.arrays.values():
                    if aplan.scatter or aplan.scatter_skipped:
                        _emit_transfers("scatter", aplan, out, depth)
            out.append(f"{pad}CALL MPI_WIN_FENCE  ! scatter complete")
            out.append(
                f"{pad}DO {loop.var} = MYLO({loop.var}), MYHI({loop.var}),"
                f" MYSTEP({loop.var})"
            )
            _emit_stmts(loop.body, out, depth + 1)
            out.append(f"{pad}ENDDO")
            for name, op in loop.reductions:
                out.append(f"{pad}CALL MPI_WIN_LOCK(master)")
                out.append(
                    f"{pad}CALL MPI_ACCUMULATE({name}, op={op!r})  ! reduction"
                )
                out.append(f"{pad}CALL MPI_WIN_UNLOCK(master)")
            if plan is not None:
                for aplan in plan.arrays.values():
                    if aplan.collect or aplan.collect_skipped:
                        _emit_transfers("collect", aplan, out, depth)
            out.append(f"{pad}CALL MPI_WIN_FENCE  ! collect complete")
            out.append(f"{pad}CALL MPI_BARRIER(MPI_COMM_WORLD)")
        elif isinstance(region, SeqLoop):
            loop = region.loop
            out.append(
                f"{pad}DO {loop.var} = {_expr(loop.lo)}, {_expr(loop.hi)}"
                "  ! replicated control"
            )
            _emit_regions(region.body, plans, out, depth + 1)
            out.append(f"{pad}ENDDO")
        elif isinstance(region, IfRegion):
            out.append(f"{pad}IF ({_expr(region.cond)}) THEN  ! replicated")
            _emit_regions(region.then, plans, out, depth + 1)
            for c, blk in region.elifs:
                out.append(f"{pad}ELSE IF ({_expr(c)}) THEN")
                _emit_regions(blk, plans, out, depth + 1)
            if region.orelse:
                out.append(f"{pad}ELSE")
                _emit_regions(region.orelse, plans, out, depth + 1)
            out.append(f"{pad}ENDIF")


def emit_fortran(unit: F.Unit, regions, env, plans, options) -> str:
    """Render the SPMD target program as Fortran77+MPI-2 pseudo-source."""
    out: List[str] = []
    out.append(f"{_IND}PROGRAM {unit.name}_SPMD")
    out.append(f"{_IND}! generated by the MPI-2 postpass: nprocs="
               f"{options.nprocs}, granularity={options.granularity}")
    out.append(f"{_IND}CALL MPI_INIT")
    out.append(f"{_IND}CALL MPI_COMM_RANK(MPI_COMM_WORLD, MYRANK)")
    for name in env.window_arrays:
        out.append(
            f"{_IND}CALL MPI_WIN_CREATE({name}, size={env.sizes[name]}, "
            f"WIN_{name})"
        )
    for name in env.replicated_scalars:
        out.append(f"{_IND}! replicated scalar: {name}")
    _emit_regions(regions, plans, out, 0)
    out.append(f"{_IND}CALL MPI_FINALIZE")
    out.append(f"{_IND}END")
    return "\n".join(out) + "\n"
