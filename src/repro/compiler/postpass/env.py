"""MPI environment generation (paper §5.1).

Scans the parallel regions for every variable remote processes must be
able to access and registers the corresponding MPI-2 objects: one memory
window per such array (created with ``MPI_WIN`` at program start) and the
set of scalars the master must replicate to slaves at synchronization
points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.compiler.frontend import fast as F
from repro.compiler.frontend.symtab import Symbol, SymbolTable
from repro.compiler.postpass.spmd import (
    IfRegion,
    ParRegion,
    Region,
    SeqLoop,
    iter_regions,
)

__all__ = ["MpiEnvironment", "generate_environment"]


@dataclass
class MpiEnvironment:
    """Symbols registered for the MPI-2 target program."""

    #: Arrays accessed inside parallel regions: each gets a memory window.
    window_arrays: List[str] = field(default_factory=list)
    #: Arrays that exist but never cross rank boundaries (master-private).
    local_arrays: List[str] = field(default_factory=list)
    #: Scalars slaves may read: replicated at every synchronization point.
    replicated_scalars: List[str] = field(default_factory=list)
    #: Array name -> element size in bytes.
    itemsize: Dict[str, int] = field(default_factory=dict)
    #: Array name -> flat size in elements.
    sizes: Dict[str, int] = field(default_factory=dict)

    def needs_window(self, array: str) -> bool:
        return array in self.window_arrays


def _names_in_stmts(stmts) -> Set[str]:
    names: Set[str] = set()
    for s in F.walk_stmts(stmts):
        if isinstance(s, F.Assign):
            for e in F.walk_exprs(s.rhs):
                if isinstance(e, (F.Var, F.ArrayRef)):
                    names.add(e.name)
            for e in F.walk_exprs(s.lhs):
                if isinstance(e, (F.Var, F.ArrayRef)):
                    names.add(e.name)
        elif isinstance(s, F.Do):
            for bound in (s.lo, s.hi, s.step):
                for e in F.walk_exprs(bound):
                    if isinstance(e, F.Var):
                        names.add(e.name)
        elif isinstance(s, F.If):
            conds = [s.cond] + [c for c, _b in s.elifs]
            for cond in conds:
                for e in F.walk_exprs(cond):
                    if isinstance(e, (F.Var, F.ArrayRef)):
                        names.add(e.name)
        elif isinstance(s, F.PrintStmt):
            for item in s.items:
                if isinstance(item, F.Str):
                    continue
                for e in F.walk_exprs(item):
                    if isinstance(e, (F.Var, F.ArrayRef)):
                        names.add(e.name)
    return names


def generate_environment(
    regions: List[Region], symtab: SymbolTable
) -> MpiEnvironment:
    """Register windows and replicated scalars for the region tree."""
    env = MpiEnvironment()
    remote_names: Set[str] = set()
    control_names: Set[str] = set()

    for region in iter_regions(regions):
        if isinstance(region, ParRegion):
            remote_names |= _names_in_stmts([region.loop])
        elif isinstance(region, SeqLoop):
            for bound in (region.loop.lo, region.loop.hi, region.loop.step):
                for e in F.walk_exprs(bound):
                    if isinstance(e, F.Var):
                        control_names.add(e.name)
        elif isinstance(region, IfRegion):
            conds = [region.cond] + [c for c, _b in region.elifs]
            for cond in conds:
                for e in F.walk_exprs(cond):
                    if isinstance(e, F.Var):
                        control_names.add(e.name)

    for sym in symtab:
        if sym.is_param:
            continue
        if sym.is_array:
            env.itemsize[sym.name] = sym.itemsize
            env.sizes[sym.name] = sym.size
            if sym.name in remote_names:
                env.window_arrays.append(sym.name)
            else:
                env.local_arrays.append(sym.name)
        else:
            if sym.name in remote_names or sym.name in control_names:
                env.replicated_scalars.append(sym.name)

    env.window_arrays.sort()
    env.local_arrays.sort()
    env.replicated_scalars.sort()
    return env
