"""Splitted LMADs (paper §5.4, Definitions 1 and 2).

A d-dimensional LMAD splits into

* ``A_mapping`` — the *lowest* dimension (smallest stride, i.e. the
  innermost access movement), which is mapped onto MPI-2 primitives:
  contiguous ``MPI_PUT``/``MPI_GET`` when its stride is 1, strided
  ``MPI_PUT``/``MPI_GET`` when the stride is a larger constant;
* ``A_offsets`` — the remaining dimensions, which generate the set of
  base offsets at which the mapping pattern repeats:
  ``{ x2*a2 + ... + xd*ad | 0 <= xj <= dj/aj }`` (plus the LMAD base).

The paper's Figure 8 example — ``A(14,*)`` accessed as
``A(K, J+2*(I-1))`` — yields mapping = the K dimension and offsets
``{0*14+0*28, 1*14+0*28, 0*14+1*28, 1*14+1*28}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.compiler.analysis.lmad import Dim, LMAD

__all__ = ["SplitLMAD", "split_lmad"]


@dataclass(frozen=True)
class SplitLMAD:
    """A_mapping x A_offsets decomposition of one LMAD."""

    array: str
    mapping: Dim
    offsets: Tuple[int, ...]  # absolute offsets (LMAD base folded in)

    @property
    def transfers(self) -> int:
        """Number of communication primitives at fine/middle grain: one
        per offset — the paper's (d2/a2) x ... x (dp/ap) + 1 count."""
        return len(self.offsets)

    @property
    def elements_per_transfer(self) -> int:
        return self.mapping.count

    def reassemble(self) -> LMAD:
        """Recover an LMAD covering exactly the same offsets (for checks)."""
        # offsets + mapping pattern.
        pts = np.asarray(self.offsets, dtype=np.int64)
        base = int(pts.min()) if len(pts) else 0
        dims: List[Dim] = []
        if self.mapping.count > 1:
            dims.append(self.mapping)
        rel = sorted(set(int(p) - base for p in pts))
        if len(rel) > 1:
            # Offsets may not form a single arithmetic progression; encode
            # them via one dim per distinct gap run only when regular.
            gaps = {b - a for a, b in zip(rel, rel[1:])}
            if len(gaps) == 1:
                g = gaps.pop()
                dims.append(Dim(stride=g, span=g * (len(rel) - 1)))
            else:  # pragma: no cover - irregular offset sets
                raise ValueError("irregular offset set cannot reassemble")
        return LMAD(self.array, base, tuple(dims))


def split_lmad(lmad: LMAD) -> SplitLMAD:
    """Split per Definition 2: lowest dimension out, rest enumerate offsets."""
    s = lmad.simplify()
    dims = s.sorted_dims()
    if not dims:
        return SplitLMAD(array=s.array, mapping=Dim(0, 0), offsets=(s.base,))
    mapping, rest = dims[0], dims[1:]
    offsets = LMAD(s.array, s.base, rest).enumerate()
    return SplitLMAD(
        array=s.array, mapping=mapping, offsets=tuple(int(o) for o in offsets)
    )
