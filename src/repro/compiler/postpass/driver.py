"""Postpass driver: the Figure 6 pipeline.

MPI environment generation → AVPG → work partitioning → data
scattering/collecting → SPMDization → communication optimization, wired
in the dependency order the implementation needs (regions first, then
environment, then the planner which folds AVPG + partitioning +
scatter/collect + granularity together, then code emission).
"""

from __future__ import annotations

from typing import Optional, Set

from repro.compiler.analysis.access import AccessError, loop_context
from repro.compiler.analysis.parallel import detect_parallelism
from repro.compiler.frontend import fast as F
from repro.compiler.postpass.codegen import emit_fortran
from repro.compiler.postpass.env import generate_environment
from repro.compiler.postpass.scatter import CommPlanner
from repro.compiler.postpass.spmd import build_regions
from repro.runtime.program import SpmdProgram

__all__ = ["run_postpass"]


def _demote_unplannable_loops(unit: F.Unit, log_notes) -> None:
    """Parallel loops whose bounds are not compile-time constants cannot be
    statically partitioned; keep them serial (with a note)."""

    def visit(stmts):
        for s in stmts:
            if isinstance(s, F.Do):
                if s.parallel:
                    try:
                        loop_context(s, (), {})
                    except AccessError as exc:
                        s.parallel = False
                        log_notes.append(
                            f"DO {s.var} (loop {s.loop_id}): demoted to "
                            f"serial — {exc}"
                        )
                visit(s.body)
            elif isinstance(s, F.If):
                visit(s.then)
                for _c, blk in s.elifs:
                    visit(blk)
                visit(s.orelse)

    visit(unit.body)


def run_postpass(unit: F.Unit, options) -> SpmdProgram:
    """Run parallelism detection plus the full MPI-2 postpass."""
    notes = []
    if options.parallelize:
        log = detect_parallelism(unit)
        notes.extend(log.entries)
    _demote_unplannable_loops(unit, notes)

    # Plan; when a region cannot be planned safely (e.g. its regions are
    # not statically describable), demote that loop to serial and retry.
    from repro.compiler.postpass.scatter import PlanError

    for _attempt in range(32):
        regions = build_regions(unit.body)
        env = generate_environment(regions, unit.symtab)
        planner = CommPlanner(
            symtab=unit.symtab,
            regions=regions,
            env=env,
            nprocs=options.nprocs,
            grain=options.granularity,
            partition_strategy=options.partition,
            live_out=options.live_out,
            use_avpg=options.avpg,
            grain_map=dict(getattr(options, "grain_map", None) or ()),
            partition_map=dict(
                getattr(options, "partition_map", None) or ()
            ),
        )
        try:
            plans = planner.plan()
            break
        except PlanError as exc:
            loop = getattr(exc, "loop", None)
            if loop is None or not loop.parallel:
                raise
            loop.parallel = False
            notes.append(
                f"DO {loop.var} (loop {loop.loop_id}): demoted to serial — "
                f"{exc}"
            )
    else:  # pragma: no cover - bounded by the loop count
        raise PlanError("postpass failed to converge")
    fortran = emit_fortran(unit, regions, env, plans, options)
    return SpmdProgram(
        unit=unit,
        regions=regions,
        env=env,
        avpg=planner.avpg,
        plans=plans,
        options=options,
        fortran=fortran,
        parallelization_log="\n".join(notes),
    )
