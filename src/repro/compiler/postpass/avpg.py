"""The Array-Value-Propagation Graph (paper §5.2, Figure 7).

One directed subgraph per array over the program's region sequence.  Each
node is an outermost region (parallel loop or master block); its
attribute for an array is

* **Valid** — the array is used (read or written) in the region;
* **Propagate** — not used here, but used in some later region;
* **Invalid** — not used here nor in any later region.

The two §5.2 optimizations fall out of the attributes:

1. an edge from a Valid node to an Invalid successor carries no
   communication — collects for an array that is dead afterwards are
   eliminated;
2. communication across Propagate nodes is *delayed* until the next Valid
   node — equivalently, scatter happens only at regions that actually use
   the array, and only when slave copies are stale.

The executable scatter/collect planner enforces these rules with exact
validity masks; this module builds the descriptive graph (used for
reporting, Figure 7's reproduction, and the planner's liveness queries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.compiler.frontend import fast as F
from repro.compiler.frontend.symtab import SymbolTable
from repro.compiler.postpass.spmd import (
    IfRegion,
    ParRegion,
    Region,
    SeqBlock,
    SeqLoop,
)

__all__ = ["VALID", "PROPAGATE", "INVALID", "AvpgNode", "Avpg", "build_avpg"]

VALID = "Valid"
PROPAGATE = "Propagate"
INVALID = "Invalid"


def _array_uses(stmts: Sequence[F.Stmt], arrays: Set[str]) -> Dict[str, Tuple[bool, bool]]:
    """array -> (reads, writes) within a statement list."""
    uses: Dict[str, Tuple[bool, bool]] = {}

    def mark(name: str, read: bool, write: bool):
        if name not in arrays:
            return
        r, w = uses.get(name, (False, False))
        uses[name] = (r or read, w or write)

    for s in F.walk_stmts(stmts):
        if isinstance(s, F.Assign):
            for e in F.walk_exprs(s.rhs):
                if isinstance(e, F.ArrayRef):
                    mark(e.name, True, False)
            if isinstance(s.lhs, F.ArrayRef):
                mark(s.lhs.name, False, True)
                for sub in s.lhs.subs:
                    for e in F.walk_exprs(sub):
                        if isinstance(e, F.ArrayRef):
                            mark(e.name, True, False)
        elif isinstance(s, F.If):
            for cond in [s.cond] + [c for c, _b in s.elifs]:
                for e in F.walk_exprs(cond):
                    if isinstance(e, F.ArrayRef):
                        mark(e.name, True, False)
        elif isinstance(s, F.PrintStmt):
            for item in s.items:
                if isinstance(item, F.Str):
                    continue
                for e in F.walk_exprs(item):
                    if isinstance(e, F.ArrayRef):
                        mark(e.name, True, False)
    return uses


@dataclass
class AvpgNode:
    """One region in the flattened execution sequence."""

    index: int
    region_id: int
    label: str
    kind: str  # "par" | "seq"
    #: Indices of enclosing SeqLoop levels (for back-edge liveness).
    loop_path: Tuple[int, ...]
    #: array -> (reads, writes)
    uses: Dict[str, Tuple[bool, bool]] = field(default_factory=dict)
    #: array -> Valid | Propagate | Invalid
    attrs: Dict[str, str] = field(default_factory=dict)


@dataclass
class Avpg:
    nodes: List[AvpgNode]
    arrays: List[str]
    #: arrays the program must still hold correct values for at exit.
    live_out: Set[str] = field(default_factory=set)

    def node_for_region(self, region_id: int) -> Optional[AvpgNode]:
        for n in self.nodes:
            if n.region_id == region_id:
                return n
        return None

    def attr(self, region_id: int, array: str) -> str:
        node = self.node_for_region(region_id)
        if node is None:
            raise KeyError(f"no AVPG node for region {region_id}")
        return node.attrs[array]

    def reads_after(self, region_id: int, array: str) -> bool:
        """Is the array read at or after any point reachable from the end
        of this region (successor nodes, back edges, program exit)?"""
        if array in self.live_out:
            return True
        node = self.node_for_region(region_id)
        if node is None:
            raise KeyError(f"no AVPG node for region {region_id}")
        for other in self.nodes:
            if other.index > node.index and other.uses.get(array, (False, False))[0]:
                return True
            # Back edge: a node in a shared enclosing loop re-executes.
            if (
                other.index <= node.index
                and other.loop_path
                and node.loop_path[: len(other.loop_path)] == other.loop_path
                and other.uses.get(array, (False, False))[0]
            ):
                return True
        return False

    def to_dot(self) -> str:
        """Graphviz rendering of the per-array subgraphs (Figure 7 style).

        One row of nodes per array; fill encodes the attribute (Valid
        solid, Propagate striped, Invalid hollow); eliminated edges are
        drawn dashed-red.
        """
        fills = {VALID: "black", PROPAGATE: "gray", INVALID: "white"}
        lines = ["digraph avpg {", "  rankdir=TB;", "  node [shape=circle];"]
        eliminated = set(self.eliminated_edges())
        for arr in self.arrays:
            lines.append(f"  subgraph cluster_{arr} {{")
            lines.append(f'    label="Array {arr}";')
            for n in self.nodes:
                attr = n.attrs[arr]
                font = "white" if attr == VALID else "black"
                lines.append(
                    f'    {arr}_{n.index} [label="{n.label}" '
                    f'style=filled fillcolor={fills[attr]} '
                    f'fontcolor={font}];'
                )
            for a, b in zip(self.nodes, self.nodes[1:]):
                style = (
                    ' [style=dashed color=red label="eliminated"]'
                    if (a.index, b.index, arr) in eliminated
                    else ""
                )
                lines.append(f"    {arr}_{a.index} -> {arr}_{b.index}{style};")
            lines.append("  }")
        lines.append("}")
        return "\n".join(lines)

    def eliminated_edges(self) -> List[Tuple[int, int, str]]:
        """(from-node index, to-node index, array) pairs whose boundary
        carries no communication (Valid -> Invalid rule)."""
        out = []
        for a, b in zip(self.nodes, self.nodes[1:]):
            for arr in self.arrays:
                if a.attrs.get(arr) == VALID and b.attrs.get(arr) == INVALID:
                    out.append((a.index, b.index, arr))
        return out

    def delayed_spans(self) -> List[Tuple[int, int, str]]:
        """(valid-node, next-valid-node, array) spans across Propagate
        nodes where communication is delayed (the Figure 7 array-A case)."""
        out = []
        for arr in self.arrays:
            valid_idx = [
                n.index for n in self.nodes if n.attrs.get(arr) == VALID
            ]
            for a, b in zip(valid_idx, valid_idx[1:]):
                if b - a > 1 and all(
                    self.nodes[i].attrs.get(arr) == PROPAGATE
                    for i in range(a + 1, b)
                ):
                    out.append((a, b, arr))
        return out


def _flatten(
    regions: Sequence[Region], loop_path: Tuple[int, ...], out: List
) -> None:
    for r in regions:
        if isinstance(r, SeqBlock):
            out.append(("seq", r.region_id, r.stmts, loop_path))
        elif isinstance(r, ParRegion):
            out.append(("par", r.region_id, [r.loop], loop_path))
        elif isinstance(r, SeqLoop):
            _flatten(r.body, loop_path + (r.region_id,), out)
        elif isinstance(r, IfRegion):
            _flatten(r.then, loop_path, out)
            for _c, blk in r.elifs:
                _flatten(blk, loop_path, out)
            _flatten(r.orelse, loop_path, out)


def build_avpg(
    regions: Sequence[Region],
    symtab: SymbolTable,
    live_out: Optional[Set[str]] = None,
) -> Avpg:
    """Construct the AVPG for a region tree.

    ``live_out=None`` means every array is observable at program exit (the
    safe default); pass an explicit set to enable dead-array elimination.
    """
    arrays = {s.name for s in symtab.arrays()}
    flat: List = []
    _flatten(regions, (), flat)

    nodes: List[AvpgNode] = []
    for idx, (kind, region_id, stmts, loop_path) in enumerate(flat):
        label = f"{'loop' if kind == 'par' else 'block'}{region_id}"
        nodes.append(
            AvpgNode(
                index=idx,
                region_id=region_id,
                label=label,
                kind=kind,
                loop_path=loop_path,
                uses=_array_uses(stmts, arrays),
            )
        )

    lo = set(arrays) if live_out is None else set(live_out)
    graph = Avpg(nodes=nodes, arrays=sorted(arrays), live_out=lo)

    # Attributes: Valid if used; else Propagate if used later (including
    # live-out at exit); else Invalid.
    for i, node in enumerate(nodes):
        for arr in graph.arrays:
            used = node.uses.get(arr, (False, False))
            if used[0] or used[1]:
                node.attrs[arr] = VALID
                continue
            later = arr in lo or any(
                (n.index > i or (
                    n.loop_path
                    and node.loop_path[: len(n.loop_path)] == n.loop_path
                ))
                and (n.uses.get(arr, (False, False))[0]
                     or n.uses.get(arr, (False, False))[1])
                for n in nodes
            )
            node.attrs[arr] = PROPAGATE if later else INVALID
    return graph
