"""Seeded-defect pragmas for the verifier/sanitizer test corpus.

``C$BUG`` comment lines (tests/badprogs, docs/CHECK.md) mutate a freshly
planned program's transfer schedule *after* the postpass, planting one
class of communication defect per program so `repro check` (RV1xx–RV3xx)
and the ``--sanitize`` shadow-access mode have real bugs to catch.  The
planner itself never produces these plans — that is the point: each
pragma undoes one guarantee the planner establishes.

Pragmas (one per line, anywhere in the source)::

    C$BUG DROP-SCATTER <ARRAY> <RANK>   scatter transfers to one rank vanish
    C$BUG DROP-COLLECT <ARRAY>          all collect transfers vanish
    C$BUG DROP-FENCE <SCATTER|COLLECT>  the fence closing that phase vanishes
    C$BUG KEEP-GRAIN <ARRAY>            undo the §5.6 collect demotion

Each pragma applies to the first parallel region where it has an effect
and raises :class:`ValueError` when it has none — a corpus program whose
planted bug evaporated (e.g. after a planner change) must fail loudly,
not silently go green.
"""

from __future__ import annotations

from typing import List

from repro.compiler.postpass.scatter import (
    RegionCommPlan,
    _mask_to_transfers,
    _transfers_mask,
)

__all__ = ["apply_bug_pragmas"]

#: Pragma sentinel scanned for by :func:`repro.compiler.pipeline.compile_source`.
PRAGMA = "C$BUG"


def _pragma_lines(source: str) -> List[List[str]]:
    out = []
    for line in source.splitlines():
        stripped = line.strip()
        if stripped.upper().startswith(PRAGMA):
            out.append(stripped[len(PRAGMA) :].split())
    return out


def _sorted_plans(program) -> List[RegionCommPlan]:
    return [program.plans[rid] for rid in sorted(program.plans)]


def _drop_scatter(program, array: str, rank: int) -> None:
    for plan in _sorted_plans(program):
        aplan = plan.arrays.get(array)
        if aplan is not None and aplan.scatter.get(rank):
            del aplan.scatter[rank]
            # A broadcast wave would still reach the rank; make the drop real.
            aplan.scatter_bcast = False
            plan.notes.append(
                f"bugseed: dropped scatter of {array} to rank {rank}"
            )
            return
    raise ValueError(
        f"C$BUG DROP-SCATTER {array} {rank}: no region scatters it"
    )


def _drop_collect(program, array: str) -> None:
    for plan in _sorted_plans(program):
        aplan = plan.arrays.get(array)
        if aplan is not None and aplan.collect:
            aplan.collect.clear()
            plan.notes.append(f"bugseed: dropped collect of {array}")
            return
    raise ValueError(f"C$BUG DROP-COLLECT {array}: no region collects it")


def _drop_fence(program, phase: str) -> None:
    for plan in _sorted_plans(program):
        if phase == "SCATTER" and any(
            a.scatter for a in plan.arrays.values()
        ):
            plan.scatter_fence = False
            plan.notes.append("bugseed: dropped the scatter fence")
            return
        if phase == "COLLECT" and any(
            a.collect for a in plan.arrays.values()
        ):
            plan.collect_fence = False
            plan.notes.append("bugseed: dropped the collect fence")
            return
    raise ValueError(f"C$BUG DROP-FENCE {phase}: no region has that phase")


def _keep_grain(program, array: str) -> None:
    for plan in _sorted_plans(program):
        aplan = plan.arrays.get(array)
        if aplan is None or aplan.demotion_reason is None:
            continue
        size = program.env.sizes[array]
        for rank, transfers in list(aplan.collect.items()):
            mask = _transfers_mask(transfers, size)
            aplan.collect[rank] = _mask_to_transfers(mask, aplan.grain)
        aplan.collect_grain = aplan.grain
        aplan.demotion_reason = None
        plan.notes.append(
            f"bugseed: kept {aplan.grain} collect grain for {array} "
            "(demotion undone)"
        )
        return
    raise ValueError(f"C$BUG KEEP-GRAIN {array}: no demoted collect found")


def apply_bug_pragmas(program, source: str) -> None:
    """Apply every ``C$BUG`` pragma in ``source`` to ``program`` in place."""
    for words in _pragma_lines(source):
        if not words:
            raise ValueError("empty C$BUG pragma")
        op, args = words[0].upper(), words[1:]
        if op == "DROP-SCATTER" and len(args) == 2:
            _drop_scatter(program, args[0].upper(), int(args[1]))
        elif op == "DROP-COLLECT" and len(args) == 1:
            _drop_collect(program, args[0].upper())
        elif op == "DROP-FENCE" and len(args) == 1 and args[0].upper() in (
            "SCATTER",
            "COLLECT",
        ):
            _drop_fence(program, args[0].upper())
        elif op == "KEEP-GRAIN" and len(args) == 1:
            _keep_grain(program, args[0].upper())
        else:
            raise ValueError(f"unknown C$BUG pragma: {' '.join(words)}")
