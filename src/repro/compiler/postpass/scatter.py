"""Data scattering and collecting (paper §3, §5.4): the executable
communication planner.

Per parallel region and per array the planner derives, for every rank,
the regions to **scatter** (master → slave before the region) and to
**collect** (slave → master after it), following the summary-set rule:

* ReadOnly   → data-scattering only;
* WriteFirst → data-collecting only;
* ReadWrite  → both.

The plans are lists of :class:`~repro.compiler.postpass.granularity.Transfer`
objects at the requested granularity, with

* **AVPG filtering** — a scatter is skipped when the slave's copy of the
  needed region is already valid (nothing changed it since the last
  scatter), and a collect is skipped when the AVPG proves the array dead
  after the region (Valid → Invalid edge);
* **broadcast detection** — when every slave needs the same region (e.g.
  the B matrix of MM), the per-slave puts fuse into one V-Bus hardware
  broadcast (§2.2's "collective facilities");
* **collect demotion** — approximate collect grains that would overwrite
  another rank's results, or carry stale elements, fall back to fine
  grain (§5.6's bound check);
* exact **validity masks** per (array, rank), which make all of the above
  checks precise rather than heuristic.

Triangular (cyclic-partitioned) regions whose per-rank LMADs are widened
are re-derived iteration-by-iteration so collects stay exact.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.compiler.analysis.access import AccessError, LoopCtx, loop_context
from repro.compiler.analysis.lmad import LMAD
from repro.compiler.analysis.summary import (
    READ_ONLY,
    READ_WRITE,
    WRITE_FIRST,
    SummarySet,
    summarize_statements,
)
from repro.compiler.frontend import fast as F
from repro.compiler.frontend.symtab import SymbolTable
from repro.compiler.postpass.avpg import Avpg, build_avpg
from repro.compiler.postpass.env import MpiEnvironment
from repro.compiler.postpass.granularity import (
    COARSE,
    FINE,
    GRAINS,
    MIDDLE,
    Transfer,
    plan_transfers,
)
from repro.compiler.postpass.partition import (
    Partition,
    PartitionError,
    choose_strategy,
    parse_strategy,
    split_loop,
)
from repro.compiler.postpass.spmd import (
    IfRegion,
    ParRegion,
    Region,
    SeqBlock,
    SeqLoop,
)

__all__ = ["ArrayCommPlan", "RegionCommPlan", "CommPlanner", "PlanError"]

#: Iteration cap for the exact per-iteration (triangular) fallback.
_PER_ITER_CAP = 8192


class PlanError(RuntimeError):
    """The region cannot be planned safely."""


@dataclass
class ArrayCommPlan:
    """Communication plan of one array across one parallel region."""

    array: str
    itemsize: int
    classification: str
    grain: str
    #: rank -> scatter transfers (master -> rank).  Rank 0 never appears.
    scatter: Dict[int, List[Transfer]] = field(default_factory=dict)
    #: rank -> reason the scatter was skipped (AVPG validity).
    scatter_skipped: Dict[int, str] = field(default_factory=dict)
    #: One broadcast serves all slaves (plans in ``scatter`` are identical).
    scatter_bcast: bool = False
    #: rank -> collect transfers (rank -> master).  Rank 0 never appears.
    collect: Dict[int, List[Transfer]] = field(default_factory=dict)
    collect_skipped: Optional[str] = None
    #: Collect grain after the §5.6 demotion check.
    collect_grain: str = FINE
    demotion_reason: Optional[str] = None

    def scatter_messages(self) -> int:
        if self.scatter_bcast:
            return len(next(iter(self.scatter.values()), []))
        return sum(len(ts) for ts in self.scatter.values())

    def collect_messages(self) -> int:
        return sum(len(ts) for ts in self.collect.values())

    def scatter_bytes(self) -> int:
        total = 0
        for ts in self.scatter.values():
            total += sum(t.count for t in ts) * self.itemsize
            if self.scatter_bcast:
                break  # one wave serves everyone
        return total

    def collect_bytes(self) -> int:
        return sum(
            sum(t.count for t in ts) * self.itemsize
            for ts in self.collect.values()
        )


@dataclass
class RegionCommPlan:
    """All communication around one parallel region."""

    region_id: int
    arrays: Dict[str, ArrayCommPlan] = field(default_factory=dict)
    #: Scalars slaves need before executing the region.
    scalars_in: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: Fence epochs closing the scatter and collect phases (§3's
    #: scatter / fence / compute / collect / fence schedule).  Always
    #: True for planner-produced plans; cleared only by the seeded-bug
    #: pragmas (``C$BUG DROP-FENCE``) so the RV3xx verifier checks and
    #: the sanitizer have something real to catch.
    scatter_fence: bool = True
    collect_fence: bool = True

    def total_messages(self) -> int:
        return sum(
            a.scatter_messages() + a.collect_messages()
            for a in self.arrays.values()
        )

    def total_bytes(self) -> int:
        return sum(
            a.scatter_bytes() + a.collect_bytes() for a in self.arrays.values()
        )


def _unique_lmads(lmads: Sequence[LMAD]) -> List[LMAD]:
    """Drop duplicate and fully-contained descriptors (same region planned
    once, not once per referencing statement)."""
    uniq: List[LMAD] = []
    seen = set()
    for l in lmads:
        key = (l.base, l.dims)
        if key in seen:
            continue
        seen.add(key)
        uniq.append(l)
    # Largest first; keep only descriptors no kept one already covers.
    uniq.sort(key=lambda l: l.nominal_count, reverse=True)
    out: List[LMAD] = []
    for l in uniq:
        if not any(kept.contains(l) for kept in out):
            out.append(l)
    return out


def _mask_of(lmads: Sequence[LMAD], size: int) -> np.ndarray:
    m = np.zeros(size, dtype=bool)
    for l in lmads:
        m |= l.mask(size)
    return m


def _transfers_mask(transfers: Sequence[Transfer], size: int) -> np.ndarray:
    m = np.zeros(size, dtype=bool)
    for t in transfers:
        m[t.indices()] = True
    return m


def _mask_runs(mask: np.ndarray) -> List[Tuple[int, int]]:
    """(start, length) of each maximal run of True."""
    idx = np.flatnonzero(mask)
    if not len(idx):
        return []
    breaks = np.flatnonzero(np.diff(idx) > 1)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [len(idx) - 1]))
    return [(int(idx[s]), int(idx[e] - idx[s] + 1)) for s, e in zip(starts, ends)]


def _mask_to_transfers(mask: np.ndarray, grain: str) -> List[Transfer]:
    """Transfers covering a mask: exact runs (fine/middle) or bounding."""
    runs = _mask_runs(mask)
    if not runs:
        return []
    if grain == COARSE:
        first = runs[0][0]
        last = runs[-1][0] + runs[-1][1] - 1
        return [Transfer(offset=first, count=last - first + 1, stride=1)]
    return [Transfer(offset=o, count=n, stride=1) for o, n in runs]


@dataclass
class _RankRegions:
    """Per-rank access info for one array in one region."""

    read_mask: np.ndarray
    write_mask: np.ndarray
    write_lmads: List[LMAD]
    read_lmads: List[LMAD]
    writes_exact: bool


class CommPlanner:
    """Plans all scatter/collect communication for a region tree."""

    def __init__(
        self,
        symtab: SymbolTable,
        regions: List[Region],
        env: MpiEnvironment,
        nprocs: int,
        grain: str = COARSE,
        partition_strategy: str = "auto",
        live_out: Optional[Set[str]] = None,
        use_avpg: bool = True,
        grain_map: Optional[Dict[int, str]] = None,
        partition_map: Optional[Dict[int, str]] = None,
    ):
        if grain not in GRAINS:
            raise PlanError(f"unknown granularity {grain!r}")
        for rid, g in (grain_map or {}).items():
            if g not in GRAINS:
                raise PlanError(f"unknown granularity {g!r} for region {rid}")
        for rid, spec in (partition_map or {}).items():
            try:
                parse_strategy(spec)
            except ValueError as exc:
                raise PartitionError(str(exc), region_id=rid) from None
        self.use_avpg = use_avpg
        self.symtab = symtab
        self.regions = regions
        self.env = env
        self.nprocs = nprocs
        self.grain = grain
        #: Per-region grain overrides (mixed-grain plans, docs/AUTOTUNE.md).
        self.grain_map: Dict[int, str] = dict(grain_map or {})
        self.partition_strategy = partition_strategy
        #: Per-region partition-strategy overrides (docs/PARTITION.md).
        self.partition_map: Dict[int, str] = dict(partition_map or {})
        self.avpg: Avpg = build_avpg(regions, symtab, live_out)
        #: (array) -> (nprocs, size) validity mask: slave copy current?
        self._valid: Dict[str, np.ndarray] = {
            name: np.zeros((nprocs, env.sizes[name]), dtype=bool)
            for name in env.window_arrays
        }
        for name in env.window_arrays:
            self._valid[name][0, :] = True  # master memory is the reference
        self.plans: Dict[int, RegionCommPlan] = {}

    # -- public ------------------------------------------------------------
    def plan(self) -> Dict[int, RegionCommPlan]:
        self._plan_list(self.regions)
        return self.plans

    # -- traversal ----------------------------------------------------------
    def _plan_list(self, regions: Sequence[Region]) -> None:
        for region in regions:
            if isinstance(region, SeqBlock):
                self._seq_block(region)
            elif isinstance(region, ParRegion):
                self._par_region(region)
            elif isinstance(region, SeqLoop):
                self._seq_loop(region)
            elif isinstance(region, IfRegion):
                self._if_region(region)

    def _seq_loop(self, node: SeqLoop) -> None:
        # Meet over the back edge: run the body's state transitions on a
        # scratch copy, AND the result into the entry state, then plan.
        for _ in range(2):
            scratch = {k: v.copy() for k, v in self._valid.items()}
            saved_plans = self.plans
            self.plans = {}
            self._plan_list(node.body)
            self.plans = saved_plans
            changed = False
            for k in self._valid:
                met = scratch[k] & self._valid[k]
                if not np.array_equal(met, self._valid[k]):
                    changed = True
                met_entry = met.copy()
                self._valid[k] = met_entry
            if not changed:
                break
        # Real pass from the met state.
        self._plan_list(node.body)

    def _if_region(self, node: IfRegion) -> None:
        entry = {k: v.copy() for k, v in self._valid.items()}
        exits = []
        branches = [node.then] + [b for _c, b in node.elifs] + [node.orelse]
        for branch in branches:
            self._valid = {k: v.copy() for k, v in entry.items()}
            self._plan_list(branch)
            exits.append(self._valid)
        # Meet of all exits (orelse may be empty -> entry state).
        met = {k: v.copy() for k, v in exits[0].items()}
        for ex in exits[1:]:
            for k in met:
                met[k] &= ex[k]
        self._valid = met

    # -- sequential blocks --------------------------------------------------
    def _seq_block(self, block: SeqBlock) -> None:
        summary = summarize_statements(block.stmts, self.symtab, (), {})
        for name, arr in summary.arrays.items():
            if name not in self._valid:
                continue  # master-private array
            if arr.writes:
                wmask = _mask_of(arr.writes, self.env.sizes[name])
                self._valid[name][1:, :] &= ~wmask

    # -- parallel regions -----------------------------------------------------
    def _par_region(self, region: ParRegion) -> None:
        try:
            self._par_region_inner(region)
        except PartitionError:
            raise
        except PlanError as exc:
            if region.region_id in self.partition_map:
                # The user (or the tuner) explicitly pinned this region's
                # strategy; demoting the loop to serial would silently
                # discard that request.  Escalate with provenance instead.
                raise PartitionError(
                    f"override {self.partition_map[region.region_id]!r} "
                    f"cannot be planned safely: {exc}",
                    region_id=region.region_id,
                    loop_var=region.loop.var,
                ) from None
            exc.loop = region.loop  # let the driver demote and retry
            raise

    def _par_region_inner(self, region: ParRegion) -> None:
        loop = region.loop
        plan = RegionCommPlan(region_id=region.region_id)
        self.plans[region.region_id] = plan

        try:
            pctx = loop_context(loop, (), {})
        except AccessError as exc:
            raise PlanError(
                f"parallel loop DO {loop.var}: bounds are not compile-time "
                f"constants ({exc}); the front end should have kept it serial"
            )
        requested = self.partition_map.get(
            region.region_id, self.partition_strategy
        )
        try:
            spec = choose_strategy(loop, requested)
            sname, sdim = parse_strategy(spec)
        except PartitionError:
            raise
        except ValueError as exc:
            raise PartitionError(
                str(exc), region_id=region.region_id, loop_var=loop.var
            ) from None
        if sdim:
            try:
                sctx = loop_context(split_loop(loop, sdim), (), {})
            except (AccessError, ValueError) as exc:
                raise PartitionError(
                    f"split dimension {sdim}: {exc}",
                    region_id=region.region_id,
                    loop_var=loop.var,
                ) from None
            partition = Partition(
                pctx=sctx,
                nprocs=self.nprocs,
                strategy=sname,
                split_dim=sdim,
            )
        else:
            partition = Partition(
                pctx=pctx, nprocs=self.nprocs, strategy=sname
            )
        region.partition = partition
        region.comm_plan = plan

        # Region-level classification.
        region_summary = summarize_statements(loop.body, self.symtab, [pctx], {})
        plan.scalars_in = sorted(
            s.name
            for s in region_summary.scalars.values()
            if s.read and s.name in self.env.replicated_scalars
        )

        if self.nprocs == 1:
            return

        per_rank = self._rank_regions(loop, partition, region_summary)
        region_grain = self.grain_map.get(region.region_id, self.grain)

        for name, arr in sorted(region_summary.arrays.items()):
            cls = arr.classification
            aplan = ArrayCommPlan(
                array=name,
                itemsize=self.env.itemsize.get(name, 8),
                classification=cls,
                grain=region_grain,
            )
            plan.arrays[name] = aplan
            size = self.env.sizes[name]
            ranks_info = per_rank.get(name, {})

            scattered: Dict[int, np.ndarray] = {}
            if cls in (READ_ONLY, READ_WRITE):
                self._plan_scatter(aplan, ranks_info, size, plan, scattered)
            if cls in (WRITE_FIRST, READ_WRITE):
                self._plan_collect(
                    aplan, ranks_info, size, plan, scattered, region.region_id
                )

            # State update: scatters refresh validity; everyone's writes
            # invalidate everyone else's copies; own writes stay valid.
            valid = self._valid[name]
            for r, smask in scattered.items():
                valid[r] |= smask
            all_writes = np.zeros(size, dtype=bool)
            for r, info in ranks_info.items():
                all_writes |= info.write_mask
            for r in range(self.nprocs):
                own = ranks_info[r].write_mask if r in ranks_info else None
                valid[r] &= ~all_writes
                if own is not None:
                    valid[r] |= own
            # Collects restore the master copy (row 0 is always reference).
            valid[0, :] = True

    # -- per-rank access info -----------------------------------------------
    def _split_frame(
        self, loop: F.Do, partition: Partition
    ) -> Tuple[Sequence[F.Stmt], List[LoopCtx]]:
        """(statements, enclosing full contexts) around the split loop.

        At ``split_dim`` 0 this is the parallel loop's own body with no
        enclosing context (the historical shape).  Deeper splits
        summarize the split loop's body under the *full* contexts of the
        outer dimensions — every rank runs those in their entirety.
        """
        if partition.split_dim == 0:
            return loop.body, []
        base: List[LoopCtx] = []
        cur = loop
        for _ in range(partition.split_dim):
            base.append(loop_context(cur, tuple(base), {}))
            cur = cur.body[0]
        return cur.body, base

    def _rank_regions(
        self,
        loop: F.Do,
        partition: Partition,
        region_summary: SummarySet,
    ) -> Dict[str, Dict[int, _RankRegions]]:
        out: Dict[str, Dict[int, _RankRegions]] = {
            name: {} for name in region_summary.arrays
        }
        stmts, base = self._split_frame(loop, partition)
        for r in range(self.nprocs):
            rctx = partition.rank_ctx(r)
            if rctx is None:
                continue
            summary = summarize_statements(
                stmts, self.symtab, base + [rctx], {}
            )
            needs_exact = any(
                any(not l.exact for l in arr.writes)
                for arr in summary.arrays.values()
            )
            if needs_exact:
                masks = self._per_iteration_masks(loop, rctx, stmts, base)
            for name, arr in summary.arrays.items():
                size = self.env.sizes[name]
                writes_exact = all(l.exact for l in arr.writes)
                if writes_exact:
                    writes = _unique_lmads(arr.writes)
                    reads = _unique_lmads(arr.reads)
                    rr = _RankRegions(
                        read_mask=_mask_of(reads, size),
                        write_mask=_mask_of(writes, size),
                        write_lmads=writes,
                        read_lmads=reads,
                        writes_exact=True,
                    )
                else:
                    rmask, wmask = masks.get(
                        name,
                        (np.zeros(size, dtype=bool), np.zeros(size, dtype=bool)),
                    )
                    # Reads stay conservative (safe); writes become exact.
                    rr = _RankRegions(
                        read_mask=_mask_of(arr.reads, size),
                        write_mask=wmask,
                        write_lmads=[],
                        read_lmads=_unique_lmads(arr.reads),
                        writes_exact=False,
                    )
                out.setdefault(name, {})[r] = rr
        return out

    def _per_iteration_masks(
        self,
        loop: F.Do,
        rctx: LoopCtx,
        stmts: Sequence[F.Stmt],
        base: Sequence[LoopCtx],
    ) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
        """Exact per-rank masks for widened (triangular) regions."""
        if rctx.count > _PER_ITER_CAP:
            raise PlanError(
                f"DO {loop.var}: {rctx.count} iterations exceed the exact "
                f"re-derivation cap for triangular regions"
            )
        masks: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        for v in rctx.values():
            summary = summarize_statements(
                stmts, self.symtab, tuple(base), {rctx.var: v}
            )
            for name, arr in summary.arrays.items():
                size = self.env.sizes[name]
                if name not in masks:
                    masks[name] = (
                        np.zeros(size, dtype=bool),
                        np.zeros(size, dtype=bool),
                    )
                rmask, wmask = masks[name]
                for l in arr.reads:
                    rmask |= l.mask(size)
                for l in arr.writes:
                    if not l.exact:
                        raise PlanError(
                            f"{name}: write region not exact even with "
                            f"{rctx.var}={v} bound"
                        )
                    wmask |= l.mask(size)
        return masks

    # -- scatter ------------------------------------------------------------
    def _plan_scatter(
        self,
        aplan: ArrayCommPlan,
        ranks_info: Dict[int, _RankRegions],
        size: int,
        plan: RegionCommPlan,
        scattered: Dict[int, np.ndarray],
    ) -> None:
        valid = self._valid[aplan.array]
        for r, info in sorted(ranks_info.items()):
            if r == 0:
                continue  # master already holds its data
            if not info.read_mask.any():
                continue
            need = info.read_mask & ~valid[r]
            if self.use_avpg and not need.any():
                aplan.scatter_skipped[r] = "AVPG: slave copy already valid"
                plan.notes.append(
                    f"{aplan.array}: scatter to rank {r} eliminated (valid)"
                )
                continue
            if info.read_lmads:
                transfers: List[Transfer] = []
                for l in info.read_lmads:
                    transfers.extend(plan_transfers(l, aplan.grain))
            else:  # pragma: no cover - reads always have lmads
                transfers = _mask_to_transfers(info.read_mask, aplan.grain)
            aplan.scatter[r] = transfers
            scattered[r] = _transfers_mask(transfers, size)

        # Broadcast detection: every slave gets the identical plan.
        slave_plans = [aplan.scatter.get(r) for r in range(1, self.nprocs)]
        if (
            len(slave_plans) > 1
            and all(p is not None for p in slave_plans)
            and all(p == slave_plans[0] for p in slave_plans[1:])
        ):
            aplan.scatter_bcast = True
            plan.notes.append(
                f"{aplan.array}: identical regions on all slaves -> broadcast"
            )

    # -- collect -------------------------------------------------------------
    def _plan_collect(
        self,
        aplan: ArrayCommPlan,
        ranks_info: Dict[int, _RankRegions],
        size: int,
        plan: RegionCommPlan,
        scattered: Dict[int, np.ndarray],
        region_id: int,
    ) -> None:
        if self.use_avpg and not self.avpg.reads_after(region_id, aplan.array):
            aplan.collect_skipped = "AVPG: array dead after region"
            plan.notes.append(
                f"{aplan.array}: collect eliminated (Valid->Invalid edge)"
            )
            return

        # Writes of different ranks must be disjoint (the loop is parallel).
        ranks = sorted(r for r in ranks_info if ranks_info[r].write_mask.any())
        for i, r1 in enumerate(ranks):
            for r2 in ranks[i + 1 :]:
                if (ranks_info[r1].write_mask & ranks_info[r2].write_mask).any():
                    raise PlanError(
                        f"{aplan.array}: ranks {r1} and {r2} write "
                        "overlapping regions in a parallel loop"
                    )

        grain = aplan.grain
        transfers_by_rank = self._collect_transfers(ranks_info, grain)
        demote_reason = self._collect_safety(
            aplan.array, ranks_info, transfers_by_rank, scattered, size
        )
        if demote_reason is not None and grain != FINE:
            aplan.demotion_reason = demote_reason
            plan.notes.append(
                f"{aplan.array}: collect demoted to fine grain ({demote_reason})"
            )
            grain = FINE
            transfers_by_rank = self._collect_transfers(ranks_info, grain)
            residual = self._collect_safety(
                aplan.array, ranks_info, transfers_by_rank, scattered, size
            )
            if residual is not None:
                raise PlanError(
                    f"{aplan.array}: even fine-grain collect unsafe ({residual})"
                )
        elif demote_reason is not None:
            raise PlanError(
                f"{aplan.array}: fine-grain collect unsafe ({demote_reason})"
            )
        aplan.collect_grain = grain
        for r, ts in transfers_by_rank.items():
            if r != 0 and ts:
                aplan.collect[r] = ts

    def _collect_transfers(
        self, ranks_info: Dict[int, _RankRegions], grain: str
    ) -> Dict[int, List[Transfer]]:
        out: Dict[int, List[Transfer]] = {}
        for r, info in ranks_info.items():
            if not info.write_mask.any():
                continue
            if info.writes_exact and info.write_lmads:
                if grain == COARSE:
                    # One bounding transfer over the union of the regions.
                    out[r] = _mask_to_transfers(info.write_mask, COARSE)
                else:
                    ts: List[Transfer] = []
                    for l in info.write_lmads:
                        ts.extend(plan_transfers(l, grain))
                    out[r] = ts
            else:
                out[r] = _mask_to_transfers(info.write_mask, grain)
        return out

    def _collect_safety(
        self,
        array: str,
        ranks_info: Dict[int, _RankRegions],
        transfers_by_rank: Dict[int, List[Transfer]],
        scattered: Dict[int, np.ndarray],
        size: int,
    ) -> Optional[str]:
        """The §5.6 bound check, exact: None when safe, else a reason."""
        inflated = {
            r: _transfers_mask(ts, size) for r, ts in transfers_by_rank.items()
        }
        ranks = sorted(inflated)
        for i, r1 in enumerate(ranks):
            for r2 in ranks[i + 1 :]:
                if (inflated[r1] & inflated[r2]).any():
                    return f"regions of ranks {r1} and {r2} overlap"
        for r in ranks:
            if r == 0:
                continue
            # Elements a rank sends without having written must hold
            # current values: written by the rank, scattered to it in this
            # region, or still valid from an earlier scatter.
            extra = inflated[r] & ~ranks_info[r].write_mask
            held = self._valid[array][r] | ranks_info[r].write_mask
            if r in scattered:
                held = held | scattered[r]
            uncovered = extra & ~held
            if uncovered.any():
                return (
                    f"rank {r} would send {int(uncovered.sum())} stale "
                    "element(s)"
                )
        return None
