"""SPMDization (paper §5.5): carve the program into a region tree.

The SPMD target program alternates **sequential regions** (master-only
statement blocks, each ending at a synchronization point where barrier +
scalar-environment broadcast occur) and **parallel regions** (partitioned
loops wrapped in scatter / fence / compute / collect / fence / barrier).
Sequential control flow that *contains* parallel regions (time-stepping
loops, IF guards) becomes replicated control nodes: every rank evaluates
the condition on its synchronized scalar environment so all ranks agree
on the barrier schedule — the master/slave execution-flow control of §3.

The region tree is the shared currency of the AVPG, the communication
planner, the code generator, and the runtime executor.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.compiler.frontend import fast as F

__all__ = [
    "SeqBlock",
    "ParRegion",
    "SeqLoop",
    "IfRegion",
    "Region",
    "build_regions",
    "iter_regions",
    "contains_parallel",
]


@dataclass
class SeqBlock:
    """Master-only straight-line statements (may include serial loops)."""

    stmts: List[F.Stmt]
    region_id: int = -1


@dataclass
class ParRegion:
    """One outermost parallel loop; plans attached by the planner."""

    loop: F.Do
    region_id: int = -1
    #: Filled by the postpass driver.
    partition: object = None
    comm_plan: object = None


@dataclass
class SeqLoop:
    """A serial loop whose body contains parallel regions."""

    loop: F.Do  # bounds/var only; body is represented by ``body`` below
    body: List["Region"] = field(default_factory=list)
    region_id: int = -1


@dataclass
class IfRegion:
    """Replicated conditional containing parallel regions."""

    cond: F.Expr
    then: List["Region"] = field(default_factory=list)
    elifs: List[Tuple[F.Expr, List["Region"]]] = field(default_factory=list)
    orelse: List["Region"] = field(default_factory=list)
    region_id: int = -1


Region = Union[SeqBlock, ParRegion, SeqLoop, IfRegion]


def contains_parallel(stmts: List[F.Stmt]) -> bool:
    return any(
        isinstance(s, F.Do) and s.parallel for s in F.walk_stmts(stmts)
    )


def build_regions(stmts: List[F.Stmt], _ids=None) -> List[Region]:
    """Partition a statement list into the region tree."""
    ids = _ids if _ids is not None else itertools.count()
    out: List[Region] = []
    pending: List[F.Stmt] = []

    def flush():
        if pending:
            out.append(SeqBlock(stmts=list(pending), region_id=next(ids)))
            pending.clear()

    for stmt in stmts:
        if isinstance(stmt, F.Do) and stmt.parallel:
            flush()
            out.append(ParRegion(loop=stmt, region_id=next(ids)))
        elif isinstance(stmt, F.Do) and contains_parallel(stmt.body):
            flush()
            node = SeqLoop(loop=stmt, region_id=next(ids))
            node.body = build_regions(stmt.body, ids)
            out.append(node)
        elif isinstance(stmt, F.If) and (
            contains_parallel(stmt.then)
            or any(contains_parallel(b) for _c, b in stmt.elifs)
            or contains_parallel(stmt.orelse)
        ):
            flush()
            node = IfRegion(cond=stmt.cond, region_id=next(ids))
            node.then = build_regions(stmt.then, ids)
            node.elifs = [(c, build_regions(b, ids)) for c, b in stmt.elifs]
            node.orelse = build_regions(stmt.orelse, ids)
            out.append(node)
        else:
            pending.append(stmt)
    flush()
    return out


def iter_regions(regions: List[Region]):
    """Depth-first iteration over all regions (control nodes included)."""
    for r in regions:
        yield r
        if isinstance(r, SeqLoop):
            yield from iter_regions(r.body)
        elif isinstance(r, IfRegion):
            yield from iter_regions(r.then)
            for _c, blk in r.elifs:
                yield from iter_regions(blk)
            yield from iter_regions(r.orelse)
