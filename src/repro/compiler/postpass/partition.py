"""Work partitioning (paper §5.3, extended with per-region overrides).

Transforms a parallel loop into statically scheduled per-rank iteration
sub-spaces: **block** assignment for rectangular loops, **cyclic** for
triangular ones (where inner loop bounds depend on the parallel index, so
block chunks would be badly imbalanced).  Every rank — master included —
takes a share, matching the measured 4-node speedups above 3x.

The paper hard-codes that policy.  This module also understands explicit
**strategy specs** so the per-region partition autotuner
(docs/PARTITION.md) can override it where the trace disagrees:

* ``"auto"`` — the §5.3 rule (cyclic for triangular, block otherwise);
* ``"block"`` / ``"cyclic"`` — force a strategy on the parallel loop;
* ``"block:D"`` / ``"cyclic:D"`` — partition the loop at **split
  dimension** ``D`` of a perfect rectangular nest instead of the
  outermost one (``D = 0``, the default).  Splitting dimension 1 of a
  column-major 2D sweep turns per-rank column segments into contiguous
  chunks — a communication-shape change no outer-dimension strategy can
  express.

Every strategy computes the same iteration set, each iteration exactly
once, so partitioning is results-invariant; only load balance and the
shape of the scatter/collect regions change.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.compiler.analysis.access import LoopCtx
from repro.compiler.frontend import fast as F

__all__ = [
    "Partition",
    "PartitionError",
    "STRATEGIES",
    "choose_strategy",
    "is_triangular",
    "parse_strategy",
    "split_candidates",
    "split_loop",
]

#: Base partition strategies (split dimensions are orthogonal).
STRATEGIES = ("block", "cyclic")


class PartitionError(ValueError):
    """A partition request that cannot be honored, with provenance.

    Raised by the planner (and surfaced verbatim by the CLI) so a bad
    per-region override names the region it came from instead of dying
    as a bare ``ValueError`` deep inside the postpass.
    """

    def __init__(self, detail: str, region_id: Optional[int] = None,
                 loop_var: Optional[str] = None):
        self.detail = detail
        self.region_id = region_id
        self.loop_var = loop_var
        where = ""
        if region_id is not None:
            where = f"region {region_id}"
            if loop_var:
                where += f" (DO {loop_var})"
            where += ": "
        super().__init__(where + detail)


def parse_strategy(spec: str) -> Tuple[str, int]:
    """Split a strategy spec into ``(strategy, split_dim)``.

    ``"block"`` → ``("block", 0)``; ``"cyclic:1"`` → ``("cyclic", 1)``.
    ``"auto"`` is *not* a concrete strategy — resolve it through
    :func:`choose_strategy` first.  Raises :class:`ValueError` on
    anything else.
    """
    if not isinstance(spec, str):
        raise ValueError(f"partition strategy must be a string, got {spec!r}")
    name, sep, dim_s = spec.partition(":")
    if name not in STRATEGIES:
        raise ValueError(
            f"unknown partition strategy {spec!r} "
            f"(want one of {STRATEGIES}, optionally ':DIM')"
        )
    if not sep:
        return name, 0
    if not dim_s.isdigit():
        raise ValueError(f"bad split dimension in {spec!r} (want an integer)")
    return name, int(dim_s)


def is_triangular(loop: F.Do) -> bool:
    """True when an inner loop's bounds reference the parallel index."""
    for stmt in F.walk_stmts(loop.body):
        if isinstance(stmt, F.Do):
            for bound in (stmt.lo, stmt.hi):
                if any(
                    isinstance(e, F.Var) and e.name == loop.var
                    for e in F.walk_exprs(bound)
                ):
                    return True
    return False


def _const_bounds(loop: F.Do) -> bool:
    """Bounds reference no variables at all (compile-time rectangular)."""
    for bound in (loop.lo, loop.hi, loop.step):
        if any(isinstance(e, F.Var) for e in F.walk_exprs(bound)):
            return False
    return True


def split_candidates(loop: F.Do) -> List[int]:
    """Legal split dimensions of a parallel loop, outermost first.

    Dimension 0 (the parallel loop itself) is always legal.  Dimension
    ``d`` is a candidate when the nest is *perfect* down to depth ``d``
    (each body is exactly one DO) and the depth-``d`` loop's bounds are
    compile-time constants — partitioning a bound that moves with an
    outer index would give every rank a different, non-rectangular
    slice.  Whether a deeper split is also *safe* (disjoint writes) is
    the communication planner's call; this is the structural filter.
    """
    dims = [0]
    cur = loop
    depth = 0
    while len(cur.body) == 1 and isinstance(cur.body[0], F.Do):
        cur = cur.body[0]
        depth += 1
        if not _const_bounds(cur):
            break
        dims.append(depth)
    return dims


def split_loop(loop: F.Do, dim: int) -> F.Do:
    """The DO at split depth ``dim`` of a perfect nest (0 = ``loop``)."""
    cur = loop
    for level in range(dim):
        if len(cur.body) != 1 or not isinstance(cur.body[0], F.Do):
            raise ValueError(
                f"DO {loop.var}: nest is not perfect below depth {level} — "
                f"split dimension {dim} does not exist"
            )
        cur = cur.body[0]
    return cur


def choose_strategy(loop: F.Do, requested: str = "auto") -> str:
    """Resolve a partition request into a concrete strategy spec.

    ``"auto"`` applies the paper's §5.3 policy — cyclic for triangular
    loops, block for rectangular ones, always at split dimension 0.
    Explicit specs (``"block"``, ``"cyclic"``, ``"block:1"``, ...) are
    validated against the loop's structure and returned canonically.
    """
    if requested == "auto":
        return "cyclic" if is_triangular(loop) else "block"
    name, dim = parse_strategy(requested)
    if dim:
        legal = split_candidates(loop)
        if dim not in legal:
            raise ValueError(
                f"split dimension {dim} is not available on DO {loop.var} "
                f"(legal: {legal}; deeper dims need a perfect nest with "
                f"constant bounds)"
            )
    return name if dim == 0 else f"{name}:{dim}"


@dataclass(frozen=True)
class Partition:
    """A parallel loop's iteration space divided over ``nprocs`` ranks.

    ``pctx`` is the context of the *partitioned* loop: the parallel loop
    itself at ``split_dim`` 0, or the depth-``split_dim`` loop of a
    perfect nest otherwise (the executor then runs the outer dimensions
    in full on every rank and restricts only the split loop's bounds).
    """

    pctx: LoopCtx
    nprocs: int
    strategy: str  # "block" | "cyclic"
    split_dim: int = 0

    def __post_init__(self):
        if self.strategy not in STRATEGIES:
            raise ValueError(f"bad strategy {self.strategy!r}")
        if self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if self.split_dim < 0:
            raise ValueError("split_dim must be >= 0")

    @property
    def spec(self) -> str:
        """The canonical strategy spec string of this partition."""
        if self.split_dim == 0:
            return self.strategy
        return f"{self.strategy}:{self.split_dim}"

    @property
    def niters(self) -> int:
        return self.pctx.count

    def rank_ctx(self, rank: int) -> Optional[LoopCtx]:
        """The sub-LoopCtx rank executes, or None when it gets nothing."""
        if not 0 <= rank < self.nprocs:
            raise ValueError(f"rank {rank} out of range")
        p = self.pctx
        n = self.niters
        if n == 0:
            return None
        if self.strategy == "block":
            chunk = math.ceil(n / self.nprocs)
            t0 = rank * chunk
            t1 = min(n, t0 + chunk) - 1
            if t0 > t1:
                return None
            return LoopCtx(
                var=p.var,
                lo=p.lo + p.step * t0,
                hi=p.lo + p.step * t1,
                step=p.step,
                exact=p.exact,
            )
        # cyclic: t = rank, rank + P, rank + 2P, ...
        if rank >= n:
            return None
        last_t = rank + ((n - 1 - rank) // self.nprocs) * self.nprocs
        return LoopCtx(
            var=p.var,
            lo=p.lo + p.step * rank,
            hi=p.lo + p.step * last_t,
            step=p.step * self.nprocs,
            exact=p.exact,
        )

    def rank_loop(self, rank: int, loop: F.Do) -> Optional[F.Do]:
        """A copy of ``loop`` whose split-dim bounds are rank's slice.

        Used by the executor for ``split_dim > 0`` partitions, where a
        simple outer-bounds override cannot express the restriction; at
        ``split_dim`` 0 prefer the executor's bounds fast path.  Returns
        ``None`` when the rank has no iterations.
        """
        rctx = self.rank_ctx(rank)
        if rctx is None:
            return None
        clone = copy.deepcopy(loop)
        target = split_loop(clone, self.split_dim)
        target.lo = F.Num(rctx.lo)
        target.hi = F.Num(rctx.hi)
        target.step = F.Num(rctx.step)
        return clone

    def owner_of(self, value: int) -> int:
        """Which rank executes the iteration with index value ``value``."""
        p = self.pctx
        t = (value - p.lo) // p.step
        if not 0 <= t < self.niters or p.lo + p.step * t != value:
            raise ValueError(f"{value} is not an iteration of {p}")
        if self.strategy == "block":
            chunk = math.ceil(self.niters / self.nprocs)
            return t // chunk
        return t % self.nprocs

    def coverage(self) -> List[int]:
        """All iteration values, each exactly once, across ranks (sorted)."""
        vals: List[int] = []
        for r in range(self.nprocs):
            ctx = self.rank_ctx(r)
            if ctx is not None:
                vals.extend(ctx.values())
        return sorted(vals)
