"""Work partitioning (paper §5.3).

Transforms a parallel loop into statically scheduled per-rank iteration
sub-spaces: **block** assignment for rectangular loops, **cyclic** for
triangular ones (where inner loop bounds depend on the parallel index, so
block chunks would be badly imbalanced).  Every rank — master included —
takes a share, matching the measured 4-node speedups above 3x.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.compiler.analysis.access import LoopCtx
from repro.compiler.frontend import fast as F

__all__ = ["Partition", "choose_strategy", "is_triangular"]


def is_triangular(loop: F.Do) -> bool:
    """True when an inner loop's bounds reference the parallel index."""
    for stmt in F.walk_stmts(loop.body):
        if isinstance(stmt, F.Do):
            for bound in (stmt.lo, stmt.hi):
                if any(
                    isinstance(e, F.Var) and e.name == loop.var
                    for e in F.walk_exprs(bound)
                ):
                    return True
    return False


def choose_strategy(loop: F.Do, requested: str = "auto") -> str:
    """The paper's §5.3 policy: cyclic for triangular, block for square."""
    if requested in ("block", "cyclic"):
        return requested
    if requested != "auto":
        raise ValueError(f"unknown partition strategy {requested!r}")
    return "cyclic" if is_triangular(loop) else "block"


@dataclass(frozen=True)
class Partition:
    """A parallel loop's iteration space divided over ``nprocs`` ranks."""

    pctx: LoopCtx
    nprocs: int
    strategy: str  # "block" | "cyclic"

    def __post_init__(self):
        if self.strategy not in ("block", "cyclic"):
            raise ValueError(f"bad strategy {self.strategy!r}")
        if self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")

    @property
    def niters(self) -> int:
        return self.pctx.count

    def rank_ctx(self, rank: int) -> Optional[LoopCtx]:
        """The sub-LoopCtx rank executes, or None when it gets nothing."""
        if not 0 <= rank < self.nprocs:
            raise ValueError(f"rank {rank} out of range")
        p = self.pctx
        n = self.niters
        if n == 0:
            return None
        if self.strategy == "block":
            chunk = math.ceil(n / self.nprocs)
            t0 = rank * chunk
            t1 = min(n, t0 + chunk) - 1
            if t0 > t1:
                return None
            return LoopCtx(
                var=p.var,
                lo=p.lo + p.step * t0,
                hi=p.lo + p.step * t1,
                step=p.step,
                exact=p.exact,
            )
        # cyclic: t = rank, rank + P, rank + 2P, ...
        if rank >= n:
            return None
        last_t = rank + ((n - 1 - rank) // self.nprocs) * self.nprocs
        return LoopCtx(
            var=p.var,
            lo=p.lo + p.step * rank,
            hi=p.lo + p.step * last_t,
            step=p.step * self.nprocs,
            exact=p.exact,
        )

    def owner_of(self, value: int) -> int:
        """Which rank executes the iteration with index value ``value``."""
        p = self.pctx
        t = (value - p.lo) // p.step
        if not 0 <= t < self.niters or p.lo + p.step * t != value:
            raise ValueError(f"{value} is not an iteration of {p}")
        if self.strategy == "block":
            chunk = math.ceil(self.niters / self.nprocs)
            return t // chunk
        return t % self.nprocs

    def coverage(self) -> List[int]:
        """All iteration values, each exactly once, across ranks (sorted)."""
        vals: List[int] = []
        for r in range(self.nprocs):
            ctx = self.rank_ctx(r)
            if ctx is not None:
                vals.extend(ctx.values())
        return sorted(vals)
