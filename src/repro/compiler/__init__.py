"""The Polaris-style parallelizing compiler with the MPI-2 postpass.

Pipeline (paper Figures 1 and 6)::

    Fortran 77 source
      └─ frontend: lex / parse / symbol resolution / DO normalization /
         induction substitution / inlining
      └─ analysis: LMAD array-access analysis, summary sets, the Access
         Region Test, reduction recognition, privatization  →  loops
         marked PARALLEL
      └─ postpass: MPI environment generation, AVPG construction and
         redundant-communication elimination, work partitioning,
         data scattering/collecting, SPMDization, communication
         granularity optimization (fine / middle / coarse)
      └─ codegen: an executable SPMD program for repro.runtime plus
         readable Fortran77+MPI-2 pseudo-source

Entry point: :func:`repro.compiler.pipeline.compile_source`.
"""

__all__ = ["CompileOptions", "compile_source"]


def __getattr__(name):
    """Lazy re-export so frontend modules import without the full pipeline."""
    if name in __all__:
        from repro.compiler import pipeline

        value = getattr(pipeline, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
