"""Top-level compiler entry points: source text in, SPMD program out."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Set, Tuple

from repro.compiler.frontend.lower import lower_program
from repro.compiler.frontend.parser import parse
from repro.compiler.postpass.driver import run_postpass
from repro.compiler.postpass.granularity import GRAINS
from repro.runtime.program import SpmdProgram

__all__ = [
    "CompileOptions",
    "compile_source",
    "compile_file",
    "clear_compile_cache",
    "compile_cache_stats",
]

#: Memoized compilations, keyed by (source, CompileOptions), LRU-evicted.
#: Benchmarks and parameter sweeps recompile identical workloads dozens of
#: times; compilation is pure (source + options fully determine the
#: program) and the runtime does not mutate SpmdProgram, so sharing the
#: compiled object is safe.
_COMPILE_CACHE: "OrderedDict[Tuple[str, CompileOptions], SpmdProgram]" = (
    OrderedDict()
)
_COMPILE_CACHE_MAX = 128
_CACHE_STATS = {"hits": 0, "misses": 0}


def compile_cache_stats() -> Dict[str, int]:
    """Hit/miss counters of the compile cache (copies, for reports)."""
    return dict(_CACHE_STATS)


def clear_compile_cache() -> None:
    _COMPILE_CACHE.clear()
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0


@dataclass(frozen=True)
class CompileOptions:
    """Knobs of the MPI-2 postpass.

    ``granularity`` selects the §5.6 communication grain (the paper leaves
    the choice to the user); ``grain_map`` overrides it per parallel
    region (``{region_id: grain}`` — a mixed-grain plan, typically
    produced by the per-region autotuner, docs/AUTOTUNE.md); regions not
    named fall back to ``granularity``.  ``partition`` is the global
    §5.3 work-partitioning strategy (``auto`` = cyclic for triangular
    loops, block otherwise) and ``partition_map`` overrides it per
    region with a concrete strategy spec (``block``, ``cyclic``, or
    ``block:D``/``cyclic:D`` to split dimension ``D`` of a perfect
    nest — docs/PARTITION.md); regions not named fall back to
    ``partition``.  ``live_out=None`` treats every
    array as observable at program end (AVPG dead-array elimination off —
    the safe default), while an explicit set enables it.
    """

    nprocs: int = 4
    granularity: str = "fine"
    partition: str = "auto"  # auto | block | cyclic | block:D | cyclic:D
    parallelize: bool = True  # run detection (else trust directives only)
    live_out: Optional[frozenset] = None
    #: Disable the AVPG redundancy eliminations (ablation): every region
    #: re-scatters its full read regions and collects all writes.
    avpg: bool = True
    #: Per-region grain overrides: a mapping (or pair iterable)
    #: region_id -> grain, canonicalized to a sorted tuple of pairs so
    #: the options object stays hashable (the compile cache keys on it).
    grain_map: Optional[Tuple[Tuple[int, str], ...]] = None
    #: Per-region partition-strategy overrides: region_id -> strategy
    #: spec, canonicalized exactly like ``grain_map``.  Specs must be
    #: concrete (``auto`` only makes sense as the global default).
    partition_map: Optional[Tuple[Tuple[int, str], ...]] = None

    @staticmethod
    def _canonical_map(raw, what: str, check) -> Optional[Tuple]:
        """Sort/validate a region-override mapping into a hashable tuple."""
        items = raw.items() if hasattr(raw, "items") else raw
        canon = []
        for rid, value in items:
            rid = int(rid)
            if rid < 0:
                raise ValueError(f"{what} region id {rid} is negative")
            check(rid, value)
            canon.append((rid, value))
        canon.sort()
        for (a, _), (b, _) in zip(canon, canon[1:]):
            if a == b:
                raise ValueError(f"{what} names region {a} twice")
        return tuple(canon) if canon else None

    def __post_init__(self):
        from repro.compiler.postpass.partition import parse_strategy

        if self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if self.granularity not in GRAINS:
            raise ValueError(
                f"granularity must be one of {GRAINS}, got {self.granularity!r}"
            )
        if self.partition != "auto":
            try:
                parse_strategy(self.partition)
            except ValueError as exc:
                raise ValueError(
                    f"bad partition strategy {self.partition!r}: {exc}"
                ) from None
        if self.live_out is not None:
            object.__setattr__(self, "live_out", frozenset(self.live_out))
        if self.grain_map is not None:

            def check_grain(rid, grain):
                if grain not in GRAINS:
                    raise ValueError(
                        f"grain_map[{rid}] must be one of {GRAINS}, "
                        f"got {grain!r}"
                    )

            object.__setattr__(
                self,
                "grain_map",
                self._canonical_map(self.grain_map, "grain_map", check_grain),
            )
        if self.partition_map is not None:

            def check_part(rid, spec):
                try:
                    parse_strategy(spec)
                except ValueError as exc:
                    raise ValueError(f"partition_map[{rid}]: {exc}") from None

            object.__setattr__(
                self,
                "partition_map",
                self._canonical_map(
                    self.partition_map, "partition_map", check_part
                ),
            )

    def grain_for(self, region_id: int) -> str:
        """The effective grain of one parallel region."""
        if self.grain_map:
            for rid, grain in self.grain_map:
                if rid == region_id:
                    return grain
        return self.granularity

    def partition_for(self, region_id: int) -> str:
        """The effective partition request of one parallel region."""
        if self.partition_map:
            for rid, spec in self.partition_map:
                if rid == region_id:
                    return spec
        return self.partition

    @property
    def mixed_grain(self) -> bool:
        return bool(self.grain_map)

    @property
    def mixed_partition(self) -> bool:
        return bool(self.partition_map)


def compile_source(
    source: str,
    nprocs: int = 4,
    granularity: str = "fine",
    options: Optional[CompileOptions] = None,
    **kwargs,
) -> SpmdProgram:
    """Compile Fortran 77 source into an SPMD program for the runtime.

    Either pass a full :class:`CompileOptions` via ``options`` or use the
    keyword shortcuts (``nprocs``, ``granularity``, plus any
    CompileOptions field through ``kwargs``).
    """
    if options is None:
        options = CompileOptions(
            nprocs=nprocs, granularity=granularity, **kwargs
        )
    key = (source, options)
    cached = _COMPILE_CACHE.get(key)
    if cached is not None:
        _COMPILE_CACHE.move_to_end(key)
        _CACHE_STATS["hits"] += 1
        return cached
    _CACHE_STATS["misses"] += 1
    program = lower_program(parse(source))
    spmd = run_postpass(program.main, options)
    if "C$BUG" in source:
        # Seeded-defect corpus (tests/badprogs, docs/CHECK.md): comment
        # pragmas mutate the freshly planned transfer schedule so the
        # static verifier and the sanitizer have real bugs to catch.
        from repro.compiler.postpass.bugseed import apply_bug_pragmas

        apply_bug_pragmas(spmd, source)
    _COMPILE_CACHE[key] = spmd
    while len(_COMPILE_CACHE) > _COMPILE_CACHE_MAX:
        _COMPILE_CACHE.popitem(last=False)
    return spmd


def compile_file(path: str, **kwargs) -> SpmdProgram:
    """Compile a Fortran source file (see :func:`compile_source`)."""
    with open(path, "r") as fh:
        return compile_source(fh.read(), **kwargs)
