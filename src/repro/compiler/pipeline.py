"""Top-level compiler entry points: source text in, SPMD program out."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Set

from repro.compiler.frontend.lower import lower_program
from repro.compiler.frontend.parser import parse
from repro.compiler.postpass.driver import run_postpass
from repro.compiler.postpass.granularity import GRAINS
from repro.runtime.program import SpmdProgram

__all__ = ["CompileOptions", "compile_source", "compile_file"]


@dataclass(frozen=True)
class CompileOptions:
    """Knobs of the MPI-2 postpass.

    ``granularity`` selects the §5.6 communication grain (the paper leaves
    the choice to the user); ``live_out=None`` treats every array as
    observable at program end (AVPG dead-array elimination off — the safe
    default), while an explicit set enables it.
    """

    nprocs: int = 4
    granularity: str = "fine"
    partition: str = "auto"  # auto | block | cyclic
    parallelize: bool = True  # run detection (else trust directives only)
    live_out: Optional[frozenset] = None
    #: Disable the AVPG redundancy eliminations (ablation): every region
    #: re-scatters its full read regions and collects all writes.
    avpg: bool = True

    def __post_init__(self):
        if self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if self.granularity not in GRAINS:
            raise ValueError(
                f"granularity must be one of {GRAINS}, got {self.granularity!r}"
            )
        if self.partition not in ("auto", "block", "cyclic"):
            raise ValueError(f"bad partition strategy {self.partition!r}")
        if self.live_out is not None:
            object.__setattr__(self, "live_out", frozenset(self.live_out))


def compile_source(
    source: str,
    nprocs: int = 4,
    granularity: str = "fine",
    options: Optional[CompileOptions] = None,
    **kwargs,
) -> SpmdProgram:
    """Compile Fortran 77 source into an SPMD program for the runtime.

    Either pass a full :class:`CompileOptions` via ``options`` or use the
    keyword shortcuts (``nprocs``, ``granularity``, plus any
    CompileOptions field through ``kwargs``).
    """
    if options is None:
        options = CompileOptions(
            nprocs=nprocs, granularity=granularity, **kwargs
        )
    program = lower_program(parse(source))
    return run_postpass(program.main, options)


def compile_file(path: str, **kwargs) -> SpmdProgram:
    """Compile a Fortran source file (see :func:`compile_source`)."""
    with open(path, "r") as fh:
        return compile_source(fh.read(), **kwargs)
