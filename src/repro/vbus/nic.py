"""The V-Bus network interface card (paper §2.2).

Cost structure charged per message:

* **software setup** — the MPI daemon shares a message queue with the
  device driver, so a message costs only the user-level enqueue
  (``setup_shared_queue_s``).  With ``shared_queue=False`` the model adds a
  buffer copy plus a user/kernel context switch — the overhead the paper's
  design eliminates.
* **contiguous transfers** use the DMA engine: a descriptor programming
  cost, then streaming that proceeds "without interrupting the processor".
  The DMA rate caps the network streaming rate (PCI-bound).
* **strided transfers** use programmed I/O: the host CPU copies the user
  buffer into the driver buffer one element at a time, paying
  ``pio_per_element_s`` per element *of CPU time*.
* the receiving daemon pays a dequeue cost (``recv_overhead_s``).

:meth:`Nic.transfer` returns a :class:`TransferReceipt` so callers (the
MPI-2 library and the run reports) can split *CPU-occupied* time from
*offloaded* (DMA/wire) time — the distinction behind the paper's claim that
user-level DMA communication leaves the processor free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.sim import Resource, Simulator
from repro.vbus.params import NicParams

__all__ = ["Nic", "TransferReceipt"]

#: Extra dequeue cost on the receiving daemon, seconds.
RECV_OVERHEAD_S = 4e-6


@dataclass
class TransferReceipt:
    """Accounting for one completed NIC transfer."""

    nbytes: int
    elements: int
    contiguous: bool
    #: Seconds the sending CPU was occupied (setup + any PIO copying).
    cpu_s: float
    #: Seconds spent end-to-end including wire/DMA streaming.
    total_s: float


class Nic:
    """One node's network card: DMA engine, PIO path, message queue."""

    def __init__(self, sim: Simulator, rank: int, params: NicParams):
        self.sim = sim
        self.rank = rank
        self.params = params
        #: The single DMA engine; concurrent contiguous sends serialize here.
        self._dma = Resource(sim, capacity=1, obs_name=f"dma.{rank}")
        #: Optional :class:`repro.faults.FaultInjector`; ``None`` = healthy.
        self.injector = None
        #: Statistics.
        self.messages = 0
        self.bytes = 0
        self.dma_transfers = 0
        self.pio_elements = 0
        self.cpu_busy_s = 0.0

    def software_setup_s(self) -> float:
        """Per-message software cost on the injection path."""
        return self.params.per_message_overhead_s()

    def transfer(
        self,
        network_call,
        nbytes: int,
        *,
        elements: Optional[int] = None,
        contiguous: bool = True,
        fast_start=None,
    ) -> Generator:
        """Inject one message; ``network_call(rate_cap)`` produces the wire leg.

        ``network_call`` is a callable returning a generator that delivers
        ``nbytes`` through the interconnect, honoring an optional source-side
        rate cap.  ``fast_start(rate_cap, tail_s, at_release)``, when given,
        may charge the wire leg + receive tail analytically (see
        :mod:`repro.vbus.fastpath`), returning a completion event — or
        ``None``, in which case the stepwise ``network_call`` runs.
        Returns a :class:`TransferReceipt`.
        """
        if elements is None:
            elements = max(1, nbytes // 8)
        inj = self.injector
        if inj is not None and inj.active:
            # Message-injection fault hook: dead-node check + after_sends
            # kills fire here, before any cost is charged.
            inj.on_inject(self.rank)
        t0 = self.sim.now
        cpu_s = 0.0
        done = None

        # Software setup: enqueue on the (possibly shared) message queue.
        setup = self.software_setup_s()
        if fast_start is not None and not contiguous:
            # Fast PIO: merge the setup and per-element-copy timeouts into
            # one event at the bit-identical end time (sequential adds).
            pio = self.params.pio_setup_s + elements * self.params.pio_per_element_s
            yield self.sim.timeout_at((self.sim.now + setup) + pio)
            cpu_s += setup
            cpu_s += pio
            done = fast_start(None, RECV_OVERHEAD_S, None)
            if done is None:
                yield from network_call(None)
            self.pio_elements += elements
        elif contiguous:
            yield self.sim.timeout(setup)
            cpu_s += setup
            # DMA path: program a descriptor, then the engine streams the
            # user buffer to the driver buffer and onto the wire without
            # the CPU.  The DMA rate caps the wire streaming rate.
            # Fast path: a free engine is taken synchronously — same
            # simulated instant, one kernel event fewer.
            if fast_start is None or not self._dma.try_acquire():
                yield self._dma.request()
            try:
                yield self.sim.timeout(self.params.dma_setup_s)
                cpu_s += self.params.dma_setup_s
                if fast_start is not None:
                    # The fast leg releases the DMA engine at wire-end —
                    # the same instant the stepwise ``finally`` would.
                    done = fast_start(
                        self.params.dma_rate_Bps, RECV_OVERHEAD_S,
                        self._dma.release,
                    )
                if done is None:
                    yield from network_call(self.params.dma_rate_Bps)
            finally:
                if done is None:
                    self._dma.release()
            self.dma_transfers += 1
        else:
            # PIO path: the CPU itself copies element by element into the
            # driver buffer; only then does the wire leg run.
            yield self.sim.timeout(setup)
            cpu_s += setup
            pio = self.params.pio_setup_s + elements * self.params.pio_per_element_s
            yield self.sim.timeout(pio)
            cpu_s += pio
            yield from network_call(None)
            self.pio_elements += elements

        if done is not None:
            # Analytic leg: wire streaming + receive dequeue in one wait.
            yield done
        else:
            # Receiving daemon dequeues the message.
            yield self.sim.timeout(RECV_OVERHEAD_S)

        self.messages += 1
        self.bytes += nbytes
        self.cpu_busy_s += cpu_s
        tr = self.sim.tracer
        if tr is not None:
            mode = "dma" if contiguous else "pio"
            tr.span(
                ("node", self.rank), f"{mode} send", t0,
                args={"bytes": nbytes, "elements": elements, "cpu_s": cpu_s},
            )
            tr.count("nic.messages")
            tr.count(f"nic.{mode}_bytes", nbytes, "B")
            if not contiguous:
                tr.count("nic.pio_elements", elements)
            tr.observe("nic.cpu_s", cpu_s, "s")
        return TransferReceipt(
            nbytes=nbytes,
            elements=elements,
            contiguous=contiguous,
            cpu_s=cpu_s,
            total_s=self.sim.now - t0,
        )
