"""Skew modelling and the automatic skew-sampling circuit (SKWP, paper §2.1).

A link is a bundle of parallel signal lines.  Each line has a static skew
(manufacturing/trace-length variation) plus dynamic jitter.  How fast data
waves may follow each other depends on the pipelining discipline:

``conventional``
    One datum is in flight at a time: the cycle must cover the full wire
    propagation delay plus logic setup —
    ``T = wire_delay + setup``.

``wave``
    Multiple waves coexist on the wire, so the wire delay drops out of the
    cycle time; but consecutive waves must not smear into each other, so the
    cycle must cover the *skew spread* between the fastest and slowest line —
    ``T = setup + spread``.  Worse, the paper notes the end-to-end skew
    "can be magnified while passing through several wave-pipelined network
    cards": without per-hop resampling the spread accumulates with hop
    count, so ``spread_k = spread * k``.

``skwp``
    The skew-sampling circuit measures each line's delay, inserts a
    quantized compensating delay, and merges the signals back into phase.
    The static spread collapses to at most one sampling-resolution step, and
    only jitter remains — ``T = setup + resolution + jitter`` — *per hop*,
    because every card resamples.

With the default :class:`~repro.vbus.params.LinkParams` this yields
20 ns / 12 ns / 5 ns cycles, i.e. SKWP ≈ 4x conventional — the paper's
headline link-level claim.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.vbus.params import LinkParams

__all__ = [
    "SkewSampler",
    "cycle_time_s",
    "bandwidth_Bps",
    "effective_spread_s",
    "generate_line_skews",
]


def generate_line_skews(
    n_lines: int, spread_s: float, seed: int = 0
) -> np.ndarray:
    """Deterministic per-line static skews spanning exactly ``spread_s``.

    The fastest and slowest lines pin the extremes so the configured spread
    is realized; intermediate lines fall pseudo-randomly in between.
    """
    if n_lines < 1:
        raise ValueError("need at least one line")
    if n_lines == 1:
        return np.zeros(1)
    rng = np.random.default_rng(seed)
    skews = rng.uniform(0.0, spread_s, size=n_lines)
    skews[0] = 0.0
    skews[-1] = spread_s
    return skews


class SkewSampler:
    """The automatic skew-sampling circuit.

    Given measured per-line skews it derives quantized compensation delays
    (multiples of the sampling resolution) that re-align all lines to the
    phase of the slowest line, to within one resolution step.
    """

    def __init__(self, resolution_s: float):
        if resolution_s <= 0:
            raise ValueError("sampling resolution must be positive")
        self.resolution_s = resolution_s

    def compensations(self, skews: Sequence[float]) -> np.ndarray:
        """Per-line delay insertions, quantized to the resolution grid.

        Line *i* is delayed by ``ceil((max_skew - skew_i)/res) * res`` so no
        compensated line is ever *earlier* than the slowest line.
        """
        skews = np.asarray(skews, dtype=float)
        target = skews.max()
        steps = np.ceil((target - skews) / self.resolution_s - 1e-12)
        return steps * self.resolution_s

    def residual_spread(self, skews: Sequence[float]) -> float:
        """Spread remaining after compensation (≤ one resolution step)."""
        skews = np.asarray(skews, dtype=float)
        aligned = skews + self.compensations(skews)
        return float(aligned.max() - aligned.min())


def effective_spread_s(params: LinkParams, hops: int = 1) -> float:
    """Skew spread seen by the receiving card after ``hops`` links.

    Conventional pipelining re-registers every hop, so spread never limits
    it (returned for completeness).  Untuned wave pipelining accumulates
    spread linearly with hop count; SKWP resamples at every card so only the
    quantization residual plus jitter remains, independent of hops.
    """
    if hops < 1:
        raise ValueError("hops must be >= 1")
    if params.mode == "wave":
        return params.skew_spread_s * hops
    if params.mode == "skwp":
        sampler = SkewSampler(params.sampling_resolution_s)
        skews = generate_line_skews(params.width_bits, params.skew_spread_s)
        return sampler.residual_spread(skews) + params.jitter_s
    return params.skew_spread_s  # conventional: informational only


def cycle_time_s(params: LinkParams, hops: int = 1) -> float:
    """Wave-to-wave cycle time of the link under its pipelining mode."""
    if params.mode == "conventional":
        return params.wire_delay_s + params.setup_s
    return params.setup_s + effective_spread_s(params, hops)


def bandwidth_Bps(params: LinkParams, hops: int = 1) -> float:
    """Raw link bandwidth in bytes/second."""
    return (params.width_bits / 8.0) / cycle_time_s(params, hops)


def mode_comparison(params: LinkParams, hops: int = 1) -> Tuple[float, float, float]:
    """(conventional, wave, skwp) bandwidths of the same physical link."""
    return tuple(
        bandwidth_Bps(params.with_mode(mode), hops)
        for mode in ("conventional", "wave", "skwp")
    )
