"""Hardware parameter records and the calibrated presets.

Calibration targets (all *relative*, per DESIGN.md §2):

* SKWP link bandwidth ≈ 4x conventional pipelining (paper §2.1);
* V-Bus card end-to-end bandwidth ≈ 4x Fast Ethernet, latency ≈ 1/4
  (paper §1/§2.1);
* contiguous DMA transfers ≫ strided programmed-I/O (paper §2.2);
* user-level messaging (shared queue) avoids the kernel context switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.faults.plan import FaultPlan

__all__ = [
    "LinkParams",
    "NicParams",
    "CpuParams",
    "EthernetParams",
    "ClusterParams",
    "VBUS_SKWP",
    "VBUS_CONVENTIONAL",
    "VBUS_WAVE_UNTUNED",
    "ETHERNET_100",
    "GIGE_SWITCHED",
]

#: Valid link pipelining modes.
LINK_MODES = ("conventional", "wave", "skwp")


@dataclass(frozen=True)
class LinkParams:
    """Physical parameters of one mesh link (a bundle of parallel lines)."""

    #: Pipelining discipline: "conventional" (one datum in flight),
    #: "wave" (multiple waves, skew-limited), "skwp" (skew-sampled wave).
    mode: str = "skwp"
    #: Number of parallel data lines (bits transferred per cycle).
    width_bits: int = 8
    #: Nominal wire propagation delay of the link, seconds.
    wire_delay_s: float = 16e-9
    #: Combinational setup/logic time that bounds any cycle, seconds.
    setup_s: float = 4e-9
    #: Worst-case static skew spread between the fastest and slowest line.
    skew_spread_s: float = 8e-9
    #: Dynamic jitter that even a sampling circuit cannot remove.
    jitter_s: float = 0.5e-9
    #: Resolution of the automatic skew-sampling circuit (SKWP only).
    sampling_resolution_s: float = 0.5e-9
    #: Per-hop router pipeline latency (head-flit fall-through), seconds.
    router_delay_s: float = 60e-9

    def __post_init__(self):
        if self.mode not in LINK_MODES:
            raise ValueError(f"unknown link mode {self.mode!r}; use {LINK_MODES}")
        if self.width_bits <= 0:
            raise ValueError("width_bits must be positive")

    def with_mode(self, mode: str) -> "LinkParams":
        return replace(self, mode=mode)


@dataclass(frozen=True)
class NicParams:
    """Network-interface-card parameters (paper §2.2)."""

    #: Per-message software setup when the driver and the MPI daemon share
    #: one message queue (user-level communication).
    setup_shared_queue_s: float = 6e-6
    #: Extra cost per message when the queue is NOT shared: one buffer copy
    #: plus a user/kernel context switch.
    context_switch_s: float = 25e-6
    #: DMA engine streaming rate, bytes/second (PCI-bound; this is the
    #: card-level bandwidth the paper compares against Fast Ethernet).
    dma_rate_Bps: float = 50e6
    #: DMA channel programming cost per descriptor.
    dma_setup_s: float = 2e-6
    #: Programmed-I/O cost per element copied by the host CPU (one uncached
    #: load + one I/O-bus store per element on the 300 MHz PII).
    pio_per_element_s: float = 1.0e-6
    #: PIO setup per transfer.
    pio_setup_s: float = 1e-6
    #: Device driver staging buffer size, bytes.
    driver_buffer_bytes: int = 1 << 16
    #: Whether driver and daemon share the message queue (user-level path).
    shared_queue: bool = True

    def per_message_overhead_s(self) -> float:
        """Software cost charged on every message before any data moves."""
        if self.shared_queue:
            return self.setup_shared_queue_s
        return self.setup_shared_queue_s + self.context_switch_s


@dataclass(frozen=True)
class CpuParams:
    """Host processor cost model (300 MHz Pentium II)."""

    clock_hz: float = 300e6
    #: Cycles charged per arithmetic op, by operator class.
    cycles_add: float = 1.0
    cycles_mul: float = 3.0
    cycles_div: float = 18.0
    cycles_intrinsic: float = 40.0
    #: Cycles per memory reference (load or store) in the interpreter model.
    cycles_mem: float = 2.0
    #: Loop-control overhead per iteration.
    cycles_loop: float = 2.0
    #: Relative slowdown of compiler-generated SPMD loops vs the original
    #: sequential code (bounds indirection, master/slave checks): the
    #: paper's Table 1 measures 0.96 speedup on one node, i.e. ~4%.
    spmd_compute_overhead: float = 0.04

    def seconds(self, cycles: float) -> float:
        return cycles / self.clock_hz


@dataclass(frozen=True)
class EthernetParams:
    """Ethernet interconnect (shared medium or switched, kernel stack)."""

    rate_Bps: float = 12.5e6  # 100 Mb/s
    #: Kernel TCP/UDP stack latency per message, each side.
    sw_latency_s: float = 22e-6
    #: Minimum frame time (64-byte frame + preamble + IFG at 100 Mb/s).
    min_frame_s: float = 6.7e-6
    #: Maximum payload per frame.
    mtu_bytes: int = 1500
    #: Per-port full-duplex switched fabric instead of the single shared
    #: segment: messages occupy only their source and destination ports
    #: (store-and-forward), so disjoint pairs communicate concurrently.
    switched: bool = False
    #: Switch forwarding-decision latency per message (store-and-forward
    #: buffering itself is modeled by occupying both ports in turn).
    switch_latency_s: float = 5e-6


@dataclass(frozen=True)
class ClusterParams:
    """A full machine description."""

    #: Mesh shape (rows, cols); the paper's testbed is 4 nodes (2x2).
    mesh: Tuple[int, int] = (2, 2)
    link: LinkParams = field(default_factory=LinkParams)
    nic: NicParams = field(default_factory=NicParams)
    cpu: CpuParams = field(default_factory=CpuParams)
    ethernet: EthernetParams = field(default_factory=EthernetParams)
    #: Interconnect selection: "vbus" (mesh + virtual bus) or "ethernet".
    network: str = "vbus"
    #: Whether the V-Bus hardware broadcast is available to collectives.
    vbus_broadcast: bool = True
    #: Bytes per V-Bus streaming chunk when a transfer must be interruptible.
    #: (Only affects freeze granularity, not throughput.)
    chunk_bytes: int = 4096
    #: Batched transfer accounting: charge provably-uncontended wire legs
    #: analytically (O(1) events) instead of stepwise.  Simulated results
    #: are bit-identical (see repro.vbus.fastpath); only wall-clock drops.
    fast_path: bool = False
    #: Attach a :class:`repro.obs.Tracer` to the simulation: every layer
    #: (kernel, channels, NICs, V-Bus, MPI-2, runtime) records spans and
    #: metrics.  Observation only — simulated results are bit-identical
    #: with tracing on or off (see docs/TRACE_FORMAT.md).
    trace: bool = False
    #: Seeded fault plan (see :mod:`repro.faults` and docs/FAULTS.md);
    #: ``None`` = healthy hardware.  An *active* plan demotes the fast
    #: path (faulty wire legs must run stepwise so retransmission rounds
    #: interleave with other traffic exactly as the oracle would).
    faults: Optional[FaultPlan] = None

    def __post_init__(self):
        if self.network not in ("vbus", "ethernet"):
            raise ValueError(f"unknown network {self.network!r}")
        rows, cols = self.mesh
        if rows < 1 or cols < 1:
            raise ValueError(f"bad mesh shape {self.mesh}")

    @property
    def nprocs(self) -> int:
        return self.mesh[0] * self.mesh[1]


def _mesh_for(nprocs: int) -> Tuple[int, int]:
    """Most-square mesh factorization for ``nprocs`` nodes."""
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    best = (1, nprocs)
    r = 1
    while r * r <= nprocs:
        if nprocs % r == 0:
            best = (r, nprocs // r)
        r += 1
    return best


def cluster_for(nprocs: int, base: "ClusterParams" = None) -> ClusterParams:
    """A cluster preset resized to ``nprocs`` nodes (most-square mesh)."""
    base = base if base is not None else VBUS_SKWP
    return replace(base, mesh=_mesh_for(nprocs))


#: The paper's machine: SKWP links, V-Bus broadcast, shared-queue NIC.
VBUS_SKWP = ClusterParams()

#: Same card with the skew-sampling circuit disabled (conventional pipelining).
VBUS_CONVENTIONAL = ClusterParams(link=LinkParams(mode="conventional"))

#: Wave pipelining without skew sampling (skew-limited, accumulates per hop).
VBUS_WAVE_UNTUNED = ClusterParams(link=LinkParams(mode="wave"))

#: Fast-Ethernet-connected cluster of the same PCs (baseline).
ETHERNET_100 = ClusterParams(network="ethernet", vbus_broadcast=False)

#: Modeled switched Gigabit Ethernet: per-port full duplex, 1 Gb/s line
#: rate, store-and-forward switch.  The kernel networking stack still
#: bounds small-message latency — the crossover the APEnet+/Beowulf
#: mesh-vs-switched comparisons frame (see EXPERIMENTS.md).
GIGE_SWITCHED = ClusterParams(
    network="ethernet",
    vbus_broadcast=False,
    ethernet=EthernetParams(
        rate_Bps=125e6,  # 1 Gb/s
        sw_latency_s=18e-6,
        min_frame_s=0.672e-6,
        mtu_bytes=1500,
        switched=True,
        switch_latency_s=5e-6,
    ),
)
