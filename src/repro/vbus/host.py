"""Host PC model: a 300 MHz processor with cycle-level cost accounting."""

from __future__ import annotations

from typing import Generator

from repro.sim import Simulator, Timeout
from repro.vbus.params import CpuParams

__all__ = ["Host"]


class Host:
    """One PC of the cluster.

    The host does not model caches or out-of-order execution; it charges
    simulated time from the operation counts the interpreter reports
    (cycles / 300 MHz), which is the level of fidelity the paper's
    speedup and communication-time comparisons need.
    """

    def __init__(self, sim: Simulator, rank: int, cpu: CpuParams):
        self.sim = sim
        self.rank = rank
        self.cpu = cpu
        #: Accumulated busy time, split by activity.
        self.compute_s = 0.0
        self.comm_cpu_s = 0.0

    def compute(self, cycles: float) -> Timeout:
        """Advance this host's time by a compute burst of ``cycles``."""
        seconds = self.cpu.seconds(cycles)
        self.compute_s += seconds
        return self.sim.timeout(seconds)

    def compute_seconds(self, seconds: float) -> Timeout:
        """Advance by a pre-converted compute duration."""
        self.compute_s += seconds
        return self.sim.timeout(seconds)

    def charge_comm_cpu(self, seconds: float) -> None:
        """Record CPU time consumed inside communication calls."""
        self.comm_cpu_s += seconds

    def __repr__(self) -> str:
        return f"<Host rank={self.rank} {self.cpu.clock_hz / 1e6:.0f}MHz>"
