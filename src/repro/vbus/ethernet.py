"""Fast Ethernet baseline: shared medium, kernel networking stack.

The paper's headline hardware comparison: the V-Bus card offers about four
times the bandwidth and a quarter of the latency of a Fast Ethernet card.
This model charges a kernel software latency on each side of a message plus
serialization on the single shared 100 Mb/s medium.  Broadcast rides the
physical bus for free (one transmission heard by all) — the fair version of
the comparison, since Ethernet *is* a bus.
"""

from __future__ import annotations

import math
from typing import Generator, Optional

from repro.sim import Resource, Simulator
from repro.vbus.params import EthernetParams

__all__ = ["EthernetNetwork"]


class EthernetNetwork:
    """A single shared 100 Mb/s segment connecting all nodes."""

    def __init__(self, sim: Simulator, params: EthernetParams, nnodes: int):
        self.sim = sim
        self.params = params
        self.nnodes = nnodes
        self._medium = Resource(sim, capacity=1)
        #: Optional :class:`repro.faults.FaultInjector`; ``None`` = healthy.
        #: Ethernet legs see drop/corrupt/delay and node kills; channel
        #: stalls are a mesh concept and do not apply to the shared bus.
        self.injector = None
        #: Statistics.
        self.messages = 0
        self.bytes = 0

    def _wire_time(self, nbytes: int) -> float:
        """Medium occupancy: per-frame framing overhead plus payload bits."""
        p = self.params
        nframes = max(1, math.ceil(nbytes / p.mtu_bytes))
        return max(p.min_frame_s, nbytes / p.rate_Bps + nframes * p.min_frame_s * 0.15)

    def unicast(
        self, src: int, dst: int, nbytes: int, rate_cap_Bps: Optional[float] = None
    ) -> Generator:
        """Point-to-point message over the shared segment."""
        if src == dst:
            return 0.0
        inj = self.injector
        if inj is not None and not inj.active:
            inj = None
        if inj is not None:
            inj.check_alive(src, dst)
        t0 = self.sim.now
        p = self.params
        yield self.sim.timeout(p.sw_latency_s)  # sender kernel stack
        yield self._medium.request()
        try:
            wire = self._wire_time(nbytes)
            if rate_cap_Bps is not None and rate_cap_Bps < p.rate_Bps:
                wire = max(wire, nbytes / rate_cap_Bps)
            yield self.sim.timeout(wire)
            if inj is not None:
                # Frame-granularity faults; retransmitted frames re-occupy
                # the shared medium, so this runs while it is still held.
                nframes = max(1, math.ceil(nbytes / p.mtu_bytes))
                yield from inj.wire_deliver(src, dst, nframes, wire / nframes)
        finally:
            self._medium.release()
        yield self.sim.timeout(p.sw_latency_s)  # receiver kernel stack
        self.messages += 1
        self.bytes += nbytes
        return self.sim.now - t0

    def broadcast(
        self, src: int, nbytes: int, rate_cap_Bps: Optional[float] = None
    ) -> Generator:
        """One transmission delivered to every node on the segment."""
        inj = self.injector
        if inj is not None and not inj.active:
            inj = None
        if inj is not None:
            inj.check_alive(src)
        t0 = self.sim.now
        p = self.params
        yield self.sim.timeout(p.sw_latency_s)
        yield self._medium.request()
        try:
            wire = self._wire_time(nbytes)
            yield self.sim.timeout(wire)
            if inj is not None:
                nframes = max(1, math.ceil(nbytes / p.mtu_bytes))
                yield from inj.wire_deliver(src, None, nframes, wire / nframes)
        finally:
            self._medium.release()
        yield self.sim.timeout(p.sw_latency_s)
        self.messages += 1
        self.bytes += nbytes * (self.nnodes - 1)
        return self.sim.now - t0
