"""Ethernet interconnects: shared Fast Ethernet and modeled switched GigE.

The paper's headline hardware comparison: the V-Bus card offers about four
times the bandwidth and a quarter of the latency of a Fast Ethernet card.
The shared-medium model charges a kernel software latency on each side of a
message plus serialization on the single shared 100 Mb/s medium.  Broadcast
rides the physical bus for free (one transmission heard by all) — the fair
version of the comparison, since Ethernet *is* a bus.

With :attr:`EthernetParams.switched` the same class models a store-and-
forward switch with per-port full duplex: a message occupies only its
source port (uplink), the switch fabric for a forwarding latency, and its
destination port (downlink), so disjoint pairs communicate concurrently
and the bisection grows with node count.  Broadcast is switch flooding —
one uplink transmission replicated onto every downlink in parallel.  This
is the "modeled switched GigE" leg of the three-backend crossover sweep
(EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from typing import Generator, Optional

from repro.sim import AllOf, Resource, Simulator
from repro.vbus.params import EthernetParams

__all__ = ["EthernetNetwork"]


class EthernetNetwork:
    """An Ethernet segment: one shared medium, or a per-port switch."""

    def __init__(self, sim: Simulator, params: EthernetParams, nnodes: int):
        self.sim = sim
        self.params = params
        self.nnodes = nnodes
        self._medium = Resource(sim, capacity=1)
        #: Switched mode: one full-duplex port pair per node.
        self._tx = self._rx = None
        if params.switched:
            self._tx = [
                Resource(sim, capacity=1, obs_name=f"eth.tx.{i}")
                for i in range(nnodes)
            ]
            self._rx = [
                Resource(sim, capacity=1, obs_name=f"eth.rx.{i}")
                for i in range(nnodes)
            ]
        #: Optional :class:`repro.faults.FaultInjector`; ``None`` = healthy.
        #: Ethernet legs see drop/corrupt/delay and node kills; channel
        #: stalls are a mesh concept and do not apply to Ethernet.
        self.injector = None
        #: Statistics.
        self.messages = 0
        self.bytes = 0

    def _wire_time(self, nbytes: int) -> float:
        """Medium occupancy: per-frame framing overhead plus payload bits."""
        p = self.params
        nframes = max(1, math.ceil(nbytes / p.mtu_bytes))
        return max(p.min_frame_s, nbytes / p.rate_Bps + nframes * p.min_frame_s * 0.15)

    def unicast(
        self, src: int, dst: int, nbytes: int, rate_cap_Bps: Optional[float] = None
    ) -> Generator:
        """Point-to-point message over the shared segment."""
        if src == dst:
            return 0.0
        inj = self.injector
        if inj is not None and not inj.active:
            inj = None
        if inj is not None:
            inj.check_alive(src, dst)
        t0 = self.sim.now
        p = self.params
        yield self.sim.timeout(p.sw_latency_s)  # sender kernel stack
        wire = self._wire_time(nbytes)
        if rate_cap_Bps is not None and rate_cap_Bps < p.rate_Bps:
            wire = max(wire, nbytes / rate_cap_Bps)
        if self._tx is not None:
            # Switched: uplink serialization, forwarding decision, then
            # downlink serialization (store-and-forward buffering frees
            # the uplink before the downlink is needed, so port locking
            # cannot deadlock).
            yield self._tx[src].request()
            try:
                yield self.sim.timeout(wire)
                if inj is not None:
                    nframes = max(1, math.ceil(nbytes / p.mtu_bytes))
                    yield from inj.wire_deliver(
                        src, dst, nframes, wire / nframes
                    )
            finally:
                self._tx[src].release()
            yield self.sim.timeout(p.switch_latency_s)
            yield self._rx[dst].request()
            try:
                # Downlink at line rate: the switch buffered the frames.
                yield self.sim.timeout(self._wire_time(nbytes))
            finally:
                self._rx[dst].release()
        else:
            yield self._medium.request()
            try:
                yield self.sim.timeout(wire)
                if inj is not None:
                    # Frame-granularity faults; retransmitted frames
                    # re-occupy the shared medium, so this runs while it
                    # is still held.
                    nframes = max(1, math.ceil(nbytes / p.mtu_bytes))
                    yield from inj.wire_deliver(
                        src, dst, nframes, wire / nframes
                    )
            finally:
                self._medium.release()
        yield self.sim.timeout(p.sw_latency_s)  # receiver kernel stack
        self.messages += 1
        self.bytes += nbytes
        return self.sim.now - t0

    def broadcast(
        self, src: int, nbytes: int, rate_cap_Bps: Optional[float] = None
    ) -> Generator:
        """One transmission delivered to every node on the segment."""
        inj = self.injector
        if inj is not None and not inj.active:
            inj = None
        if inj is not None:
            inj.check_alive(src)
        t0 = self.sim.now
        p = self.params
        yield self.sim.timeout(p.sw_latency_s)
        wire = self._wire_time(nbytes)
        if self._tx is not None:
            # Switch flooding: one uplink transmission, replicated onto
            # every downlink in parallel.
            yield self._tx[src].request()
            try:
                yield self.sim.timeout(wire)
                if inj is not None:
                    nframes = max(1, math.ceil(nbytes / p.mtu_bytes))
                    yield from inj.wire_deliver(
                        src, None, nframes, wire / nframes
                    )
            finally:
                self._tx[src].release()
            yield self.sim.timeout(p.switch_latency_s)
            deliveries = [
                self.sim.process(
                    self._downlink(dst, nbytes), name=f"eth-flood[{dst}]"
                )
                for dst in range(self.nnodes)
                if dst != src
            ]
            if deliveries:
                yield AllOf(self.sim, deliveries)
        else:
            yield self._medium.request()
            try:
                yield self.sim.timeout(wire)
                if inj is not None:
                    nframes = max(1, math.ceil(nbytes / p.mtu_bytes))
                    yield from inj.wire_deliver(
                        src, None, nframes, wire / nframes
                    )
            finally:
                self._medium.release()
        yield self.sim.timeout(p.sw_latency_s)
        self.messages += 1
        self.bytes += nbytes * (self.nnodes - 1)
        return self.sim.now - t0

    def _downlink(self, dst: int, nbytes: int) -> Generator:
        """One flooded copy occupying ``dst``'s downlink port."""
        yield self._rx[dst].request()
        try:
            yield self.sim.timeout(self._wire_time(nbytes))
        finally:
            self._rx[dst].release()
