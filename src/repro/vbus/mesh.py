"""2-D mesh topology and XY (dimension-order) routing.

Pure geometry — no simulated time.  The route cache's hit/miss counters
surface as ``route_cache.hits`` / ``route_cache.misses`` in traced-run
metric dumps (see :func:`repro.vbus.stats.cluster_metrics_rows` and
``docs/TRACE_FORMAT.md``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["MeshTopology"]

Coord = Tuple[int, int]


class MeshTopology:
    """Node numbering, coordinates, and XY routes on a rows x cols mesh.

    Ranks are row-major: ``rank = row * cols + col``.  XY routing moves
    along the X (column) dimension first, then Y (row) — the standard
    deadlock-free dimension order for wormhole meshes.
    """

    def __init__(self, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise ValueError(f"bad mesh {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        #: Memoized XY routes — at most nnodes² entries, recomputed
        #: thousands of times per simulated message otherwise.
        self._route_cache: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        self.route_cache_hits = 0
        self.route_cache_misses = 0

    @property
    def nnodes(self) -> int:
        return self.rows * self.cols

    def coord(self, rank: int) -> Coord:
        if not 0 <= rank < self.nnodes:
            raise ValueError(f"rank {rank} out of range for {self.rows}x{self.cols}")
        return divmod(rank, self.cols)

    def rank(self, coord: Coord) -> int:
        row, col = coord
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(f"coord {coord} outside mesh")
        return row * self.cols + col

    def neighbors(self, rank: int) -> List[int]:
        row, col = self.coord(rank)
        out = []
        for dr, dc in ((0, 1), (0, -1), (1, 0), (-1, 0)):
            nr, nc = row + dr, col + dc
            if 0 <= nr < self.rows and 0 <= nc < self.cols:
                out.append(self.rank((nr, nc)))
        return out

    def links(self) -> List[Tuple[int, int]]:
        """All directed links (u, v) between adjacent nodes."""
        out = []
        for u in range(self.nnodes):
            for v in self.neighbors(u):
                out.append((u, v))
        return out

    def route(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """XY route as a list of directed links from ``src`` to ``dst``.

        Cached per (src, dst); callers must not mutate the result.
        """
        cached = self._route_cache.get((src, dst))
        if cached is not None:
            self.route_cache_hits += 1
            return cached
        self.route_cache_misses += 1
        path = self._compute_route(src, dst)
        self._route_cache[(src, dst)] = path
        return path

    def route_cache_stats(self) -> Dict[str, float]:
        """Hits, misses and hit rate of the XY-route cache."""
        hits, misses = self.route_cache_hits, self.route_cache_misses
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / total) if total else 0.0,
        }

    def _compute_route(self, src: int, dst: int) -> List[Tuple[int, int]]:
        if src == dst:
            return []
        sr, sc = self.coord(src)
        dr, dc = self.coord(dst)
        path: List[Tuple[int, int]] = []
        r, c = sr, sc
        step = 1 if dc > c else -1
        while c != dc:  # X first
            nxt = (r, c + step)
            path.append((self.rank((r, c)), self.rank(nxt)))
            c += step
        step = 1 if dr > r else -1
        while r != dr:  # then Y
            nxt = (r + step, c)
            path.append((self.rank((r, c)), self.rank(nxt)))
            r += step
        return path

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance between two ranks."""
        sr, sc = self.coord(src)
        dr, dc = self.coord(dst)
        return abs(sr - dr) + abs(sc - dc)

    @property
    def diameter(self) -> int:
        return (self.rows - 1) + (self.cols - 1)
