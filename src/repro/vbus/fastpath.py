"""Batched (closed-form) wire-leg accounting for the wormhole mesh.

The stepwise :meth:`~repro.vbus.router.WormholeMesh.unicast` spends ~10
kernel events per message: one resource grant + one interruptible delay
per hop, a body-streaming delay, and the bookkeeping around each.  For
the overwhelmingly common case — all channels free, no V-Bus freeze in
sight — the entire leg is analytically determined at injection time, so
this module charges it with **two** scheduled events (path release at
``T_rel``, receive tail at ``T_end``) while producing bit-identical
simulated times, byte counts, and channel statistics.

Exactness argument (the equivalence suite in
``tests/test_fastpath_equivalence.py`` verifies it empirically):

* All timestamps are computed by the *same sequence of float additions*
  the stepwise path performs (``t += router_delay`` per hop, then
  ``t += nbytes/rate``) and scheduled at absolute times, so no
  re-rounding can creep in.
* A leg is claimed only when every channel on the route is free, the
  freeze domain is thawed, and — for multi-hop routes — no other event
  is scheduled at or before ``now + (hops-1) * router_delay``
  (``sim.peek()`` strictly later).  Under that guard no other process
  can run, request a claimed channel, or start a freeze while the head
  would still be advancing hop by hop, so holding the whole path from
  ``now`` is observationally identical to acquiring it hop by hop.
  Single-hop legs are exempt: their claim point coincides exactly with
  the stepwise acquire.
* A leg that misses the claim-time proof is not lost: the stepwise
  path re-attempts the proof at every hop boundary (and once more just
  before body streaming) via :func:`try_promote`.  The claim point of
  hop *k* is an event boundary, so the same guard applies to the
  remaining sub-path — the already-held hops stay held either way, and
  the promoted remainder uses the identical claim-time float sequence
  the stepwise loop would have produced.  Promotions are counted in
  ``mesh.fast_promotions``; claim-time misses are broken down by cause
  in ``mesh.fast_fallback_{injector,frozen,peek,busy}``.
* A freeze *can* still land inside the last head hop or the body
  stream (those lie beyond the guard window).  The
  :class:`~repro.vbus.vbusctl.FreezeDomain` keeps a ledger of live fast
  legs and **demotes** an affected leg on freeze: the two scheduled
  events are cancelled and a stepwise continuation process serves the
  exact remainder (computed with the same ``remaining -= now - started``
  arithmetic ``interruptible_delay`` uses), releases the path, and runs
  the receive tail.

Per-channel ``busy_s``/``messages`` counters stay exact because a claim
backdates each channel's ``_acquired_at`` to the hop time the stepwise
path would have acquired it at.

The same backdating keeps **traces** exact: when a tracer is attached
(``sim.tracer``), channel-occupancy spans are emitted from
:meth:`Channel.release` and the wire-leg span from
:meth:`_FastLeg._release_channels`, covering the identical simulated
intervals the stepwise path would record — a trace taken with
``fast_path=True`` is indistinguishable from the stepwise one.  Tracing
hooks only *read* simulation state, so they cannot affect the
equivalence argument above.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.sim.kernel import Event
from repro.vbus.flit import flit_count

__all__ = ["start_fast_leg", "try_promote"]


class _FastLeg:
    """One analytically-charged wire leg (claim → release → tail)."""

    __slots__ = (
        "mesh",
        "sim",
        "domain",
        "nbytes",
        "channels",
        "hop_starts",
        "head_s",
        "body_start",
        "body_s",
        "t_rel",
        "t_end",
        "tail_s",
        "at_release",
        "at_tail",
        "done",
        "span_t0",
        "_release_ev",
        "_tail_ev",
    )

    def __init__(self, mesh, channels, hop_starts, body_start, body_s, tail_s,
                 nbytes, at_release, at_tail, span_t0=None):
        self.mesh = mesh
        self.sim = mesh.sim
        self.domain = mesh.domain
        self.nbytes = nbytes
        self.channels = channels
        self.hop_starts = hop_starts
        #: Wire-span start for the tracer: injection time.  A promoted leg
        #: passes the original unicast entry time; a full leg starts now.
        self.span_t0 = hop_starts[0] if span_t0 is None else span_t0
        self.head_s = mesh.link.router_delay_s
        self.body_start = body_start
        self.body_s = body_s
        self.t_rel = body_start + body_s
        self.t_end = self.t_rel + tail_s
        self.tail_s = tail_s
        self.at_release = at_release
        self.at_tail = at_tail
        #: The caller-visible completion event (succeeds at ``t_end``).
        self.done = Event(self.sim)
        self._release_ev = self.sim.pooled_timeout_at(self.t_rel, self._on_release)
        self._tail_ev = self.sim.pooled_timeout_at(self.t_end, self._on_tail)
        self.domain.register_fast_leg(self)

    # -- the happy path ----------------------------------------------------
    def _on_release(self, _ev) -> None:
        """Path teardown at ``t_rel`` — mirrors unicast's ``finally``."""
        self.domain.unregister_fast_leg(self)
        self._release_channels()

    def _on_tail(self, _ev) -> None:
        """Receive-side dequeue done at ``t_end``."""
        if self.at_tail is not None:
            self.at_tail()
        self.done.succeed()

    def _release_channels(self) -> None:
        for ch in reversed(self.channels):
            ch.release()
        mesh = self.mesh
        mesh.messages += 1
        mesh.bytes += self.nbytes
        mesh.flits += flit_count(self.nbytes, mesh.link.width_bits)
        tr = self.sim.tracer
        if tr is not None:
            # Same span the stepwise unicast records: injection → wire end.
            src = self.channels[0].u
            dst = self.channels[-1].v
            tr.span(
                ("node", src), f"wire {src}->{dst}", self.span_t0,
                args={"bytes": self.nbytes, "hops": len(self.channels)},
            )
            tr.count("mesh.messages")
            tr.count("mesh.bytes", self.nbytes, "B")
        if self.at_release is not None:
            self.at_release()

    # -- freeze demotion ---------------------------------------------------
    def demote(self, frozen_at: float) -> None:
        """A freeze started at ``frozen_at``: fall back to stepwise.

        Called synchronously from :meth:`FreezeDomain.freeze`.  The claim
        guard guarantees ``frozen_at`` lies strictly after the last hop's
        start, so the path is fully held — only the last head hop, the
        body stream, or nothing (boundary ties, where stepwise completes
        too) can remain.
        """
        if frozen_at >= self.t_rel:
            # Boundary tie with the body-completion timeout: stepwise
            # completes the transfer (the timeout fires and wins the
            # AnyOf), so leave the scheduled events alone.
            return
        self.domain.unregister_fast_leg(self)
        self.sim.cancel(self._release_ev)
        self.sim.cancel(self._tail_ev)
        self.mesh.fast_demotions += 1
        if frozen_at >= self.body_start:
            # Frozen mid-body (or exactly at the head/body boundary, where
            # stepwise finishes the head and parks the full body).
            head_rem = None
            body_rem = self.body_s - (frozen_at - self.body_start)
        else:
            head_rem = self.head_s - (frozen_at - self.hop_starts[-1])
            body_rem = self.body_s
        self.sim.process(
            self._continuation(head_rem, body_rem), name="fastleg-demoted"
        )

    def _continuation(self, head_rem: Optional[float], body_rem: float):
        """Serve the remainder exactly as the stepwise path would."""
        if head_rem is not None:
            yield from self.domain.interruptible_delay(head_rem)
        yield from self.domain.interruptible_delay(body_rem)
        self._release_channels()
        yield self.sim.timeout(self.tail_s)
        if self.at_tail is not None:
            self.at_tail()
        self.done.succeed()


def start_fast_leg(
    mesh,
    src: int,
    dst: int,
    nbytes: int,
    rate_cap_Bps: Optional[float],
    tail_s: float,
    at_release: Optional[Callable[[], None]] = None,
    at_tail: Optional[Callable[[], None]] = None,
) -> Optional[Event]:
    """Try to charge a ``src → dst`` wire leg analytically.

    Returns the completion event (succeeds at wire-end + ``tail_s``, after
    invoking ``at_release`` at path-release time and ``at_tail`` just
    before completion) — or ``None`` when the leg cannot be proven safe,
    in which case the caller must run the stepwise path.
    """
    inj = mesh.injector
    if inj is not None and inj.active:
        # Active fault plan: faulty wire legs must run stepwise so stall
        # windows, drops, and retransmission rounds interleave with other
        # traffic exactly as the oracle orders them.  Full demotion — not
        # per-leg — keeps the contract trivially provable (pinned by
        # tests/test_fastpath_equivalence.py).
        mesh.fast_fallbacks += 1
        mesh.fast_fallback_injector += 1
        return None
    domain = mesh.domain
    if domain.frozen:
        mesh.fast_fallbacks += 1
        mesh.fast_fallback_frozen += 1
        return None
    channels = mesh.channel_path(src, dst)
    h = len(channels)
    if h == 0:
        return None
    sim = mesh.sim
    now = sim.now
    rd = mesh.link.router_delay_s
    if h > 1 and not (sim.peek() > now + (h - 1) * rd):
        # Another process could act while the head would still be
        # advancing — claiming the whole path now might steal a channel
        # early.  Only the oracle can order that correctly.
        mesh.fast_fallbacks += 1
        mesh.fast_fallback_peek += 1
        return None
    for ch in channels:
        if not ch.is_free:
            mesh.fast_fallbacks += 1
            mesh.fast_fallback_busy += 1
            return None

    # Claim the path; per-hop timestamps follow stepwise float arithmetic.
    hop_starts: List[float] = []
    t = now
    for ch in channels:
        ch.claim(t)
        hop_starts.append(t)
        t = t + rd
    body_start = t
    rate = mesh.link_rate_Bps
    if rate_cap_Bps is not None:
        rate = min(rate, rate_cap_Bps)
    body_s = nbytes / rate

    mesh.fast_legs += 1
    leg = _FastLeg(
        mesh, channels, hop_starts, body_start, body_s, tail_s,
        nbytes, at_release, at_tail,
    )
    return leg.done


def try_promote(
    mesh,
    path,
    k: int,
    span_t0: float,
    nbytes: int,
    rate_cap_Bps: Optional[float],
) -> Optional[Event]:
    """Mid-route promotion: charge the remaining leg analytically.

    Called by the stepwise :meth:`WormholeMesh.unicast` at the hop-``k``
    claim boundary (``k == len(path)`` means all hops are held and only
    the body stream remains).  The first ``k`` channels are already held
    by the caller; if the remaining sub-path passes the same claim-time
    proof :func:`start_fast_leg` uses — domain thawed, every remaining
    channel free, and (for 2+ remaining hops) no foreign event inside
    the head-advance window — the leg takes ownership of the *whole*
    path and finishes it with two scheduled events.

    Returns the completion event (succeeds at wire end; the caller still
    owes the receive tail and its own accounting is skipped because the
    leg performs it) or ``None`` to continue stepwise.  Failed attempts
    are not re-counted as fallbacks — the injection-time miss already
    was.
    """
    inj = mesh.injector
    if inj is not None and inj.active:
        return None
    domain = mesh.domain
    if domain.frozen:
        return None
    sim = mesh.sim
    now = sim.now
    rd = mesh.link.router_delay_s
    rest = path[k:]
    r = len(rest)
    if r > 1 and not (sim.peek() > now + (r - 1) * rd):
        return None
    for ch in rest:
        if not ch.is_free:
            return None

    # Claim the remainder; hop timestamps follow stepwise float
    # arithmetic from *this* claim boundary.  ``r == 0`` (body-only) and
    # ``r == 1`` need no peek guard: the claim point coincides with the
    # stepwise acquire, and a held path cannot be stolen.
    hop_starts: List[float] = []
    t = now
    for ch in rest:
        ch.claim(t)
        hop_starts.append(t)
        t = t + rd
    body_start = t
    rate = mesh.link_rate_Bps
    if rate_cap_Bps is not None:
        rate = min(rate, rate_cap_Bps)
    body_s = nbytes / rate

    mesh.fast_promotions += 1
    # tail_s=0: the stepwise caller (the NIC) still serves the receive
    # tail after the wire leg completes, exactly as it would stepwise.
    leg = _FastLeg(
        mesh, list(path), hop_starts, body_start, body_s, 0.0,
        nbytes, None, None, span_t0=span_t0,
    )
    return leg.done
