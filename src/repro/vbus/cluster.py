"""Cluster assembly: hosts + NICs + interconnect behind one transfer API.

:class:`Cluster` is the facade the MPI-2 library talks to.  It hides which
interconnect is configured (V-Bus mesh or Fast Ethernet) behind two
operations:

* :meth:`Cluster.transfer` — one point-to-point message, through the source
  NIC (DMA or PIO) and the network.
* :meth:`Cluster.hw_broadcast` — the V-Bus hardware broadcast (freezes
  point-to-point traffic, streams one wave to all nodes), or the Ethernet
  physical-bus broadcast; ``None``-capable when the hardware lacks it.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.obs import Tracer
from repro.sim import Simulator
from repro.vbus.ethernet import EthernetNetwork
from repro.vbus.host import Host
from repro.vbus.mesh import MeshTopology
from repro.vbus.nic import Nic, RECV_OVERHEAD_S, TransferReceipt
from repro.vbus.fastpath import start_fast_leg
from repro.vbus.params import ClusterParams, VBUS_SKWP, cluster_for
from repro.vbus.router import WormholeMesh
from repro.vbus.signal import bandwidth_Bps
from repro.vbus.vbusctl import FreezeDomain, VBusController

__all__ = ["Cluster", "build_cluster"]


def _noop():
    """An immediately-completing process body."""
    return
    yield  # pragma: no cover - makes this a generator function


class Cluster:
    """A simulated PC-cluster instance bound to one simulation."""

    def __init__(self, sim: Simulator, params: ClusterParams):
        self.sim = sim
        self.params = params
        if params.trace and sim.tracer is None:
            sim.tracer = Tracer(sim)
        #: The attached tracer (None = tracing off); all layers share it.
        self.tracer = sim.tracer
        self.topology = MeshTopology(*params.mesh)
        self.hosts: List[Host] = [
            Host(sim, rank, params.cpu) for rank in range(self.nprocs)
        ]
        self.nics: List[Nic] = [
            Nic(sim, rank, params.nic) for rank in range(self.nprocs)
        ]
        self.domain = FreezeDomain(sim)

        if params.network == "vbus":
            self.mesh: Optional[WormholeMesh] = WormholeMesh(
                sim, self.topology, params.link, self.domain
            )
            # Batched accounting on: the stepwise unicast may re-prove a
            # fallen-back leg safe mid-route and promote it (fastpath).
            self.mesh.fast_path = params.fast_path
            self.ethernet: Optional[EthernetNetwork] = None
            setup = (
                max(1, self.topology.diameter) * params.link.router_delay_s + 1e-6
            )
            self.vbusctl: Optional[VBusController] = VBusController(
                sim, self.domain, setup_s=setup, fast=params.fast_path
            )
        else:
            self.mesh = None
            self.vbusctl = None
            self.ethernet = EthernetNetwork(sim, params.ethernet, self.nprocs)

        #: Fault injection (see repro.faults): one injector per run, wired
        #: into every layer that models the wire.  Imported lazily — the
        #: injector module pulls in the typed MPI errors, which would close
        #: an import cycle back to this module.
        self.injector = None
        if params.faults is not None and params.faults.active:
            from repro.faults.injector import FaultInjector

            self.injector = FaultInjector(sim, params.faults, self.nprocs)
            for nic in self.nics:
                nic.injector = self.injector
            if self.mesh is not None:
                self.mesh.injector = self.injector
            if self.vbusctl is not None:
                self.vbusctl.injector = self.injector
                self.vbusctl.width_bits = params.link.width_bits
            if self.ethernet is not None:
                self.ethernet.injector = self.injector

    # -- shape -----------------------------------------------------------
    @property
    def nprocs(self) -> int:
        return self.params.nprocs

    @property
    def link_rate_Bps(self) -> float:
        if self.mesh is not None:
            return self.mesh.link_rate_Bps
        return self.ethernet.params.rate_Bps

    @property
    def has_hw_broadcast(self) -> bool:
        """True when a one-shot all-node broadcast primitive exists."""
        if self.params.network == "vbus":
            return self.params.vbus_broadcast
        return True  # Ethernet is a physical bus

    # -- operations --------------------------------------------------------
    def transfer(
        self,
        src: int,
        dst: int,
        nbytes: int,
        *,
        elements: Optional[int] = None,
        contiguous: bool = True,
    ) -> Generator:
        """One point-to-point message; returns a ``TransferReceipt``."""
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            return TransferReceipt(
                nbytes=nbytes,
                elements=elements or max(1, nbytes // 8),
                contiguous=contiguous,
                cpu_s=0.0,
                total_s=0.0,
            )

        fast_start = None
        if self.mesh is not None:
            network_call = lambda cap: self.mesh.unicast(src, dst, nbytes, cap)
            if self.params.fast_path:
                fast_start = lambda cap, tail_s, at_release: start_fast_leg(
                    self.mesh, src, dst, nbytes, cap, tail_s,
                    at_release=at_release,
                )
        else:
            network_call = lambda cap: self.ethernet.unicast(src, dst, nbytes, cap)
        receipt = yield from self.nics[src].transfer(
            network_call, nbytes, elements=elements, contiguous=contiguous,
            fast_start=fast_start,
        )
        self.hosts[src].charge_comm_cpu(receipt.cpu_s)
        return receipt

    def hw_broadcast(
        self,
        src: int,
        nbytes: int,
        *,
        elements: Optional[int] = None,
        contiguous: bool = True,
    ) -> Generator:
        """Hardware broadcast from ``src`` to every other node."""
        self._check_rank(src)
        if not self.has_hw_broadcast:
            raise RuntimeError("cluster has no hardware broadcast facility")
        if self.nprocs == 1:
            return None
        if self.vbusctl is not None:
            rate = min(self.link_rate_Bps, self.params.nic.dma_rate_Bps)
            network_call = lambda cap: self.vbusctl.broadcast(
                nbytes, rate if cap is None else min(rate, cap), src=src
            )
        else:
            network_call = lambda cap: self.ethernet.broadcast(src, nbytes, cap)
        receipt = yield from self.nics[src].transfer(
            network_call, nbytes, elements=elements, contiguous=contiguous
        )
        self.hosts[src].charge_comm_cpu(receipt.cpu_s)
        return receipt

    def rma_start(
        self,
        origin: int,
        remote: int,
        nbytes: int,
        *,
        elements: Optional[int] = None,
        contiguous: bool = True,
        direction: str = "put",
    ) -> Generator:
        """Split-phase one-sided transfer (MPI_PUT / MPI_GET hardware leg).

        Blocks the caller only for the CPU-occupied phase — message-queue
        enqueue plus either DMA descriptor programming (contiguous) or the
        full per-element programmed-I/O copy (strided).  The wire/DMA
        streaming leg runs as a background process; the returned
        ``(cpu_s, completion)`` pair lets the window layer overlap it with
        computation until the next fence.  This is the paper's "data from
        the user buffer can be copied ... without interrupting the
        processor" for contiguous PUT/GET, and the processor-bound
        element-by-element path for strided PUT/GET.
        """
        if direction not in ("put", "get"):
            raise ValueError(f"bad RMA direction {direction!r}")
        tr = self.sim.tracer
        t0 = self.sim.now if tr is not None else 0.0
        self._check_rank(origin)
        self._check_rank(remote)
        if elements is None:
            elements = max(1, nbytes // 8)
        if origin == remote or nbytes == 0:
            if self.params.fast_path:
                # No hardware leg: a pre-completed event costs zero kernel
                # steps (the stepwise _noop process costs two per call).
                return 0.0, self.sim.completed_event()
            done = self.sim.process(_noop(), name="rma-local")
            return 0.0, done

        nic = self.nics[origin]
        setup_s = nic.software_setup_s()
        cpu_s = setup_s

        src, dst = (origin, remote) if direction == "put" else (remote, origin)
        if self.mesh is not None:
            wire_call = lambda cap: self.mesh.unicast(src, dst, nbytes, cap)
        else:
            wire_call = lambda cap: self.ethernet.unicast(src, dst, nbytes, cap)

        fast = self.params.fast_path and self.mesh is not None
        completion = None
        if not fast or contiguous:
            yield self.sim.timeout(setup_s)
        if contiguous:
            # Fast path: take a free DMA engine synchronously (same
            # simulated instant as the immediately-granted request).
            if not (fast and nic._dma.try_acquire()):
                yield nic._dma.request()
            yield self.sim.timeout(self.params.nic.dma_setup_s)
            cpu_s += self.params.nic.dma_setup_s

            if fast:
                # The stepwise wire process releases the DMA engine in its
                # ``finally`` — after the receive tail — so hook it there.
                completion = start_fast_leg(
                    self.mesh, src, dst, nbytes,
                    self.params.nic.dma_rate_Bps, RECV_OVERHEAD_S,
                    at_tail=nic._dma.release,
                )
            if completion is None:

                def wire():
                    try:
                        yield from wire_call(self.params.nic.dma_rate_Bps)
                        yield self.sim.timeout(RECV_OVERHEAD_S)
                    finally:
                        nic._dma.release()

            nic.dma_transfers += 1
        else:
            pio = (
                self.params.nic.pio_setup_s
                + elements * self.params.nic.pio_per_element_s
            )
            if fast:
                # Merged setup + per-element copy: one event, bit-identical
                # end time (sequential additions, as stepwise fires them).
                yield self.sim.timeout_at((self.sim.now + setup_s) + pio)
            else:
                yield self.sim.timeout(pio)
            cpu_s += pio
            nic.pio_elements += elements

            if fast:
                completion = start_fast_leg(
                    self.mesh, src, dst, nbytes, None, RECV_OVERHEAD_S
                )
            if completion is None:

                def wire():
                    yield from wire_call(None)
                    yield self.sim.timeout(RECV_OVERHEAD_S)

        if completion is None:
            completion = self.sim.process(
                wire(), name=f"rma-wire[{origin}->{remote}]"
            )
        nic.messages += 1
        nic.bytes += nbytes
        nic.cpu_busy_s += cpu_s
        self.hosts[origin].charge_comm_cpu(cpu_s)
        if tr is not None:
            # The CPU-occupied initiation phase; the wire/DMA leg shows up
            # on the channel tracks (and "wire" node spans) as it streams.
            tr.span(
                ("node", origin), f"rma-{direction} {origin}->{remote}", t0,
                args={"bytes": nbytes, "contiguous": contiguous,
                      "cpu_s": cpu_s},
            )
            tr.count(f"rma.{direction}_bytes", nbytes, "B")
        return cpu_s, completion

    # -- bookkeeping ---------------------------------------------------------
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.nprocs:
            raise ValueError(f"rank {rank} out of range (nprocs={self.nprocs})")

    def stats(self) -> Dict[str, float]:
        """Aggregate hardware counters for reports and tests."""
        out: Dict[str, float] = {
            "messages": sum(n.messages for n in self.nics),
            "bytes": sum(n.bytes for n in self.nics),
            "dma_transfers": sum(n.dma_transfers for n in self.nics),
            "pio_elements": sum(n.pio_elements for n in self.nics),
            "nic_cpu_busy_s": sum(n.cpu_busy_s for n in self.nics),
            "freezes": self.domain.freeze_count,
            "frozen_s": self.domain.total_frozen_s,
        }
        if self.vbusctl is not None:
            out["hw_broadcasts"] = self.vbusctl.broadcast_count
            out["hw_broadcast_bytes"] = self.vbusctl.broadcast_bytes
        if self.mesh is not None:
            out["mesh_messages"] = self.mesh.messages
            out["mesh_bytes"] = self.mesh.bytes
            out["fast_legs"] = self.mesh.fast_legs
            out["fast_fallbacks"] = self.mesh.fast_fallbacks
            out["fast_demotions"] = self.mesh.fast_demotions
            out["fast_promotions"] = self.mesh.fast_promotions
            out["fast_fallback_injector"] = self.mesh.fast_fallback_injector
            out["fast_fallback_frozen"] = self.mesh.fast_fallback_frozen
            out["fast_fallback_peek"] = self.mesh.fast_fallback_peek
            out["fast_fallback_busy"] = self.mesh.fast_fallback_busy
        if self.ethernet is not None:
            out["ether_messages"] = self.ethernet.messages
            out["ether_bytes"] = self.ethernet.bytes
        if self.injector is not None:
            out.update(self.injector.stats())
        return out


def build_cluster(
    nprocs: int = 4,
    params: Optional[ClusterParams] = None,
    sim: Optional[Simulator] = None,
) -> Cluster:
    """Convenience constructor: a fresh simulator + a cluster of ``nprocs``."""
    sim = sim or Simulator()
    base = params if params is not None else VBUS_SKWP
    if base.nprocs != nprocs:
        base = cluster_for(nprocs, base)
    return Cluster(sim, base)
