"""The virtual-bus controller and the freeze domain (paper §2.1).

V-Bus supports broadcast on a switched mesh *without* a dedicated physical
bus: when a broadcast request is issued, the network dynamically constructs
a transient bus from the source to all destinations.  In-flight
point-to-point wormhole messages are **frozen in their router buffers** for
the duration, then resume where they stopped.

:class:`FreezeDomain` is the mechanism: point-to-point transfers perform all
their waiting through :meth:`FreezeDomain.interruptible_delay`, which parks
the transfer while the domain is frozen and resumes with the remaining time
afterwards.  :class:`VBusController` arbitrates the bus, freezes the domain,
streams the broadcast wave, and thaws.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.sim import AnyOf, Event, Resource, SimulationError, Simulator
from repro.vbus.flit import flit_count

__all__ = ["FreezeDomain", "VBusController"]


class FreezeDomain:
    """A set of transfers that a virtual bus may collectively pause."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.frozen = False
        self._freeze_event = Event(sim)  # fires when freeze() is called
        self._thaw_event = Event(sim)  # fires when thaw() is called
        #: Cumulative statistics.
        self.freeze_count = 0
        self.total_frozen_s = 0.0
        self._frozen_since: Optional[float] = None
        #: Live analytically-charged transfers (see repro.vbus.fastpath);
        #: a freeze demotes each back to the stepwise oracle.
        self._fast_legs: list = []

    # -- fast-leg ledger ----------------------------------------------------
    def register_fast_leg(self, leg) -> None:
        self._fast_legs.append(leg)

    def unregister_fast_leg(self, leg) -> None:
        try:
            self._fast_legs.remove(leg)
        except ValueError:
            pass

    # -- state transitions --------------------------------------------------
    def freeze(self) -> None:
        if self.frozen:
            raise SimulationError("freeze domain already frozen")
        self.frozen = True
        self.freeze_count += 1
        self._frozen_since = self.sim.now
        if self._fast_legs:
            now = self.sim.now
            for leg in list(self._fast_legs):
                leg.demote(now)
        ev, self._freeze_event = self._freeze_event, Event(self.sim)
        ev.succeed()

    def thaw(self) -> None:
        if not self.frozen:
            raise SimulationError("freeze domain not frozen")
        self.frozen = False
        tr = self.sim.tracer
        if tr is not None:
            tr.span(("vbus", 0), "freeze", self._frozen_since)
            tr.count("vbus.freezes")
            tr.observe("vbus.frozen_s", self.sim.now - self._frozen_since, "s")
        self.total_frozen_s += self.sim.now - self._frozen_since
        self._frozen_since = None
        ev, self._thaw_event = self._thaw_event, Event(self.sim)
        ev.succeed()

    # -- waiting primitives ---------------------------------------------------
    def wait_thaw(self) -> Generator:
        """Block while the domain is frozen (no-op otherwise)."""
        while self.frozen:
            yield self._thaw_event

    def interruptible_delay(self, duration: float) -> Generator:
        """Wait ``duration`` seconds of *unfrozen* time.

        If a freeze begins mid-wait, progress pauses and the remaining time
        is served after the thaw — exactly how a wormhole body stream frozen
        in router buffers behaves.
        """
        if duration < 0:
            raise SimulationError(f"negative duration {duration}")
        remaining = duration
        while True:
            yield from self.wait_thaw()
            if remaining <= 0:
                return
            started = self.sim.now
            timeout = self.sim.timeout(remaining)
            freeze_ev = self._freeze_event
            yield AnyOf(self.sim, [timeout, freeze_ev])
            if timeout.processed:
                return
            remaining -= self.sim.now - started


class VBusController:
    """Arbitrates the single virtual bus and drives broadcasts."""

    def __init__(
        self,
        sim: Simulator,
        domain: FreezeDomain,
        *,
        setup_s: float,
        release_s: float = 0.0,
        fast: bool = False,
    ):
        self.sim = sim
        self.domain = domain
        self.setup_s = setup_s
        self.release_s = release_s
        #: Merge the setup/wave/release timeouts into one scheduled event.
        self.fast = fast
        self._bus = Resource(sim, capacity=1, obs_name="vbus.arbiter")
        #: Optional :class:`repro.faults.FaultInjector` (``None`` = healthy)
        #: and the link width its flit-level faults are framed against.
        self.injector = None
        self.width_bits = 8
        #: Statistics.
        self.broadcast_count = 0
        self.broadcast_bytes = 0

    def broadcast(
        self, nbytes: int, rate_Bps: float, src: Optional[int] = None
    ) -> Generator:
        """One hardware broadcast: freeze, configure, stream, release.

        The bus reaches every node simultaneously, so streaming time is a
        single ``nbytes / rate`` term regardless of node count — this is
        what makes V-Bus broadcast beat software trees and shared Ethernet.
        """
        if rate_Bps <= 0:
            raise SimulationError("broadcast rate must be positive")
        inj = self.injector
        if inj is not None and not inj.active:
            inj = None
        if inj is not None and src is not None:
            inj.check_alive(src)
        t0 = self.sim.now
        yield self._bus.request()
        self.domain.freeze()
        try:
            if self.fast:
                # One scheduled event for setup + wave + release.  The
                # end time is built by the same sequence of additions the
                # stepwise timeouts perform (each timeout fires at
                # ``start + delay``), so it is bit-identical; the domain
                # is frozen throughout, so nothing can observe the
                # missing intermediate wakeups.
                t = self.sim.now + self.setup_s
                t = t + nbytes / rate_Bps
                if self.release_s:
                    t = t + self.release_s
                yield self.sim.timeout_at(t)
            else:
                # Bus construction: claim a path to all destinations.
                yield self.sim.timeout(self.setup_s)
                # One wave carries the payload to every node.
                yield self.sim.timeout(nbytes / rate_Bps)
                if self.release_s:
                    yield self.sim.timeout(self.release_s)
            if inj is not None and src is not None:
                # Flit-level faults on the broadcast wave.  The domain is
                # frozen by this very broadcast, so retransmission rounds
                # wait with plain timeouts (the default), holding the bus.
                nflits = flit_count(nbytes, self.width_bits)
                yield from inj.wire_deliver(
                    src, None, nflits, (nbytes / rate_Bps) / nflits
                )
            self.broadcast_count += 1
            self.broadcast_bytes += nbytes
        finally:
            self.domain.thaw()
            self._bus.release()
        tr = self.sim.tracer
        if tr is not None:
            # Arbitration wait + bus construction + wave + release.
            tr.span(("vbus", 0), "broadcast", t0, args={"bytes": nbytes})
            tr.count("vbus.broadcasts")
            tr.count("vbus.broadcast_bytes", nbytes, "B")
