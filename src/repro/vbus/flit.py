"""Message and flit framing for the wormhole network."""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["Message", "flit_count"]

_message_ids = itertools.count()

#: Header and tail flits framing every wormhole message.
CONTROL_FLITS = 2


@dataclass
class Message:
    """One network-level transfer (the unit the NIC injects).

    ``dst`` is a single node for point-to-point transfers and ``None`` for a
    V-Bus broadcast (delivered to every other node).
    """

    src: int
    dst: Optional[int]
    nbytes: int
    kind: str = "p2p"  # "p2p" | "bcast"
    tag: int = 0
    msg_id: int = field(default_factory=lambda: next(_message_ids))

    def __post_init__(self):
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self.kind not in ("p2p", "bcast"):
            raise ValueError(f"unknown message kind {self.kind!r}")
        if self.kind == "p2p" and self.dst is None:
            raise ValueError("p2p message needs a destination")

    @property
    def is_broadcast(self) -> bool:
        return self.kind == "bcast"


def flit_count(nbytes: int, width_bits: int) -> int:
    """Number of flits a payload occupies on a link of the given width."""
    flit_bytes = max(1, width_bits // 8)
    return CONTROL_FLITS + math.ceil(nbytes / flit_bytes)
