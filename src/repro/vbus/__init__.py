"""Hardware substrate: the V-Bus based PC-cluster as a discrete-event model.

The paper's cluster is four 300 MHz Pentium-II PCs joined by custom FPGA
network cards into a 2-D mesh.  Every mechanism the evaluation relies on is
modelled here:

* :mod:`repro.vbus.signal` — per-line skew, the skew-sampling circuit, and
  the cycle-time mathematics that make SKWP ~4x faster than conventional
  pipelining (Section 2.1).
* :mod:`repro.vbus.link` — wave-pipelined links in ``conventional`` /
  ``wave`` / ``skwp`` modes.
* :mod:`repro.vbus.router` + :mod:`repro.vbus.mesh` — wormhole XY routing
  on the 2-D mesh, with freeze/unfreeze hooks for the virtual bus.
* :mod:`repro.vbus.vbusctl` — the virtual-bus broadcast engine: freezes
  in-flight point-to-point traffic, configures a transient bus from the
  source to all destinations, streams the broadcast, and releases.
* :mod:`repro.vbus.nic` — the network card: DMA engine for contiguous
  transfers, programmed-I/O for strided ones, a driver buffer, and the
  shared message queue that avoids kernel context switches (Section 2.2).
* :mod:`repro.vbus.ethernet` — the Fast Ethernet baseline.
* :mod:`repro.vbus.cluster` — assembles hosts + NICs + network.
"""

from repro.vbus.cluster import Cluster, build_cluster
from repro.vbus.stats import ChannelUsage, network_usage, usage_report
from repro.vbus.params import (
    ClusterParams,
    CpuParams,
    LinkParams,
    NicParams,
    ETHERNET_100,
    VBUS_CONVENTIONAL,
    VBUS_SKWP,
    VBUS_WAVE_UNTUNED,
)

__all__ = [
    "ChannelUsage",
    "Cluster",
    "ClusterParams",
    "network_usage",
    "usage_report",
    "CpuParams",
    "ETHERNET_100",
    "LinkParams",
    "NicParams",
    "VBUS_CONVENTIONAL",
    "VBUS_SKWP",
    "VBUS_WAVE_UNTUNED",
    "build_cluster",
]
