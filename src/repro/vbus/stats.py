"""Network statistics utilities: channel utilization and hot links.

The paper's V-Bus argument is about *bandwidth utilization* — "they are
more expensive and suffer from low utilization of network bandwidth
overall" (on physical broadcast buses) versus the virtual bus that only
exists while a broadcast needs it.  These helpers turn the simulator's
raw channel counters into that analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.vbus.cluster import Cluster

__all__ = [
    "ChannelUsage",
    "network_usage",
    "usage_report",
    "cluster_metrics_rows",
]


@dataclass(frozen=True)
class ChannelUsage:
    """Utilization of one directed mesh channel over a simulation."""

    src: int
    dst: int
    messages: int
    busy_s: float
    utilization: float  # busy fraction of total simulated time

    def __str__(self):
        return (
            f"{self.src}->{self.dst}: {self.messages} msg(s), "
            f"busy {self.busy_s * 1e3:.3f} ms ({self.utilization:6.1%})"
        )


def network_usage(cluster: Cluster) -> List[ChannelUsage]:
    """Per-channel usage, sorted by busy time (hottest first)."""
    if cluster.mesh is None:
        raise ValueError("usage analysis needs a mesh interconnect")
    now = cluster.sim.now
    out = []
    for (u, v), ch in cluster.mesh.channels.items():
        util = (ch.busy_s / now) if now > 0 else 0.0
        out.append(
            ChannelUsage(
                src=u,
                dst=v,
                messages=ch.messages,
                busy_s=ch.busy_s,
                utilization=util,
            )
        )
    out.sort(key=lambda c: (-c.busy_s, c.src, c.dst))
    return out


def usage_report(cluster: Cluster, top: Optional[int] = None) -> str:
    """Human-readable utilization table with bus/freeze statistics."""
    rows = network_usage(cluster)
    if top is not None:
        rows = rows[:top]
    lines = ["channel utilization (hottest first):"]
    lines += [f"  {c}" for c in rows]
    stats = cluster.stats()
    lines.append(
        f"  broadcasts: {int(stats.get('hw_broadcasts', 0))}, "
        f"freezes: {int(stats['freezes'])}, "
        f"frozen time: {stats['frozen_s'] * 1e3:.3f} ms"
    )
    rc = cluster.topology.route_cache_stats()
    lines.append(
        f"  route cache: {int(rc['hits'])} hit(s), "
        f"{int(rc['misses'])} miss(es) ({rc['hit_rate']:.1%} hit rate)"
    )
    return "\n".join(lines)


#: Units for the hardware-counter rows emitted by cluster_metrics_rows.
_HW_UNITS = {
    "bytes": "B",
    "mesh_bytes": "B",
    "ether_bytes": "B",
    "hw_broadcast_bytes": "B",
    "nic_cpu_busy_s": "s",
    "frozen_s": "s",
}


def cluster_metrics_rows(cluster: Cluster) -> List[dict]:
    """The cluster's hardware state as flat metric rows.

    Complements the tracer's own registry with everything the hardware
    model already counts: aggregate counters (``hw.*``), per-channel
    utilization/busy/messages series, and route-cache effectiveness.
    Shapes match :meth:`repro.obs.metrics.Counter.row` /
    :meth:`~repro.obs.metrics.Gauge.row`, so the rows merge directly into
    :func:`repro.obs.export.metrics_rows`.
    """
    rows: List[dict] = []
    for key, value in sorted(cluster.stats().items()):
        rows.append(
            {
                "name": f"hw.{key}",
                "type": "counter",
                "unit": _HW_UNITS.get(key, ""),
                "value": value,
            }
        )
    if cluster.mesh is not None:
        for c in network_usage(cluster):
            label = f"{c.src}->{c.dst}"
            rows.append(
                {
                    "name": f"channel.utilization{{{label}}}",
                    "type": "gauge",
                    "unit": "fraction",
                    "value": c.utilization,
                }
            )
            rows.append(
                {
                    "name": f"channel.busy_s{{{label}}}",
                    "type": "counter",
                    "unit": "s",
                    "value": c.busy_s,
                }
            )
            rows.append(
                {
                    "name": f"channel.messages{{{label}}}",
                    "type": "counter",
                    "unit": "",
                    "value": float(c.messages),
                }
            )
    rc = cluster.topology.route_cache_stats()
    for key in ("hits", "misses"):
        rows.append(
            {
                "name": f"route_cache.{key}",
                "type": "counter",
                "unit": "",
                "value": float(rc[key]),
            }
        )
    return rows
