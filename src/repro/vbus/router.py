"""Wormhole routing over the mesh: channels, head advancement, body streaming.

A point-to-point message claims the directed channels along its XY route
hop by hop (the head flit), then streams its body pipelined at the link
rate while holding the whole path — the classic wormhole discipline.  Both
head advancement and body streaming run inside the cluster's
:class:`~repro.vbus.vbusctl.FreezeDomain`, so an incoming V-Bus broadcast
freezes them in place mid-flight.

XY dimension-order acquisition keeps the channel dependency graph acyclic,
so path locking cannot deadlock.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

from repro.sim import Resource, Simulator
from repro.vbus.fastpath import try_promote
from repro.vbus.flit import flit_count
from repro.vbus.mesh import MeshTopology
from repro.vbus.params import LinkParams
from repro.vbus.signal import bandwidth_Bps
from repro.vbus.vbusctl import FreezeDomain

__all__ = ["Channel", "WormholeMesh"]


class Channel:
    """One directed link between adjacent routers (capacity: one message)."""

    def __init__(self, sim: Simulator, u: int, v: int):
        self.sim = sim
        self.u = u
        self.v = v
        self.name = f"{u}->{v}"
        self._res = Resource(sim, capacity=1, obs_name=f"chan.{u}->{v}")
        #: Utilization statistics.
        self.busy_s = 0.0
        self.messages = 0
        self._acquired_at: Optional[float] = None

    def acquire(self):
        return self._res.request()

    def on_acquired(self) -> None:
        self._acquired_at = self.sim.now
        self.messages += 1

    @property
    def is_free(self) -> bool:
        return self._res.available > 0 and self._acquired_at is None

    def claim(self, acquired_at: float) -> None:
        """Nonblocking acquire for the fast path.

        ``acquired_at`` is the (possibly future) hop time the stepwise
        path would have acquired this channel at — busy-time accounting
        stays exact because :meth:`release` charges from that timestamp.
        """
        if not self._res.try_acquire():
            raise RuntimeError(f"claim() on busy channel {self!r}")
        self._acquired_at = acquired_at
        self.messages += 1

    def release(self) -> None:
        if self._acquired_at is not None:
            tr = self.sim.tracer
            if tr is not None:
                # One occupancy span per held message — identical for the
                # stepwise and fast paths (both claim and release here).
                tr.span(("chan", self.name), "held", self._acquired_at)
            self.busy_s += self.sim.now - self._acquired_at
            self._acquired_at = None
        self._res.release()

    def __repr__(self) -> str:
        return f"<Channel {self.u}->{self.v}>"


class WormholeMesh:
    """The switched mesh network: channels + wormhole unicast."""

    def __init__(
        self,
        sim: Simulator,
        topology: MeshTopology,
        link: LinkParams,
        domain: FreezeDomain,
    ):
        self.sim = sim
        self.topology = topology
        self.link = link
        self.domain = domain
        self.channels: Dict[Tuple[int, int], Channel] = {
            (u, v): Channel(sim, u, v) for (u, v) in topology.links()
        }
        #: Raw link streaming rate under the configured pipelining mode.
        self.link_rate_Bps = bandwidth_Bps(link)
        #: Statistics.
        self.messages = 0
        self.bytes = 0
        self.flits = 0
        #: Fast-path accounting (see :mod:`repro.vbus.fastpath`).
        self.fast_legs = 0
        self.fast_fallbacks = 0
        self.fast_demotions = 0
        #: Stepwise legs promoted back to analytic charging mid-route.
        self.fast_promotions = 0
        #: Claim-time fallback causes (sum == fast_fallbacks).
        self.fast_fallback_injector = 0
        self.fast_fallback_frozen = 0
        self.fast_fallback_peek = 0
        self.fast_fallback_busy = 0
        #: Set by the Cluster when batched accounting is configured; lets
        #: the stepwise unicast attempt mid-route promotion.
        self.fast_path = False
        #: Optional :class:`repro.faults.FaultInjector`; ``None`` = healthy.
        self.injector = None
        self._path_cache: Dict[Tuple[int, int], list] = {}

    def channel_path(self, src: int, dst: int) -> list:
        """The Channel objects along the XY route (cached per pair)."""
        key = (src, dst)
        path = self._path_cache.get(key)
        if path is None:
            path = [self.channels[hop] for hop in self.topology.route(src, dst)]
            self._path_cache[key] = path
        return path

    def unicast(
        self, src: int, dst: int, nbytes: int, rate_cap_Bps: Optional[float] = None
    ) -> Generator:
        """Deliver ``nbytes`` from ``src`` to ``dst`` through the mesh.

        ``rate_cap_Bps`` throttles streaming below the raw link rate (e.g.
        when the source DMA engine, not the wire, is the bottleneck).
        Returns (via StopIteration) the network time consumed.
        """
        if src == dst:
            return 0.0
        inj = self.injector
        if inj is not None and not inj.active:
            inj = None
        if inj is not None:
            inj.check_alive(src, dst)
        t0 = self.sim.now
        path = self.channel_path(src, dst)
        # Mid-route promotion: a leg that fell back at injection time may
        # still prove the *remaining* sub-path safe at a later hop boundary
        # (e.g. once a busy channel ahead frees up) and finish analytically.
        promote = self.fast_path and inj is None
        promoted = None
        acquired = []
        try:
            for k, ch in enumerate(path):
                if promote and k > 0:
                    promoted = try_promote(
                        self, path, k, t0, nbytes, rate_cap_Bps
                    )
                    if promoted is not None:
                        # The leg owns the whole path now (release + stats
                        # + trace span happen at wire end, in the leg).
                        acquired = []
                        break
                yield ch.acquire()
                ch.on_acquired()
                acquired.append(ch)
                if inj is not None:
                    # A stalled channel holds the head flit in place until
                    # its fault window closes.
                    extra = inj.stall_extra(ch.u, ch.v)
                    if extra > 0.0:
                        st0 = self.sim.now
                        yield from self.domain.interruptible_delay(extra)
                        inj.note_stall(self.sim.now - st0, ch.u, ch.v, st0)
                # Head-flit fall-through; pauses if the V-Bus freezes us.
                yield from self.domain.interruptible_delay(self.link.router_delay_s)
            if promoted is None and promote:
                # Body-only promotion: the whole path is held, so charging
                # the body stream analytically is always freeze-safe (the
                # demotion ledger serves any remainder stepwise).
                promoted = try_promote(
                    self, path, len(path), t0, nbytes, rate_cap_Bps
                )
                if promoted is not None:
                    acquired = []
            if promoted is None:
                rate = self.link_rate_Bps
                if rate_cap_Bps is not None:
                    rate = min(rate, rate_cap_Bps)
                # Body streams pipelined along the held path.
                yield from self.domain.interruptible_delay(nbytes / rate)
                if inj is not None:
                    # Drop/corrupt/delay faults and their retransmission
                    # rounds run while the path is still held (selective
                    # repeat reuses the claimed route).
                    nflits = flit_count(nbytes, self.link.width_bits)
                    yield from inj.wire_deliver(
                        src, dst, nflits, (nbytes / rate) / nflits,
                        wait=self.domain.interruptible_delay,
                    )
        finally:
            for ch in reversed(acquired):
                ch.release()
        if promoted is not None:
            yield promoted
            return self.sim.now - t0
        self.messages += 1
        self.bytes += nbytes
        self.flits += flit_count(nbytes, self.link.width_bits)
        tr = self.sim.tracer
        if tr is not None:
            tr.span(
                ("node", src), f"wire {src}->{dst}", t0,
                args={"bytes": nbytes, "hops": len(path)},
            )
            tr.count("mesh.messages")
            tr.count("mesh.bytes", nbytes, "B")
        return self.sim.now - t0
