"""The metrics registry: counters, gauges, and histograms.

Every instrumented layer (DES kernel, mesh channels, NIC engines, V-Bus
controller, MPI-2 calls, the interpreter) emits into one
:class:`MetricsRegistry` owned by the run's
:class:`~repro.obs.tracer.Tracer`.  Metric *names* are dotted paths
(``nic.dma_bytes``); per-instance series carry a ``{key}`` label suffix
(``channel.busy_s{0->1}``) so flat dumps stay greppable.  The canonical
name/unit catalogue is documented in ``docs/TRACE_FORMAT.md``.

All three metric kinds are plain accumulating objects — no locking, no
background threads — because the simulation is single-threaded and
metrics must never perturb it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing total (messages, bytes, waits...)."""

    __slots__ = ("name", "unit", "value")

    kind = "counter"

    def __init__(self, name: str, unit: str = ""):
        self.name = name
        self.unit = unit
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def row(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": self.kind,
            "unit": self.unit,
            "value": self.value,
        }


class Gauge:
    """A last-write-wins level (queue depth, in-flight legs...)."""

    __slots__ = ("name", "unit", "value")

    kind = "gauge"

    def __init__(self, name: str, unit: str = ""):
        self.name = name
        self.unit = unit
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def row(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": self.kind,
            "unit": self.unit,
            "value": self.value,
        }


class Histogram:
    """A streaming summary (count/sum/min/max/mean) of observed samples.

    Full sample retention would make long runs trace-bound, so only the
    moments survive — enough for the "where does time go" questions the
    text summary and metric dumps answer.
    """

    __slots__ = ("name", "unit", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name: str, unit: str = ""):
        self.name = name
        self.unit = unit
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def row(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": self.kind,
            "unit": self.unit,
            "value": self.total,
            "count": self.count,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Name-keyed store of metrics; instruments create-on-first-use."""

    __slots__ = ("_metrics",)

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def counter(self, name: str, unit: str = "") -> Counter:
        m = self._metrics.get(name)
        if m is None:
            m = Counter(name, unit)
            self._metrics[name] = m
        return m

    def gauge(self, name: str, unit: str = "") -> Gauge:
        m = self._metrics.get(name)
        if m is None:
            m = Gauge(name, unit)
            self._metrics[name] = m
        return m

    def histogram(self, name: str, unit: str = "") -> Histogram:
        m = self._metrics.get(name)
        if m is None:
            m = Histogram(name, unit)
            self._metrics[name] = m
        return m

    def get(self, name: str) -> Optional[object]:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def rows(self) -> List[Dict[str, object]]:
        """All metrics as flat dict rows, sorted by name (stable dumps)."""
        return [self._metrics[k].row() for k in sorted(self._metrics)]
