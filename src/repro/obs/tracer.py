"""The span/event tracer: a structured timeline of one simulated run.

One :class:`Tracer` is attached to a :class:`~repro.sim.kernel.Simulator`
(``sim.tracer``); every instrumented layer consults that attribute through
the guard idiom::

    tr = self.sim.tracer
    if tr is not None:
        tr.span(("rank", self.rank), "MPI_Send", t0, args={...})

With tracing off (the default) ``sim.tracer`` is ``None`` and each hook
costs a single attribute load plus an ``is None`` test — the hooks are
read-only observers either way, so enabling tracing cannot change
simulated times, receipts, or hardware counters (asserted bit-for-bit by
``tests/test_obs_tracing.py``).

Events live on *tracks*, identified by ``(group, key)`` tuples:

===========  =========================  =====================================
group        key                        what runs there
===========  =========================  =====================================
``rank``     rank number                MPI-2 calls, compute bursts, regions
``node``     node number                NIC activity (DMA, PIO, wire legs)
``chan``     ``"u->v"``                 mesh channel occupancy spans
``vbus``     ``0``                      freezes and hardware broadcasts
``kernel``   ``0``                      DES kernel instants (rarely used)
``fault``    ``0``                      injected faults, retransmission spans
===========  =========================  =====================================

Spans are stored as compact tuples ``(track, name, t0, dur, args)`` in
simulated seconds; exporters (:mod:`repro.obs.export`) turn them into
Chrome/Perfetto ``trace_event`` JSON, flat metric dumps, and text
timelines.  The schema contract is documented in ``docs/TRACE_FORMAT.md``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

__all__ = ["Tracer", "TRACK_GROUPS"]

#: Track groups in canonical display order (drives exporter pids).
#: "fault" is appended last so pre-fault golden traces keep their pids.
TRACK_GROUPS = ("rank", "node", "chan", "vbus", "kernel", "fault")

Track = Tuple[str, object]


class Tracer:
    """Collects spans, instants, and metrics for one simulation."""

    __slots__ = ("sim", "spans", "instants", "metrics")

    def __init__(self, sim):
        self.sim = sim
        #: Completed spans: (track, name, t0, dur, args-or-None).
        self.spans: List[tuple] = []
        #: Point events: (track, name, t, args-or-None).
        self.instants: List[tuple] = []
        self.metrics = MetricsRegistry()

    @property
    def kernel_events(self) -> int:
        """DES events the kernel has processed so far.

        Derived from the kernel's own scheduling counters (events scheduled
        minus events still queued), so the event loop pays nothing for it —
        there is no per-step hook.
        """
        return self.sim._seq - len(self.sim._queue)

    # -- timeline -----------------------------------------------------------
    def span(
        self,
        track: Track,
        name: str,
        t0: float,
        t1: Optional[float] = None,
        args: Optional[dict] = None,
    ) -> None:
        """Record a completed span ``[t0, t1]`` (``t1=None`` → now)."""
        if t1 is None:
            t1 = self.sim.now
        self.spans.append((track, name, t0, t1 - t0, args))

    def instant(self, track: Track, name: str, args: Optional[dict] = None) -> None:
        """Record a point event at the current simulated time."""
        self.instants.append((track, name, self.sim.now, args))

    # -- metrics shortcuts ---------------------------------------------------
    def count(self, name: str, amount: float = 1.0, unit: str = "") -> None:
        self.metrics.counter(name, unit).inc(amount)

    def observe(self, name: str, value: float, unit: str = "") -> None:
        self.metrics.histogram(name, unit).observe(value)

    def gauge(self, name: str, value: float, unit: str = "") -> None:
        self.metrics.gauge(name, unit).set(value)

    # -- introspection -------------------------------------------------------
    def tracks(self) -> List[Track]:
        """All tracks that received events, in canonical display order."""
        seen: Dict[Track, None] = {}
        for track, *_ in self.spans:
            seen.setdefault(track, None)
        for track, *_ in self.instants:
            seen.setdefault(track, None)
        order = {g: i for i, g in enumerate(TRACK_GROUPS)}
        return sorted(seen, key=lambda t: (order.get(t[0], 99), str(t[1])))

    def spans_on(self, track: Track) -> List[tuple]:
        return [s for s in self.spans if s[0] == track]

    def __repr__(self) -> str:
        return (
            f"<Tracer {len(self.spans)} span(s), {len(self.instants)} "
            f"instant(s), {len(self.metrics)} metric(s)>"
        )
