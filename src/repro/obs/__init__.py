"""Cluster-wide observability: structured tracing and metrics.

The ``repro.obs`` package is the run-visibility layer the paper's
evaluation methodology implies but the original testbed measured by hand:
per-link, per-phase, per-rank instrumentation of a simulated run.

* :class:`~repro.obs.tracer.Tracer` — the span/event tracer every layer
  emits into (attached as ``Simulator.tracer``; ``None`` means tracing is
  off and hooks are single-``if`` no-ops).
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  histograms (``tracer.metrics``).
* :mod:`repro.obs.export` — Chrome/Perfetto ``trace_event`` JSON, flat
  metric dumps (JSON/CSV), and text timeline summaries.

Enable via ``ClusterParams(trace=True)``, ``run_program(..., trace=True)``,
or the ``repro trace`` CLI subcommand; the trace schema is documented in
``docs/TRACE_FORMAT.md``.
"""

from repro.obs.export import (
    chrome_trace,
    metrics_rows,
    timeline_summary,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_json,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.rollup import RegionRollup, region_rollup
from repro.obs.tracer import Tracer

__all__ = [
    "Tracer",
    "RegionRollup",
    "region_rollup",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "chrome_trace",
    "write_chrome_trace",
    "metrics_rows",
    "write_metrics_json",
    "write_metrics_csv",
    "timeline_summary",
]
