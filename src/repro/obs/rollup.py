"""Region-attributed rollups of one traced run.

The tracer records flat span streams per track; the per-region autotuner
(docs/AUTOTUNE.md) needs them *attributed to parallel regions*: how much
fence-wait, MPI-call, DMA-vs-PIO, and channel-occupancy time each region
of the program was responsible for.  The executor already emits a
``par-region <id>`` span on every rank's track around each parallel
region, and regions are barrier-delimited — so every other span can be
assigned to the region whose interval contains its start time:

* ``("rank", r)`` spans (MPI calls, fences, compute) are matched against
  rank *r*'s own region intervals;
* ``("node", n)`` spans (``dma send`` / ``pio send``) use node *n*'s rank
  intervals (node index == rank index);
* ``("chan", ...)`` spans use the master's intervals (channels are a
  shared resource; the master's region phase is the cluster's phase).

Attribution is a profiling heuristic, not an accounting identity: spans
that straddle a region boundary (there are none in a healthy run — the
closing fence is inside the region span) go to the region that started
them, and spans outside any region interval are dropped.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

__all__ = ["region_rollup", "RegionRollup", "FENCE_SPANS"]

#: Rank-track span names that count as synchronization waiting.
FENCE_SPANS = frozenset({"win-drain", "MPI_Win_fence", "MPI_Barrier"})

#: Rank-track span names that are not MPI communication calls.
_NON_MPI = frozenset({"compute"})

_REGION_PREFIX = "par-region "


class RegionRollup(dict):
    """Per-region attributed times (a dict with named accessors).

    Keys: ``visits``, ``elapsed_s`` (master-observed region time),
    ``mpi_s`` (all ranks' in-region MPI span time), ``mpi_max_s``
    (busiest single rank), ``fence_s``/``fence_max_s`` (the win-drain /
    fence / barrier subset), ``mpi_net_max_s`` (busiest rank's MPI time
    *minus* its fence share — the in-region analogue of a report's
    ``comm_max_s``, which counts MPI call time but not fence waiting),
    ``dma_s``, ``pio_s``, ``dma_bytes``, ``pio_bytes``, ``nic_cpu_s``,
    ``chan_busy_s``.
    """

    FIELDS = (
        "visits",
        "elapsed_s",
        "mpi_s",
        "mpi_max_s",
        "fence_s",
        "fence_max_s",
        "mpi_net_max_s",
        "dma_s",
        "pio_s",
        "dma_bytes",
        "pio_bytes",
        "nic_cpu_s",
        "chan_busy_s",
    )

    def __init__(self):
        super().__init__((f, 0.0) for f in self.FIELDS)

    def __getattr__(self, name):
        try:
            return self[name]
        except KeyError:
            raise AttributeError(name) from None


class _Intervals:
    """Sorted (t0, t1, region_id) intervals with bisect lookup."""

    def __init__(self, spans: List[tuple]):
        ivs: List[Tuple[float, float, int]] = []
        for _track, name, t0, dur, _args in spans:
            if name.startswith(_REGION_PREFIX):
                ivs.append((t0, t0 + dur, int(name[len(_REGION_PREFIX):])))
        ivs.sort()
        self._starts = [iv[0] for iv in ivs]
        self._ivs = ivs

    def find(self, t: float) -> Optional[int]:
        i = bisect_right(self._starts, t) - 1
        if i < 0:
            return None
        t0, t1, rid = self._ivs[i]
        # Closing-boundary spans (the fence that ends a region) start
        # exactly at t1 of nothing — a region's own spans start in
        # [t0, t1); accept t == t1 too so zero-width tails still land.
        if t0 <= t <= t1:
            return rid
        return None


def region_rollup(tracer) -> Dict[int, RegionRollup]:
    """Attribute a traced run's spans to its parallel regions.

    Returns ``{region_id: RegionRollup}`` for every parallel region that
    appeared on the master's timeline.  ``tracer`` is a
    :class:`repro.obs.Tracer` (e.g. ``RunReport.trace``).
    """
    by_rank: Dict[int, List[tuple]] = {}
    chan_spans: List[tuple] = []
    node_spans: Dict[int, List[tuple]] = {}
    for span in tracer.spans:
        track = span[0]
        group, key = track
        if group == "rank":
            by_rank.setdefault(key, []).append(span)
        elif group == "node":
            node_spans.setdefault(key, []).append(span)
        elif group == "chan":
            chan_spans.append(span)

    rank_ivs = {r: _Intervals(spans) for r, spans in by_rank.items()}
    master_ivs = rank_ivs.get(0)
    out: Dict[int, RegionRollup] = {}
    if master_ivs is None:
        return out

    def cell(rid: int) -> RegionRollup:
        ru = out.get(rid)
        if ru is None:
            ru = out[rid] = RegionRollup()
        return ru

    # Region visits + elapsed, from the master's own region spans.
    for _t, name, t0, dur, _a in by_rank.get(0, ()):
        if name.startswith(_REGION_PREFIX):
            ru = cell(int(name[len(_REGION_PREFIX):]))
            ru["visits"] += 1
            ru["elapsed_s"] += dur

    # Rank-track MPI/fence time, per region per rank; keep the busiest
    # rank's share for the comm-metric flavour the tuner optimizes.
    per_rank_mpi: Dict[Tuple[int, int], float] = {}
    per_rank_fence: Dict[Tuple[int, int], float] = {}
    for r, spans in by_rank.items():
        ivs = rank_ivs[r]
        for _t, name, t0, dur, _a in spans:
            if name.startswith(_REGION_PREFIX) or name in _NON_MPI:
                continue
            rid = ivs.find(t0)
            if rid is None:
                continue
            ru = cell(rid)
            ru["mpi_s"] += dur
            per_rank_mpi[(rid, r)] = per_rank_mpi.get((rid, r), 0.0) + dur
            if name in FENCE_SPANS:
                ru["fence_s"] += dur
                per_rank_fence[(rid, r)] = (
                    per_rank_fence.get((rid, r), 0.0) + dur
                )
    for (rid, r), s in per_rank_mpi.items():
        ru = cell(rid)
        ru["mpi_max_s"] = max(ru["mpi_max_s"], s)
        net = s - per_rank_fence.get((rid, r), 0.0)
        ru["mpi_net_max_s"] = max(ru["mpi_net_max_s"], net)
    for (rid, _r), s in per_rank_fence.items():
        ru = cell(rid)
        ru["fence_max_s"] = max(ru["fence_max_s"], s)

    # NIC activity: the DMA/PIO mix per region.
    for n, spans in node_spans.items():
        ivs = rank_ivs.get(n, master_ivs)
        for _t, name, t0, dur, args in spans:
            rid = ivs.find(t0)
            if rid is None:
                continue
            ru = cell(rid)
            nbytes = float((args or {}).get("bytes", 0))
            ru["nic_cpu_s"] += float((args or {}).get("cpu_s", 0.0))
            if name.startswith("dma"):
                ru["dma_s"] += dur
                ru["dma_bytes"] += nbytes
            elif name.startswith("pio"):
                ru["pio_s"] += dur
                ru["pio_bytes"] += nbytes

    # Channel occupancy (hotspots) against the master's phase.
    for _t, _name, t0, dur, _a in chan_spans:
        rid = master_ivs.find(t0)
        if rid is not None:
            cell(rid)["chan_busy_s"] += dur

    return out
