"""Exporters: Chrome/Perfetto trace JSON, metric dumps, text timelines.

Three renderings of one :class:`~repro.obs.tracer.Tracer`:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the ``trace_event``
  JSON format that https://ui.perfetto.dev and ``chrome://tracing`` load
  directly.  Track groups become processes (MPI ranks, NIC/nodes, mesh
  channels, V-Bus, DES kernel), individual tracks become named threads,
  and all timestamps are simulated microseconds.
* :func:`metrics_rows` + :func:`write_metrics_json` /
  :func:`write_metrics_csv` — a flat, stable-ordered dump of every metric
  (callers may merge in cluster-derived rows, e.g.
  :func:`repro.vbus.stats.cluster_metrics_rows`).
* :func:`timeline_summary` — a per-track text digest for terminals.

All output is a pure function of the tracer (plus optional extra rows),
so identical runs produce byte-identical exports — the golden-file test
in ``tests/test_obs_tracing.py`` relies on this.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, List, Optional

from repro.obs.tracer import TRACK_GROUPS, Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "metrics_rows",
    "write_metrics_json",
    "write_metrics_csv",
    "timeline_summary",
]

#: trace_event "process" per track group, in display order.
_GROUP_PIDS = {g: i + 1 for i, g in enumerate(TRACK_GROUPS)}
_GROUP_LABELS = {
    "rank": "MPI ranks",
    "node": "nodes (NIC)",
    "chan": "mesh channels",
    "vbus": "V-Bus",
    "kernel": "DES kernel",
    "fault": "faults",
}

#: CSV column order for metric rows.
_METRIC_FIELDS = ("name", "type", "unit", "value", "count", "min", "max", "mean")


def _track_ids(tracer: Tracer) -> Dict[tuple, tuple]:
    """Map each track to its (pid, tid, label)."""
    out: Dict[tuple, tuple] = {}
    per_group: Dict[str, int] = {}
    for track in tracer.tracks():
        group, key = track
        pid = _GROUP_PIDS.get(group, len(_GROUP_PIDS) + 1)
        if isinstance(key, int):
            tid = key
        else:
            tid = per_group.get(group, 0)
            per_group[group] = tid + 1
        if group in ("rank", "node"):
            label = f"{group} {key}"
        elif group == "chan":
            label = f"ch {key}"
        else:
            label = str(group)
        out[track] = (pid, tid, label)
    return out


def chrome_trace(tracer: Tracer) -> dict:
    """Render the tracer as a Chrome ``trace_event`` JSON object."""
    ids = _track_ids(tracer)
    events: List[dict] = []
    for pid in sorted({pid for pid, _, _ in ids.values()}):
        group = next(g for g, p in _GROUP_PIDS.items() if p == pid)
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": _GROUP_LABELS.get(group, group)},
            }
        )
        events.append(
            {
                "ph": "M",
                "name": "process_sort_index",
                "pid": pid,
                "tid": 0,
                "args": {"sort_index": pid},
            }
        )
    for track, (pid, tid, label) in ids.items():
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": label},
            }
        )

    body: List[dict] = []
    for track, name, t0, dur, args in tracer.spans:
        pid, tid, _ = ids[track]
        ev = {
            "ph": "X",
            "name": name,
            "cat": track[0],
            "pid": pid,
            "tid": tid,
            "ts": t0 * 1e6,
            "dur": dur * 1e6,
        }
        if args:
            ev["args"] = args
        body.append(ev)
    for track, name, t, args in tracer.instants:
        pid, tid, _ = ids[track]
        ev = {
            "ph": "i",
            "s": "t",
            "name": name,
            "cat": track[0],
            "pid": pid,
            "tid": tid,
            "ts": t * 1e6,
        }
        if args:
            ev["args"] = args
        body.append(ev)
    body.sort(key=lambda e: (e["ts"], e["pid"], e["tid"], e["name"]))
    events.extend(body)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer), fh, indent=1, sort_keys=True)
        fh.write("\n")


def metrics_rows(
    tracer: Tracer, extra_rows: Optional[List[dict]] = None
) -> List[dict]:
    """Tracer metrics plus any caller-supplied rows, name-sorted."""
    rows = tracer.metrics.rows()
    if extra_rows:
        rows = rows + [dict(r) for r in extra_rows]
    rows.sort(key=lambda r: r["name"])
    return rows


def write_metrics_json(rows: List[dict], path: str) -> None:
    with open(path, "w") as fh:
        json.dump({"metrics": rows}, fh, indent=1, sort_keys=True)
        fh.write("\n")


def write_metrics_csv(rows: List[dict], path: str) -> None:
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_METRIC_FIELDS, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)


def timeline_summary(tracer: Tracer, top: int = 3) -> str:
    """Per-track digest: busy time and the heaviest span names."""
    lines = []
    tmax = 0.0
    for _track, _name, t0, dur, _args in tracer.spans:
        tmax = max(tmax, t0 + dur)
    lines.append(
        f"trace: {len(tracer.spans)} span(s), {len(tracer.instants)} "
        f"instant(s) on {len(tracer.tracks())} track(s) over "
        f"{tmax * 1e3:.3f} ms"
    )
    ids = _track_ids(tracer)
    for track in tracer.tracks():
        spans = tracer.spans_on(track)
        if not spans:
            continue
        by_name: Dict[str, list] = {}
        busy = 0.0
        for _t, name, _t0, dur, _a in spans:
            cell = by_name.setdefault(name, [0, 0.0])
            cell[0] += 1
            cell[1] += dur
            busy += dur
        hot = sorted(by_name.items(), key=lambda kv: -kv[1][1])[:top]
        hot_txt = ", ".join(
            f"{name} (x{n}, {s * 1e3:.3f} ms)" for name, (n, s) in hot
        )
        label = ids[track][2]
        lines.append(
            f"  {label:>10s}: {busy * 1e3:9.3f} ms busy in "
            f"{len(spans)} span(s); top: {hot_txt}"
        )
    return "\n".join(lines)
