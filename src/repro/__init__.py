"""repro — reproduction of the CLUSTER 2001 V-Bus PC-cluster programming environment.

The package provides three layers, mirroring the paper:

* :mod:`repro.vbus` — a discrete-event model of the V-Bus based PC-cluster
  (SKWP wave-pipelined links, wormhole mesh routers, the virtual-bus
  broadcast engine, NICs with DMA/PIO engines, and host CPUs), built on the
  simulation kernel in :mod:`repro.sim`.
* :mod:`repro.mpi2` — an MPI-2 library (two-sided, collectives, and
  one-sided ``Put``/``Get`` on memory windows with fences and locks) whose
  primitives execute on the simulated cluster.
* :mod:`repro.compiler` — a Polaris-style parallelizing compiler for a
  Fortran 77 subset: LMAD-based array access analysis, the Access Region
  Test, and the MPI-2 postpass (AVPG, work partitioning, data
  scattering/collecting, SPMDization, and fine/middle/coarse communication
  granularity optimization).

:mod:`repro.runtime` executes compiled SPMD programs on the simulated
cluster and reports execution/communication time; :mod:`repro.workloads`
holds the paper's benchmark programs (MM, SWIM-like, CFFZINIT-like).

Quickstart::

    from repro import compile_source, run_program
    from repro.workloads import mm
    prog = compile_source(mm.source(n=64), nprocs=4, granularity="coarse")
    report = run_program(prog, nprocs=4)
    print(report.summary())
"""

from repro._version import __version__

__all__ = [
    "__version__",
    "CompileOptions",
    "compile_source",
    "run_program",
    "run_sequential",
]

_LAZY = {
    "CompileOptions": ("repro.compiler.pipeline", "CompileOptions"),
    "compile_source": ("repro.compiler.pipeline", "compile_source"),
    "run_program": ("repro.runtime.executor", "run_program"),
    "run_sequential": ("repro.runtime.executor", "run_sequential"),
}


def __getattr__(name):
    """Lazily resolve the top-level convenience API (PEP 562)."""
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value
