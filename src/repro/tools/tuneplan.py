"""Trace-driven per-region granularity tuning (docs/AUTOTUNE.md).

The global tuner (:mod:`repro.tools.autotune`) profiles the whole
program at every grain and picks one winner — three full profile runs,
and one grain for every parallel region even when regions disagree.
This module tunes **per region** with a pruned search:

1. compile the three global-grain variants (compile analysis is cheap
   next to simulation, and the pipeline cache makes repeats free) and
   price each region's :class:`RegionCommPlan` with an **analytic cost
   model** built from the §5.6 transfer plans and the backend's
   :class:`~repro.vbus.params.ClusterParams`;
2. regions whose best grain wins by at least ``epsilon`` (relative
   margin) are decided by the model alone;
3. the remaining *ambiguous* regions are decided empirically: one
   instrumented timing-mode profile of the candidate plan, plus one
   targeted re-profile per runner-up rank (all ambiguous regions switch
   candidates together, so a 3-way tie still costs only two extra runs),
   attributed per region with :func:`repro.obs.region_rollup`.

The result is a :class:`TunePlan` — a backend-aware mixed-grain plan
``{region_id: grain}`` that compiles via ``CompileOptions.grain_map``,
serializes to a canonical JSON artifact (``repro run --tune-plan``), and
is content-address-cached through :mod:`repro.sweep.cache` keyed on
(source, backend, nprocs, metric, epsilon) so warm calls skip even the
single profile.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.compiler.pipeline import CompileOptions, compile_source
from repro.compiler.postpass.granularity import GRAINS
from repro.compiler.postpass.scatter import RegionCommPlan
from repro.runtime.executor import run_program
from repro.sweep.cache import (
    DEFAULT_CACHE_DIR,
    canonical_json,
    job_key,
    load_row,
    store_row,
)

__all__ = [
    "ModelCost",
    "RegionDecision",
    "TunePlan",
    "region_model_cost",
    "tune_per_region",
]

#: Relative margin below which the analytic model refuses to decide and
#: the region goes to the profile-measured tier instead.
DEFAULT_EPSILON = 0.05

#: Rough CPU cost of one kernel-stack traversal (ethernet backends have
#: no user-level path; the sw latency *is* host CPU time).
_ETH_CPU_PER_SIDE = 1.0


@dataclass(frozen=True)
class ModelCost:
    """Analytic price of one region's communication at one grain."""

    elapsed_s: float
    cpu_s: float
    messages: int

    def metric(self, metric: str) -> float:
        return self.cpu_s if metric == "comm_cpu" else self.elapsed_s


def _transfer_cost(transfer, itemsize: int, params) -> Tuple[float, float]:
    """(elapsed, master-CPU) seconds for one master<->slave transfer."""
    nbytes = transfer.count * itemsize
    if params.network == "ethernet":
        e = params.ethernet
        frames = max(1, math.ceil(nbytes / e.mtu_bytes))
        elapsed = 2 * e.sw_latency_s + nbytes / e.rate_Bps + frames * e.min_frame_s
        if e.switched:
            # Store-and-forward: the switch replays the wire time and
            # charges its forwarding decision.
            elapsed += e.switch_latency_s + nbytes / e.rate_Bps
        cpu = 2 * e.sw_latency_s * _ETH_CPU_PER_SIDE
        return elapsed, cpu
    nic = params.nic
    overhead = nic.per_message_overhead_s()
    if transfer.contiguous:
        elapsed = overhead + nic.dma_setup_s + nbytes / nic.dma_rate_Bps
        return elapsed, overhead + nic.dma_setup_s
    # Strided: programmed I/O, the host CPU touches every element.
    elapsed = (
        overhead + nic.pio_setup_s + transfer.count * nic.pio_per_element_s
    )
    return elapsed, elapsed


def region_model_cost(plan: RegionCommPlan, params) -> ModelCost:
    """Price one region's scatter+collect plan on one backend.

    Scatters serialize on the master (one bcast wave when the V-Bus
    broadcast fuses them); collects overlap across ranks on the V-Bus
    mesh and switched fabrics (busiest rank bounds) but serialize on a
    shared ethernet segment.  A pruning heuristic, not an accounting
    identity — it only has to rank grains with a margin.
    """
    elapsed = cpu = 0.0
    messages = 0
    shared_segment = (
        params.network == "ethernet" and not params.ethernet.switched
    )
    for aplan in plan.arrays.values():
        bcast = (
            aplan.scatter_bcast
            and params.network == "vbus"
            and params.vbus_broadcast
        )
        if bcast:
            transfers = next(iter(aplan.scatter.values()), [])
            messages += len(transfers)
            for t in transfers:
                e, c = _transfer_cost(t, aplan.itemsize, params)
                elapsed += e
                cpu += c
        else:
            for transfers in aplan.scatter.values():
                messages += len(transfers)
                for t in transfers:
                    e, c = _transfer_cost(t, aplan.itemsize, params)
                    elapsed += e
                    cpu += c
        rank_elapsed: List[float] = []
        rank_cpu: List[float] = []
        for transfers in aplan.collect.values():
            messages += len(transfers)
            e_sum = c_sum = 0.0
            for t in transfers:
                e, c = _transfer_cost(t, aplan.itemsize, params)
                e_sum += e
                c_sum += c
            rank_elapsed.append(e_sum)
            rank_cpu.append(c_sum)
        if rank_elapsed:
            if shared_segment:
                elapsed += sum(rank_elapsed)
                cpu += sum(rank_cpu)
            else:
                elapsed += max(rank_elapsed)
                cpu += max(rank_cpu)
    return ModelCost(elapsed_s=elapsed, cpu_s=cpu, messages=messages)


@dataclass
class RegionDecision:
    """How one parallel region's grain was chosen."""

    region_id: int
    grain: str
    #: "model" (margin >= epsilon) or "profile" (measured rollup).
    how: str
    #: Relative margin of the winner over the runner-up at decision time.
    margin: float
    #: grain -> analytic metric value (seconds).
    model: Dict[str, float] = field(default_factory=dict)
    #: grain -> measured per-region metric (profile-decided regions only).
    measured: Dict[str, float] = field(default_factory=dict)

    def to_jsonable(self) -> Dict:
        out = {
            "region_id": self.region_id,
            "grain": self.grain,
            "how": self.how,
            "margin": self.margin,
            "model": {g: self.model[g] for g in sorted(self.model)},
        }
        if self.measured:
            out["measured"] = {
                g: self.measured[g] for g in sorted(self.measured)
            }
        return out

    @classmethod
    def from_jsonable(cls, doc: Dict) -> "RegionDecision":
        return cls(
            region_id=int(doc["region_id"]),
            grain=doc["grain"],
            how=doc["how"],
            margin=float(doc["margin"]),
            model=dict(doc.get("model", {})),
            measured=dict(doc.get("measured", {})),
        )


@dataclass
class TunePlan:
    """A backend-aware mixed-grain plan, ready to compile or serialize."""

    metric: str
    nprocs: int
    backend: Optional[str]
    default_grain: str
    #: region_id -> grain, only for regions that differ from the default.
    grain_map: Dict[int, str] = field(default_factory=dict)
    epsilon: float = DEFAULT_EPSILON
    source_sha256: str = ""
    decisions: List[RegionDecision] = field(default_factory=list)
    #: Instrumented profile runs the search needed (0 on a warm cache hit
    #: only because the field round-trips from the cached artifact).
    profiles: int = 0
    #: True when this plan came from the on-disk plan cache.
    cached: bool = field(default=False, compare=False)

    @property
    def mixed(self) -> bool:
        return bool(self.grain_map)

    def options(self, **overrides) -> CompileOptions:
        """The :class:`CompileOptions` that realize this plan."""
        kw = dict(
            nprocs=self.nprocs,
            granularity=self.default_grain,
            grain_map=self.grain_map or None,
        )
        kw.update(overrides)
        return CompileOptions(**kw)

    def to_jsonable(self) -> Dict:
        return {
            "kind": "tuneplan",
            "metric": self.metric,
            "nprocs": self.nprocs,
            "backend": self.backend,
            "default_grain": self.default_grain,
            "grain_map": {
                str(rid): self.grain_map[rid]
                for rid in sorted(self.grain_map)
            },
            "epsilon": self.epsilon,
            "source_sha256": self.source_sha256,
            "profiles": self.profiles,
            "decisions": [d.to_jsonable() for d in self.decisions],
        }

    @classmethod
    def from_jsonable(cls, doc: Dict) -> "TunePlan":
        if doc.get("kind") != "tuneplan":
            raise ValueError(
                f"not a TunePlan document (kind={doc.get('kind')!r})"
            )
        return cls(
            metric=doc["metric"],
            nprocs=int(doc["nprocs"]),
            backend=doc.get("backend"),
            default_grain=doc["default_grain"],
            grain_map={
                int(rid): g for rid, g in doc.get("grain_map", {}).items()
            },
            epsilon=float(doc.get("epsilon", DEFAULT_EPSILON)),
            source_sha256=doc.get("source_sha256", ""),
            decisions=[
                RegionDecision.from_jsonable(d)
                for d in doc.get("decisions", [])
            ],
            profiles=int(doc.get("profiles", 0)),
        )

    def save(self, path: str) -> None:
        """Write the canonical JSON artifact (byte-deterministic)."""
        with open(path, "w") as fh:
            fh.write(canonical_json(self.to_jsonable()))
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "TunePlan":
        with open(path) as fh:
            return cls.from_jsonable(json.load(fh))

    def summary(self) -> str:
        where = self.backend or "custom backend"
        head = (
            f"per-region tune plan ({where}, np={self.nprocs}, "
            f"metric: {self.metric}):"
        )
        lines = [head]
        for d in sorted(self.decisions, key=lambda d: d.region_id):
            star = "*" if d.region_id in self.grain_map else " "
            lines.append(
                f" {star} region {d.region_id}: {d.grain:7s} "
                f"[{d.how}, margin {d.margin * 100:.1f}%]"
            )
        if self.mixed:
            lines.append(
                f"  mixed plan: default {self.default_grain}, "
                f"{len(self.grain_map)} override(s); "
                f"{self.profiles} profile run(s)"
            )
        else:
            lines.append(
                f"  uniform plan: {self.default_grain} everywhere; "
                f"{self.profiles} profile run(s)"
            )
        if self.cached:
            lines.append("  (loaded from plan cache)")
        return "\n".join(lines)


def _measured_value(rollup, metric: str) -> float:
    if metric == "comm":
        return rollup.mpi_max_s
    if metric == "comm_cpu":
        return rollup.nic_cpu_s
    return rollup.elapsed_s


def _rank_grains(model: Dict[str, ModelCost], metric: str) -> List[str]:
    """Grains best-first: metric value, then messages, then GRAINS order."""
    return sorted(
        GRAINS,
        key=lambda g: (
            model[g].metric(metric),
            model[g].messages,
            GRAINS.index(g),
        ),
    )


def _margin(values: List[float]) -> float:
    """Relative gap between the two best values (sorted ascending)."""
    if len(values) < 2:
        return math.inf
    best, second = values[0], values[1]
    if second <= 0.0:
        return 0.0
    return (second - best) / second


def plan_cache_key(
    source: str, backend: str, nprocs: int, metric: str, epsilon: float
) -> str:
    """Content-address of one tuning problem (shares the sweep cache)."""
    sha = hashlib.sha256(source.encode("utf-8")).hexdigest()
    return job_key(
        {
            "kind": "tuneplan",
            "source_sha256": sha,
            "backend": backend,
            "nprocs": nprocs,
            "metric": metric,
            "epsilon": epsilon,
        }
    )


def _resolve_backend(backend: Optional[str], cluster_params, nprocs: int):
    if cluster_params is not None:
        return cluster_params
    from repro.sweep.runner import BACKENDS
    from repro.vbus import params as P

    name = backend if backend is not None else "vbus"
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; use one of {sorted(BACKENDS)}"
        )
    return P.cluster_for(nprocs, getattr(P, BACKENDS[name]))


def tune_per_region(
    source: str,
    nprocs: int = 4,
    metric: str = "comm",
    backend: Optional[str] = None,
    cluster_params=None,
    epsilon: float = DEFAULT_EPSILON,
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
    faults=None,
) -> TunePlan:
    """Derive a per-region mixed-grain :class:`TunePlan` for ``source``.

    ``backend`` is a sweep backend name (``vbus``, ``gige``, ...); pass
    ``cluster_params`` instead for a custom machine (which disables the
    plan cache — there is no stable name to key it under).  ``faults``
    only affects the profile runs, never the plan artifact: fault plans
    perturb timing, not which transfers a grain emits.

    Warm calls (``cache_dir`` holds a plan for this exact problem)
    return the cached plan without compiling or profiling anything.
    """
    from repro.tools.autotune import METRICS

    if metric not in METRICS:
        raise ValueError(f"metric must be one of {METRICS}, got {metric!r}")
    if not 0.0 <= epsilon < 1.0:
        raise ValueError(f"epsilon must be in [0, 1), got {epsilon!r}")

    cacheable = cache_dir is not None and cluster_params is None
    key = None
    if cacheable:
        key = plan_cache_key(
            source, backend or "vbus", nprocs, metric, epsilon
        )
        row = load_row(cache_dir, key)
        if row is not None:
            plan = TunePlan.from_jsonable(row)
            plan.cached = True
            return plan

    params = _resolve_backend(backend, cluster_params, nprocs)

    # 1. Compile every global grain; the cost model reads their plans.
    programs = {
        g: compile_source(source, nprocs=nprocs, granularity=g)
        for g in GRAINS
    }
    region_ids = sorted(programs[GRAINS[0]].plans)

    # 2. Analytic tier: decide regions with a clear model margin.
    decisions: Dict[int, RegionDecision] = {}
    ambiguous: Dict[int, List[str]] = {}
    model_costs: Dict[int, Dict[str, ModelCost]] = {}
    for rid in region_ids:
        costs = {
            g: region_model_cost(programs[g].plans[rid], params)
            for g in GRAINS
        }
        model_costs[rid] = costs
        ranked = _rank_grains(costs, metric)
        values = [costs[g].metric(metric) for g in ranked]
        margin = _margin(values)
        decision = RegionDecision(
            region_id=rid,
            grain=ranked[0],
            how="model",
            margin=margin,
            model={g: costs[g].metric(metric) for g in GRAINS},
        )
        decisions[rid] = decision
        if margin < epsilon:
            # Candidates within epsilon of the leader go to the profile —
            # except exact structural duplicates: grains whose region
            # plans price identically (elapsed, CPU, *and* messages) emit
            # equivalent transfer schedules (e.g. the §5.6 bound check
            # demoted every grain to fine), so the deterministic
            # simulator would measure them identically too.  Profiling a
            # duplicate is provably wasted work; the ranked order already
            # applied the tie-break.
            cands = [
                g
                for g, v in zip(ranked, values)
                if values[0] <= 0.0 or (v - values[0]) / max(v, 1e-30) < epsilon
            ]
            cands = [
                g
                for i, g in enumerate(cands)
                if not any(costs[g] == costs[h] for h in cands[:i])
            ]
            if len(cands) > 1:
                ambiguous[rid] = cands

    # 3. Profile tier: one instrumented run per candidate rank.  Every
    #    ambiguous region switches to its k-th candidate in run k, so the
    #    run count is the longest candidate list (<= len(GRAINS)), not
    #    the number of ambiguous regions.
    profiles = 0
    if ambiguous:
        rounds = max(len(c) for c in ambiguous.values())
        measured: Dict[int, Dict[str, float]] = {
            rid: {} for rid in ambiguous
        }
        base_grain = decisions[region_ids[0]].grain if region_ids else "fine"
        for k in range(rounds):
            gmap = {
                rid: decisions[rid].grain for rid in region_ids
            }  # model-best everywhere...
            probe = {
                rid: cands[min(k, len(cands) - 1)]
                for rid, cands in ambiguous.items()
            }
            gmap.update(probe)  # ...except ambiguous regions probe cand k
            opts = CompileOptions(
                nprocs=nprocs, granularity=base_grain, grain_map=gmap
            )
            prog = compile_source(source, options=opts)
            report = run_program(
                prog,
                cluster_params=params,
                execute=False,
                trace=True,
                faults=faults,
            )
            profiles += 1
            from repro.obs import region_rollup

            rollups = region_rollup(report.trace)
            for rid, grain in probe.items():
                if grain in measured[rid]:
                    continue  # short candidate list re-ran its last cand
                roll = rollups.get(rid)
                measured[rid][grain] = (
                    _measured_value(roll, metric) if roll is not None else 0.0
                )
        for rid, cands in ambiguous.items():
            vals = measured[rid]
            ranked = sorted(
                cands,
                key=lambda g: (
                    vals.get(g, math.inf),
                    model_costs[rid][g].messages,
                    GRAINS.index(g),
                ),
            )
            ordered = [vals[g] for g in ranked if g in vals]
            decisions[rid] = replace(
                decisions[rid],
                grain=ranked[0],
                how="profile",
                margin=_margin(ordered),
                measured=dict(vals),
            )

    # 4. Compress: majority grain becomes the default, the rest override.
    chosen = [decisions[rid].grain for rid in region_ids]
    if chosen:
        default = max(
            GRAINS, key=lambda g: (chosen.count(g), -GRAINS.index(g))
        )
    else:
        default = "fine"
    grain_map = {
        rid: decisions[rid].grain
        for rid in region_ids
        if decisions[rid].grain != default
    }

    plan = TunePlan(
        metric=metric,
        nprocs=nprocs,
        backend=backend if cluster_params is None else None,
        default_grain=default,
        grain_map=grain_map,
        epsilon=epsilon,
        source_sha256=hashlib.sha256(source.encode("utf-8")).hexdigest(),
        decisions=[decisions[rid] for rid in region_ids],
        profiles=profiles,
    )
    if cacheable:
        store_row(cache_dir, key, plan.to_jsonable())
    return plan
