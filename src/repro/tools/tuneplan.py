"""Trace-driven per-region granularity tuning (docs/AUTOTUNE.md).

The global tuner (:mod:`repro.tools.autotune`) profiles the whole
program at every grain and picks one winner — three full profile runs,
and one grain for every parallel region even when regions disagree.
This module tunes **per region** with a pruned search:

1. compile the three global-grain variants (compile analysis is cheap
   next to simulation, and the pipeline cache makes repeats free) and
   price each region's :class:`RegionCommPlan` with an **analytic cost
   model** built from the §5.6 transfer plans and the backend's
   :class:`~repro.vbus.params.ClusterParams`;
2. regions whose best grain wins by at least ``epsilon`` (relative
   margin) are decided by the model alone;
3. the remaining *ambiguous* regions are decided empirically: one
   instrumented timing-mode profile of the candidate plan, plus one
   targeted re-profile per runner-up rank (all ambiguous regions switch
   candidates together, so a 3-way tie still costs only two extra runs),
   attributed per region with :func:`repro.obs.region_rollup`.

The result is a :class:`TunePlan` — a backend-aware mixed-grain plan
``{region_id: grain}`` that compiles via ``CompileOptions.grain_map``,
serializes to a canonical JSON artifact (``repro run --tune-plan``), and
is content-address-cached through :mod:`repro.sweep.cache` keyed on
(source, backend, nprocs, metric, epsilon) so warm calls skip even the
single profile.

With ``tune_partition=True`` the same pruned search runs over the joint
(grain, §5.3 partition strategy) space: six compile variants feed the
analytic tier, whose price adds an **imbalance term** — per-strategy
per-rank iteration weights (inner trip counts) skewed against the
region's compute time from one baseline instrumented profile — so block
on a triangular loop prices its fence-wait skew without simulating it.
The plan then carries ``partition_map`` overrides only where the tuned
choice differs from what ``auto`` would pick (docs/PARTITION.md), so a
tuner that agrees with the paper's static policy emits a byte-identical
artifact to the grain-only plan.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.compiler.analysis.access import AccessError, loop_context
from repro.compiler.frontend import fast as F
from repro.compiler.pipeline import CompileOptions, compile_source
from repro.compiler.postpass.granularity import GRAINS
from repro.compiler.postpass.partition import (
    STRATEGIES,
    Partition,
    choose_strategy,
    parse_strategy,
)
from repro.compiler.postpass.scatter import RegionCommPlan
from repro.runtime.executor import run_program
from repro.sweep.cache import (
    DEFAULT_CACHE_DIR,
    canonical_json,
    job_key,
    load_row,
    store_row,
)

__all__ = [
    "FEATURES",
    "ModelCost",
    "RegionDecision",
    "TunePlan",
    "region_features",
    "region_model_cost",
    "tune_per_region",
]

#: Relative margin below which the analytic model refuses to decide and
#: the region goes to the profile-measured tier instead.
DEFAULT_EPSILON = 0.05

#: Rough CPU cost of one kernel-stack traversal (ethernet backends have
#: no user-level path; the sw latency *is* host CPU time).
_ETH_CPU_PER_SIDE = 1.0

#: Feature names of the linear calibrated cost model, in fit order
#: (docs/AUTOTUNE.md).  A :class:`~repro.tools.calibrate.CalibratedModel`
#: carries one fitted coefficient per feature.
FEATURES = ("messages", "bytes", "strided_elements", "fanout_dests")


@dataclass(frozen=True)
class ModelCost:
    """Analytic price of one region's communication at one grain."""

    elapsed_s: float
    cpu_s: float
    messages: int

    def metric(self, metric: str) -> float:
        return self.cpu_s if metric == "comm_cpu" else self.elapsed_s


def _transfer_cost(transfer, itemsize: int, params) -> Tuple[float, float]:
    """(elapsed, master-CPU) seconds for one master<->slave transfer."""
    nbytes = transfer.count * itemsize
    if params.network == "ethernet":
        e = params.ethernet
        frames = max(1, math.ceil(nbytes / e.mtu_bytes))
        elapsed = 2 * e.sw_latency_s + nbytes / e.rate_Bps + frames * e.min_frame_s
        if e.switched:
            # Store-and-forward: the switch replays the wire time and
            # charges its forwarding decision.
            elapsed += e.switch_latency_s + nbytes / e.rate_Bps
        cpu = 2 * e.sw_latency_s * _ETH_CPU_PER_SIDE
        return elapsed, cpu
    nic = params.nic
    overhead = nic.per_message_overhead_s()
    if transfer.contiguous:
        elapsed = overhead + nic.dma_setup_s + nbytes / nic.dma_rate_Bps
        return elapsed, overhead + nic.dma_setup_s
    # Strided: programmed I/O, the host CPU touches every element.
    elapsed = (
        overhead + nic.pio_setup_s + transfer.count * nic.pio_per_element_s
    )
    return elapsed, elapsed


def region_model_cost(plan: RegionCommPlan, params, calibration=None) -> ModelCost:
    """Price one region's scatter+collect plan on one backend.

    Scatters serialize on the master (one bcast wave when the V-Bus
    broadcast fuses them); collects overlap across ranks on the V-Bus
    mesh and switched fabrics (busiest rank bounds) but serialize on a
    shared ethernet segment.  A pruning heuristic, not an accounting
    identity — it only has to rank grains with a margin.

    With a ``calibration`` (a
    :class:`~repro.tools.calibrate.CalibratedModel`, or anything with its
    four per-feature coefficients), ``elapsed_s`` is instead the fitted
    linear model over :func:`region_features` — constants measured from
    traced microbenchmarks rather than read off static ``ClusterParams``.
    ``cpu_s`` and ``messages`` stay static either way: the ``comm_cpu``
    metric and the fewer-messages tie-break are calibration-invariant.
    """
    elapsed = cpu = 0.0
    messages = 0
    shared_segment = (
        params.network == "ethernet" and not params.ethernet.switched
    )
    for aplan in plan.arrays.values():
        bcast = (
            aplan.scatter_bcast
            and params.network == "vbus"
            and params.vbus_broadcast
        )
        if bcast:
            transfers = next(iter(aplan.scatter.values()), [])
            messages += len(transfers)
            for t in transfers:
                e, c = _transfer_cost(t, aplan.itemsize, params)
                elapsed += e
                cpu += c
        else:
            for transfers in aplan.scatter.values():
                messages += len(transfers)
                for t in transfers:
                    e, c = _transfer_cost(t, aplan.itemsize, params)
                    elapsed += e
                    cpu += c
        rank_elapsed: List[float] = []
        rank_cpu: List[float] = []
        for transfers in aplan.collect.values():
            messages += len(transfers)
            e_sum = c_sum = 0.0
            for t in transfers:
                e, c = _transfer_cost(t, aplan.itemsize, params)
                e_sum += e
                c_sum += c
            rank_elapsed.append(e_sum)
            rank_cpu.append(c_sum)
        if rank_elapsed:
            if shared_segment:
                elapsed += sum(rank_elapsed)
                cpu += sum(rank_cpu)
            else:
                elapsed += max(rank_elapsed)
                cpu += max(rank_cpu)
    if calibration is not None:
        f = region_features(plan, params)
        elapsed = (
            calibration.per_message_s * f["messages"]
            + calibration.per_byte_s * f["bytes"]
            + calibration.strided_per_element_s * f["strided_elements"]
            + calibration.fanout_per_dest_s * f["fanout_dests"]
        )
    return ModelCost(elapsed_s=elapsed, cpu_s=cpu, messages=messages)


def region_features(plan: RegionCommPlan, params) -> Dict[str, float]:
    """:data:`FEATURES` of one region's plan, for the calibrated model.

    ``messages``/``bytes``/``strided_elements`` are **totals** over every
    transfer the region issues — scatter and collect, all ranks — except
    that a fused V-Bus broadcast counts its single wave once and puts its
    destination count in ``fanout_dests``.  Totals, not busiest-rank
    shares, because every transfer converges on the master (its NIC, its
    switch port, or the shared segment): the measured region comm time
    the fit targets is the *serialized* drain of all of them, and the
    per-message/per-byte coefficients absorb whatever overlap the fabric
    actually achieves.  Unlike the static walk of
    :func:`region_model_cost`, this is exactly linear in the transfer
    counts, which is what makes the least-squares fit well-posed.
    """
    msgs = nbytes = selems = fanout = 0.0

    def _tally(transfers, itemsize):
        m = b = s = 0.0
        for t in transfers:
            m += 1
            b += t.count * itemsize
            if not t.contiguous:
                s += t.count
        return m, b, s

    for aplan in plan.arrays.values():
        bcast = (
            aplan.scatter_bcast
            and params.network == "vbus"
            and params.vbus_broadcast
        )
        if bcast:
            waves = [next(iter(aplan.scatter.values()), [])]
            fanout += len(aplan.scatter)
        else:
            waves = [aplan.scatter[r] for r in sorted(aplan.scatter)]
        waves.extend(aplan.collect[r] for r in sorted(aplan.collect))
        for transfers in waves:
            m, b, s = _tally(transfers, aplan.itemsize)
            msgs += m
            nbytes += b
            selems += s
    return {
        "messages": msgs,
        "bytes": nbytes,
        "strided_elements": selems,
        "fanout_dests": fanout,
    }


@dataclass
class RegionDecision:
    """How one parallel region's grain was chosen."""

    region_id: int
    grain: str
    #: "model" (margin >= epsilon) or "profile" (measured rollup).
    how: str
    #: Relative margin of the winner over the runner-up at decision time.
    margin: float
    #: candidate -> analytic metric value (seconds).  Candidates are
    #: grains (``"fine"``) in grain-only searches, ``"grain/strategy"``
    #: labels (``"fine/cyclic"``) in joint partition searches.
    model: Dict[str, float] = field(default_factory=dict)
    #: candidate -> measured per-region metric (profile-decided only).
    measured: Dict[str, float] = field(default_factory=dict)
    #: Chosen §5.3 strategy spec (joint partition searches only).
    partition: Optional[str] = None

    def to_jsonable(self) -> Dict:
        out = {
            "region_id": self.region_id,
            "grain": self.grain,
            "how": self.how,
            "margin": self.margin,
            "model": {g: self.model[g] for g in sorted(self.model)},
        }
        if self.measured:
            out["measured"] = {
                g: self.measured[g] for g in sorted(self.measured)
            }
        if self.partition is not None:
            out["partition"] = self.partition
        return out

    @classmethod
    def from_jsonable(cls, doc: Dict) -> "RegionDecision":
        return cls(
            region_id=int(doc["region_id"]),
            grain=doc["grain"],
            how=doc["how"],
            margin=float(doc["margin"]),
            model=dict(doc.get("model", {})),
            measured=dict(doc.get("measured", {})),
            partition=doc.get("partition"),
        )


@dataclass
class TunePlan:
    """A backend-aware mixed-grain plan, ready to compile or serialize."""

    metric: str
    nprocs: int
    backend: Optional[str]
    default_grain: str
    #: region_id -> grain, only for regions that differ from the default.
    grain_map: Dict[int, str] = field(default_factory=dict)
    epsilon: float = DEFAULT_EPSILON
    source_sha256: str = ""
    decisions: List[RegionDecision] = field(default_factory=list)
    #: Instrumented profile runs the search needed (0 on a warm cache hit
    #: only because the field round-trips from the cached artifact).
    profiles: int = 0
    #: True when the search also tuned the §5.3 partition strategy.
    tune_partition: bool = False
    #: region_id -> strategy spec, only where the tuned choice differs
    #: from the ``auto`` resolution (so an all-agree plan stays empty and
    #: the artifact byte-identical to a grain-only plan).
    partition_map: Dict[int, str] = field(default_factory=dict)
    #: Content hash of the CalibratedModel the analytic tier used, or
    #: ``""`` for an uncalibrated search (v3 field, omitted when empty).
    calibration_sha256: str = ""
    #: True when this plan came from the on-disk plan cache.
    cached: bool = field(default=False, compare=False)
    #: Analytic-tier price evaluations the search actually performed.
    #: Diagnostic counters only — never serialized (so pruned and
    #: unpruned searches emit byte-identical artifacts), 0 on warm
    #: cache hits.
    evaluated_candidates: int = field(default=0, compare=False)
    #: (region, candidate) pairs the static tier skipped: verifier-
    #: illegal candidates dropped before pricing plus structural
    #: duplicates collapsed by price-key sharing (docs/CHECK.md).
    pruned_candidates: int = field(default=0, compare=False)

    @property
    def mixed(self) -> bool:
        return bool(self.grain_map) or bool(self.partition_map)

    def options(self, **overrides) -> CompileOptions:
        """The :class:`CompileOptions` that realize this plan."""
        kw = dict(
            nprocs=self.nprocs,
            granularity=self.default_grain,
            grain_map=self.grain_map or None,
        )
        if self.partition_map:
            kw["partition_map"] = self.partition_map
        kw.update(overrides)
        return CompileOptions(**kw)

    def to_jsonable(self) -> Dict:
        out = {
            "kind": "tuneplan",
            "metric": self.metric,
            "nprocs": self.nprocs,
            "backend": self.backend,
            "default_grain": self.default_grain,
            "grain_map": {
                str(rid): self.grain_map[rid]
                for rid in sorted(self.grain_map)
            },
            "epsilon": self.epsilon,
            "source_sha256": self.source_sha256,
            "profiles": self.profiles,
            "decisions": [d.to_jsonable() for d in self.decisions],
        }
        # Partition fields appear only in partition-tuned plans, keeping
        # grain-only artifacts (and their committed bytes) unchanged.
        if self.tune_partition:
            out["tune_partition"] = True
            out["partition_map"] = {
                str(rid): self.partition_map[rid]
                for rid in sorted(self.partition_map)
            }
        if self.calibration_sha256:
            out["calibration_sha256"] = self.calibration_sha256
        return out

    @classmethod
    def from_jsonable(cls, doc: Dict) -> "TunePlan":
        if doc.get("kind") != "tuneplan":
            raise ValueError(
                f"not a TunePlan document (kind={doc.get('kind')!r})"
            )
        return cls(
            metric=doc["metric"],
            nprocs=int(doc["nprocs"]),
            backend=doc.get("backend"),
            default_grain=doc["default_grain"],
            grain_map={
                int(rid): g for rid, g in doc.get("grain_map", {}).items()
            },
            epsilon=float(doc.get("epsilon", DEFAULT_EPSILON)),
            source_sha256=doc.get("source_sha256", ""),
            decisions=[
                RegionDecision.from_jsonable(d)
                for d in doc.get("decisions", [])
            ],
            profiles=int(doc.get("profiles", 0)),
            tune_partition=bool(doc.get("tune_partition", False)),
            partition_map={
                int(rid): s
                for rid, s in doc.get("partition_map", {}).items()
            },
            calibration_sha256=doc.get("calibration_sha256", ""),
        )

    def save(self, path: str) -> None:
        """Write the canonical JSON artifact (byte-deterministic)."""
        with open(path, "w") as fh:
            fh.write(canonical_json(self.to_jsonable()))
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "TunePlan":
        with open(path) as fh:
            return cls.from_jsonable(json.load(fh))

    def summary(self) -> str:
        where = self.backend or "custom backend"
        head = (
            f"per-region tune plan ({where}, np={self.nprocs}, "
            f"metric: {self.metric}):"
        )
        lines = [head]
        for d in sorted(self.decisions, key=lambda d: d.region_id):
            star = (
                "*"
                if d.region_id in self.grain_map
                or d.region_id in self.partition_map
                else " "
            )
            what = d.grain
            if d.partition is not None:
                what = f"{d.grain}/{d.partition}"
            lines.append(
                f" {star} region {d.region_id}: {what:7s} "
                f"[{d.how}, margin {d.margin * 100:.1f}%]"
            )
        if self.mixed:
            overrides = len(self.grain_map)
            extra = ""
            if self.tune_partition:
                extra = (
                    f", {len(self.partition_map)} partition override(s)"
                )
            lines.append(
                f"  mixed plan: default {self.default_grain}, "
                f"{overrides} override(s){extra}; "
                f"{self.profiles} profile run(s)"
            )
        else:
            lines.append(
                f"  uniform plan: {self.default_grain} everywhere; "
                f"{self.profiles} profile run(s)"
            )
        if self.cached:
            lines.append("  (loaded from plan cache)")
        return "\n".join(lines)


def _report_value(report, metric: str) -> float:
    """The whole-program flavour of a tuning metric (flip probes)."""
    if metric == "comm":
        return report.comm_max_s
    if metric == "comm_cpu":
        return report.comm_cpu_max_s
    return report.total_s


def _measured_value(rollup, metric: str) -> float:
    if metric == "comm":
        return rollup.mpi_max_s
    if metric == "comm_cpu":
        return rollup.nic_cpu_s
    return rollup.elapsed_s


def _margin(values: List[float]) -> float:
    """Relative gap between the two best values (sorted ascending)."""
    if len(values) < 2:
        return math.inf
    best, second = values[0], values[1]
    if second <= 0.0:
        return 0.0
    return (second - best) / second


def _plan_price_key(plan: RegionCommPlan) -> tuple:
    """Everything the cost model reads from a region plan, as a hashable
    projection: two plans with equal keys price identically on every
    backend and calibration (:func:`region_model_cost` and
    :func:`region_features` walk exactly these fields).  The static
    pruning tier uses it to collapse structural duplicates — e.g. a
    coarse variant the §5.6 bound check demoted back to fine, or a
    forced-strategy variant identical to what ``auto`` resolved to —
    into a single evaluation (docs/CHECK.md)."""
    out = []
    for name in sorted(plan.arrays):
        a = plan.arrays[name]
        out.append((
            name,
            a.itemsize,
            a.scatter_bcast,
            tuple((r, tuple(a.scatter[r])) for r in sorted(a.scatter)),
            tuple((r, tuple(a.collect[r])) for r in sorted(a.collect)),
        ))
    return tuple(out)


def _cand_key(grain: str, spec: Optional[str]) -> str:
    """Stable label of a (grain, strategy) candidate for JSON dicts."""
    return grain if spec is None else f"{grain}/{spec}"


def _par_loops(program) -> Dict[int, F.Do]:
    """region_id -> parallel loop, walking the SPMD region tree."""
    from repro.compiler.postpass.spmd import IfRegion, ParRegion, SeqLoop

    loops: Dict[int, F.Do] = {}

    def visit(regions):
        for region in regions:
            if isinstance(region, ParRegion):
                loops[region.region_id] = region.loop
            elif isinstance(region, SeqLoop):
                visit(region.body)
            elif isinstance(region, IfRegion):
                visit(region.then)
                for _c, blk in region.elifs:
                    visit(blk)
                visit(region.orelse)

    visit(program.regions)
    return loops


#: Loops wider than this skip the per-iteration weight analysis (the
#: imbalance term degrades to zero and the profile tier arbitrates).
_MAX_WEIGHT_ITERS = 4096


def _nest_weight(stmts, env) -> float:
    """Approximate work of one parallel iteration: nested trip counts,
    with deeper index-dependent bounds evaluated at the loop midpoint."""
    w = 0.0
    for s in stmts:
        w += 1.0
        if isinstance(s, F.Do):
            ctx = loop_context(s, (), env)
            count = ctx.count
            if count <= 0:
                continue
            inner_env = dict(env)
            inner_env[s.var] = ctx.lo + ((count - 1) // 2) * ctx.step
            w += count * _nest_weight(s.body, inner_env)
        elif isinstance(s, F.If):
            w += _nest_weight(s.then, env)
            for _c, blk in s.elifs:
                w += _nest_weight(blk, env)
            w += _nest_weight(s.orelse, env)
    return w


def _strategy_imbalance(loop: F.Do, nprocs: int) -> Dict[str, float]:
    """Per-strategy load-imbalance factor ``maxW / meanW - 1`` of one
    parallel loop, from per-iteration inner trip counts.

    ``{}`` when the bounds cannot be resolved statically (the term then
    contributes nothing and ambiguity falls through to the profile
    tier).  This is what makes block-on-triangular expensive in the
    model: the heavy ranks' fence-wait skew shows up in the ``comm`` and
    ``total`` metrics, and the factor scales the region's measured
    compute time to price it.
    """
    try:
        pctx = loop_context(loop, (), {})
    except AccessError:
        return {}
    n = pctx.count
    if n <= 0 or n > _MAX_WEIGHT_ITERS:
        return {}
    try:
        values = list(pctx.values())
        weights = [_nest_weight(loop.body, {pctx.var: v}) for v in values]
    except AccessError:
        return {}
    out: Dict[str, float] = {}
    for sname in STRATEGIES:
        part = Partition(pctx=pctx, nprocs=nprocs, strategy=sname)
        per_rank = [0.0] * nprocs
        for v, w in zip(values, weights):
            per_rank[part.owner_of(v)] += w
        mean = sum(per_rank) / nprocs
        out[sname] = max(per_rank) / mean - 1.0 if mean > 0 else 0.0
    return out


def plan_cache_key(
    source: str,
    backend: str,
    nprocs: int,
    metric: str,
    epsilon: float,
    tune_partition: bool = False,
    calibration_sha256: str = "",
) -> str:
    """Content-address of one tuning problem (shares the sweep cache).

    The ``partition`` field joins the key only for joint searches and
    the ``calibration`` field only for calibrated searches, so every
    pre-existing key (and any cached plan stored under one) is untouched
    by either axis.
    """
    sha = hashlib.sha256(source.encode("utf-8")).hexdigest()
    doc = {
        "kind": "tuneplan",
        "source_sha256": sha,
        "backend": backend,
        "nprocs": nprocs,
        "metric": metric,
        "epsilon": epsilon,
    }
    if tune_partition:
        doc["partition"] = True
    if calibration_sha256:
        doc["calibration"] = calibration_sha256
    return job_key(doc)


def _resolve_backend(backend: Optional[str], cluster_params, nprocs: int):
    if cluster_params is not None:
        return cluster_params
    from repro.sweep.runner import BACKENDS
    from repro.vbus import params as P

    name = backend if backend is not None else "vbus"
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; use one of {sorted(BACKENDS)}"
        )
    return P.cluster_for(nprocs, getattr(P, BACKENDS[name]))


def tune_per_region(
    source: str,
    nprocs: int = 4,
    metric: str = "comm",
    backend: Optional[str] = None,
    cluster_params=None,
    epsilon: float = DEFAULT_EPSILON,
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
    faults=None,
    tune_partition: bool = False,
    calibration=None,
    static_prune: bool = True,
) -> TunePlan:
    """Derive a per-region mixed-grain :class:`TunePlan` for ``source``.

    ``backend`` is a sweep backend name (``vbus``, ``gige``, ...); pass
    ``cluster_params`` instead for a custom machine (which disables the
    plan cache — there is no stable name to key it under).  ``faults``
    only affects the profile runs, never the plan artifact: fault plans
    perturb timing, not which transfers a grain emits.

    ``tune_partition=True`` widens every tier to the joint
    (grain, §5.3 strategy) space: block and cyclic variants are compiled
    alongside the three grains, the analytic price gains a trace-scaled
    load-imbalance term, and the plan's ``partition_map`` records only
    the regions where the tuned strategy disagrees with ``auto``.

    ``calibration`` (a :class:`~repro.tools.calibrate.CalibratedModel`)
    replaces the analytic tier's static constants with trace-fitted
    ones.  A calibrated model has no known cross-family bias, so the
    family-arbitration prune widens from "clear block wins" to *any*
    clear-margin cross-family verdict — fewer flip probes wherever the
    fitted model is confident.  The calibration's content hash joins the
    plan cache key and the artifact (``calibration_sha256``), keeping
    uncalibrated plans byte-identical to what earlier releases wrote.

    ``static_prune`` (default on) runs the :mod:`repro.tools.check`
    verifier over every compiled variant before the analytic tier:
    candidates it proves illegal for a region (RV4xx — e.g. a forced
    split dimension crossing a carried dependence) are dropped from that
    region's search, and structural duplicates (identical priced
    transfer schedules) collapse to one evaluation.  Pruning never
    changes the chosen plan on statically-legal programs — the artifact
    is byte-identical either way, which is why the flag stays out of
    the cache key; the saved work shows in ``evaluated_candidates`` /
    ``pruned_candidates``.

    Warm calls (``cache_dir`` holds a plan for this exact problem)
    return the cached plan without compiling or profiling anything.
    """
    from repro.tools.autotune import METRICS

    if metric not in METRICS:
        raise ValueError(f"metric must be one of {METRICS}, got {metric!r}")
    if not 0.0 <= epsilon < 1.0:
        raise ValueError(f"epsilon must be in [0, 1), got {epsilon!r}")

    cal_sha = calibration.sha256() if calibration is not None else ""
    cacheable = cache_dir is not None and cluster_params is None
    key = None
    if cacheable:
        key = plan_cache_key(
            source, backend or "vbus", nprocs, metric, epsilon,
            tune_partition=tune_partition,
            calibration_sha256=cal_sha,
        )
        row = load_row(cache_dir, key)
        if row is not None:
            plan = TunePlan.from_jsonable(row)
            plan.cached = True
            return plan

    params = _resolve_backend(backend, cluster_params, nprocs)

    # 1. Compile every candidate variant; the cost model reads their
    #    plans.  Grain-only searches compile the three global grains;
    #    joint searches add the forced-block and forced-cyclic variants
    #    (strategy ``None`` means "the program default", i.e. auto).
    strategies: Tuple[Optional[str], ...] = (
        STRATEGIES if tune_partition else (None,)
    )
    programs: Dict[Tuple[str, Optional[str]], object] = {}
    for s in strategies:
        for g in GRAINS:
            kw = {} if s is None else {"partition": s}
            programs[(g, s)] = compile_source(
                source, nprocs=nprocs, granularity=g, **kw
            )
    region_ids = sorted(programs[(GRAINS[0], strategies[0])].plans)
    # A forced strategy that demotes regions (PlanError fallback) shifts
    # region numbering; drop such variants rather than misattribute.
    candidates = [
        (g, s)
        for s in strategies
        for g in GRAINS
        if sorted(programs[(g, s)].plans) == region_ids
    ]

    # Static pruning tier (docs/CHECK.md): before pricing anything, run
    # the comm-plan verifier over every variant and drop candidates it
    # proves illegal for a region.  A region where *every* candidate is
    # illegal keeps the full list — the tuner must still pick something,
    # and an everywhere-illegal program is 'repro check's verdict to
    # deliver, not the tuner's.
    evaluated = 0
    pruned = 0
    region_cands: Dict[int, List[Tuple[str, Optional[str]]]] = {
        rid: candidates for rid in region_ids
    }
    if static_prune:
        from repro.tools.check import bad_region_map

        illegal = {
            c: frozenset(bad_region_map(programs[c])) for c in candidates
        }
        for rid in region_ids:
            kept = [c for c in candidates if rid not in illegal[c]]
            if kept and len(kept) < len(candidates):
                pruned += len(candidates) - len(kept)
                region_cands[rid] = kept

    # Joint searches price load imbalance: per-strategy iteration-weight
    # skew, scaled by each region's compute time from one baseline
    # instrumented profile (the trace-driven part of the model).
    auto_spec: Dict[int, str] = {}
    imb: Dict[int, Dict[str, float]] = {rid: {} for rid in region_ids}
    compute_s: Dict[int, float] = {}
    profiles = 0
    if tune_partition:
        base_prog = compile_source(
            source, nprocs=nprocs, granularity=GRAINS[0]
        )
        loops = _par_loops(base_prog)
        for rid in region_ids:
            loop = loops.get(rid)
            if loop is None:
                continue
            auto_spec[rid] = choose_strategy(loop, "auto")
            imb[rid] = _strategy_imbalance(loop, nprocs)
        # The imbalance term only matters where block and cyclic *differ*
        # in skew: a factor common to every strategy shifts all candidates
        # of a region equally and can never change a ranking.  Workloads
        # with zero such regions (every nest rectangular, or near-even
        # owner counts) skip the baseline instrumented profile entirely.
        skewed = metric != "comm_cpu" and any(
            factors and max(factors.values()) - min(factors.values()) > 1e-12
            for factors in imb.values()
        )
        if skewed:
            report = run_program(
                base_prog,
                cluster_params=params,
                execute=False,
                trace=True,
                faults=faults,
            )
            profiles += 1
            from repro.obs import region_rollup

            rollups = region_rollup(report.trace)
            for rid in region_ids:
                roll = rollups.get(rid)
                compute_s[rid] = (
                    max(0.0, roll.elapsed_s - roll.mpi_max_s)
                    if roll is not None
                    else 0.0
                )

    def _pref(rid: int, s: Optional[str]) -> Tuple[int, int]:
        """Tie-break suffix: prefer the auto strategy, then STRATEGIES
        order (a no-op for grain-only candidates)."""
        if s is None:
            return (0, 0)
        return (0 if s == auto_spec.get(rid) else 1, STRATEGIES.index(s))

    # 2. Analytic tier: decide regions with a clear model margin.
    decisions: Dict[int, RegionDecision] = {}
    ambiguous: Dict[int, List[Tuple[str, Optional[str]]]] = {}
    model_costs: Dict[int, Dict[Tuple[str, Optional[str]], ModelCost]] = {}
    family_best: Dict[
        int, Dict[Optional[str], Tuple[str, Optional[str]]]
    ] = {}
    for rid in region_ids:
        cands = region_cands[rid]

        def _priced(cal=None) -> Dict[Tuple[str, Optional[str]], ModelCost]:
            """Price every surviving candidate, sharing one ModelCost
            between structural duplicates when pruning is on."""
            nonlocal evaluated, pruned
            out: Dict[Tuple[str, Optional[str]], ModelCost] = {}
            shared: Dict[tuple, ModelCost] = {}
            for c in cands:
                pk = None
                if static_prune:
                    pk = _plan_price_key(programs[c].plans[rid])
                    hit = shared.get(pk)
                    if hit is not None:
                        pruned += 1
                        out[c] = hit
                        continue
                cost = region_model_cost(
                    programs[c].plans[rid], params, calibration=cal
                )
                evaluated += 1
                if pk is not None:
                    shared[pk] = cost
                out[c] = cost
            return out

        costs = _priced()
        model_costs[rid] = costs

        def _value_of(cost_of) -> Dict[Tuple[str, Optional[str]], float]:
            out = {}
            for (g, s) in cands:
                v = cost_of[(g, s)].metric(metric)
                if s is not None and metric != "comm_cpu":
                    v += imb[rid].get(s, 0.0) * compute_s.get(rid, 0.0)
                out[(g, s)] = v
            return out

        value = _value_of(costs)
        ranked = sorted(
            cands,
            key=lambda c: (
                value[c],
                costs[c].messages,
                _pref(rid, c[1]),
                GRAINS.index(c[0]),
            ),
        )
        values = [value[c] for c in ranked]
        margin = _margin(values)
        best_g, best_s = ranked[0]
        # The model-best candidate per strategy family, for the family
        # arbitration tier below (ranked order already applied the
        # tie-break, so the first hit per family is its best).  Within a
        # family the *static* model ranks — its §5.6 pricing is exact up
        # to scheduling, and grains of one family share that scheduling.
        fam_best: Dict[Optional[str], Tuple[str, Optional[str]]] = {}
        for c in ranked:
            fam_best.setdefault(c[1], c)
        family_best[rid] = fam_best
        model_value = value
        if calibration is not None:
            # Calibrated searches re-price the *champion* comparison —
            # the cross-family gap is exactly where PR 8 measured the
            # static model to be 2-3x optimistic (strided cyclic
            # descriptors priced as single messages), and exactly what
            # the fitted constants absorbed.  The winner, the recorded
            # model values, and therefore the flip-probe margins below
            # all speak calibrated prices; within-family ranking and
            # its near-tie band stay with the static model.
            cal_value = _value_of(_priced(calibration))
            model_value = cal_value
            if len(fam_best) > 1:
                champions = sorted(
                    fam_best.values(),
                    key=lambda c: (
                        cal_value[c],
                        costs[c].messages,
                        _pref(rid, c[1]),
                        GRAINS.index(c[0]),
                    ),
                )
                best_g, best_s = champions[0]
                margin = _margin([cal_value[c] for c in champions])
        decision = RegionDecision(
            region_id=rid,
            grain=best_g,
            how="model",
            margin=margin,
            model={
                _cand_key(g, s): model_value[(g, s)]
                for (g, s) in cands
            },
            partition=best_s if tune_partition else None,
        )
        decisions[rid] = decision
        if margin < epsilon:
            # Candidates within epsilon of the leader go to the profile —
            # except exact structural duplicates: candidates whose region
            # plans price identically (elapsed, CPU, *and* messages) emit
            # equivalent transfer schedules (e.g. the §5.6 bound check
            # demoted every grain to fine), so the deterministic
            # simulator would measure them identically too.  Profiling a
            # duplicate is provably wasted work; the ranked order already
            # applied the tie-break.  Joint searches restrict this tier
            # to the *winner's strategy family*: the model ranks grains
            # reliably within one family, while cross-family gaps are
            # arbitrated by dedicated flip probes on the whole-program
            # metric (below), not by span attribution.
            cands = [
                c
                for c, v in zip(ranked, values)
                if values[0] <= 0.0 or (v - values[0]) / max(v, 1e-30) < epsilon
            ]
            if tune_partition:
                cands = [c for c in cands if c[1] == best_s]
            cands = [
                c
                for i, c in enumerate(cands)
                if not any(
                    costs[c] == costs[h] and value[c] == value[h]
                    for h in cands[:i]
                )
            ]
            if len(cands) > 1:
                ambiguous[rid] = cands

    # 3. Profile tier: one instrumented run per candidate rank.  Every
    #    ambiguous region switches to its k-th candidate in run k, so the
    #    run count is the longest candidate list, not the number of
    #    ambiguous regions.
    if ambiguous:
        rounds = max(len(c) for c in ambiguous.values())
        measured: Dict[int, Dict[str, float]] = {
            rid: {} for rid in ambiguous
        }
        base_grain = decisions[region_ids[0]].grain if region_ids else "fine"
        for k in range(rounds):
            gmap = {
                rid: decisions[rid].grain for rid in region_ids
            }  # model-best everywhere...
            pmap = {
                rid: decisions[rid].partition
                for rid in region_ids
                if decisions[rid].partition is not None
            }
            probe = {
                rid: cands[min(k, len(cands) - 1)]
                for rid, cands in ambiguous.items()
            }
            for rid, (g, s) in probe.items():
                gmap[rid] = g  # ...except ambiguous regions probe cand k
                if s is not None:
                    pmap[rid] = s
            opts = CompileOptions(
                nprocs=nprocs,
                granularity=base_grain,
                grain_map=gmap,
                partition_map=pmap or None,
            )
            prog = compile_source(source, options=opts)
            report = run_program(
                prog,
                cluster_params=params,
                execute=False,
                trace=True,
                faults=faults,
            )
            profiles += 1
            from repro.obs import region_rollup

            rollups = region_rollup(report.trace)
            for rid, cand in probe.items():
                label = _cand_key(*cand)
                if label in measured[rid]:
                    continue  # short candidate list re-ran its last cand
                roll = rollups.get(rid)
                measured[rid][label] = (
                    _measured_value(roll, metric) if roll is not None else 0.0
                )
        for rid, cands in ambiguous.items():
            vals = measured[rid]
            ranked = sorted(
                cands,
                key=lambda c: (
                    vals.get(_cand_key(*c), math.inf),
                    model_costs[rid][c].messages,
                    _pref(rid, c[1]),
                    GRAINS.index(c[0]),
                ),
            )
            ordered = [
                vals[_cand_key(*c)] for c in ranked if _cand_key(*c) in vals
            ]
            best_g, best_s = ranked[0]
            decisions[rid] = replace(
                decisions[rid],
                grain=best_g,
                how="profile",
                margin=_margin(ordered),
                measured=dict(vals),
                partition=best_s if tune_partition else None,
            )

    # 3b. Family arbitration tier (joint searches only).  The analytic
    #     model ranks grains within one strategy family, but its
    #     scheduling assumptions (scatter serialization, collect
    #     overlap, one message per strided descriptor) bias block and
    #     cyclic differently, and unlike the grain axis those biases do
    #     not cancel across families — the model can be confidently
    #     wrong about block-vs-cyclic.  Span attribution cannot referee
    #     either: region rollups double-count collective internals and
    #     miss communication deferred past the region span.  So every
    #     cross-family choice is measured on the *whole-program* metric:
    #     run the plan-so-far once, then flip one region at a time to
    #     the rival family's model-best and keep the flip iff it
    #     strictly improves the program.  Flip configs usually coincide
    #     with uniform variants compiled in step 1, so the compile cache
    #     makes each probe one value-mode run.
    if tune_partition:
        flips: Dict[int, List[Tuple[str, Optional[str]]]] = {}
        for rid in region_ids:
            win = (decisions[rid].grain, decisions[rid].partition)
            model_vals = decisions[rid].model
            for fam, cand in family_best[rid].items():
                if fam == win[1]:
                    continue
                same = (
                    model_costs[rid][cand] == model_costs[rid][win]
                    and model_vals.get(_cand_key(*cand))
                    == model_vals.get(_cand_key(*win))
                )
                if same:  # structural duplicates measure identically
                    continue
                # The static model's cross-family bias has a *direction*:
                # it prices a strided cyclic descriptor as one message
                # (optimistic) and serializes every block scatter
                # (pessimistic), so it flatters cyclic.  When block wins
                # the static model by a clear margin despite that
                # handicap, the verdict is trustworthy; only a cyclic
                # model win (or a near-tie) needs the measured flip.  A
                # *calibrated* model fitted that optimism away, so its
                # clear-margin verdicts are trusted symmetrically: any
                # cross-family loss by >= epsilon skips its probe.
                wv = model_vals.get(_cand_key(*win))
                cv = model_vals.get(_cand_key(*cand))
                clear = (
                    wv is not None
                    and cv is not None
                    and cv > 0.0
                    and (cv - wv) / cv >= epsilon
                )
                if calibration is not None:
                    if clear:
                        continue
                elif (
                    clear
                    and win[1] is not None
                    and parse_strategy(win[1])[0] == "block"
                    and cand[1] is not None
                    and parse_strategy(cand[1])[0] == "cyclic"
                ):
                    continue
                flips.setdefault(rid, []).append(cand)
        if flips:
            def _mixed_report(gmap, pmap):
                # Normalize so configs that coincide with an
                # already-compiled variant hit the compile cache: a
                # partition override equal to the region's auto choice
                # compiles the same program without the override, and a
                # grain map with one value is just that granularity.
                pmap = {
                    r: s for r, s in pmap.items()
                    if s != auto_spec.get(r)
                }
                g0 = gmap[region_ids[0]]
                uniform_grain = all(g == g0 for g in gmap.values())
                opts = CompileOptions(
                    nprocs=nprocs,
                    granularity=g0,
                    grain_map=None if uniform_grain else gmap,
                    partition_map=pmap or None,
                )
                prog = compile_source(source, options=opts)
                return run_program(
                    prog, cluster_params=params, execute=False, faults=faults
                )

            base_gmap = {rid: decisions[rid].grain for rid in region_ids}
            base_pmap = {
                rid: decisions[rid].partition
                for rid in region_ids
                if decisions[rid].partition is not None
            }
            base_val = _report_value(
                _mixed_report(base_gmap, base_pmap), metric
            )
            profiles += 1
            for rid in sorted(flips):
                base_key = _cand_key(
                    decisions[rid].grain, decisions[rid].partition
                )
                vals = dict(decisions[rid].measured)
                vals[base_key] = base_val
                best_val = base_val
                best_cand = None
                for cand in flips[rid]:
                    gmap = dict(base_gmap)
                    pmap = dict(base_pmap)
                    gmap[rid] = cand[0]
                    if cand[1] is not None:
                        pmap[rid] = cand[1]
                    val = _report_value(_mixed_report(gmap, pmap), metric)
                    profiles += 1
                    vals[_cand_key(*cand)] = val
                    if val < best_val:
                        best_val, best_cand = val, cand
                ordered = sorted(vals[k] for k in vals)
                if best_cand is not None:
                    decisions[rid] = replace(
                        decisions[rid],
                        grain=best_cand[0],
                        partition=best_cand[1],
                        how="profile",
                        margin=_margin(ordered),
                        measured=vals,
                    )
                else:
                    decisions[rid] = replace(
                        decisions[rid],
                        how="profile",
                        margin=_margin(ordered),
                        measured=vals,
                    )

    # 4. Compress: majority grain becomes the default, the rest override;
    #    partition overrides only where the choice disagrees with auto.
    chosen = [decisions[rid].grain for rid in region_ids]
    if chosen:
        default = max(
            GRAINS, key=lambda g: (chosen.count(g), -GRAINS.index(g))
        )
    else:
        default = "fine"
    grain_map = {
        rid: decisions[rid].grain
        for rid in region_ids
        if decisions[rid].grain != default
    }
    partition_map: Dict[int, str] = {}
    if tune_partition:
        partition_map = {
            rid: decisions[rid].partition
            for rid in region_ids
            if decisions[rid].partition is not None
            and decisions[rid].partition != auto_spec.get(rid)
        }

    plan = TunePlan(
        metric=metric,
        nprocs=nprocs,
        backend=backend if cluster_params is None else None,
        default_grain=default,
        grain_map=grain_map,
        epsilon=epsilon,
        source_sha256=hashlib.sha256(source.encode("utf-8")).hexdigest(),
        decisions=[decisions[rid] for rid in region_ids],
        profiles=profiles,
        tune_partition=tune_partition,
        partition_map=partition_map,
        calibration_sha256=cal_sha,
        evaluated_candidates=evaluated,
        pruned_candidates=pruned,
    )
    if cacheable:
        store_row(cache_dir, key, plan.to_jsonable())
    return plan
