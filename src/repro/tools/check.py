"""`repro check` — static verifier over compiled IR + §5.6 transfer plans.

The postpass plans every byte of master↔slave communication statically
(docs/ARCHITECTURE.md), which means its output is *checkable* statically
too: re-derive what correctness requires from the same ART/LMAD
machinery and compare it against the transfer schedule the compiler
actually emitted.  Four analyses, each with stable diagnostic codes
(docs/CHECK.md has the full table):

* **RV1xx transfer coverage** — every remote read is covered by a
  scatter or a still-valid copy (RV101), every observable write by a
  collect (RV102);
* **RV2xx approximate-region races** — the §5.6 middle/coarse collect
  bound check re-derived for the *emitted* plan: overlapping collect
  regions (RV201) and stale elements inside inflated collects (RV202);
* **RV3xx fence discipline** — a scatter (RV301) or collect (RV302)
  phase whose closing fence epoch is missing;
* **RV4xx partition legality** — a cross-rank flow dependence carried by
  the distributed dimension (RV401): the requested ``block:D``/
  ``cyclic:D`` strategy would silently compute wrong answers.

The verifier re-runs the communication planner on the program's own IR
(deterministic — same region ids, same validity dataflow) and uses the
planner's per-rank access masks and validity state as the *reference*
against which the emitted plans are judged.  A healthy compilation is
clean by construction; plans mutated behind the planner's back (the
``C$BUG`` corpus in tests/badprogs, or a future external plan editor)
are caught.

Results come back as a versioned :class:`CheckReport` (JSON fields
omitted-when-clean for byte-compat), content-address-cached via
:mod:`repro.sweep.cache` when a ``cache_dir`` is given.  The autotuner
(`tune_per_region(static_prune=True)`) uses :func:`bad_region_map` to
drop statically-illegal grain×strategy candidates before pricing them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro.compiler.analysis.summary import (
    READ_ONLY,
    READ_WRITE,
    WRITE_FIRST,
    summarize_statements,
)
from repro.compiler.pipeline import CompileOptions, compile_source
from repro.compiler.postpass.env import generate_environment
from repro.compiler.postpass.scatter import (
    _PER_ITER_CAP,
    CommPlanner,
    RegionCommPlan,
    _transfers_mask,
)
from repro.compiler.postpass.spmd import build_regions
from repro.sweep.cache import job_key, load_row, store_row

__all__ = [
    "CHECK_SCHEMA_VERSION",
    "DIAGNOSTIC_CODES",
    "Diagnostic",
    "CheckReport",
    "check_program",
    "check_source",
    "bad_region_map",
]

#: Bumped whenever CheckReport JSON or a diagnostic's meaning changes;
#: part of the content-address cache key, so stale reports cannot be
#: served across schema changes.
CHECK_SCHEMA_VERSION = 1

#: code -> one-line meaning (the authoritative table is docs/CHECK.md).
DIAGNOSTIC_CODES = {
    "RV101": "remote read not covered by a scatter or a valid copy",
    "RV102": "observable write not covered by a collect",
    "RV201": "approximate collect regions of two ranks overlap",
    "RV202": "approximate collect would send stale elements",
    "RV301": "scatter transfers outside a fence epoch",
    "RV302": "collect transfers outside a fence epoch",
    "RV401": "partition strategy breaks a cross-rank flow dependence",
}


@dataclass
class Diagnostic:
    """One verifier finding, with region/loop provenance."""

    code: str
    region_id: int
    detail: str
    array: Optional[str] = None
    rank: Optional[int] = None
    loop_var: Optional[str] = None

    def to_jsonable(self) -> Dict:
        out = {
            "code": self.code,
            "region_id": self.region_id,
            "detail": self.detail,
        }
        if self.array is not None:
            out["array"] = self.array
        if self.rank is not None:
            out["rank"] = self.rank
        if self.loop_var is not None:
            out["loop_var"] = self.loop_var
        return out

    @classmethod
    def from_jsonable(cls, row: Dict) -> "Diagnostic":
        return cls(
            code=row["code"],
            region_id=row["region_id"],
            detail=row["detail"],
            array=row.get("array"),
            rank=row.get("rank"),
            loop_var=row.get("loop_var"),
        )


@dataclass
class CheckReport:
    """The versioned verdict of one static check."""

    nprocs: int
    granularity: str
    partition: str
    version: int = CHECK_SCHEMA_VERSION
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Non-diagnostic transparency notes (e.g. an RV401 analysis skipped
    #: because access info was widened).  Never affect :attr:`clean`.
    notes: List[str] = field(default_factory=list)
    #: Served from the content-address cache (runtime accounting only).
    cached: bool = field(default=False, compare=False)

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    def codes(self) -> Set[str]:
        return {d.code for d in self.diagnostics}

    def to_jsonable(self) -> Dict:
        out = {
            "version": self.version,
            "nprocs": self.nprocs,
            "granularity": self.granularity,
            "partition": self.partition,
        }
        if self.diagnostics:
            out["diagnostics"] = [d.to_jsonable() for d in self.diagnostics]
        if self.notes:
            out["notes"] = list(self.notes)
        return out

    @classmethod
    def from_jsonable(cls, row: Dict) -> "CheckReport":
        return cls(
            nprocs=row["nprocs"],
            granularity=row["granularity"],
            partition=row["partition"],
            version=row["version"],
            diagnostics=[
                Diagnostic.from_jsonable(d) for d in row.get("diagnostics", [])
            ],
            notes=list(row.get("notes", [])),
        )

    def summary(self) -> str:
        head = (
            f"check: nprocs={self.nprocs} granularity={self.granularity} "
            f"partition={self.partition}"
        )
        if self.clean:
            return f"{head}\nclean: no diagnostics"
        lines = [head, f"{len(self.diagnostics)} diagnostic(s):"]
        for d in self.diagnostics:
            where = f"region {d.region_id}"
            if d.loop_var:
                where += f" (DO {d.loop_var})"
            if d.array:
                where += f" {d.array}"
            if d.rank is not None:
                where += f" rank {d.rank}"
            lines.append(f"  {d.code} {where}: {d.detail}")
        return "\n".join(lines)


def _diag_sort_key(d: Diagnostic):
    return (d.region_id, d.code, d.array or "", -1 if d.rank is None else d.rank)


class _VerifyingPlanner(CommPlanner):
    """A CommPlanner that replans the program as the *reference* and, at
    each parallel region's final visit, judges the emitted plan against
    the reference validity state and per-rank access masks.

    Regions inside sequential loops are visited several times (the
    planner's meet-over-backedge fixpoint); findings are keyed by region
    id and overwritten per visit, so only the final (post-meet) pass
    survives — exactly the state the emitted plan was derived from.
    """

    def __init__(self, *args, emitted: Dict[int, RegionCommPlan], **kwargs):
        super().__init__(*args, **kwargs)
        self.emitted = emitted
        self.findings: Dict[int, List[Diagnostic]] = {}
        self.region_notes: Dict[int, List[str]] = {}
        self._last_access = None
        self._rv401_cache: Dict[int, List] = {}

    # -- hooks ---------------------------------------------------------------
    def _rank_regions(self, loop, partition, region_summary):
        out = super()._rank_regions(loop, partition, region_summary)
        self._last_access = (out, region_summary)
        return out

    def _par_region_inner(self, region):
        self._last_access = None
        entry = {k: v.copy() for k, v in self._valid.items()}
        super()._par_region_inner(region)
        self._verify(region, entry)

    # -- verification --------------------------------------------------------
    def _verify(self, region, entry) -> None:
        rid = region.region_id
        diags: List[Diagnostic] = []
        notes: List[str] = []
        self.findings[rid] = diags
        self.region_notes[rid] = notes
        plan_e = self.emitted.get(rid)
        if plan_e is None or self._last_access is None:
            return  # nprocs == 1, or a region the compile never emitted
        per_rank, region_summary = self._last_access
        loop_var = region.loop.var

        for name in sorted(plan_e.arrays):
            aplan_e = plan_e.arrays[name]
            size = self.env.sizes[name]
            ranks_info = per_rank.get(name, {})
            valid = entry.get(name)
            if valid is None:
                continue
            cls = region_summary.arrays[name].classification
            scattered = {
                r: _transfers_mask(ts, size)
                for r, ts in aplan_e.scatter.items()
            }
            collected = {
                r: _transfers_mask(ts, size)
                for r, ts in aplan_e.collect.items()
            }

            # RV101: remote reads must be scattered or still valid.
            if cls in (READ_ONLY, READ_WRITE):
                for r in sorted(ranks_info):
                    info = ranks_info[r]
                    if r == 0 or not info.read_mask.any():
                        continue
                    held = valid[r].copy()
                    if r in scattered:
                        held |= scattered[r]
                    uncovered = info.read_mask & ~held
                    if uncovered.any():
                        diags.append(Diagnostic(
                            code="RV101", region_id=rid, array=name, rank=r,
                            loop_var=loop_var,
                            detail=(
                                f"{int(uncovered.sum())} element(s) read "
                                "remotely but neither scattered nor valid"
                            ),
                        ))

            # RV102: observable writes must be collected.
            if cls in (WRITE_FIRST, READ_WRITE) and not (
                self.use_avpg and not self.avpg.reads_after(rid, name)
            ):
                for r in sorted(ranks_info):
                    info = ranks_info[r]
                    if r == 0 or not info.write_mask.any():
                        continue
                    missed = info.write_mask & ~collected.get(
                        r, np.zeros(size, dtype=bool)
                    )
                    if missed.any():
                        diags.append(Diagnostic(
                            code="RV102", region_id=rid, array=name, rank=r,
                            loop_var=loop_var,
                            detail=(
                                f"{int(missed.sum())} written element(s) "
                                "observable after the region but never "
                                "collected"
                            ),
                        ))

            # RV201/RV202: the §5.6 bound check on the emitted collects.
            ranks = sorted(collected)
            for i, r1 in enumerate(ranks):
                for r2 in ranks[i + 1:]:
                    overlap = collected[r1] & collected[r2]
                    if overlap.any():
                        diags.append(Diagnostic(
                            code="RV201", region_id=rid, array=name, rank=r1,
                            loop_var=loop_var,
                            detail=(
                                f"{aplan_e.collect_grain} collect regions of "
                                f"ranks {r1} and {r2} overlap on "
                                f"{int(overlap.sum())} element(s)"
                            ),
                        ))
            for r in ranks:
                info = ranks_info.get(r)
                if info is None:
                    continue
                extra = collected[r] & ~info.write_mask
                held = valid[r] | info.write_mask
                if r in scattered:
                    held = held | scattered[r]
                stale = extra & ~held
                if stale.any():
                    diags.append(Diagnostic(
                        code="RV202", region_id=rid, array=name, rank=r,
                        loop_var=loop_var,
                        detail=(
                            f"{aplan_e.collect_grain} collect would send "
                            f"{int(stale.sum())} stale element(s)"
                        ),
                    ))

        # RV301/RV302: transfers outside a fence epoch.
        if any(a.scatter for a in plan_e.arrays.values()) and not (
            plan_e.scatter_fence
        ):
            diags.append(Diagnostic(
                code="RV301", region_id=rid, loop_var=loop_var,
                detail="scatter puts are not closed by a fence epoch",
            ))
        if any(a.collect for a in plan_e.arrays.values()) and not (
            plan_e.collect_fence
        ):
            diags.append(Diagnostic(
                code="RV302", region_id=rid, loop_var=loop_var,
                detail="collect puts are not closed by a fence epoch",
            ))

        # RV401: partition legality (state-independent; cached per region).
        if rid not in self._rv401_cache:
            self._rv401_cache[rid] = self._check_partition(region, notes)
        diags.extend(self._rv401_cache[rid])
        diags.sort(key=_diag_sort_key)

    def _check_partition(self, region, notes: List[str]) -> List[Diagnostic]:
        """RV401: a flow dependence carried by the distributed dimension.

        Re-derives accesses iteration-by-iteration along the distributed
        dimension (serial order) and records, per element, the first
        iteration writing it; a later iteration *reading* that element
        from a different rank would — under the scatter/compute/collect
        model where every rank works on its pre-region copy — observe
        the stale pre-region value instead of the freshly written one.
        Anti-dependences (read before write in serial order) are legal
        under that model and do not fire.
        """
        rid = region.region_id
        partition = region.partition
        loop = region.loop
        dctx = partition.pctx
        if dctx.count > _PER_ITER_CAP:
            notes.append(
                f"region {rid}: {dctx.count} iterations exceed the exact "
                "re-derivation cap; RV401 analysis skipped"
            )
            return []
        stmts, base = self._split_frame(loop, partition)
        owner = np.full(dctx.count, -1, dtype=int)
        for r in range(self.nprocs):
            rctx = partition.rank_ctx(r)
            if rctx is None:
                continue
            for v in rctx.values():
                owner[(v - dctx.lo) // dctx.step] = r

        first_write: Dict[str, np.ndarray] = {}
        hits: Dict[str, Set] = {}
        for t, v in enumerate(dctx.values()):
            try:
                summary = summarize_statements(
                    stmts, self.symtab, tuple(base), {dctx.var: v}
                )
            except Exception:
                notes.append(
                    f"region {rid}: accesses not summarizable at "
                    f"{dctx.var}={v}; RV401 analysis skipped"
                )
                return []
            # Reads first: a same-iteration write does not feed them.
            for name, arr in summary.arrays.items():
                if name not in self.env.sizes:
                    continue
                size = self.env.sizes[name]
                if any(not l.exact for l in arr.reads) or any(
                    not l.exact for l in arr.writes
                ):
                    notes.append(
                        f"region {rid}: {name}: widened access info; "
                        "RV401 analysis skipped"
                    )
                    return []
                fw = first_write.get(name)
                if fw is not None and arr.reads:
                    rmask = np.zeros(size, dtype=bool)
                    for l in arr.reads:
                        rmask |= l.mask(size)
                    dep = rmask & (fw >= 0)
                    for e in np.flatnonzero(dep):
                        if owner[fw[e]] != owner[t]:
                            hits.setdefault(name, set()).add(
                                (int(owner[fw[e]]), int(owner[t]))
                            )
            for name, arr in summary.arrays.items():
                if name not in self.env.sizes or not arr.writes:
                    continue
                size = self.env.sizes[name]
                fw = first_write.setdefault(
                    name, np.full(size, -1, dtype=int)
                )
                wmask = np.zeros(size, dtype=bool)
                for l in arr.writes:
                    wmask |= l.mask(size)
                fw[wmask & (fw < 0)] = t

        diags = []
        for name in sorted(hits):
            pairs = sorted(hits[name])
            w, r = pairs[0]
            diags.append(Diagnostic(
                code="RV401", region_id=rid, array=name,
                loop_var=region.loop.var,
                detail=(
                    f"partition {partition.spec!r} places a flow dependence "
                    f"across ranks (e.g. rank {w} writes what rank {r} "
                    f"reads; {len(pairs)} rank pair(s))"
                ),
            ))
        return diags


def check_program(program) -> CheckReport:
    """Statically verify a compiled program's emitted transfer plans."""
    options = program.options
    regions = build_regions(program.unit.body)
    env = generate_environment(regions, program.unit.symtab)
    planner = _VerifyingPlanner(
        symtab=program.unit.symtab,
        regions=regions,
        env=env,
        nprocs=options.nprocs,
        grain=options.granularity,
        partition_strategy=options.partition,
        live_out=options.live_out,
        use_avpg=options.avpg,
        grain_map=dict(options.grain_map or ()),
        partition_map=dict(options.partition_map or ()),
        emitted=program.plans,
    )
    planner.plan()
    report = CheckReport(
        nprocs=options.nprocs,
        granularity=options.granularity,
        partition=options.partition,
    )
    for rid in sorted(planner.findings):
        report.diagnostics.extend(planner.findings[rid])
    for rid in sorted(planner.region_notes):
        report.notes.extend(planner.region_notes[rid])
    return report


def check_source(
    source: str,
    nprocs: int = 4,
    granularity: str = "fine",
    partition: str = "auto",
    grain_map=None,
    partition_map=None,
    avpg: bool = True,
    live_out=None,
    cache_dir: Optional[str] = None,
) -> CheckReport:
    """Compile ``source`` and verify it, with content-address caching.

    The cache key derivation mirrors docs/AUTOTUNE.md's TunePlan keys:
    option fields join the key only when set, so adding knobs never
    moves existing cache slots (docs/CHECK.md).
    """
    key = None
    if cache_dir is not None:
        config = {
            "kind": "checkreport",
            "check_version": CHECK_SCHEMA_VERSION,
            "source_sha256": hashlib.sha256(
                source.encode("utf-8")
            ).hexdigest(),
            "nprocs": nprocs,
            "granularity": granularity,
        }
        if partition != "auto":
            config["partition"] = partition
        if grain_map:
            config["grain_map"] = {
                str(rid): g for rid, g in dict(grain_map).items()
            }
        if partition_map:
            config["partition_map"] = {
                str(rid): s for rid, s in dict(partition_map).items()
            }
        if not avpg:
            config["avpg"] = False
        if live_out is not None:
            config["live_out"] = sorted(live_out)
        key = job_key(config)
        row = load_row(cache_dir, key)
        if row is not None:
            report = CheckReport.from_jsonable(row)
            report.cached = True
            return report
    program = compile_source(source, options=CompileOptions(
        nprocs=nprocs,
        granularity=granularity,
        partition=partition,
        grain_map=grain_map,
        partition_map=partition_map,
        avpg=avpg,
        live_out=live_out,
    ))
    report = check_program(program)
    if cache_dir is not None:
        store_row(cache_dir, key, report.to_jsonable())
    return report


def bad_region_map(program) -> Dict[int, List[str]]:
    """region_id -> sorted diagnostic codes (the autotuner's prune input)."""
    out: Dict[int, List[str]] = {}
    for d in check_program(program).diagnostics:
        out.setdefault(d.region_id, [])
        if d.code not in out[d.region_id]:
            out[d.region_id].append(d.code)
    for codes in out.values():
        codes.sort()
    return out
