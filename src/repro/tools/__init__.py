"""User-facing tools built on the library: the global granularity
auto-tuner (the paper's §5.6 future work), the trace-driven per-region
tuner, the trace-calibrated cost model (docs/AUTOTUNE.md), and the
command-line driver."""

from repro.tools.autotune import GranularityReport, choose_granularity
from repro.tools.calibrate import CalibratedModel, calibrate
from repro.tools.tuneplan import RegionDecision, TunePlan, tune_per_region

__all__ = [
    "GranularityReport",
    "choose_granularity",
    "CalibratedModel",
    "calibrate",
    "RegionDecision",
    "TunePlan",
    "tune_per_region",
]
