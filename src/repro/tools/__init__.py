"""User-facing tools built on the library: the granularity auto-tuner
(the paper's §5.6 future work) and the command-line driver."""

from repro.tools.autotune import GranularityReport, choose_granularity

__all__ = ["GranularityReport", "choose_granularity"]
