"""Trace-calibrated constants for the analytic cost model (docs/AUTOTUNE.md).

The per-region tuner's analytic tier prices §5.6 transfer plans against
static :class:`~repro.vbus.params.ClusterParams` — and PR 8 measured
that pricing to be ~2-3x optimistic for strided cyclic descriptors on
Ethernet (the model charges one message where the simulator charges
per-element programmed I/O), which forces whole-program flip probes.
This module fits those constants to *measured* data instead, the same
way APEnet+ and the Cluster Computing White Paper validate link models
against microbenchmarks:

1. run a small deterministic microbenchmark suite on the target backend
   (unit-stride DMA/PIO, strided descriptors, broadcast fan-out, and the
   frame/switch legs exercised by every transfer), traced;
2. attribute each run per region with :func:`repro.obs.region_rollup`
   and extract the matching :func:`repro.tools.tuneplan.region_features`;
3. least-squares fit one coefficient per feature — per-message latency,
   per-byte bandwidth, strided-descriptor penalty, broadcast fan-out —
   clamped non-negative, per backend.

The result is a :class:`CalibratedModel`, serialized as a versioned JSON
artifact and content-address-cached through :mod:`repro.sweep.cache`
(per-cell rows *and* the finished artifact, so warm calls touch no
simulator).  The simulator is deterministic, so the fit is too: two cold
fits of the same (backend, nprocs, suite) produce byte-identical
artifacts.

Calibration never changes *what* a plan computes — granularity and
partition strategy are results-invariant — only how the tuner prices
candidates, and therefore how few probes it needs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.sweep.cache import (
    DEFAULT_CACHE_DIR,
    canonical_json,
    job_key,
    load_row,
    store_row,
)
from repro.tools.tuneplan import FEATURES

__all__ = [
    "SUITE_VERSION",
    "CalibratedModel",
    "calibrate",
    "calibration_cache_key",
    "suite_cells",
]

#: Bump when the microbenchmark suite changes: a different suite fits
#: different constants, so it must produce a different artifact (and
#: different cache keys) than the old one.
SUITE_VERSION = 1

#: Fitted coefficient per :data:`~repro.tools.tuneplan.FEATURES` entry,
#: in fit order.
CONSTANTS = (
    "per_message_s",
    "per_byte_s",
    "strided_per_element_s",
    "fanout_per_dest_s",
)


@dataclass(frozen=True)
class CalibratedModel:
    """Trace-fitted constants of the linear per-region cost model.

    ``elapsed = per_message_s * messages + per_byte_s * bytes
    + strided_per_element_s * strided_elements
    + fanout_per_dest_s * fanout_dests`` over the features of
    :func:`repro.tools.tuneplan.region_features`.  Coefficients are
    non-negative; a feature the backend's suite never exercises (e.g.
    broadcast fan-out on Ethernet, which has no fused bcast) fits to 0.
    """

    backend: str
    nprocs: int
    per_message_s: float
    per_byte_s: float
    strided_per_element_s: float
    fanout_per_dest_s: float
    #: Fit provenance: sample count and RMS residual of the fit.
    samples: int = 0
    residual_s: float = 0.0
    suite: int = SUITE_VERSION
    #: True when this model came from the on-disk artifact cache.
    cached: bool = field(default=False, compare=False)

    def constants(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in CONSTANTS}

    def to_jsonable(self) -> Dict:
        return {
            "kind": "calibration",
            "version": 1,
            "backend": self.backend,
            "nprocs": self.nprocs,
            "suite": self.suite,
            "constants": self.constants(),
            "fit": {"samples": self.samples, "residual_s": self.residual_s},
        }

    @classmethod
    def from_jsonable(cls, doc: Dict) -> "CalibratedModel":
        if not isinstance(doc, dict) or doc.get("kind") != "calibration":
            raise ValueError(
                f"not a calibration document (kind={doc.get('kind') if isinstance(doc, dict) else doc!r})"
            )
        constants = doc.get("constants", {})
        missing = [name for name in CONSTANTS if name not in constants]
        if missing:
            raise ValueError(f"calibration constants missing {missing}")
        fit = doc.get("fit", {})
        return cls(
            backend=doc["backend"],
            nprocs=int(doc["nprocs"]),
            suite=int(doc.get("suite", SUITE_VERSION)),
            samples=int(fit.get("samples", 0)),
            residual_s=float(fit.get("residual_s", 0.0)),
            **{name: float(constants[name]) for name in CONSTANTS},
        )

    def sha256(self) -> str:
        """Content hash of the canonical artifact (plan-cache keying)."""
        return hashlib.sha256(
            canonical_json(self.to_jsonable()).encode("utf-8")
        ).hexdigest()

    def save(self, path: str) -> None:
        """Write the canonical JSON artifact (byte-deterministic)."""
        with open(path, "w") as fh:
            fh.write(canonical_json(self.to_jsonable()))
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "CalibratedModel":
        with open(path) as fh:
            return cls.from_jsonable(json.load(fh))

    def summary(self) -> str:
        mbps = 1.0 / self.per_byte_s / 1e6 if self.per_byte_s > 0 else 0.0
        lines = [
            f"calibrated model ({self.backend}, np={self.nprocs}, "
            f"suite v{self.suite}):",
            f"  per-message latency : {self.per_message_s * 1e6:10.3f} us",
            f"  per-byte bandwidth  : {self.per_byte_s * 1e9:10.3f} ns/B"
            + (f"  (~{mbps:.1f} MB/s)" if mbps else ""),
            f"  strided penalty     : "
            f"{self.strided_per_element_s * 1e6:10.3f} us/element",
            f"  bcast fan-out       : "
            f"{self.fanout_per_dest_s * 1e6:10.3f} us/dest",
            f"  fit: {self.samples} samples, "
            f"rms residual {self.residual_s * 1e6:.3f} us",
        ]
        if self.cached:
            lines.append("  (loaded from calibration cache)")
        return "\n".join(lines)


def suite_cells() -> Tuple[Tuple[str, str, str, Optional[str]], ...]:
    """The microbenchmark suite: ``(name, source, grain, partition)``.

    Each cell isolates one pricing regime of the backends: unit-stride
    bulk transfers at two sizes (separates per-message latency from
    per-byte bandwidth), strided collects at fine vs coarse grain (PIO
    per-element vs redundant contiguous bytes), a dense multi-phase
    stride, a matrix multiply whose B-operand scatter fuses into the
    V-Bus broadcast (fan-out), and triangular/stencil nests under forced
    block and cyclic partitioning — the strided-cyclic-descriptor case
    the static model is optimistic about.  Sizes are small enough that
    the whole suite simulates in a few seconds, and every run is
    deterministic, which is what makes the fit reproducible.
    """
    from repro.workloads import mm, synthetic

    return (
        ("copy-small", synthetic.copy_kernel(256), "fine", None),
        ("copy-large", synthetic.copy_kernel(4096), "fine", None),
        ("stride-fine", synthetic.stride_kernel(192, 4), "fine", None),
        ("stride-coarse", synthetic.stride_kernel(192, 4), "coarse", None),
        ("phase-fine", synthetic.phased_stride_kernel(96, 3), "fine", None),
        ("bcast-mm", mm.source(24), "fine", None),
        ("tri-cyclic", synthetic.triangular_kernel(48), "fine", "cyclic"),
        ("tri-block", synthetic.triangular_kernel(48), "fine", "block"),
        (
            "pxover-cyclic",
            synthetic.partition_crossover_kernel(16),
            "fine",
            "cyclic",
        ),
    )


def calibration_cache_key(backend: str, nprocs: int) -> str:
    """Content-address of one finished calibration artifact."""
    return job_key(
        {
            "kind": "calibration",
            "backend": backend,
            "nprocs": nprocs,
            "suite": SUITE_VERSION,
        }
    )


def _cell_config(
    name: str, backend: str, nprocs: int, grain: str, partition: Optional[str]
) -> Dict:
    cfg = {
        "kind": "calibration-cell",
        "suite": SUITE_VERSION,
        "cell": name,
        "backend": backend,
        "nprocs": nprocs,
        "granularity": grain,
    }
    if partition is not None:
        cfg["partition"] = partition
    return cfg


def _measure_cell(
    source: str, grain: str, partition: Optional[str], nprocs: int, params
) -> List[Dict]:
    """One traced timing-mode run -> per-region ``features``/``measured``.

    ``measured_s`` is the region's busiest-rank MPI time
    (``rollup.mpi_max_s``) — the same quantity the tuner's ``comm``
    metric profiles, so the fitted model predicts exactly what it will
    later be asked to rank.
    """
    from repro.compiler.pipeline import compile_source
    from repro.obs import region_rollup
    from repro.runtime.executor import run_program
    from repro.tools.tuneplan import region_features

    kw = {} if partition is None else {"partition": partition}
    prog = compile_source(source, nprocs=nprocs, granularity=grain, **kw)
    report = run_program(
        prog, cluster_params=params, execute=False, trace=True
    )
    rollups = region_rollup(report.trace)
    rows: List[Dict] = []
    for rid in sorted(prog.plans):
        roll = rollups.get(rid)
        if roll is None:
            continue
        feats = region_features(prog.plans[rid], params)
        if not any(feats[f] > 0.0 for f in FEATURES):
            continue  # a comm-free region carries no information
        rows.append(
            {
                "region_id": rid,
                "features": {f: feats[f] for f in FEATURES},
                "measured_s": roll.mpi_max_s,
            }
        )
    return rows


def _fit(samples: List[Dict]) -> Tuple[Dict[str, float], float]:
    """Non-negative least squares over the suite's per-region samples.

    Plain ``lstsq`` with iterative clamping: fit, zero out the most
    negative coefficient's column, refit — at most once per feature, so
    the loop is bounded and (with numpy's deterministic SVD) the result
    is a pure function of the samples.  All-zero columns (a feature this
    backend never exercises) fit to 0 outright.
    """
    import numpy as np

    X = np.array(
        [[s["features"][f] for f in FEATURES] for s in samples], dtype=float
    )
    y = np.array([s["measured_s"] for s in samples], dtype=float)
    active = [i for i in range(len(FEATURES)) if np.any(X[:, i] != 0.0)]
    coef = np.zeros(len(FEATURES))
    while active:
        sol, *_ = np.linalg.lstsq(X[:, active], y, rcond=None)
        if np.all(sol >= 0.0):
            for i, c in zip(active, sol):
                coef[i] = c
            break
        worst = active[int(np.argmin(sol))]
        active = [i for i in active if i != worst]
    residual = float(np.sqrt(np.mean((X @ coef - y) ** 2))) if len(y) else 0.0
    return (
        {name: float(coef[i]) for i, name in enumerate(CONSTANTS)},
        residual,
    )


def calibrate(
    backend: str = "vbus",
    nprocs: int = 4,
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
) -> CalibratedModel:
    """Fit a :class:`CalibratedModel` for one backend at one rank count.

    Per-cell traced runs and the finished artifact are both
    content-address-cached under ``cache_dir`` (the sweep cache); a warm
    call returns the cached artifact byte-identically without touching
    the simulator.  ``cache_dir=None`` disables caching.
    """
    from repro.sweep.runner import BACKENDS
    from repro.vbus import params as P

    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; use one of {sorted(BACKENDS)}"
        )
    if nprocs < 2:
        raise ValueError("calibration needs nprocs >= 2 (no comm otherwise)")

    key = calibration_cache_key(backend, nprocs)
    if cache_dir is not None:
        row = load_row(cache_dir, key)
        if row is not None:
            try:
                return replace(CalibratedModel.from_jsonable(row), cached=True)
            except (KeyError, TypeError, ValueError):
                pass  # a stale/corrupt artifact is a miss; refit below

    params = P.cluster_for(nprocs, getattr(P, BACKENDS[backend]))
    samples: List[Dict] = []
    for name, source, grain, partition in suite_cells():
        cell_key = None
        rows = None
        if cache_dir is not None:
            cell_key = job_key(
                _cell_config(name, backend, nprocs, grain, partition)
            )
            cached = load_row(cache_dir, cell_key)
            if isinstance(cached, dict):
                rows = cached.get("regions")
        if rows is None:
            rows = _measure_cell(source, grain, partition, nprocs, params)
            if cache_dir is not None:
                store_row(cache_dir, cell_key, {"regions": rows})
        samples.extend(rows)
    if not samples:
        raise RuntimeError(
            f"calibration suite produced no samples on {backend!r}"
        )

    constants, residual = _fit(samples)
    model = CalibratedModel(
        backend=backend,
        nprocs=nprocs,
        samples=len(samples),
        residual_s=residual,
        **constants,
    )
    if cache_dir is not None:
        store_row(cache_dir, key, model.to_jsonable())
    return model
