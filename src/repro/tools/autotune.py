"""Automatic communication-granularity selection.

The paper leaves the fine/middle/coarse choice to the user: "For now, it
is up to the user that selects the optimal granularity to minimize the
communication time.  The profiling tools recently provided in Polaris
would be useful to guide the user" (§5.6).  This module is that guide,
automated: it compiles the program at every granularity, profiles each
variant in timing mode (the full communication schedule with analytic
compute costs, so even 1024² problems profile in seconds), and selects
the granularity that minimizes the chosen communication metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.compiler.pipeline import CompileOptions, compile_source
from repro.compiler.postpass.granularity import GRAINS
from repro.runtime.executor import run_program
from repro.runtime.program import SpmdProgram
from repro.runtime.report import RunReport

__all__ = ["GranularityReport", "choose_granularity"]

#: Metrics the tuner can optimize.
METRICS = ("total", "comm", "comm_cpu")


@dataclass
class GranularityReport:
    """Outcome of one auto-tuning session."""

    best: str
    metric: str
    #: grain -> metric value (seconds).
    values: Dict[str, float] = field(default_factory=dict)
    #: grain -> full run report (timing mode).
    reports: Dict[str, RunReport] = field(default_factory=dict)
    #: The winning compiled program, ready to run.
    program: Optional[SpmdProgram] = None

    def summary(self) -> str:
        lines = [f"granularity auto-tune (metric: {self.metric}):"]
        for grain in GRAINS:
            star = " <- selected" if grain == self.best else ""
            lines.append(
                f"  {grain:7s} {self.values[grain] * 1e3:10.3f} ms{star}"
            )
        return "\n".join(lines)


def _metric_value(report: RunReport, metric: str) -> float:
    if metric == "total":
        return report.total_s
    if metric == "comm":
        return report.comm_max_s
    return report.comm_cpu_max_s


def choose_granularity(
    source: str,
    nprocs: int = 4,
    metric: str = "comm",
    options: Optional[CompileOptions] = None,
    cluster_params=None,
) -> GranularityReport:
    """Profile all three granularities and pick the best.

    ``metric`` is one of ``"total"`` (simulated wall-clock), ``"comm"``
    (busiest rank's elapsed MPI time), or ``"comm_cpu"`` (busiest rank's
    CPU time driving communication).  Returns a
    :class:`GranularityReport` whose ``program`` field holds the winning
    compiled program.
    """
    if metric not in METRICS:
        raise ValueError(f"metric must be one of {METRICS}, got {metric!r}")
    out = GranularityReport(best="", metric=metric)
    programs: Dict[str, SpmdProgram] = {}
    for grain in GRAINS:
        if options is not None:
            from dataclasses import replace

            opts = replace(options, granularity=grain, nprocs=nprocs)
            prog = compile_source(source, options=opts)
        else:
            prog = compile_source(source, nprocs=nprocs, granularity=grain)
        report = run_program(
            prog, cluster_params=cluster_params, execute=False
        )
        programs[grain] = prog
        out.reports[grain] = report
        out.values[grain] = _metric_value(report, metric)
    out.best = min(GRAINS, key=lambda g: (out.values[g], GRAINS.index(g)))
    out.program = programs[out.best]
    return out
