"""Automatic communication-granularity selection.

The paper leaves the fine/middle/coarse choice to the user: "For now, it
is up to the user that selects the optimal granularity to minimize the
communication time.  The profiling tools recently provided in Polaris
would be useful to guide the user" (§5.6).  This module is that guide,
automated: it compiles the program at every granularity, profiles each
variant in timing mode (the full communication schedule with analytic
compute costs, so even 1024² problems profile in seconds), and selects
the granularity that minimizes the chosen communication metric.

Near-ties go to the plan that moves **fewer messages**: when two grains
sit within ``epsilon`` (relative) of each other, the measured gap is
inside the model's noise floor, and fewer transfers means less per-rank
software overhead on any real machine.  The winning margin is recorded
on the report either way.

For *per-region* tuning — one grain per parallel region instead of one
global winner — see :mod:`repro.tools.tuneplan` (docs/AUTOTUNE.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.compiler.pipeline import CompileOptions, compile_source
from repro.compiler.postpass.granularity import GRAINS
from repro.runtime.executor import run_program
from repro.runtime.program import SpmdProgram
from repro.runtime.report import RunReport

__all__ = ["GranularityReport", "choose_granularity", "METRICS"]

#: Metrics the tuner can optimize.
METRICS = ("total", "comm", "comm_cpu")

#: Relative gap under which two grains count as tied (see module doc).
DEFAULT_EPSILON = 0.05


@dataclass
class GranularityReport:
    """Outcome of one auto-tuning session."""

    best: str
    metric: str
    #: grain -> metric value (seconds).
    values: Dict[str, float] = field(default_factory=dict)
    #: grain -> full run report (timing mode).
    reports: Dict[str, RunReport] = field(default_factory=dict)
    #: The winning compiled program, ready to run.
    program: Optional[SpmdProgram] = None
    #: grain -> total planned messages (the tie-break key).
    messages: Dict[str, int] = field(default_factory=dict)
    #: Relative gap between the two best metric values.
    margin: float = 0.0
    #: The near-tie threshold the selection used.
    epsilon: float = DEFAULT_EPSILON
    #: ``"messages"`` when the winner came from the fewer-transfers
    #: tie-break rather than the raw metric; ``None`` otherwise.
    tie_break: Optional[str] = None

    def summary(self) -> str:
        lines = [f"granularity auto-tune (metric: {self.metric}):"]
        for grain in GRAINS:
            star = " <- selected" if grain == self.best else ""
            msgs = (
                f" ({self.messages[grain]} msgs)"
                if grain in self.messages
                else ""
            )
            lines.append(
                f"  {grain:7s} {self.values[grain] * 1e3:10.3f} ms"
                f"{msgs}{star}"
            )
        if self.tie_break:
            lines.append(
                f"  near-tie (margin {self.margin * 100:.1f}% < "
                f"{self.epsilon * 100:.0f}%): broken by fewer {self.tie_break}"
            )
        else:
            lines.append(f"  margin: {self.margin * 100:.1f}%")
        return "\n".join(lines)


def _metric_value(report: RunReport, metric: str) -> float:
    if metric == "total":
        return report.total_s
    if metric == "comm":
        return report.comm_max_s
    return report.comm_cpu_max_s


def choose_granularity(
    source: str,
    nprocs: int = 4,
    metric: str = "comm",
    options: Optional[CompileOptions] = None,
    cluster_params=None,
    epsilon: float = DEFAULT_EPSILON,
    faults=None,
) -> GranularityReport:
    """Profile all three granularities and pick the best.

    ``metric`` is one of ``"total"`` (simulated wall-clock), ``"comm"``
    (busiest rank's elapsed MPI time), or ``"comm_cpu"`` (busiest rank's
    CPU time driving communication).  Grains within ``epsilon``
    (relative) of the leader count as tied and the tie goes to the plan
    with fewer messages, then to the finer grain.  Returns a
    :class:`GranularityReport` whose ``program`` field holds the winning
    compiled program.
    """
    if metric not in METRICS:
        raise ValueError(f"metric must be one of {METRICS}, got {metric!r}")
    if not 0.0 <= epsilon < 1.0:
        raise ValueError(f"epsilon must be in [0, 1), got {epsilon!r}")
    out = GranularityReport(best="", metric=metric, epsilon=epsilon)
    programs: Dict[str, SpmdProgram] = {}
    for grain in GRAINS:
        if options is not None:
            from dataclasses import replace

            opts = replace(
                options, granularity=grain, nprocs=nprocs, grain_map=None
            )
            prog = compile_source(source, options=opts)
        else:
            prog = compile_source(source, nprocs=nprocs, granularity=grain)
        report = run_program(
            prog, cluster_params=cluster_params, execute=False, faults=faults
        )
        programs[grain] = prog
        out.reports[grain] = report
        out.values[grain] = _metric_value(report, metric)
        out.messages[grain] = sum(
            p.total_messages() for p in prog.plans.values()
        )

    by_value = sorted(GRAINS, key=lambda g: (out.values[g], GRAINS.index(g)))
    leader_val = out.values[by_value[0]]
    near = [
        g
        for g in GRAINS
        if out.values[g] <= 0.0
        or (out.values[g] - leader_val) / out.values[g] < epsilon
    ]
    if len(near) > 1:
        out.best = min(
            near, key=lambda g: (out.messages[g], GRAINS.index(g))
        )
        out.tie_break = "messages"
    else:
        out.best = by_value[0]
    ordered = sorted(out.values[g] for g in GRAINS)
    if len(ordered) > 1 and ordered[1] > 0.0:
        out.margin = (ordered[1] - ordered[0]) / ordered[1]
    out.program = programs[out.best]
    return out
