"""Command-line driver: compile, run, and auto-tune Fortran programs on
the simulated V-Bus cluster.

Usage::

    python -m repro compile PROG.f [--nprocs 4] [--granularity fine]
                                   [--show fortran|plan|log|avpg ...]
    python -m repro run     PROG.f [--nprocs 4] [--granularity fine]
                                   [--backend vbus] [--timing]
                                   [--arrays A,B] [--tune-plan PLAN.json]
                                   [--sanitize]
    python -m repro check   PROG.f [--nprocs 4] [--granularity fine]
                                   [--cache-dir DIR] [--no-cache]
    python -m repro trace   PROG.f [--nprocs 4] [--backend vbus]
                                   [--timing] [--out PREFIX]
    python -m repro autotune PROG.f [--nprocs 4] [--metric comm]
                                    [--backend vbus] [--per-region]
                                    [--plan-out PLAN.json]
                                    [--calibration CAL.json]
    python -m repro calibrate [--backend gige] [--nprocs 4]
                              [-o CAL.json] [--cache-dir DIR] [--no-cache]
    python -m repro sweep   GRID.json [--jobs N] [-o OUT.jsonl]
                                      [--cache-dir DIR] [--no-cache]

``PROG.f`` may also be a workload spec like ``MM-256`` or ``SWIM-64x2``
(the grammar of docs/SWEEP.md) when no such file exists.

``trace`` runs with the observability layer attached and writes
``PREFIX.trace.json`` (Chrome ``trace_event`` JSON — load it at
https://ui.perfetto.dev) plus ``PREFIX.metrics.json`` /
``PREFIX.metrics.csv``; the schema is documented in
``docs/TRACE_FORMAT.md``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.compiler.pipeline import CompileOptions, compile_source
from repro.compiler.postpass.granularity import GRAINS
from repro.compiler.postpass.partition import PartitionError
from repro.faults.plan import FaultPlan
from repro.mpi2.exceptions import MpiFaultError
from repro.obs.export import (
    timeline_summary,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_json,
)
from repro.runtime.executor import run_program, run_sequential
from repro.sweep.runner import BACKENDS
from repro.tools.autotune import METRICS, choose_granularity

__all__ = ["main"]


class _CliError(Exception):
    """A user-facing CLI failure: printed to stderr, exit status 2.

    Raised instead of letting artifact-loading errors (missing or
    malformed JSON plans) escape as tracebacks — the same discipline
    ``PartitionError`` already gets in :func:`main`.
    """


def _load_artifact(loader, path: str, what: str):
    """Load a JSON artifact, turning I/O and schema errors into
    :class:`_CliError` (``FileNotFoundError`` is an ``OSError``;
    ``json.JSONDecodeError`` is a ``ValueError``)."""
    try:
        return loader(path)
    except (OSError, ValueError) as exc:
        raise _CliError(f"{what}: cannot load {path!r}: {exc}")


def _partition_spec(value: str) -> str:
    """argparse type for --partition: auto or a concrete strategy spec."""
    if value == "auto":
        return value
    from repro.compiler.postpass.partition import parse_strategy

    try:
        parse_strategy(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return value


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "source",
        help="Fortran 77 source file, or a workload spec like MM-256",
    )
    p.add_argument("--nprocs", type=int, default=4, help="cluster size")
    p.add_argument(
        "--granularity",
        choices=GRAINS,
        default="fine",
        help="communication granularity (paper §5.6)",
    )
    p.add_argument(
        "--partition",
        type=_partition_spec,
        default="auto",
        metavar="SPEC",
        help="work partitioning strategy (paper §5.3): auto, block, "
        "cyclic, or block:D / cyclic:D to split dimension D of a "
        "perfect nest (docs/PARTITION.md)",
    )


def _add_backend(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default=None,
        help="interconnect preset (default: vbus; see docs/SWEEP.md)",
    )


def _add_faults(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--faults",
        default=None,
        metavar="PLAN.json",
        help="seeded fault plan to inject (schema: docs/FAULTS.md)",
    )


def _load_faults(args) -> Optional[FaultPlan]:
    if getattr(args, "faults", None) is None:
        return None
    return _load_artifact(FaultPlan.load, args.faults, "faults")


def _source_text(source: str) -> str:
    """The Fortran text of a file path or a workload spec string."""
    if os.path.exists(source):
        with open(source) as fh:
            return fh.read()
    from repro.workloads import is_spec, source_for

    if is_spec(source):
        return source_for(source)
    raise SystemExit(
        f"repro: {source!r} is neither a file nor a workload spec"
    )


def _cluster(args):
    """The resized ClusterParams for ``--backend``, or None (default)."""
    if getattr(args, "backend", None) is None:
        return None
    from repro.vbus import params as P

    return P.cluster_for(args.nprocs, getattr(P, BACKENDS[args.backend]))


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="V-Bus PC-cluster parallel programming environment "
        "(CLUSTER 2001 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    pc = sub.add_parser("compile", help="compile and show postpass products")
    _add_common(pc)
    pc.add_argument(
        "--show",
        nargs="+",
        choices=("fortran", "plan", "log", "avpg"),
        default=["plan"],
        help="which artifacts to print",
    )

    pr = sub.add_parser("run", help="compile and simulate a run")
    _add_common(pr)
    _add_backend(pr)
    pr.add_argument(
        "--timing",
        action="store_true",
        help="timing mode: skip numeric array work (for large problems)",
    )
    pr.add_argument(
        "--arrays",
        default="",
        help="comma-separated arrays to print after the run",
    )
    pr.add_argument(
        "--compare-sequential",
        action="store_true",
        help="also run sequentially and report the speedup",
    )
    pr.add_argument(
        "--tune-plan",
        default=None,
        metavar="PLAN.json",
        help="mixed-grain TunePlan artifact from "
        "'repro autotune --per-region --plan-out' (docs/AUTOTUNE.md); "
        "overrides --granularity",
    )
    pr.add_argument(
        "--sanitize",
        action="store_true",
        help="shadow-access sanitizer: cross-check every array access "
        "against shadow validity planes (value mode only; docs/CHECK.md); "
        "exits 2 on violations",
    )
    _add_faults(pr)

    pk = sub.add_parser(
        "check",
        help="static comm-plan verifier and race detector: exits 2 with "
        "RV-coded diagnostics, 0 when clean (docs/CHECK.md)",
    )
    _add_common(pk)
    pk.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="CheckReport cache location (default: .sweep-cache, "
        "shared with 'repro sweep')",
    )
    pk.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the CheckReport cache",
    )

    pt = sub.add_parser(
        "trace", help="run with tracing on and export timeline + metrics"
    )
    _add_common(pt)
    _add_backend(pt)
    pt.add_argument(
        "--timing",
        action="store_true",
        help="timing mode: skip numeric array work (for large problems)",
    )
    pt.add_argument(
        "--out",
        default=None,
        metavar="PREFIX",
        help="output file prefix (default: the source file's stem)",
    )
    pt.add_argument(
        "--top",
        type=int,
        default=3,
        help="span names per track in the text timeline",
    )
    _add_faults(pt)

    pa = sub.add_parser(
        "autotune",
        help="pick the best granularity — globally, or per region with "
        "a cached pruned search (docs/AUTOTUNE.md)",
    )
    _add_common(pa)
    _add_backend(pa)
    pa.add_argument("--metric", choices=METRICS, default="comm")
    pa.add_argument(
        "--epsilon",
        type=float,
        default=None,
        help="relative near-tie margin (default 0.05): closer gaps go "
        "to the plan with fewer messages (global mode) or to the "
        "profiled rollup (per-region mode)",
    )
    pa.add_argument(
        "--per-region",
        action="store_true",
        help="tune each parallel region separately (mixed-grain plan) "
        "instead of picking one global grain",
    )
    pa.add_argument(
        "--tune-partition",
        action="store_true",
        help="also tune the §5.3 partition strategy per region "
        "(joint grain x strategy search; needs --per-region; "
        "docs/PARTITION.md)",
    )
    pa.add_argument(
        "--plan-out",
        default=None,
        metavar="PLAN.json",
        help="write the per-region TunePlan artifact (reusable via "
        "'repro run --tune-plan' and the sweep engine)",
    )
    pa.add_argument(
        "--calibration",
        default=None,
        metavar="CAL.json",
        help="trace-calibrated cost-model artifact from 'repro calibrate' "
        "(needs --per-region; docs/AUTOTUNE.md)",
    )
    pa.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="per-region plan cache location (default: .sweep-cache, "
        "shared with 'repro sweep')",
    )
    pa.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the per-region plan cache",
    )
    _add_faults(pa)

    pb = sub.add_parser(
        "calibrate",
        help="fit the analytic cost model's constants to traced "
        "microbenchmarks on one backend (docs/AUTOTUNE.md)",
    )
    pb.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="vbus",
        help="interconnect preset to calibrate (see docs/SWEEP.md)",
    )
    pb.add_argument("--nprocs", type=int, default=4, help="cluster size")
    pb.add_argument(
        "-o",
        "--out",
        default=None,
        metavar="CAL.json",
        help="write the CalibratedModel artifact (reusable via "
        "'repro autotune --calibration' and the sweep calibration axis)",
    )
    pb.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="calibration cache location (default: .sweep-cache, "
        "shared with 'repro sweep')",
    )
    pb.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the calibration cache",
    )

    ps = sub.add_parser(
        "sweep",
        help="run a declarative experiment grid on a process pool "
        "with a content-addressed result cache (docs/SWEEP.md)",
    )
    ps.add_argument("grid", metavar="GRID.json", help="grid spec file")
    ps.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (1 = run inline; output is byte-identical "
        "either way)",
    )
    ps.add_argument(
        "-o",
        "--out",
        default=None,
        metavar="OUT.jsonl",
        help="JSONL output path (default: the grid file's stem + .jsonl)",
    )
    ps.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result cache location (default: .sweep-cache)",
    )
    ps.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the result cache",
    )
    ps.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the per-job progress lines on stderr",
    )
    return parser


def _cmd_compile(args) -> int:
    prog = compile_source(
        _source_text(args.source),
        nprocs=args.nprocs,
        granularity=args.granularity,
        partition=args.partition,
    )
    shows = set(args.show)
    if "log" in shows:
        print("== parallelization log ==")
        print(prog.parallelization_log)
        print()
    if "plan" in shows:
        print("== communication plan ==")
        print(prog.summary())
        print()
    if "avpg" in shows:
        print("== AVPG ==")
        cols = prog.avpg.arrays
        print("  node   " + " ".join(f"{a:>10s}" for a in cols))
        for node in prog.avpg.nodes:
            print(
                f"  {node.label:6s} "
                + " ".join(f"{node.attrs[a]:>10s}" for a in cols)
            )
        print()
    if "fortran" in shows:
        print(prog.fortran)
    return 0


def _cmd_run(args) -> int:
    source = _source_text(args.source)
    if args.sanitize and args.timing:
        print(
            "run: --sanitize needs value mode (timing runs never compute "
            "the array accesses the shadow planes track)",
            file=sys.stderr,
        )
        return 2
    if args.tune_plan is not None:
        from repro.tools.tuneplan import TunePlan

        plan = _load_artifact(TunePlan.load, args.tune_plan, "run")
        prog = compile_source(
            source,
            options=plan.options(
                nprocs=args.nprocs, partition=args.partition
            ),
        )
        if plan.nprocs != args.nprocs:
            print(
                f"(note: plan was tuned at nprocs={plan.nprocs}, "
                f"running at {args.nprocs})"
            )
    else:
        prog = compile_source(
            source,
            nprocs=args.nprocs,
            granularity=args.granularity,
            partition=args.partition,
        )
    report = run_program(
        prog,
        cluster_params=_cluster(args),
        execute=not args.timing,
        faults=_load_faults(args),
        sanitize=args.sanitize,
    )
    for line in report.stdout:
        print(line)
    print(report.summary())
    if args.sanitize:
        san = report.sanitizer or {}
        if san.get("clean", True):
            print("  sanitizer         : clean")
        else:
            for v in san.get("violations", ()):
                where = (
                    f" region {v['region_id']}" if "region_id" in v else ""
                )
                who = f" rank {v['rank']}" if "rank" in v else ""
                what = f" {v['array']}" if "array" in v else ""
                print(
                    f"  {v['code']}:{where}{who}{what}: {v['detail']}"
                    f" (x{v['count']})"
                )
            return 2
    if args.compare_sequential:
        seq = run_sequential(prog, execute=not args.timing)
        print(
            f"  sequential        : {seq.total_s * 1e3:10.3f} ms "
            f"(speedup {seq.total_s / report.total_s:.2f}x)"
        )
    if args.arrays and not args.timing:
        for name in args.arrays.split(","):
            name = name.strip().upper()
            if name not in report.memory.arrays:
                print(f"  (no array named {name})")
                continue
            print(f"{name} = {report.memory.shaped(name)}")
    return 0


def _cmd_check(args) -> int:
    from repro.sweep.cache import DEFAULT_CACHE_DIR
    from repro.tools.check import check_source

    cache_dir = None if args.no_cache else (
        args.cache_dir or DEFAULT_CACHE_DIR
    )
    report = check_source(
        _source_text(args.source),
        nprocs=args.nprocs,
        granularity=args.granularity,
        partition=args.partition,
        cache_dir=cache_dir,
    )
    print(report.summary())
    return 0 if report.clean else 2


def _cmd_trace(args) -> int:
    prog = compile_source(
        _source_text(args.source),
        nprocs=args.nprocs,
        granularity=args.granularity,
        partition=args.partition,
    )
    report = run_program(
        prog,
        cluster_params=_cluster(args),
        execute=not args.timing,
        trace=True,
        faults=_load_faults(args),
    )
    prefix = args.out or os.path.splitext(os.path.basename(args.source))[0]
    trace_path = f"{prefix}.trace.json"
    mjson_path = f"{prefix}.metrics.json"
    mcsv_path = f"{prefix}.metrics.csv"
    write_chrome_trace(report.trace, trace_path)
    write_metrics_json(report.metrics_rows, mjson_path)
    write_metrics_csv(report.metrics_rows, mcsv_path)
    for line in report.stdout:
        print(line)
    print(report.summary())
    print()
    print(timeline_summary(report.trace, top=args.top))
    print()
    print(f"wrote {trace_path} (open at https://ui.perfetto.dev)")
    print(f"wrote {mjson_path}, {mcsv_path}")
    return 0


def _cmd_sweep(args) -> int:
    from repro.sweep import SweepConfigError, load_grid, run_sweep
    from repro.sweep.cache import DEFAULT_CACHE_DIR
    from repro.sweep.engine import summary_table, write_jsonl

    try:
        spec = load_grid(args.grid)
        cache_dir = None if args.no_cache else (
            args.cache_dir or DEFAULT_CACHE_DIR
        )
        progress = None
        if not args.quiet:
            progress = lambda msg: print(f"sweep: {msg}", file=sys.stderr)
        result = run_sweep(
            spec, jobs=args.jobs, cache_dir=cache_dir, progress=progress
        )
    except SweepConfigError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    out = args.out or os.path.splitext(os.path.basename(args.grid))[0] + ".jsonl"
    write_jsonl(result.rows, out)
    print(summary_table(result))
    print(f"wrote {out}")
    # Per-job faults/errors are rows, not harness failures: the sweep
    # itself completed, so exit 0 and let callers inspect the statuses.
    return 0


def _cmd_calibrate(args) -> int:
    from repro.sweep.cache import DEFAULT_CACHE_DIR
    from repro.tools.calibrate import calibrate

    cache_dir = None if args.no_cache else (
        args.cache_dir or DEFAULT_CACHE_DIR
    )
    model = calibrate(
        backend=args.backend, nprocs=args.nprocs, cache_dir=cache_dir
    )
    print(model.summary())
    if args.out is not None:
        model.save(args.out)
        print(f"wrote {args.out}")
    return 0


def _cmd_autotune(args) -> int:
    src = _source_text(args.source)
    faults = _load_faults(args)
    if args.tune_partition and not args.per_region:
        print(
            "autotune: --tune-partition needs --per-region (the global "
            "tuner has no per-region strategy to carry)",
            file=sys.stderr,
        )
        return 2
    if args.calibration is not None and not args.per_region:
        print(
            "autotune: --calibration needs --per-region (the global "
            "tuner profiles every grain anyway, so fitted constants "
            "have nothing to decide)",
            file=sys.stderr,
        )
        return 2
    if args.per_region:
        from repro.sweep.cache import DEFAULT_CACHE_DIR
        from repro.tools.tuneplan import DEFAULT_EPSILON, tune_per_region

        calibration = None
        if args.calibration is not None:
            from repro.tools.calibrate import CalibratedModel

            calibration = _load_artifact(
                CalibratedModel.load, args.calibration, "autotune"
            )
        cache_dir = None if args.no_cache else (
            args.cache_dir or DEFAULT_CACHE_DIR
        )
        plan = tune_per_region(
            src,
            nprocs=args.nprocs,
            metric=args.metric,
            backend=args.backend or "vbus",
            epsilon=(
                args.epsilon if args.epsilon is not None else DEFAULT_EPSILON
            ),
            cache_dir=cache_dir,
            faults=faults,
            tune_partition=args.tune_partition,
            calibration=calibration,
        )
        print(plan.summary())
        if args.plan_out is not None:
            plan.save(args.plan_out)
            print(f"wrote {args.plan_out}")
        return 0
    from repro.tools.autotune import DEFAULT_EPSILON

    opts = CompileOptions(
        nprocs=args.nprocs,
        granularity=args.granularity,
        partition=args.partition,
    )
    rep = choose_granularity(
        src,
        nprocs=args.nprocs,
        metric=args.metric,
        options=opts,
        cluster_params=_cluster(args),
        epsilon=args.epsilon if args.epsilon is not None else DEFAULT_EPSILON,
        faults=faults,
    )
    print(rep.summary())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "compile":
            return _cmd_compile(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "check":
            return _cmd_check(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "calibrate":
            return _cmd_calibrate(args)
        return _cmd_autotune(args)
    except MpiFaultError as exc:
        print(f"fault: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 3
    except _CliError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    except PartitionError as exc:
        # Bad partition requests carry their region provenance
        # (docs/PARTITION.md) — surface them as a clean CLI error
        # instead of a traceback.
        print(f"partition: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
