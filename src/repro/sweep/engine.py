"""The sweep engine: expand, consult the cache, fan out, merge.

Execution strategy:

* **Serial** (``jobs <= 1``): cache misses run inline, in expansion
  order.
* **Parallel**: misses are submitted to a ``ProcessPoolExecutor``.  If a
  worker process dies (a crashing job takes the whole pool down —
  CPython cannot tell *which* submission killed it), every unfinished
  job is retried one at a time in its own fresh single-worker pool, so
  the crasher isolates itself and surfaces as a typed
  :class:`~repro.sweep.runner.SweepWorkerLost` row while every innocent
  job completes normally.

Results always merge in **expansion order**, never completion order, and
rows serialize through one canonical JSON encoder — a serial sweep and a
``--jobs N`` sweep of the same grid emit byte-identical JSONL.  Only
``ok`` and ``fault`` rows are cached: both are deterministic outcomes of
the config; ``error`` rows (crashed workers, harness bugs) are retried
on the next run instead of being replayed forever.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.sweep.cache import (
    DEFAULT_CACHE_DIR,
    canonical_json,
    job_key,
    load_row,
    store_row,
)
from repro.sweep.grid import expand_grid
from repro.sweep.runner import run_job, worker_lost_row

__all__ = ["SweepResult", "run_sweep", "summary_table", "write_jsonl"]

#: Cacheable job outcomes (deterministic functions of the config).
_CACHEABLE = ("ok", "fault")


@dataclass
class SweepResult:
    """A finished sweep: merged rows plus execution metadata."""

    name: str
    rows: List[Dict]
    keys: List[str]
    hits: int
    misses: int
    wall_s: float
    jobs: int
    errors: int = 0
    faults: int = 0
    extra: Dict[str, object] = field(default_factory=dict)


def _progress(progress: Optional[Callable[[str], None]], msg: str) -> None:
    if progress is not None:
        progress(msg)


def _finish(rows, i, row, cache_dir) -> None:
    rows[i] = row
    if cache_dir is not None and row["status"] in _CACHEABLE:
        store_row(cache_dir, row["key"], row)


def _run_parallel(configs, keys, pending, jobs, rows, cache_dir, progress):
    """Pool execution with lost-worker isolation (see module docstring)."""
    broken: List[int] = []
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {
            pool.submit(run_job, configs[i], keys[i]): i for i in pending
        }
        for fut in as_completed(futures):
            i = futures[fut]
            try:
                row = fut.result()
            except Exception:  # noqa: BLE001 - pool-level failure
                # The pool broke (some worker died); which job killed it
                # is unknowable from here.  Defer to isolation.
                broken.append(i)
                continue
            _finish(rows, i, row, cache_dir)
            _progress(progress, f"ran {_label(configs[i])}")
    for i in sorted(broken):
        # One job per fresh single-worker pool: a crasher can only take
        # itself down, so it self-identifies; innocents just rerun.
        with ProcessPoolExecutor(max_workers=1) as solo:
            fut = solo.submit(run_job, configs[i], keys[i])
            try:
                row = fut.result()
            except Exception:  # noqa: BLE001 - this job IS the crasher
                row = worker_lost_row(configs[i], keys[i])
        _finish(rows, i, row, cache_dir)
        _progress(progress, f"isolated {_label(configs[i])}")


def run_sweep(
    spec: Dict,
    *,
    jobs: int = 1,
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Run a grid spec; returns rows merged in deterministic order.

    ``cache_dir=None`` disables the cache entirely (every job runs).
    """
    t0 = time.perf_counter()
    configs = expand_grid(spec)
    keys = [job_key(cfg) for cfg in configs]
    rows: List[Optional[Dict]] = [None] * len(configs)

    pending: List[int] = []
    hits = 0
    for i, key in enumerate(keys):
        cached = load_row(cache_dir, key) if cache_dir is not None else None
        if cached is not None:
            rows[i] = cached
            hits += 1
        else:
            pending.append(i)
    _progress(
        progress,
        f"{len(configs)} job(s): {hits} cached, {len(pending)} to run "
        f"(jobs={jobs})",
    )

    if pending:
        # jobs > 1 always uses worker processes, even for a single
        # pending job: parallel mode promises worker isolation (a job
        # that kills its process must become a SweepWorkerLost row, not
        # take the sweep down), and a resumed sweep often has exactly
        # one miss left.
        if jobs <= 1:
            for i in pending:
                _finish(rows, i, run_job(configs[i], keys[i]), cache_dir)
                _progress(progress, f"ran {_label(configs[i])}")
        else:
            _run_parallel(
                configs, keys, pending, jobs, rows, cache_dir, progress
            )

    assert all(row is not None for row in rows)
    return SweepResult(
        name=spec.get("name", "sweep"),
        rows=rows,
        keys=keys,
        hits=hits,
        misses=len(pending),
        wall_s=time.perf_counter() - t0,
        jobs=jobs,
        errors=sum(1 for r in rows if r["status"] == "error"),
        faults=sum(1 for r in rows if r["status"] == "fault"),
    )


def _label(config: Dict) -> str:
    bits = [
        config["workload"],
        f"np={config['nprocs']}",
        config["backend"],
        config["granularity"],
    ]
    if config["faults"] is not None:
        bits.append("faults")
    return " ".join(bits)


def write_jsonl(rows: List[Dict], path: str) -> None:
    """One canonical-JSON row per line; byte-stable across runs."""
    with open(path, "w") as fh:
        for row in rows:
            fh.write(canonical_json(row))
            fh.write("\n")


def summary_table(result: SweepResult) -> str:
    """Human-readable sweep summary (stdout, never part of the JSONL)."""
    head = (
        f"{'workload':12s} {'np':>3s} {'backend':18s} {'gran':6s} "
        f"{'status':7s} {'sim ms':>10s} {'comm ms':>10s} {'msgs':>8s}"
    )
    lines = [f"sweep: {result.name}", head, "-" * len(head)]
    for row in result.rows:
        res = row.get("result") or {}
        sim = res.get("simulated_s")
        comm = res.get("comm_max_s")
        lines.append(
            f"{row['workload']:12s} {row['nprocs']:>3d} "
            f"{row['backend']:18s} {row['granularity']:6s} "
            f"{row['status']:7s} "
            f"{'' if sim is None else format(sim * 1e3, '10.3f'):>10s} "
            f"{'' if comm is None else format(comm * 1e3, '10.3f'):>10s} "
            f"{res.get('messages', ''):>8}"
        )
        if row["status"] != "ok":
            err = row.get("error") or {}
            lines.append(
                f"{'':12s}     ^ {err.get('type', '?')}: "
                f"{err.get('message', '')}"
            )
    lines.append(
        f"{len(result.rows)} job(s): {result.hits} cache hit(s), "
        f"{result.misses} ran, {result.faults} fault(s), "
        f"{result.errors} error(s); wall {result.wall_s:.2f} s "
        f"(jobs={result.jobs})"
    )
    return "\n".join(lines)
