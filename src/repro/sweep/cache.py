"""Content-addressed on-disk result cache for sweep jobs.

A job's cache key is the SHA-256 of its **canonical** JSON — the config
with sorted keys and compact separators, wrapped with the repro package
version and the sweep row schema version::

    sha256({"config": {...}, "repro": "1.0.0", "schema": 1})

Identical configs hash identically no matter how the grid was written;
any config change, package release, or row-schema bump changes the key,
so stale results can never be replayed.  Entries live under
``<cache_dir>/<key[:2]>/<key>.json`` (two-level fan-out keeps directory
listings short) and are written atomically — a temp file in the same
directory then :func:`os.replace` — so a killed sweep never leaves a
truncated entry behind and an interrupted sweep resumes from whatever
finished.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Optional

from repro._version import __version__

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "job_key",
    "cache_path",
    "load_row",
    "store_row",
]

#: Bump when the sweep row layout changes: invalidates every cached row.
SCHEMA_VERSION = 1

#: Default cache location, relative to the invoking directory.
DEFAULT_CACHE_DIR = ".sweep-cache"


def canonical_json(value) -> str:
    """The one true serialization used for hashing and JSONL output."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def job_key(
    config: Dict, version: str = __version__, schema: int = SCHEMA_VERSION
) -> str:
    """Stable content hash of one job config."""
    doc = {"config": config, "repro": version, "schema": schema}
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()


def cache_path(cache_dir: str, key: str) -> str:
    return os.path.join(cache_dir, key[:2], f"{key}.json")


def load_row(cache_dir: str, key: str) -> Optional[Dict]:
    """The cached row for ``key``, or ``None`` on miss/corruption."""
    path = cache_path(cache_dir, key)
    try:
        with open(path) as fh:
            return json.load(fh)
    except FileNotFoundError:
        return None
    except (OSError, json.JSONDecodeError):
        # A damaged entry is a miss; the re-run overwrites it atomically.
        return None


def store_row(cache_dir: str, key: str, row: Dict) -> None:
    """Atomically persist ``row`` under ``key``."""
    path = cache_path(cache_dir, key)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(canonical_json(row))
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
