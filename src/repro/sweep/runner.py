"""One sweep job: config in, deterministic result row out.

:func:`run_job` is the unit the engine executes — inline for serial
sweeps, in a forked worker for ``--jobs N``.  It is a pure function of
its config: workload sources are parameterized Fortran text, the
simulator is deterministic, fault plans carry their own seeds, and the
job's RNG seed is derived from its cache key — so the row a job returns
is byte-for-byte the same wherever and whenever it runs.  That is what
makes the content-addressed cache sound and serial/parallel output
byte-identical.

Outcomes follow the typed-error contract (docs/FAULTS.md): a job ends
``ok``, ``fault`` (a typed :class:`MpiFaultError` from an injected fault
plan), or ``error`` (any other exception, recorded by type — including
:class:`SweepWorkerLost` when the engine loses the worker process
itself).  No outcome corrupts the sweep: every job yields exactly one
row.
"""

from __future__ import annotations

import os
import random
from typing import Dict, Optional, Tuple

__all__ = [
    "BACKENDS",
    "GRANULARITIES",
    "SweepWorkerLost",
    "parse_workload",
    "run_job",
]


class SweepWorkerLost(RuntimeError):
    """The worker process executing a job died (crash, kill, OOM)."""


GRANULARITIES = ("fine", "middle", "coarse")

#: Backend name -> ClusterParams preset attribute (resolved lazily so a
#: forked worker does not pay the import before it needs it).
BACKENDS = {
    "vbus": "VBUS_SKWP",
    "vbus-conventional": "VBUS_CONVENTIONAL",
    "vbus-wave": "VBUS_WAVE_UNTUNED",
    "ethernet100": "ETHERNET_100",
    "gige": "GIGE_SWITCHED",
}

def parse_workload(spec: str) -> Tuple[str, Optional[int], Optional[int]]:
    """Split a workload spec like ``MM-256`` or ``JACOBI-64x10``.

    The grammar is owned by :mod:`repro.workloads` (shared with the
    autotuner and the benchmark tools); this wrapper converts its
    :class:`~repro.workloads.WorkloadSpecError` into the sweep's own
    :class:`~repro.sweep.grid.SweepConfigError`.
    """
    from repro.sweep.grid import SweepConfigError
    from repro.workloads import WorkloadSpecError, parse_spec

    try:
        return parse_spec(spec)
    except WorkloadSpecError as exc:
        raise SweepConfigError(str(exc)) from exc


def _workload_source(spec: str) -> str:
    kind, size, _extra = parse_workload(spec)
    if kind == "CRASH":
        # Deterministic worker death, after the fork and inside the job:
        # the engine must surface this as a typed per-job error without
        # corrupting the rest of the sweep.
        os._exit(size if size is not None else 137)
    from repro.workloads import source_for

    return source_for(spec)


def _cluster_params(config: Dict):
    from dataclasses import replace

    from repro.vbus import params as P

    base = getattr(P, BACKENDS[config["backend"]])
    return replace(
        P.cluster_for(config["nprocs"], base), fast_path=config["fast_path"]
    )


def job_seed(config: Dict, key: str) -> int:
    """The job's RNG seed: explicit, else derived from its cache key."""
    if config.get("seed") is not None:
        return config["seed"]
    return int(key[:8], 16)


def run_job(config: Dict, key: str) -> Dict:
    """Execute one job config; always returns a deterministic row."""
    seed = job_seed(config, key)
    random.seed(seed)
    try:
        import numpy as np

        np.random.seed(seed % (2**32))
    except ImportError:  # pragma: no cover - numpy is a core dependency
        pass

    row = dict(config)
    row["key"] = key
    row["seed"] = seed
    try:
        source = _workload_source(config["workload"])
        from repro.compiler.pipeline import compile_source
        from repro.faults.plan import FaultPlan
        from repro.mpi2.exceptions import MpiFaultError
        from repro.runtime.executor import run_program

        plan = None
        if config["faults"] is not None:
            import json

            plan = FaultPlan.from_json(json.dumps(config["faults"]))
        grain_map = config.get("tune_plan") or None
        partition = config.get("partition")
        if grain_map or partition is not None:
            # A mixed plan: ``tune_plan`` is the ``grain_map`` of a
            # TunePlan JSON artifact (docs/AUTOTUNE.md), ``partition``
            # a global §5.3 strategy spec or the per-region
            # ``partition_map`` (docs/PARTITION.md).
            from repro.compiler.pipeline import CompileOptions

            kw = dict(
                nprocs=config["nprocs"],
                granularity=config["granularity"],
            )
            if grain_map:
                kw["grain_map"] = {int(k): v for k, v in grain_map.items()}
            if isinstance(partition, dict):
                kw["partition_map"] = {
                    int(k): v for k, v in partition.items()
                }
            elif partition is not None:
                kw["partition"] = partition
            prog = compile_source(source, options=CompileOptions(**kw))
        else:
            prog = compile_source(
                source,
                nprocs=config["nprocs"],
                granularity=config["granularity"],
            )
        params = _cluster_params(config)
        calibration = config.get("calibration")
        if calibration is not None:
            # A calibrated job carries the fitted model's per-region comm
            # prediction next to the measured result — the row is the
            # model-validation record.  Configs without the axis emit no
            # ``model`` field, keeping their row bytes unchanged.
            from repro.tools.calibrate import CalibratedModel
            from repro.tools.tuneplan import region_model_cost

            cal = CalibratedModel.from_jsonable(calibration)
            costs = [
                region_model_cost(prog.plans[rid], params, calibration=cal)
                for rid in sorted(prog.plans)
            ]
            row["model"] = {
                "comm_s": sum(c.elapsed_s for c in costs),
                "messages": int(sum(c.messages for c in costs)),
            }
        try:
            report = run_program(
                prog,
                cluster_params=params,
                execute=config["execute"],
                faults=plan,
            )
        except MpiFaultError as exc:
            row["status"] = "fault"
            row["result"] = None
            row["error"] = {"type": type(exc).__name__, "message": str(exc)}
            return row
        row["status"] = "ok"
        row["result"] = report.to_jsonable()
        row["error"] = None
        return row
    except Exception as exc:  # noqa: BLE001 - typed per-job error row
        row["status"] = "error"
        row["result"] = None
        row["error"] = {"type": type(exc).__name__, "message": str(exc)}
        return row


def worker_lost_row(config: Dict, key: str) -> Dict:
    """The typed row for a job whose worker process died."""
    row = dict(config)
    row["key"] = key
    row["seed"] = job_seed(config, key)
    row["status"] = "error"
    row["result"] = None
    row["error"] = {
        "type": SweepWorkerLost.__name__,
        "message": "worker process died while running this job",
    }
    return row
