"""Declarative sweep grids: schema, validation, deterministic expansion.

A grid is a JSON-able dict::

    {
      "name": "three-backend",
      "axes": {
        "workload": ["MM-64", "SWIM-32"],
        "nprocs": [4, 16],
        "backend": ["vbus", "ethernet100", "gige"]
      },
      "defaults": {"granularity": "fine", "execute": false}
    }

``axes`` values are lists crossed into a full product; ``defaults``
pins the non-swept fields.  Expansion order is **deterministic**: axes
are iterated in the fixed :data:`AXIS_KEYS` order (not author order),
and each axis preserves its listed value order — the job list, and
therefore the merged output, is a pure function of the grid contents.
Unknown keys are an error, not a warning: a silently-ignored typo would
change which configs a sweep covers.
"""

from __future__ import annotations

import itertools
import json
from typing import Dict, List

from repro.sweep.runner import BACKENDS, GRANULARITIES, parse_workload

__all__ = ["AXIS_KEYS", "SweepConfigError", "expand_grid", "load_grid"]


class SweepConfigError(ValueError):
    """A malformed grid or job config."""


#: Recognized config fields, in canonical expansion (= product) order.
AXIS_KEYS = (
    "workload",
    "nprocs",
    "backend",
    "granularity",
    "partition",
    "tune_plan",
    "calibration",
    "fast_path",
    "execute",
    "faults",
    "seed",
)

#: Field defaults applied beneath the grid's own ``defaults``.
_DEFAULTS = {
    "nprocs": 4,
    "backend": "vbus",
    "granularity": "fine",
    "partition": None,
    "tune_plan": None,
    "calibration": None,
    "fast_path": True,
    "execute": False,
    "faults": None,
    "seed": None,
}


def _check_config(cfg: Dict) -> Dict:
    """Validate one expanded job config; returns it with sorted keys."""
    if not isinstance(cfg.get("workload"), str):
        raise SweepConfigError(f"job needs a workload string, got {cfg!r}")
    parse_workload(cfg["workload"])  # raises SweepConfigError on bad specs
    n = cfg["nprocs"]
    if not isinstance(n, int) or isinstance(n, bool) or n < 1:
        raise SweepConfigError(f"nprocs must be a positive int, got {n!r}")
    if cfg["backend"] not in BACKENDS:
        raise SweepConfigError(
            f"unknown backend {cfg['backend']!r}; use one of {sorted(BACKENDS)}"
        )
    if cfg["granularity"] not in GRANULARITIES:
        raise SweepConfigError(
            f"unknown granularity {cfg['granularity']!r}; "
            f"use one of {GRANULARITIES}"
        )
    for key in ("fast_path", "execute"):
        if not isinstance(cfg[key], bool):
            raise SweepConfigError(f"{key} must be a bool, got {cfg[key]!r}")
    faults = cfg["faults"]
    if faults is not None and not isinstance(faults, dict):
        raise SweepConfigError(
            f"faults must be null or a fault-plan object, got {faults!r}"
        )
    tune_plan = cfg["tune_plan"]
    if tune_plan is not None:
        if not isinstance(tune_plan, dict) or not tune_plan:
            raise SweepConfigError(
                "tune_plan must be null or a non-empty region->grain "
                f"object (a TunePlan grain_map), got {tune_plan!r}"
            )
        for rid, grain in tune_plan.items():
            if not str(rid).isdigit() or grain not in GRANULARITIES:
                raise SweepConfigError(
                    f"bad tune_plan entry {rid!r}: {grain!r} (want "
                    f"region-id -> one of {GRANULARITIES})"
                )
    partition = cfg["partition"]
    if partition is not None:
        from repro.compiler.postpass.partition import parse_strategy

        def check_spec(spec, where):
            try:
                parse_strategy(spec)
            except ValueError as exc:
                raise SweepConfigError(
                    f"bad partition {where}: {exc}"
                ) from None

        if isinstance(partition, str):
            if partition != "auto":
                check_spec(partition, f"value {partition!r}")
        elif isinstance(partition, dict) and partition:
            # Per-region overrides: the ``partition_map`` of a TunePlan
            # JSON artifact (docs/PARTITION.md).
            for rid, spec in partition.items():
                if not str(rid).isdigit():
                    raise SweepConfigError(
                        f"bad partition region id {rid!r} (want digits)"
                    )
                check_spec(spec, f"entry {rid!r}: {spec!r}")
        else:
            raise SweepConfigError(
                "partition must be null, a strategy spec string, or a "
                f"non-empty region->spec object, got {partition!r}"
            )
    calibration = cfg["calibration"]
    if calibration is not None:
        from repro.tools.calibrate import CalibratedModel

        try:
            CalibratedModel.from_jsonable(calibration)
        except (KeyError, TypeError, ValueError) as exc:
            raise SweepConfigError(
                "calibration must be null or a CalibratedModel artifact "
                f"object ('repro calibrate -o', docs/AUTOTUNE.md): {exc}"
            ) from None
    seed = cfg["seed"]
    if seed is not None and (not isinstance(seed, int) or isinstance(seed, bool)):
        raise SweepConfigError(f"seed must be null or an int, got {seed!r}")
    # ``tune_plan`` entered the schema after PR 6, ``partition`` after
    # PR 8, and ``calibration`` after PR 9; omit them when unset so
    # pre-existing configs keep their exact cache keys and row bytes.
    return {
        key: cfg[key]
        for key in AXIS_KEYS
        if not (
            key in ("partition", "tune_plan", "calibration")
            and cfg[key] is None
        )
    }


def expand_grid(spec: Dict) -> List[Dict]:
    """Expand a grid spec into its deterministic job-config list."""
    if not isinstance(spec, dict):
        raise SweepConfigError(f"grid must be an object, got {type(spec).__name__}")
    known_top = {"name", "axes", "defaults"}
    unknown = set(spec) - known_top
    if unknown:
        raise SweepConfigError(f"unknown grid key(s): {sorted(unknown)}")
    axes = spec.get("axes", {})
    defaults = spec.get("defaults", {})
    for section, name in ((axes, "axes"), (defaults, "defaults")):
        if not isinstance(section, dict):
            raise SweepConfigError(f"{name} must be an object")
        bad = set(section) - set(AXIS_KEYS)
        if bad:
            raise SweepConfigError(f"unknown {name} key(s): {sorted(bad)}")
    clash = set(axes) & set(defaults)
    if clash:
        raise SweepConfigError(
            f"key(s) in both axes and defaults: {sorted(clash)}"
        )
    for key, values in axes.items():
        if not isinstance(values, list) or not values:
            raise SweepConfigError(f"axis {key!r} must be a non-empty list")
    base = dict(_DEFAULTS)
    base.update(defaults)
    if "workload" not in axes and "workload" not in base:
        raise SweepConfigError("grid needs a workload axis or default")

    swept = [key for key in AXIS_KEYS if key in axes]
    configs = []
    for combo in itertools.product(*(axes[key] for key in swept)):
        cfg = dict(base)
        cfg.update(zip(swept, combo))
        configs.append(_check_config(cfg))
    return configs


def load_grid(path: str) -> Dict:
    """Read a grid spec from a JSON file."""
    with open(path) as fh:
        try:
            spec = json.load(fh)
        except json.JSONDecodeError as exc:
            raise SweepConfigError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(spec, dict):
        raise SweepConfigError(f"{path}: grid must be a JSON object")
    return spec
