"""Parallel experiment sweeps with a content-addressed result cache.

``repro.sweep`` turns a declarative grid — workload x nprocs x backend x
params x fault plan — into independent jobs, runs them on a process pool
with per-job deterministic seeding, and memoizes every finished job in an
on-disk cache keyed by a stable hash of (canonical config, repro
version).  Re-runs are cache hits, interrupted sweeps resume where they
stopped, and results merge in deterministic job order so serial and
``--jobs N`` sweeps emit byte-identical JSONL (pinned by
``tests/test_sweep_engine.py`` — the same contract the fast-path oracle
pins for simulated time).

See ``docs/SWEEP.md`` for the grid schema, the cache layout, and the
determinism contract.
"""

from repro.sweep.cache import SCHEMA_VERSION, cache_path, job_key
from repro.sweep.engine import SweepResult, run_sweep, summary_table, write_jsonl
from repro.sweep.grid import AXIS_KEYS, SweepConfigError, expand_grid, load_grid
from repro.sweep.runner import BACKENDS, SweepWorkerLost, parse_workload, run_job

__all__ = [
    "AXIS_KEYS",
    "BACKENDS",
    "SCHEMA_VERSION",
    "SweepConfigError",
    "SweepResult",
    "SweepWorkerLost",
    "cache_path",
    "expand_grid",
    "job_key",
    "load_grid",
    "parse_workload",
    "run_job",
    "run_sweep",
    "summary_table",
    "write_jsonl",
]
