"""Fault plans: the declarative, seeded description of what goes wrong.

A :class:`FaultPlan` is a frozen value — a seed, retransmission knobs, and
a tuple of :class:`FaultSpec` records — that :class:`ClusterParams` carries
(``ClusterParams.faults``) exactly like any other hardware knob.  The plan
says *what* faults exist; the :class:`~repro.faults.injector.FaultInjector`
decides *when* each one fires, deterministically from the plan seed, so the
same plan on the same program replays the same faults event for event.

Fault kinds
-----------

``drop``
    Per-flit loss probability on matching wire legs.  Lost flits are
    detected by sequence gap at the receiver and selectively
    retransmitted (rounds of NACK + resend, or a sender timeout when the
    whole tail vanished).
``corrupt``
    Per-flit corruption probability.  With ``RetxParams.crc_check`` on
    (the default) the receiver's CRC catches every corrupted flit and it
    joins the retransmission rounds; with the check off, corrupted flits
    are *accepted* and counted as silent corruptions.
``delay``
    Per-message probability of an extra fixed latency (``delay_s``) on
    the wire leg — a slow link, not a lossy one.
``stall``
    A channel (or every outgoing channel of a node) is held busy during
    ``[t0, t1)``; a wormhole head that reaches it waits for the window
    to end.  ``t1`` must be finite — an unbounded stall is a hang, which
    is exactly what fault runs must never produce.
``kill``
    A node dies at simulated time ``at_s`` or after its NIC has injected
    ``after_sends`` messages.  Death is unrecoverable: the victim's rank
    process is terminated and every later operation touching the node
    raises :class:`~repro.mpi2.exceptions.MpiNodeDeadError`.

``src``/``dst``/``t0``/``t1`` scope a wire-fault spec to matching
transfers; ``None`` means "any".  Broadcast wire legs match only specs
whose ``dst`` is ``None``.

The JSON schema (``repro run --faults plan.json``) is documented in
``docs/FAULTS.md``; :meth:`FaultPlan.from_json` / :meth:`FaultPlan.to_json`
round-trip it.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Optional, Tuple

__all__ = ["RetxParams", "FaultSpec", "FaultPlan"]

#: Valid fault kinds.
FAULT_KINDS = ("drop", "corrupt", "delay", "stall", "kill")

#: Combined per-flit loss probability is capped below 1 so retransmission
#: rounds shrink geometrically and always terminate.
MAX_FLIT_RATE = 0.999


@dataclass(frozen=True)
class RetxParams:
    """Link-level retransmission knobs (selective repeat with CRC)."""

    #: Sender-side retransmission timeout when an entire round is lost
    #: (no receiver feedback at all), seconds.
    timeout_s: float = 20e-6
    #: Receiver NACK round-trip charged per retransmission round when at
    #: least part of the round arrived (gap/CRC feedback), seconds.
    nack_s: float = 2e-6
    #: Multiplier applied to ``timeout_s`` on consecutive silent rounds.
    backoff: float = 2.0
    #: Rounds before the link gives up and raises ``MpiLinkError``.
    max_rounds: int = 8
    #: Whether the receiver verifies a per-flit CRC.  Off, corrupted
    #: flits are accepted silently (and counted — never invisible).
    crc_check: bool = True

    def __post_init__(self):
        if self.timeout_s < 0 or self.nack_s < 0:
            raise ValueError("retransmission times must be non-negative")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")


@dataclass(frozen=True)
class FaultSpec:
    """One fault source; see the module docstring for the kinds."""

    kind: str
    #: Source/destination rank scope for wire faults (None = any rank).
    src: Optional[int] = None
    dst: Optional[int] = None
    #: Per-flit probability (drop/corrupt) or per-message probability
    #: (delay) while the spec's time window is open.
    rate: float = 0.0
    #: Extra latency injected by a firing ``delay`` spec, seconds.
    delay_s: float = 0.0
    #: Active window (simulated seconds).  ``stall`` requires finite t1.
    t0: float = 0.0
    t1: float = math.inf
    #: Directed channel ``(u, v)`` for ``stall`` (or use ``node``).
    channel: Optional[Tuple[int, int]] = None
    #: Node for ``kill`` (required) and ``stall`` (all outgoing channels).
    node: Optional[int] = None
    #: Kill trigger: absolute simulated time ...
    at_s: Optional[float] = None
    #: ... or after the node's NIC has injected this many messages.
    after_sends: Optional[int] = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; use {FAULT_KINDS}")
        if not self.t0 <= self.t1:
            raise ValueError(f"bad fault window [{self.t0}, {self.t1}]")
        if self.kind in ("drop", "corrupt"):
            if not 0.0 <= self.rate < 1.0:
                raise ValueError(f"{self.kind} rate must be in [0, 1), got {self.rate}")
        elif self.kind == "delay":
            if not 0.0 <= self.rate <= 1.0:
                raise ValueError(f"delay rate must be in [0, 1], got {self.rate}")
            if self.delay_s < 0:
                raise ValueError("delay_s must be non-negative")
        elif self.kind == "stall":
            if self.channel is None and self.node is None:
                raise ValueError("stall needs a channel or a node")
            if not math.isfinite(self.t1):
                raise ValueError("stall needs a finite t1 (unbounded stall = hang)")
        elif self.kind == "kill":
            if self.node is None:
                raise ValueError("kill needs a node")
            if (self.at_s is None) == (self.after_sends is None):
                raise ValueError("kill needs exactly one of at_s / after_sends")
        if self.channel is not None:
            object.__setattr__(self, "channel", tuple(self.channel))

    def matches(self, src: int, dst: Optional[int], now: float) -> bool:
        """Does this wire-fault spec apply to a (src, dst) leg at ``now``?

        ``dst=None`` denotes a broadcast leg, which only wildcard-``dst``
        specs match.
        """
        if not self.t0 <= now < self.t1:
            return False
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        return True


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic set of faults plus recovery knobs."""

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = ()
    retx: RetxParams = field(default_factory=RetxParams)
    #: Watchdog: simulated seconds the whole run may take before the
    #: executor raises ``MpiWatchdogError`` (None = no bound).
    max_sim_s: Optional[float] = None

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))
        if self.max_sim_s is not None and self.max_sim_s <= 0:
            raise ValueError("max_sim_s must be positive")

    @property
    def active(self) -> bool:
        return bool(self.specs)

    # -- JSON round trip ---------------------------------------------------
    def to_json(self) -> str:
        def clean(d: dict) -> dict:
            return {
                k: v
                for k, v in d.items()
                if v is not None and v != math.inf
            }

        doc = {
            "seed": self.seed,
            "retx": asdict(self.retx),
            "faults": [clean(asdict(s)) for s in self.specs],
        }
        if self.max_sim_s is not None:
            doc["max_sim_s"] = self.max_sim_s
        return json.dumps(doc, indent=1, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        doc = json.loads(text)
        if not isinstance(doc, dict):
            raise ValueError("fault plan JSON must be an object")
        unknown = set(doc) - {"seed", "retx", "faults", "max_sim_s"}
        if unknown:
            raise ValueError(f"unknown fault plan keys: {sorted(unknown)}")
        specs = tuple(FaultSpec(**spec) for spec in doc.get("faults", ()))
        return cls(
            seed=int(doc.get("seed", 0)),
            specs=specs,
            retx=RetxParams(**doc.get("retx", {})),
            max_sim_s=doc.get("max_sim_s"),
        )

    def dump(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path) as fh:
            return cls.from_json(fh.read())
