"""Deterministic fault injection for the simulated cluster.

``repro.faults`` is a cross-cutting subsystem: a frozen, seeded
:class:`FaultPlan` (carried on ``ClusterParams.faults``) describes what
goes wrong — flit drops/corruption, link delays, channel stalls, node
kills — and a per-run :class:`FaultInjector` replays those faults
deterministically and models the link-level retransmission that recovers
from them.  See ``docs/FAULTS.md`` for the fault model and plan schema.
"""

from repro.faults.plan import FaultPlan, FaultSpec, RetxParams

__all__ = ["FaultPlan", "FaultSpec", "RetxParams", "FaultInjector"]

# The injector pulls in repro.mpi2 (typed errors), which pulls in
# repro.vbus — which imports repro.faults.plan for ClusterParams.faults.
# Resolving FaultInjector lazily (PEP 562) keeps that cycle open.
_LAZY = {"FaultInjector": ("repro.faults.injector", "FaultInjector")}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value
