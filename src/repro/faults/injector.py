"""The fault injector: turns a :class:`~repro.faults.plan.FaultPlan` into
deterministic simulated faults and their recovery.

One :class:`FaultInjector` is built per :class:`~repro.vbus.cluster.Cluster`
when ``ClusterParams.faults`` is set, and wired into the layers that model
the wire:

* ``WormholeMesh.unicast`` / ``EthernetNetwork`` wire legs call
  :meth:`wire_deliver` after charging the clean transfer time; the injector
  decides — from the plan seed alone — how many flits were dropped or
  corrupted and charges the selective-repeat retransmission rounds needed
  to recover (or raises ``MpiLinkError`` when ``max_rounds`` is exceeded).
* ``VBusController.broadcast`` does the same for the broadcast wave.
* ``Nic.transfer`` calls :meth:`on_inject` so ``after_sends`` kills and
  dead-node checks happen at message injection time.
* The executor calls :meth:`start` (timed kills, watchdog bookkeeping) and
  :meth:`register_rank_process` so a kill can terminate the victim's rank.

Determinism contract
--------------------

Every random draw comes from a ``numpy.random.RandomState`` keyed by
``(plan.seed, src, dst, per-pair message ordinal)`` — *not* by simulated
time or event order.  Two runs of the same program with the same plan make
identical draws message for message, even when the fast path (which is
demoted under an active plan anyway) or scheduler interleaving would visit
messages in a different global order.  ``tests/test_faults_determinism.py``
pins this byte-for-byte.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.faults.plan import FaultPlan, MAX_FLIT_RATE
from repro.mpi2.exceptions import MpiLinkError, MpiNodeDeadError

__all__ = ["FaultInjector"]

#: Track every fault/retransmission event renders on.
FAULT_TRACK = ("fault", 0)

_MASK32 = 0xFFFFFFFF


def _mix32(*parts: int) -> int:
    """Deterministically mix integers into a 32-bit RandomState seed.

    A splitmix64-style round per part; stable across platforms and runs
    (unlike ``hash()``, which is salted per process).
    """
    acc = 0x9E3779B97F4A7C15
    for p in parts:
        acc ^= (p & 0xFFFFFFFFFFFFFFFF) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
        acc = (acc ^ (acc >> 31)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
    return (acc ^ (acc >> 32)) & _MASK32


class FaultInjector:
    """Deterministic fault generation + link-level recovery for one run."""

    def __init__(self, sim, plan: FaultPlan, nprocs: int):
        self.sim = sim
        self.plan = plan
        self.nprocs = nprocs
        self.retx = plan.retx

        self.wire_specs = [
            s for s in plan.specs if s.kind in ("drop", "corrupt", "delay")
        ]
        self.stall_specs = [s for s in plan.specs if s.kind == "stall"]
        self.kill_specs = [s for s in plan.specs if s.kind == "kill"]

        #: Ranks whose node has died.
        self.dead: set = set()
        #: rank -> messages injected by its NIC (drives after_sends kills).
        self.sends: Dict[int, int] = {}
        #: (src, dst) -> message ordinal on that pair (drives RNG keys).
        self._ordinals: Dict[Tuple[int, object], int] = {}
        #: rank -> rank Process (registered by the executor for kills).
        self._rank_procs: Dict[int, object] = {}

        # Fault statistics, surfaced through stats() into RunReport.
        self.dropped_flits = 0
        self.corrupt_flits = 0
        self.silent_corruptions = 0
        self.delays = 0
        self.delay_s = 0.0
        self.stalls = 0
        self.stall_s = 0.0
        self.retx_rounds = 0
        self.retx_flits = 0
        self.retx_timeouts = 0
        self.link_failures = 0
        self.kills = 0

    # -- lifecycle -----------------------------------------------------------
    @property
    def active(self) -> bool:
        """True when the plan injects anything at all."""
        return self.plan.active

    def start(self) -> None:
        """Schedule timed node kills.  Called once by the executor."""
        for spec in self.kill_specs:
            if spec.at_s is not None:
                self.sim.process(self._timed_kill(spec.node, spec.at_s))

    def _timed_kill(self, node: int, at_s: float):
        yield self.sim.timeout(at_s - self.sim.now)
        self.kill_node(node)

    def register_rank_process(self, rank: int, proc) -> None:
        self._rank_procs[rank] = proc

    # -- node death ----------------------------------------------------------
    def kill_node(self, node: int, _self_inflicted: bool = False) -> None:
        """Mark ``node`` dead and terminate its rank process.

        With ``_self_inflicted`` the victim's own generator is currently
        executing (an ``after_sends`` kill detected inside its NIC call),
        so it cannot be closed from within — the caller raises
        ``MpiNodeDeadError`` through it instead.
        """
        if node in self.dead:
            return
        self.dead.add(node)
        self.kills += 1
        tr = self.sim.tracer
        if tr is not None:
            tr.instant(FAULT_TRACK, f"kill node {node}", args={"node": node})
            tr.count("faults.kills")
        if not _self_inflicted:
            proc = self._rank_procs.get(node)
            if proc is not None:
                proc.kill(MpiNodeDeadError(f"node {node} killed by fault plan"))

    def check_alive(self, *ranks: Optional[int]) -> None:
        """Raise ``MpiNodeDeadError`` if any given rank's node is dead."""
        if not self.dead:
            return
        for r in ranks:
            if r in self.dead:
                raise MpiNodeDeadError(f"node {r} is dead")

    def on_inject(self, rank: int) -> None:
        """NIC message-injection hook: dead check + ``after_sends`` kills."""
        self.check_alive(rank)
        n = self.sends.get(rank, 0) + 1
        self.sends[rank] = n
        for spec in self.kill_specs:
            if spec.node == rank and spec.after_sends is not None:
                if n > spec.after_sends and rank not in self.dead:
                    self.kill_node(rank, _self_inflicted=True)
                    raise MpiNodeDeadError(
                        f"node {rank} died after {spec.after_sends} send(s)"
                    )

    # -- channel stalls -------------------------------------------------------
    def stall_extra(self, u: int, v: int) -> float:
        """Seconds a head flit must wait at channel ``u -> v`` right now."""
        now = self.sim.now
        wait = 0.0
        for spec in self.stall_specs:
            if spec.channel is not None and spec.channel != (u, v):
                continue
            if spec.channel is None and spec.node != u:
                continue
            if spec.t0 <= now < spec.t1:
                wait = max(wait, spec.t1 - now)
        return wait

    def note_stall(self, seconds: float, u: int, v: int, t0: float) -> None:
        """Record a stall that was actually waited out (tracing + stats)."""
        self.stalls += 1
        self.stall_s += seconds
        tr = self.sim.tracer
        if tr is not None:
            tr.span(FAULT_TRACK, f"stall {u}->{v}", t0, args={"chan": f"{u}->{v}"})
            tr.count("faults.stalls")
            tr.observe("faults.stall_s", seconds, unit="s")

    # -- the wire: drop / corrupt / delay + retransmission --------------------
    def wire_deliver(
        self,
        src: int,
        dst: Optional[int],
        nunits: int,
        unit_s: float,
        wait=None,
    ):
        """Generator charging fault + recovery time for one wire leg.

        Call *after* the clean transfer time has been charged, while still
        holding whatever medium the leg occupies (wormhole path, Ethernet
        medium, broadcast bus) — retransmissions reuse the claimed path.

        ``nunits`` is the leg's flit (or frame) count and ``unit_s`` the
        wire time of one unit; ``wait`` is the delay primitive to charge
        time with (e.g. ``FreezeDomain.interruptible_delay``), defaulting
        to a plain kernel timeout.
        """
        if wait is None:
            wait = self._plain_wait
        now = self.sim.now
        specs = [s for s in self.wire_specs if s.matches(src, dst, now)]
        if not specs:
            return

        rng = self._rng_for(src, dst)

        # Fixed draw order: delay specs first, then per-round loss draws.
        extra = 0.0
        for spec in specs:
            if spec.kind == "delay" and rng.random_sample() < spec.rate:
                extra += spec.delay_s
                self.delays += 1
                self.delay_s += spec.delay_s
        drop_p = min(sum(s.rate for s in specs if s.kind == "drop"), MAX_FLIT_RATE)
        corr_p = min(sum(s.rate for s in specs if s.kind == "corrupt"), MAX_FLIT_RATE)

        tr = self.sim.tracer
        if extra > 0.0:
            if tr is not None:
                tr.count("faults.delays")
                tr.observe("faults.delay_s", extra, unit="s")
            yield from wait(extra)

        if drop_p == 0.0 and corr_p == 0.0:
            return

        t0 = self.sim.now
        sent = nunits
        rounds = 0
        total_resent = 0
        while True:
            ndrop = int(rng.binomial(sent, drop_p)) if drop_p > 0.0 else 0
            ncorr = (
                int(rng.binomial(sent - ndrop, corr_p)) if corr_p > 0.0 else 0
            )
            if ncorr and not self.retx.crc_check:
                # No CRC: corrupted flits are accepted as-is.  Counted so a
                # chaos run can still prove corruption never goes unnoticed
                # by the harness, but the link does not retry them.
                self.silent_corruptions += ncorr
                if tr is not None:
                    tr.count("faults.silent_corruptions", ncorr)
                ncorr = 0
            bad = ndrop + ncorr
            if bad == 0:
                break
            self.dropped_flits += ndrop
            self.corrupt_flits += ncorr
            rounds += 1
            if rounds > self.retx.max_rounds:
                self.link_failures += 1
                if tr is not None:
                    tr.count("faults.link_failures")
                    tr.instant(
                        FAULT_TRACK,
                        f"link failure {src}->{dst}",
                        args={"src": src, "dst": dst, "rounds": rounds - 1},
                    )
                raise MpiLinkError(
                    f"link {src}->{dst}: retransmission gave up after "
                    f"{self.retx.max_rounds} round(s)"
                )
            if bad < sent:
                # Part of the round arrived: the receiver's gap/CRC NACK
                # triggers a selective resend of just the bad flits.
                overhead = self.retx.nack_s
            else:
                # The whole round vanished: only the sender timeout (with
                # exponential backoff across consecutive silent rounds)
                # gets the link moving again.
                overhead = self.retx.timeout_s * self.retx.backoff ** (rounds - 1)
                self.retx_timeouts += 1
                if tr is not None:
                    tr.count("faults.retx_timeouts")
            total_resent += bad
            self.retx_rounds += 1
            self.retx_flits += bad
            self.check_alive(src, dst)
            yield from wait(overhead + bad * unit_s)
            sent = bad

        if rounds and tr is not None:
            dlabel = "*" if dst is None else dst
            tr.span(
                FAULT_TRACK,
                f"retx {src}->{dlabel}",
                t0,
                args={"rounds": rounds, "flits": total_resent},
            )
            tr.count("faults.retx_rounds", rounds)
            tr.count("faults.retx_flits", total_resent)

    def _plain_wait(self, seconds: float):
        yield self.sim.timeout(seconds)

    def _rng_for(self, src: int, dst: Optional[int]) -> np.random.RandomState:
        key = (src, dst)
        ordinal = self._ordinals.get(key, 0)
        self._ordinals[key] = ordinal + 1
        dkey = -1 if dst is None else dst
        return np.random.RandomState(_mix32(self.plan.seed, src, dkey, ordinal))

    # -- reporting ------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Fault statistics merged into ``Cluster.stats()`` / ``RunReport``."""
        return {
            "fault_dropped_flits": self.dropped_flits,
            "fault_corrupt_flits": self.corrupt_flits,
            "fault_silent_corruptions": self.silent_corruptions,
            "fault_delays": self.delays,
            "fault_delay_s": self.delay_s,
            "fault_stalls": self.stalls,
            "fault_stall_s": self.stall_s,
            "fault_retx_rounds": self.retx_rounds,
            "fault_retx_flits": self.retx_flits,
            "fault_retx_timeouts": self.retx_timeouts,
            "fault_link_failures": self.link_failures,
            "fault_kills": self.kills,
        }
