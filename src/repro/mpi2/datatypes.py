"""MPI derived datatypes (subset): contiguous and vector types.

The MPI-2 standard expresses strided one-sided transfers through derived
datatypes (``MPI_Type_vector``); the paper's "stride MPI_PUT/MPI_GET"
is exactly a vector-typed put.  This module provides the descriptor
algebra — element counts, extents, flat index generation — and the
mapping onto the hardware transfer modes:

* a contiguous type (or a vector whose stride equals its blocklength)
  rides the DMA engine as one transfer;
* a vector with blocklength 1 is one strided (programmed-I/O) transfer;
* a general vector decomposes into one contiguous DMA transfer per
  block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.mpi2.exceptions import MpiError

__all__ = ["Contiguous", "Vector", "Datatype"]


@dataclass(frozen=True)
class Datatype:
    """Base class: a pattern of ``size`` elements within ``extent`` slots."""

    def indices(self, offset: int = 0) -> np.ndarray:
        raise NotImplementedError

    @property
    def size(self) -> int:
        """Number of elements the type transfers."""
        raise NotImplementedError

    @property
    def extent(self) -> int:
        """Span of slots from first to one-past-last element."""
        raise NotImplementedError

    def segments(self) -> List[Tuple[int, int, int]]:
        """Hardware decomposition: (rel_offset, count, stride) pieces."""
        raise NotImplementedError


@dataclass(frozen=True)
class Contiguous(Datatype):
    """``count`` consecutive elements (MPI_Type_contiguous)."""

    count: int

    def __post_init__(self):
        if self.count < 1:
            raise MpiError("count must be >= 1")

    @property
    def size(self) -> int:
        return self.count

    @property
    def extent(self) -> int:
        return self.count

    def indices(self, offset: int = 0) -> np.ndarray:
        return offset + np.arange(self.count, dtype=np.int64)

    def segments(self):
        return [(0, self.count, 1)]


@dataclass(frozen=True)
class Vector(Datatype):
    """``count`` blocks of ``blocklength`` elements every ``stride`` slots
    (MPI_Type_vector)."""

    count: int
    blocklength: int
    stride: int

    def __post_init__(self):
        if self.count < 1 or self.blocklength < 1:
            raise MpiError("count and blocklength must be >= 1")
        if self.stride < self.blocklength:
            raise MpiError("stride must be >= blocklength (no overlap)")

    @property
    def size(self) -> int:
        return self.count * self.blocklength

    @property
    def extent(self) -> int:
        return (self.count - 1) * self.stride + self.blocklength

    def indices(self, offset: int = 0) -> np.ndarray:
        block = np.arange(self.blocklength, dtype=np.int64)
        starts = np.arange(self.count, dtype=np.int64) * self.stride
        return offset + (starts[:, None] + block[None, :]).ravel()

    def segments(self):
        if self.stride == self.blocklength:
            return [(0, self.size, 1)]  # degenerate: one dense run
        if self.blocklength == 1:
            return [(0, self.count, self.stride)]  # one strided transfer
        return [
            (b * self.stride, self.blocklength, 1) for b in range(self.count)
        ]
