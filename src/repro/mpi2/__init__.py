"""An MPI-2 library running on the simulated V-Bus cluster (paper §2.2).

The API follows mpi4py conventions adapted to the simulation kernel: every
communication primitive is a *generator* that a rank process drives with
``yield from``.  Lower-case methods move Python objects; capitalized
methods move numpy buffers with explicit byte accounting.

Two-sided (MPI-1 subset)
    ``send/recv/isend/irecv/sendrecv/probe`` on :class:`Comm`.

Collectives
    ``barrier, bcast, scatter, gather, allgather, reduce, allreduce`` —
    ``bcast`` uses the V-Bus hardware broadcast when the cluster has one,
    otherwise a binomial software tree (the ablation in
    ``benchmarks/bench_ablation_collectives.py`` compares the two).

One-sided (the MPI-2 extension the compiler targets)
    :class:`Win` memory windows with ``put/get/accumulate`` in contiguous
    (DMA) and strided (programmed-I/O) flavours, ``fence`` epochs, and
    ``lock/unlock`` — exactly the primitive set the MPI-2 postpass emits.
"""

from repro.mpi2.comm import ANY_SOURCE, ANY_TAG, Comm, Mpi2Runtime
from repro.mpi2.datatypes import Contiguous, Vector
from repro.mpi2.exceptions import MpiError
from repro.mpi2.ops import MAX, MIN, PROD, SUM
from repro.mpi2.request import Request
from repro.mpi2.status import Status
from repro.mpi2.window import Win

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Comm",
    "Contiguous",
    "Vector",
    "MAX",
    "MIN",
    "MpiError",
    "Mpi2Runtime",
    "PROD",
    "Request",
    "SUM",
    "Status",
    "Win",
]
