"""MPI-2 memory windows: one-sided Put/Get/Accumulate, Fence, Lock.

This is the primitive set the parallelizing compiler targets.  Semantics
follow the MPI-2 fence-epoch discipline:

* ``put``/``get``/``accumulate`` *initiate* a transfer.  Data values move
  logically at initiation (the origin buffer is captured, the target
  window is updated immediately in the functional model), but the
  *hardware* leg — DMA or PIO plus the wire — completes asynchronously.
* ``fence`` closes the epoch: each rank first drains its own outstanding
  hardware legs, then joins a barrier.  Time spent draining is exactly the
  paper's "fence wait"; a program that computes between initiation and
  fence gets the DMA overlap for free.
* Contiguous transfers (``stride == 1``) ride the DMA engine; strided ones
  use programmed I/O and occupy the CPU for every element — the paper's
  contiguous vs. stride ``MPI_PUT``/``MPI_GET`` distinction.

Correct usage (which the compiler guarantees) never reads window memory
that a concurrent epoch is writing, so apply-at-initiation is
value-equivalent to apply-at-fence.

The window synchronization model, as the paper uses it
------------------------------------------------------

The compiler emits exactly two synchronization patterns:

* **Fence epochs** for data movement: scatter (master puts to slaves) →
  fence → compute → collect (slaves put to master) → fence.  Because a
  put only *initiates* its hardware leg, all of a rank's puts inside an
  epoch overlap each other (and any compute issued before the fence) on
  the DMA engine; the fence then pays only the *residual* wait — this is
  the paper's "data from the user buffer can be copied ... without
  interrupting the processor".  :meth:`Win.drain` is the fence's
  drain-own-legs half without the barrier, letting the executor fence
  many windows with a single shared barrier.
* **Lock/accumulate** for reduction combine: each slave takes
  ``MPI_WIN_LOCK`` on the master's scalar window, ``MPI_ACCUMULATE``-s
  its partial, and unlocks.  Exclusive locks serialize the combines;
  the lock resource's contention is visible as ``resource.wait.win.lock``
  metrics when tracing.

Passive-target lock epochs and fence epochs are never mixed on the same
window by generated code; the model does not need ``MPI_WIN_POST`` /
``MPI_WIN_START`` generality.

With a tracer attached (``sim.tracer``), every initiation, fence, drain,
and lock shows up as a span on the calling rank's track — the per-phase
DMA/PIO overlap the paper could only infer is directly visible in the
Chrome-trace export (docs/TRACE_FORMAT.md).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

import numpy as np

from repro.mpi2.exceptions import MpiError
from repro.mpi2.ops import ReduceOp
from repro.sim import AllOf, Event, Resource

__all__ = ["Win"]


class _WinState:
    """Shared state of one window: every rank's exposed buffer."""

    def __init__(self, cluster, buffers: List[np.ndarray]):
        if len(buffers) != cluster.nprocs:
            raise MpiError(
                f"need one buffer per rank ({cluster.nprocs}), got {len(buffers)}"
            )
        for b in buffers:
            if not isinstance(b, np.ndarray) or b.ndim != 1:
                raise MpiError("window buffers must be 1-D numpy arrays")
        self.cluster = cluster
        self.buffers = buffers
        self.locks = [
            Resource(cluster.sim, capacity=1, obs_name=f"win.lock.{r}")
            for r in range(len(buffers))
        ]


class Win:
    """Per-rank handle to a memory window (create via :meth:`create`)."""

    def __init__(self, state: _WinState, comm):
        self._state = state
        self._comm = comm
        self.rank = comm.rank
        #: Open hardware legs: stepwise wire Processes or fast-path
        #: completion Events — both are events with ``triggered``.
        self._outstanding: List[Event] = []
        #: Counters, split by primitive flavour (feeds Table 2's analysis).
        self.puts_contig = 0
        self.puts_strided = 0
        self.gets_contig = 0
        self.gets_strided = 0
        self.bytes_moved = 0
        #: Simulated seconds spent waiting in fences (drain + barrier).
        self.fence_wait_s = 0.0
        #: Mirrors Comm's construction-time tracer cache (hot-path guard).
        self._tracer = comm._tracer

    # -- creation -----------------------------------------------------------
    @classmethod
    def create(cls, comms, buffers: List[np.ndarray]) -> List["Win"]:
        """Collectively create a window over per-rank buffers.

        ``comms`` is the list of per-rank :class:`~repro.mpi2.comm.Comm`
        facades (the runtime holds them all); returns one :class:`Win`
        facade per rank, sharing state.
        """
        if not comms:
            raise MpiError("need at least one communicator")
        state = _WinState(comms[0]._state.cluster, buffers)
        return [cls(state, c) for c in comms]

    # -- local access ---------------------------------------------------------
    @property
    def local(self) -> np.ndarray:
        """This rank's exposed buffer (local loads/stores are free)."""
        return self._state.buffers[self.rank]

    def buffer(self, rank: int) -> np.ndarray:
        """Direct (test/debug) view of any rank's buffer."""
        return self._state.buffers[rank]

    # -- validation -----------------------------------------------------------
    def _check_span(self, target: int, offset: int, count: int, stride: int):
        if not 0 <= target < len(self._state.buffers):
            raise MpiError(f"target rank {target} out of range")
        if count < 0:
            raise MpiError("negative count")
        if stride < 1:
            raise MpiError(f"stride must be >= 1, got {stride}")
        buf = self._state.buffers[target]
        if count and not (0 <= offset and offset + (count - 1) * stride < buf.size):
            raise MpiError(
                f"access [{offset}:{offset + (count - 1) * stride}] outside "
                f"window of size {buf.size} on rank {target}"
            )

    def _indices(self, offset: int, count: int, stride: int) -> slice:
        if stride == 1:
            return slice(offset, offset + count)
        return slice(offset, offset + (count - 1) * stride + 1, stride)

    # -- one-sided operations ----------------------------------------------
    def put(
        self,
        data: Optional[np.ndarray],
        target: int,
        offset: int = 0,
        stride: int = 1,
        count: Optional[int] = None,
        itemsize: int = 8,
    ) -> Generator:
        """MPI_PUT: write ``data`` into ``target``'s window.

        ``stride == 1`` is a contiguous put (DMA); ``stride > 1`` writes
        every ``stride``-th element (programmed I/O).  ``data=None`` with
        an explicit ``count`` performs the hardware leg without moving
        values (the runtime's timing-only mode).
        """
        if data is not None:
            data = np.ascontiguousarray(data).ravel()
            count = data.size
            itemsize = data.itemsize
        elif count is None:
            raise MpiError("put(data=None) requires count")
        self._check_span(target, offset, count, stride)
        tr = self._tracer
        t0 = self._comm.sim.now if tr is not None else 0.0
        if data is not None:
            buf = self._state.buffers[target]
            buf[self._indices(offset, count, stride)] = data
        yield from self._hardware_leg(
            target, count, itemsize, stride, direction="put"
        )
        if tr is not None:
            self._comm._obs_call(
                "MPI_Put", t0,
                {"target": target, "bytes": count * itemsize,
                 "stride": stride},
            )

    def get(
        self,
        target: int,
        offset: int = 0,
        count: int = 1,
        stride: int = 1,
        dtype=None,
    ) -> Generator:
        """MPI_GET: read ``count`` elements from ``target``'s window."""
        self._check_span(target, offset, count, stride)
        tr = self._tracer
        t0 = self._comm.sim.now if tr is not None else 0.0
        buf = self._state.buffers[target]
        values = buf[self._indices(offset, count, stride)].copy()
        yield from self._hardware_leg(
            target, count, buf.itemsize, stride, direction="get"
        )
        if tr is not None:
            self._comm._obs_call(
                "MPI_Get", t0,
                {"target": target, "bytes": count * buf.itemsize,
                 "stride": stride},
            )
        return values

    def accumulate(
        self,
        data: np.ndarray,
        target: int,
        op: ReduceOp,
        offset: int = 0,
        stride: int = 1,
    ) -> Generator:
        """MPI_ACCUMULATE: element-wise ``op`` into the target window."""
        if not isinstance(op, ReduceOp):
            raise MpiError(f"op must be a ReduceOp, got {op!r}")
        data = np.ascontiguousarray(data).ravel()
        count = data.size
        self._check_span(target, offset, count, stride)
        tr = self._tracer
        t0 = self._comm.sim.now if tr is not None else 0.0
        buf = self._state.buffers[target]
        idx = self._indices(offset, count, stride)
        buf[idx] = op(buf[idx], data)
        yield from self._hardware_leg(
            target, count, data.itemsize, stride, direction="put"
        )
        if tr is not None:
            self._comm._obs_call(
                "MPI_Accumulate", t0,
                {"target": target, "bytes": count * data.itemsize,
                 "stride": stride},
            )

    def _hardware_leg(
        self, target: int, count: int, itemsize: int, stride: int, direction: str
    ) -> Generator:
        contiguous = stride == 1
        nbytes = count * itemsize
        _cpu_s, completion = yield from self._state.cluster.rma_start(
            self.rank,
            target,
            nbytes,
            elements=count,
            contiguous=contiguous,
            direction=direction,
        )
        self._outstanding.append(completion)
        self.bytes_moved += nbytes
        if direction == "put":
            if contiguous:
                self.puts_contig += 1
            else:
                self.puts_strided += 1
        else:
            if contiguous:
                self.gets_contig += 1
            else:
                self.gets_strided += 1
        self._comm.comm_s += _cpu_s

    # -- datatype-shaped operations ---------------------------------------
    def put_datatype(
        self,
        data: Optional[np.ndarray],
        target: int,
        datatype,
        offset: int = 0,
        itemsize: int = 8,
    ) -> Generator:
        """MPI_PUT with a derived datatype (MPI_Type_vector et al.).

        The datatype's hardware decomposition drives the transfer modes:
        dense runs ride DMA, blocklength-1 vectors use one strided PIO
        transfer, general vectors issue one DMA transfer per block.
        """
        if data is not None:
            data = np.ascontiguousarray(data).ravel()
            if data.size != datatype.size:
                raise MpiError(
                    f"datatype moves {datatype.size} elements, got {data.size}"
                )
            itemsize = data.itemsize
        consumed = 0
        for rel, count, stride in datatype.segments():
            chunk = None
            if data is not None:
                chunk = data[consumed : consumed + count]
            consumed += count
            yield from self.put(
                chunk,
                target,
                offset=offset + rel,
                stride=stride,
                count=count,
                itemsize=itemsize,
            )

    def get_datatype(
        self, target: int, datatype, offset: int = 0
    ) -> Generator:
        """MPI_GET with a derived datatype; returns the gathered elements."""
        parts = []
        for rel, count, stride in datatype.segments():
            vals = yield from self.get(
                target, offset=offset + rel, count=count, stride=stride
            )
            parts.append(vals)
        return np.concatenate(parts) if parts else np.empty(0)

    # -- synchronization -------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Number of initiated operations whose hardware leg is still open."""
        return sum(1 for p in self._outstanding if not p.triggered)

    def drain(self) -> Generator:
        """Wait for this rank's outstanding hardware legs (no barrier).

        The executor drains every window, then issues one shared barrier —
        semantically a multi-window fence at a fraction of the cost.

        Under an active fault plan this is also where retransmit queues
        flush: a leg's completion event only succeeds once its
        retransmission rounds are done, and it *fails* with a typed
        :class:`~repro.mpi2.exceptions.MpiFaultError` when recovery was
        impossible — the AllOf below propagates that failure out of the
        fence, so no epoch ever closes over an undelivered transfer.
        """
        sim = self._comm.sim
        t0 = sim.now
        open_ops = [p for p in self._outstanding if not p.triggered]
        if open_ops:
            yield AllOf(sim, open_ops)
        self._outstanding.clear()
        self.fence_wait_s += sim.now - t0
        self._comm.comm_s += sim.now - t0
        if self._tracer is not None:
            self._comm._obs_call("win-drain", t0, {"open": len(open_ops)})

    def fence(self) -> Generator:
        """MPI_WIN_FENCE: drain own operations, then barrier."""
        sim = self._comm.sim
        t0 = sim.now
        open_ops = [p for p in self._outstanding if not p.triggered]
        if open_ops:
            yield AllOf(sim, open_ops)
        self._outstanding.clear()
        # Drain time is comm time; barrier() accounts for its own span.
        self._comm.comm_s += sim.now - t0
        yield from self._comm.barrier()
        self.fence_wait_s += sim.now - t0
        if self._tracer is not None:
            self._comm._obs_call("MPI_Win_fence", t0, {"open": len(open_ops)})

    Fence = fence

    def lock(self, target: int) -> Generator:
        """Exclusive lock on ``target``'s window (MPI_WIN_LOCK)."""
        if not 0 <= target < len(self._state.locks):
            raise MpiError(f"target rank {target} out of range")
        tr = self._tracer
        t0 = self._comm.sim.now if tr is not None else 0.0
        yield self._state.locks[target].request()
        if tr is not None:
            self._comm._obs_call("MPI_Win_lock", t0, {"target": target})

    def unlock(self, target: int) -> None:
        """Release the exclusive lock (MPI_WIN_UNLOCK)."""
        self._state.locks[target].release()
