"""Collective operations (mixin for :class:`repro.mpi2.comm.Comm`).

``bcast`` rides the V-Bus hardware broadcast when the cluster provides one
— the paper's §2.2 "we optimize the collective communication ... by making
use of the collective facilities of a V-Bus network card" — and falls back
to a binomial software tree otherwise.  All other collectives are built
from point-to-point transfers through the master-centric patterns the
compiler's data scattering/collecting scheme uses.

Collective calls match across ranks *by call ordinal* (SPMD programs issue
collectives in identical order on every rank); calling different
collectives at the same ordinal raises :class:`MpiError`.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.mpi2.exceptions import MpiError
from repro.mpi2.ops import ReduceOp
from repro.sim import Event

__all__ = ["CollectiveMixin"]

#: Wire size of a zero-payload control message (barrier tokens etc.).
CONTROL_BYTES = 4


class _Slot:
    """Rendezvous state for one collective call ordinal."""

    def __init__(self, kind: str, size: int, sim):
        self.kind = kind
        self.size = size
        self.arrived = 0
        self.finished = 0
        self.data: dict = {}
        self.arrival_event = Event(sim)
        self.release_event = Event(sim)
        self.ready = [Event(sim) for _ in range(size)]


class CollectiveMixin:
    """Collectives; mixed into ``Comm`` (relies on its plumbing)."""

    # -- slot management ------------------------------------------------------
    def _slot(self, kind: str) -> _Slot:
        ordinal = self._coll_ordinal
        self._coll_ordinal += 1
        slots = self._state.slots
        if ordinal not in slots:
            slots[ordinal] = _Slot(kind, self.size, self.sim)
        slot = slots[ordinal]
        if slot.kind != kind:
            raise MpiError(
                f"collective mismatch at ordinal {ordinal}: rank {self.rank} "
                f"called {kind!r} but another rank called {slot.kind!r}"
            )
        return slot

    def _finish(self, slot: _Slot, ordinal_offset: int = 1) -> None:
        slot.finished += 1
        if slot.finished == slot.size:
            # All ranks done with this ordinal; free it.
            for key, val in list(self._state.slots.items()):
                if val is slot:
                    del self._state.slots[key]
                    break

    # -- barrier -----------------------------------------------------------
    def barrier(self, root: int = 0) -> Generator:
        """Master/slave barrier: gather tokens at root, broadcast release."""
        self._check_rank(root, "root")
        slot = self._slot("barrier")
        t0 = self.sim.now
        if self.size > 1:
            if self.rank != root:
                yield from self._transfer(root, CONTROL_BYTES)
            slot.arrived += 1
            if slot.arrived == slot.size:
                slot.arrival_event.succeed()
            if self.rank == root:
                yield slot.arrival_event
                if self._state.cluster.has_hw_broadcast:
                    yield from self._hw_broadcast(CONTROL_BYTES)
                else:
                    for r in range(self.size):
                        if r != root:
                            yield from self._transfer(r, CONTROL_BYTES)
                slot.release_event.succeed()
            else:
                yield slot.release_event
        self.comm_s += self.sim.now - t0
        if self._tracer is not None:
            self._obs_call("MPI_Barrier", t0)
        self._finish(slot)

    Barrier = barrier

    # -- broadcast -----------------------------------------------------------
    def bcast(self, obj: Any = None, root: int = 0) -> Generator:
        """Broadcast; V-Bus hardware bus when available, binomial tree else."""
        self._check_rank(root, "root")
        slot = self._slot("bcast")
        t0 = self.sim.now
        if self.size == 1:
            result = obj
        elif self._state.cluster.has_hw_broadcast:
            if self.rank == root:
                from repro.mpi2.comm import copy_payload, payload_nbytes

                slot.data["payload"] = copy_payload(obj)
                yield from self._hw_broadcast(payload_nbytes(obj))
                slot.release_event.succeed()
                result = obj
            else:
                yield slot.release_event
                from repro.mpi2.comm import copy_payload

                result = copy_payload(slot.data["payload"])
        else:
            result = yield from self._bcast_tree(obj, root, slot)
        self.comm_s += self.sim.now - t0
        if self._tracer is not None:
            self._obs_call("MPI_Bcast", t0, {"root": root})
        self._finish(slot)
        return result

    def _bcast_tree(self, obj: Any, root: int, slot: _Slot) -> Generator:
        """Binomial-tree software broadcast (the no-V-Bus baseline)."""
        from repro.mpi2.comm import copy_payload, payload_nbytes

        size = self.size
        vrank = (self.rank - root) % size
        if vrank == 0:
            payload = copy_payload(obj)
        else:
            payload = yield slot.ready[self.rank]
        nbytes = payload_nbytes(payload)
        mask = 1
        while mask < size:
            if mask > vrank and vrank + mask < size:
                child = (vrank + mask + root) % size
                yield from self._transfer(child, nbytes)
                slot.ready[child].succeed(copy_payload(payload))
            mask <<= 1
        return payload

    Bcast = bcast

    # -- scatter / gather ---------------------------------------------------
    def scatter(self, sendobjs: Optional[List[Any]] = None, root: int = 0) -> Generator:
        """Root distributes ``sendobjs[r]`` to each rank ``r``."""
        self._check_rank(root, "root")
        slot = self._slot("scatter")
        t0 = self.sim.now
        from repro.mpi2.comm import copy_payload, payload_nbytes

        if self.rank == root:
            if sendobjs is None or len(sendobjs) != self.size:
                raise MpiError(
                    f"scatter root needs a list of exactly {self.size} items"
                )
            result = copy_payload(sendobjs[root])
            for r in range(self.size):
                if r == root:
                    continue
                item = sendobjs[r]
                yield from self._transfer(r, payload_nbytes(item))
                slot.ready[r].succeed(copy_payload(item))
        else:
            result = yield slot.ready[self.rank]
        self.comm_s += self.sim.now - t0
        if self._tracer is not None:
            self._obs_call("MPI_Scatter", t0, {"root": root})
        self._finish(slot)
        return result

    Scatter = scatter

    def gather(self, obj: Any, root: int = 0) -> Generator:
        """Every rank contributes; root returns the rank-ordered list."""
        self._check_rank(root, "root")
        slot = self._slot("gather")
        t0 = self.sim.now
        from repro.mpi2.comm import copy_payload, payload_nbytes

        slot.data[self.rank] = copy_payload(obj)
        if self.rank != root:
            yield from self._transfer(root, payload_nbytes(obj))
        slot.arrived += 1
        if slot.arrived == slot.size:
            slot.arrival_event.succeed()
        if self.rank == root:
            yield slot.arrival_event
            result = [slot.data[r] for r in range(self.size)]
        else:
            result = None
        self.comm_s += self.sim.now - t0
        if self._tracer is not None:
            self._obs_call("MPI_Gather", t0, {"root": root})
        self._finish(slot)
        return result

    Gather = gather

    def allgather(self, obj: Any) -> Generator:
        """Gather to rank 0, then broadcast the assembled list."""
        gathered = yield from self.gather(obj, root=0)
        result = yield from self.bcast(gathered, root=0)
        return result

    Allgather = allgather

    # -- reductions ----------------------------------------------------------
    def reduce(self, value: Any, op: ReduceOp, root: int = 0) -> Generator:
        """Reduce to root; returns the folded value at root, None elsewhere."""
        if not isinstance(op, ReduceOp):
            raise MpiError(f"op must be a ReduceOp, got {op!r}")
        contributions = yield from self.gather(value, root)
        if self.rank != root:
            return None
        return op.reduce_all(contributions)

    Reduce = reduce

    def allreduce(self, value: Any, op: ReduceOp) -> Generator:
        folded = yield from self.reduce(value, op, root=0)
        result = yield from self.bcast(folded, root=0)
        return result

    Allreduce = allreduce
