"""MPI error type."""


class MpiError(RuntimeError):
    """Raised for misuse of the MPI-2 API (bad ranks, mismatched collectives,
    operations outside an access epoch, ...)."""
