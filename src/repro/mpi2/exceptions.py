"""MPI error types.

:class:`MpiError` covers API misuse; the :class:`MpiFaultError` family
covers injected-fault outcomes (see :mod:`repro.faults`): an MPI call
either completes with correct data or raises one of these — never
silently corrupts a result, never hangs the scheduler.
"""


class MpiError(RuntimeError):
    """Raised for misuse of the MPI-2 API (bad ranks, mismatched collectives,
    operations outside an access epoch, ...)."""


class MpiFaultError(MpiError):
    """Base for errors caused by an injected fault rather than API misuse."""


class MpiLinkError(MpiFaultError):
    """A wire leg exhausted its retransmission budget (``RetxParams.max_rounds``)."""


class MpiNodeDeadError(MpiFaultError):
    """An operation touched a node killed by the fault plan."""


class MpiWatchdogError(MpiFaultError):
    """The run exceeded the fault plan's ``max_sim_s`` watchdog bound."""
