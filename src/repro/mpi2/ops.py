"""Reduction operations for Reduce/Allreduce (MPI_Op subset)."""

from __future__ import annotations

import numpy as np

__all__ = ["SUM", "PROD", "MIN", "MAX", "ReduceOp"]


class ReduceOp:
    """A named, associative binary reduction."""

    def __init__(self, name: str, fn, identity):
        self.name = name
        self.fn = fn
        self.identity = identity

    def __call__(self, a, b):
        return self.fn(a, b)

    def reduce_all(self, values):
        """Fold an iterable of values (numpy-aware)."""
        it = iter(values)
        try:
            acc = next(it)
        except StopIteration:
            return self.identity
        for v in it:
            acc = self.fn(acc, v)
        return acc

    def __repr__(self):
        return f"<ReduceOp {self.name}>"


SUM = ReduceOp("SUM", lambda a, b: a + b, 0)
PROD = ReduceOp("PROD", lambda a, b: a * b, 1)
MIN = ReduceOp("MIN", lambda a, b: np.minimum(a, b), float("inf"))
MAX = ReduceOp("MAX", lambda a, b: np.maximum(a, b), float("-inf"))
