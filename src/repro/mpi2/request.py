"""Nonblocking request handles (MPI_Request)."""

from __future__ import annotations

from typing import Any, Generator

from repro.sim import Process

__all__ = ["Request"]


class Request:
    """Handle to an in-flight nonblocking operation.

    Wraps the simulation process executing the operation; ``wait`` is a
    generator the owning rank drives with ``yield from``.
    """

    def __init__(self, process: Process):
        self._process = process

    @property
    def complete(self) -> bool:
        return self._process.triggered

    def wait(self) -> Generator:
        """Block until the operation finishes; returns its result."""
        result = yield self._process
        return result

    def test(self) -> bool:
        """Nonblocking completion check."""
        return self.complete
