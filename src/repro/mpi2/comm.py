"""Communicators: two-sided point-to-point messaging and the MPI runtime."""

from __future__ import annotations

import copy
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.mpi2.exceptions import MpiError
from repro.mpi2.request import Request
from repro.mpi2.status import Status
from repro.mpi2.collective import CollectiveMixin
from repro.sim import Event, Simulator
from repro.vbus.cluster import Cluster

__all__ = ["ANY_SOURCE", "ANY_TAG", "Comm", "Mpi2Runtime"]

ANY_SOURCE = -1
ANY_TAG = -1


def payload_nbytes(obj: Any) -> int:
    """Wire size of a payload: exact for buffers, pickled size otherwise."""
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    try:
        return len(pickle.dumps(obj))
    except Exception:
        return 64  # conservative default for unpicklable sentinels


def copy_payload(obj: Any) -> Any:
    """Defensive copy, so sender-side mutation cannot leak across ranks."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, (int, float, complex, str, bytes, bool, type(None))):
        return obj
    return copy.deepcopy(obj)


@dataclass
class _Msg:
    source: int
    tag: int
    nbytes: int
    payload: Any


@dataclass
class _Mailbox:
    pending: List[_Msg] = field(default_factory=list)
    #: (match predicate, event) for recvs posted before their message.
    waiting: List[Tuple[Any, Event]] = field(default_factory=list)


class _CommState:
    """State shared by all per-rank facades of one communicator."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.size = cluster.nprocs
        self.mailboxes = [_Mailbox() for _ in range(self.size)]
        #: Collective slots, keyed by per-rank call ordinal (SPMD order).
        self.slots: Dict[int, Any] = {}

    def deliver(self, dst: int, msg: _Msg) -> None:
        """Hand a fully-transferred message to the destination mailbox."""
        box = self.mailboxes[dst]
        for i, (match, ev) in enumerate(box.waiting):
            if match(msg):
                del box.waiting[i]
                ev.succeed(msg)
                return
        box.pending.append(msg)


def _matcher(source: int, tag: int):
    def match(msg: _Msg) -> bool:
        return (source in (ANY_SOURCE, msg.source)) and (tag in (ANY_TAG, msg.tag))

    return match


class Comm(CollectiveMixin):
    """Per-rank view of a communicator (analogous to ``MPI.COMM_WORLD``).

    All operations are generators driven with ``yield from`` inside a rank's
    simulation process.  ``comm_s`` accumulates the simulated time this rank
    spent inside communication calls — the metric behind the paper's
    Table 2.
    """

    def __init__(self, state: _CommState, rank: int):
        self._state = state
        self.rank = rank
        self._coll_ordinal = 0
        #: Simulated seconds this rank has spent inside MPI calls.
        self.comm_s = 0.0
        #: Message/byte counters for reports.
        self.sent_messages = 0
        self.sent_bytes = 0
        #: Cached at construction so per-call hooks cost one attribute
        #: test when tracing is off — attach tracers (ClusterParams.trace
        #: or sim.tracer) *before* building the MPI runtime.
        self._tracer = state.cluster.sim.tracer

    # -- basics ---------------------------------------------------------
    @property
    def size(self) -> int:
        return self._state.size

    @property
    def sim(self) -> Simulator:
        return self._state.cluster.sim

    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    def _check_rank(self, r: int, what: str = "rank") -> None:
        if not 0 <= r < self.size:
            raise MpiError(f"{what} {r} out of range (size={self.size})")

    def _obs_call(self, name: str, t0: float, args: Optional[dict] = None) -> None:
        """Record a completed MPI call on this rank's track.

        Callers guard with ``if self._tracer is not None`` so the hot
        path pays one attribute test, not a function call, when tracing
        is off.  Emits the ``[t0, now]`` span plus ``mpi.<name>.calls``
        / ``mpi.<name>.s`` metrics.
        """
        tr = self._tracer
        if tr is not None:
            tr.span(("rank", self.rank), name, t0, args=args)
            tr.count(f"mpi.{name}.calls")
            tr.observe(f"mpi.{name}.s", tr.sim.now - t0, "s")

    # -- transfer plumbing ------------------------------------------------
    def _transfer(
        self,
        dst: int,
        nbytes: int,
        *,
        elements: Optional[int] = None,
        contiguous: bool = True,
    ) -> Generator:
        """Point-to-point hardware transfer from this rank to ``dst``."""
        receipt = yield from self._state.cluster.transfer(
            self.rank, dst, nbytes, elements=elements, contiguous=contiguous
        )
        self.sent_messages += 1
        self.sent_bytes += nbytes
        return receipt

    def _hw_broadcast(self, nbytes: int) -> Generator:
        receipt = yield from self._state.cluster.hw_broadcast(self.rank, nbytes)
        self.sent_messages += 1
        self.sent_bytes += nbytes
        return receipt

    # -- two-sided ----------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> Generator:
        """Blocking (eager) send of a Python object or numpy buffer."""
        self._check_rank(dest, "dest")
        t0 = self.sim.now
        nbytes = payload_nbytes(obj)
        msg = _Msg(self.rank, tag, nbytes, copy_payload(obj))
        if dest == self.rank:
            self._state.deliver(dest, msg)
        else:
            yield from self._transfer(dest, nbytes)
            self._state.deliver(dest, msg)
        self.comm_s += self.sim.now - t0
        if self._tracer is not None:
            self._obs_call(
                "MPI_Send", t0, {"dest": dest, "tag": tag, "bytes": nbytes}
            )

    #: Buffer-mode alias (mpi4py capitalizes buffer ops; semantics match here).
    Send = send

    def recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator:
        """Blocking receive; returns the payload (see :meth:`recv_status`)."""
        msg = yield from self._recv_msg(source, tag)
        return msg.payload

    Recv = recv

    def recv_status(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator:
        """Blocking receive; returns ``(payload, Status)``."""
        msg = yield from self._recv_msg(source, tag)
        return msg.payload, Status(msg.source, msg.tag, msg.nbytes)

    def _recv_msg(self, source: int, tag: int) -> Generator:
        if source != ANY_SOURCE:
            self._check_rank(source, "source")
        t0 = self.sim.now
        box = self._state.mailboxes[self.rank]
        match = _matcher(source, tag)
        msg = None
        for i, m in enumerate(box.pending):
            if match(m):
                msg = box.pending.pop(i)
                break
        if msg is None:
            ev = Event(self.sim)
            box.waiting.append((match, ev))
            msg = yield ev
        self.comm_s += self.sim.now - t0
        if self._tracer is not None:
            self._obs_call(
                "MPI_Recv", t0,
                {"source": msg.source, "tag": msg.tag, "bytes": msg.nbytes},
            )
        return msg

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send: starts immediately, completes in the background."""
        proc = self.sim.process(
            self.send(obj, dest, tag), name=f"isend[{self.rank}->{dest}]"
        )
        return Request(proc)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive; ``wait()`` yields the payload."""
        proc = self.sim.process(
            self.recv(source, tag), name=f"irecv[{self.rank}<-{source}]"
        )
        return Request(proc)

    def sendrecv(
        self,
        obj: Any,
        dest: int,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ) -> Generator:
        """Combined send+receive without deadlock (both posted at once)."""
        req = self.isend(obj, dest, sendtag)
        data = yield from self.recv(source, recvtag)
        yield from req.wait()
        return data

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Status]:
        """Nonblocking probe: Status of the first matching pending message."""
        match = _matcher(source, tag)
        for m in self._state.mailboxes[self.rank].pending:
            if match(m):
                return Status(m.source, m.tag, m.nbytes)
        return None


class Mpi2Runtime:
    """Binds a cluster to a world communicator; hands out per-rank views."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self._world = _CommState(cluster)
        self._comms = [Comm(self._world, r) for r in range(cluster.nprocs)]

    @property
    def size(self) -> int:
        return self.cluster.nprocs

    def comm(self, rank: int) -> Comm:
        """The world communicator as seen by ``rank``."""
        if not 0 <= rank < self.size:
            raise MpiError(f"rank {rank} out of range")
        return self._comms[rank]

    def total_comm_s(self) -> float:
        return sum(c.comm_s for c in self._comms)
