"""Receive status, mirroring MPI_Status."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Status:
    """Source, tag, and byte count of a received message."""

    source: int
    tag: int
    count_bytes: int
