"""Tests for the LMAD: construction, algebra, and the paper's examples."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.analysis.access import LoopCtx, ref_lmad, whole_array
from repro.compiler.analysis.lmad import LMAD, Dim
from repro.compiler.frontend.parser import parse

# ---------------------------------------------------------------------------
# Dim / LMAD basics
# ---------------------------------------------------------------------------


def test_dim_count_and_offsets():
    d = Dim(stride=2, span=10)
    assert d.count == 6
    assert d.offsets().tolist() == [0, 2, 4, 6, 8, 10]


def test_dim_validation():
    with pytest.raises(ValueError):
        Dim(stride=-1, span=2)
    with pytest.raises(ValueError):
        Dim(stride=3, span=7)  # span not multiple of stride
    with pytest.raises(ValueError):
        Dim(stride=0, span=4)


def test_from_counts_negative_stride_normalizes():
    # Descending access: base folds to the minimum.
    l = LMAD.from_counts("A", 10, [(-2, 4)])
    assert l.base == 4
    assert l.enumerate().tolist() == [4, 6, 8, 10]


def test_enumerate_multidim():
    l = LMAD.from_counts("A", 0, [(3, 4), (14, 2), (28, 2)])
    pts = l.enumerate()
    expected = sorted(
        k * 3 + j * 14 + i * 28 for k in range(4) for j in range(2) for i in range(2)
    )
    assert pts.tolist() == expected


def test_geometry_properties():
    l = LMAD.from_counts("A", 5, [(2, 3), (10, 2)])
    assert l.min_offset == 5
    assert l.max_offset == 5 + 4 + 10
    assert l.extent == 15
    assert l.nominal_count == 6


def test_mask():
    l = LMAD.from_counts("A", 1, [(2, 3)])
    m = l.mask(8)
    assert m.tolist() == [False, True, False, True, False, True, False, False]
    with pytest.raises(ValueError):
        l.mask(4)


def test_overlaps_and_contains_exact():
    a = LMAD.from_counts("A", 0, [(2, 5)])  # 0 2 4 6 8
    b = LMAD.from_counts("A", 1, [(2, 5)])  # 1 3 5 7 9
    c = LMAD.from_counts("A", 4, [(4, 2)])  # 4 8
    assert not a.overlaps(b)  # interleaved odd/even
    assert a.overlaps(c)
    assert a.contains(c)
    assert not c.contains(a)
    assert not a.overlaps(LMAD.from_counts("B", 0, [(2, 5)]))  # other array


def test_overlaps_gcd_filter():
    a = LMAD.from_counts("A", 0, [(6, 100)])
    b = LMAD.from_counts("A", 3, [(6, 100)])
    assert not a.overlaps(b)  # both ≡ base mod 6, bases differ mod 3


def test_simplify_coalesces_contiguous_dims():
    # Rows of length 4 at stride 1, starting every 4: one dense run.
    l = LMAD.from_counts("A", 0, [(1, 4), (4, 3)])
    s = l.simplify()
    assert len(s.dims) == 1
    assert s.dims[0].stride == 1 and s.dims[0].span == 11
    assert s.is_contiguous
    assert np.array_equal(s.enumerate(), l.enumerate())


def test_simplify_drops_singleton_dims():
    l = LMAD("A", 7, (Dim(0, 0), Dim(2, 4)))
    s = l.simplify()
    assert len(s.dims) == 1


def test_simplify_keeps_gaps():
    l = LMAD.from_counts("A", 0, [(1, 3), (5, 2)])  # 0 1 2, 5 6 7
    s = l.simplify()
    assert not s.is_contiguous
    assert np.array_equal(s.enumerate(), l.enumerate())


def test_bounding():
    l = LMAD.from_counts("A", 3, [(4, 3)])  # 3 7 11
    b = l.bounding()
    assert b.is_contiguous
    assert b.min_offset == 3 and b.max_offset == 11
    assert b.count_distinct() == 9


def test_bounding_single_point():
    l = LMAD("A", 5, ())
    assert l.bounding().enumerate().tolist() == [5]


@settings(max_examples=60)
@given(
    base=st.integers(0, 50),
    dims=st.lists(
        st.tuples(st.integers(-6, 6).filter(lambda s: s != 0), st.integers(1, 6)),
        min_size=0,
        max_size=3,
    ),
)
def test_property_enumerate_matches_bruteforce(base, dims):
    """LMAD enumeration equals brute-force cross-product enumeration."""
    l = LMAD.from_counts("A", base, dims)
    brute = {base}
    for stride, count in dims:
        brute = {b + stride * k for b in brute for k in range(count)}
    assert set(l.enumerate().tolist()) == brute


@settings(max_examples=60)
@given(
    b1=st.integers(0, 30),
    b2=st.integers(0, 30),
    d1=st.lists(st.tuples(st.integers(1, 5), st.integers(1, 5)), max_size=2),
    d2=st.lists(st.tuples(st.integers(1, 5), st.integers(1, 5)), max_size=2),
)
def test_property_overlaps_contains_vs_sets(b1, b2, d1, d2):
    """overlaps/contains agree with set semantics on small descriptors."""
    x = LMAD.from_counts("A", b1, d1)
    y = LMAD.from_counts("A", b2, d2)
    sx = set(x.enumerate().tolist())
    sy = set(y.enumerate().tolist())
    assert x.overlaps(y) == bool(sx & sy)
    assert x.contains(y) == (sy <= sx)


@settings(max_examples=60)
@given(
    base=st.integers(0, 20),
    dims=st.lists(
        st.tuples(st.integers(1, 6), st.integers(1, 5)), min_size=1, max_size=3
    ),
)
def test_property_simplify_preserves_point_set(base, dims):
    l = LMAD.from_counts("A", base, dims)
    assert np.array_equal(l.simplify().enumerate(), l.enumerate())


# ---------------------------------------------------------------------------
# The paper's figures
# ---------------------------------------------------------------------------


def _unit(src):
    return parse(src).main


def test_figure2_stride2_access():
    """Fig 2: DO i=1,11,2 touching A(i) — stride 2, span 10."""
    unit = _unit("""
      PROGRAM P
      REAL*8 A(12)
      DO I = 1, 11, 2
        A(I) = 0.0
      ENDDO
      END
""")
    loop = unit.body[0]
    ctx = LoopCtx("I", 1, 11, 2)
    l = ref_lmad(loop.body[0].lhs, unit.symtab, [ctx])
    assert l.base == 0
    assert l.dims[0].stride == 2 and l.dims[0].span == 10
    assert l.enumerate().tolist() == [0, 2, 4, 6, 8, 10]


def test_figure3_variant_stride_expression():
    """Fig 3: DO i=1,4 touching A(i*2-1) — consistent stride 2."""
    unit = _unit("""
      PROGRAM P
      REAL*8 A(8)
      DO I = 1, 4
        A(I*2-1) = 0.0
      ENDDO
      END
""")
    loop = unit.body[0]
    ctx = LoopCtx("I", 1, 4, 1)
    l = ref_lmad(loop.body[0].lhs, unit.symtab, [ctx])
    assert l.dims[0].stride == 2
    assert l.enumerate().tolist() == [0, 2, 4, 6]


def test_figure4_triple_nest_lmad():
    """Fig 4: REAL A(14,*), A(K, J+2*(I-1)) under DO I/J/K=1,10,3."""
    unit = _unit("""
      PROGRAM P
      REAL*8 A(14,4)
      DO I = 1, 2
        DO J = 1, 2
          DO K = 1, 10, 3
            A(K, J+2*(I-1)) = 0.0
          ENDDO
        ENDDO
      ENDDO
      END
""")
    ctxs = [LoopCtx("I", 1, 2, 1), LoopCtx("J", 1, 2, 1), LoopCtx("K", 1, 10, 3)]
    ref = unit.body[0].body[0].body[0].body[0].lhs
    l = ref_lmad(ref, unit.symtab, ctxs)
    strides = sorted(d.stride for d in l.dims)
    spans = sorted(d.span for d in l.dims)
    assert strides == [3, 14, 28]
    assert spans == [9, 14, 28]
    assert l.base == 0
    assert l.count_distinct() == 16


def test_whole_array_fallback_for_nonaffine():
    unit = _unit("""
      PROGRAM P
      REAL*8 A(10)
      INTEGER IDX(10)
      DO I = 1, 10
        A(IDX(I)) = 0.0
      ENDDO
      END
""")
    ref = unit.body[0].body[0].lhs
    l = ref_lmad(ref, unit.symtab, [LoopCtx("I", 1, 10, 1)])
    assert l.count_distinct() == 10  # whole array
    assert l.is_contiguous


def test_loop_invariant_reference_has_no_dim():
    unit = _unit("""
      PROGRAM P
      REAL*8 A(10)
      DO I = 1, 10
        A(3) = 1.0
      ENDDO
      END
""")
    ref = unit.body[0].body[0].lhs
    l = ref_lmad(ref, unit.symtab, [LoopCtx("I", 1, 10, 1)])
    assert l.dims == ()
    assert l.base == 2


def test_whole_array_helper():
    unit = _unit("""
      PROGRAM P
      REAL*8 B(6,2)
      END
""")
    l = whole_array(unit.symtab.lookup("B"))
    assert l.count_distinct() == 12 and l.is_contiguous


# -- memoized enumeration vs the legacy np.unique reference -----------------
def test_enumeration_matches_legacy_reference():
    from repro.compiler.analysis.lmad import set_legacy_enumeration

    cases = [
        LMAD("A", 0, (Dim(1, 7), Dim(8, 24))),        # dense row-major
        LMAD("A", 5, (Dim(2, 10), Dim(3, 9))),        # overlapping strides
        LMAD("A", 0, (Dim(4, 12), Dim(1, 2), Dim(16, 48))),
        LMAD("A", 100, ()),                            # scalar
        LMAD("A", 0, (Dim(0, 0), Dim(5, 20))),         # degenerate dim
    ]
    for lm in cases:
        fast = lm.enumerate()
        assert not fast.flags.writeable
        try:
            set_legacy_enumeration(True)
            legacy = lm.enumerate()
        finally:
            set_legacy_enumeration(False)
        np.testing.assert_array_equal(fast, legacy)


def test_overlaps_contains_match_legacy_reference():
    from repro.compiler.analysis.lmad import set_legacy_enumeration

    a = LMAD("A", 0, (Dim(2, 10), Dim(3, 9)))
    b = LMAD("A", 1, (Dim(2, 10),))
    c = LMAD("A", 0, (Dim(1, 20),))
    pairs = [(a, b), (a, c), (b, c), (c, a), (c, b)]
    fast = [(x.overlaps(y), x.contains(y)) for x, y in pairs]
    try:
        set_legacy_enumeration(True)
        legacy = [(x.overlaps(y), x.contains(y)) for x, y in pairs]
    finally:
        set_legacy_enumeration(False)
    assert fast == legacy
