"""Tests for the command-line driver."""

import pytest

from repro.tools.cli import main
from repro.workloads import mm, synthetic


@pytest.fixture
def mm_file(tmp_path):
    path = tmp_path / "mm.f"
    path.write_text(mm.source(12))
    return str(path)


def test_cli_compile_plan_and_log(mm_file, capsys):
    assert main(["compile", mm_file, "--nprocs", "4", "--show", "plan", "log"]) == 0
    out = capsys.readouterr().out
    assert "parallelization log" in out
    assert "communication plan" in out
    assert "PARALLEL" in out


def test_cli_compile_fortran_and_avpg(mm_file, capsys):
    assert main(["compile", mm_file, "--show", "fortran", "avpg"]) == 0
    out = capsys.readouterr().out
    assert "MPI_WIN_CREATE" in out
    assert "Valid" in out


def test_cli_run_with_arrays(tmp_path, capsys):
    path = tmp_path / "red.f"
    path.write_text(synthetic.reduction_kernel(32))
    assert main(["run", str(path), "--nprocs", "2", "--arrays", "A"]) == 0
    out = capsys.readouterr().out
    assert "SUM 528" in out
    assert "total time" in out
    assert "A = [" in out


def test_cli_run_timing_and_compare(mm_file, capsys):
    assert main([
        "run", mm_file, "--timing", "--compare-sequential",
        "--granularity", "coarse",
    ]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out


def test_cli_run_unknown_array(mm_file, capsys):
    assert main(["run", mm_file, "--arrays", "NOPE"]) == 0
    assert "no array named NOPE" in capsys.readouterr().out


def test_cli_autotune(mm_file, capsys):
    assert main(["autotune", mm_file, "--metric", "comm_cpu"]) == 0
    out = capsys.readouterr().out
    assert "selected" in out


def test_cli_rejects_bad_granularity(mm_file):
    with pytest.raises(SystemExit):
        main(["compile", mm_file, "--granularity", "chunky"])
