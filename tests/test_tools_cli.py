"""Tests for the command-line driver."""

from pathlib import Path

import pytest

from repro.tools.cli import main
from repro.workloads import mm, synthetic

BADPROG_DIR = Path(__file__).parent / "badprogs"


@pytest.fixture
def mm_file(tmp_path):
    path = tmp_path / "mm.f"
    path.write_text(mm.source(12))
    return str(path)


def test_cli_compile_plan_and_log(mm_file, capsys):
    assert main(["compile", mm_file, "--nprocs", "4", "--show", "plan", "log"]) == 0
    out = capsys.readouterr().out
    assert "parallelization log" in out
    assert "communication plan" in out
    assert "PARALLEL" in out


def test_cli_compile_fortran_and_avpg(mm_file, capsys):
    assert main(["compile", mm_file, "--show", "fortran", "avpg"]) == 0
    out = capsys.readouterr().out
    assert "MPI_WIN_CREATE" in out
    assert "Valid" in out


def test_cli_run_with_arrays(tmp_path, capsys):
    path = tmp_path / "red.f"
    path.write_text(synthetic.reduction_kernel(32))
    assert main(["run", str(path), "--nprocs", "2", "--arrays", "A"]) == 0
    out = capsys.readouterr().out
    assert "SUM 528" in out
    assert "total time" in out
    assert "A = [" in out


def test_cli_run_timing_and_compare(mm_file, capsys):
    assert main([
        "run", mm_file, "--timing", "--compare-sequential",
        "--granularity", "coarse",
    ]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out


def test_cli_run_unknown_array(mm_file, capsys):
    assert main(["run", mm_file, "--arrays", "NOPE"]) == 0
    assert "no array named NOPE" in capsys.readouterr().out


def test_cli_autotune(mm_file, capsys):
    assert main(["autotune", mm_file, "--metric", "comm_cpu"]) == 0
    out = capsys.readouterr().out
    assert "selected" in out


def test_cli_rejects_bad_granularity(mm_file):
    with pytest.raises(SystemExit):
        main(["compile", mm_file, "--granularity", "chunky"])


def test_cli_check_clean_exits_0(mm_file, capsys):
    assert main(["check", mm_file, "--no-cache"]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_check_dirty_exits_2(capsys):
    bad = str(BADPROG_DIR / "uncovered_read.f")
    assert main(["check", bad, "--no-cache"]) == 2
    out = capsys.readouterr().out
    assert "RV101" in out


def test_cli_check_honors_partition_spec(capsys):
    bad = str(BADPROG_DIR / "illegal_split_block.f")
    # The bad split is diagnosed; the auto policy is clean.
    assert main(["check", bad, "--no-cache", "--partition", "block:1"]) == 2
    assert "RV401" in capsys.readouterr().out
    assert main(["check", bad, "--no-cache"]) == 0


def test_cli_run_sanitize_clean_and_dirty(mm_file, capsys):
    assert main(["run", mm_file, "--sanitize"]) == 0
    assert "sanitizer         : clean" in capsys.readouterr().out
    bad = str(BADPROG_DIR / "unfenced_collect.f")
    assert main(["run", bad, "--sanitize"]) == 2
    assert "S-FENCE" in capsys.readouterr().out


def test_cli_sanitize_rejects_timing_mode(mm_file, capsys):
    assert main(["run", mm_file, "--sanitize", "--timing"]) == 2
    assert "value mode" in capsys.readouterr().err


def test_cli_missing_artifacts_exit_2_without_traceback(mm_file, capsys):
    """Unloadable plan/calibration/fault artifacts are CLI errors (exit
    2, message on stderr), never tracebacks."""
    for argv in (
        ["run", mm_file, "--tune-plan", "/no/such/plan.json"],
        ["run", mm_file, "--faults", "/no/such/faults.json"],
        ["autotune", mm_file, "--per-region",
         "--calibration", "/no/such/cal.json"],
    ):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "cannot load" in err


def test_cli_malformed_artifact_exits_2(mm_file, tmp_path, capsys):
    bad = tmp_path / "plan.json"
    bad.write_text("{not json")
    assert main(["run", mm_file, "--tune-plan", str(bad)]) == 2
    assert "cannot load" in capsys.readouterr().err
    # Valid JSON of the wrong kind is equally a clean CLI error.
    bad.write_text('{"kind": "calibration"}')
    assert main(["run", mm_file, "--tune-plan", str(bad)]) == 2
    assert "cannot load" in capsys.readouterr().err
