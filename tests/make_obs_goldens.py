"""Regenerate the observability exporter golden files.

Run after an *intentional* schema change (new span/metric names, new
export fields) and commit the result:

    PYTHONPATH=src python tests/make_obs_goldens.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.obs.export import (  # noqa: E402
    metrics_rows,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_json,
)
from repro.vbus.stats import cluster_metrics_rows  # noqa: E402
from test_obs_tracing import GOLDEN_DIR, _golden_tracer  # noqa: E402


def main() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    cluster = _golden_tracer()
    write_chrome_trace(cluster.tracer, str(GOLDEN_DIR / "obs_trace.json"))
    rows = metrics_rows(cluster.tracer, cluster_metrics_rows(cluster))
    write_metrics_json(rows, str(GOLDEN_DIR / "obs_metrics.json"))
    write_metrics_csv(rows, str(GOLDEN_DIR / "obs_metrics.csv"))
    print(f"wrote goldens under {GOLDEN_DIR}")


if __name__ == "__main__":
    main()
