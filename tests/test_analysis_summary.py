"""Tests for summary sets and classification (paper §4.2, Figure 5)."""

import pytest

from repro.compiler.analysis.summary import (
    READ_ONLY,
    READ_WRITE,
    WRITE_FIRST,
    summarize_loop,
    summarize_statements,
)
from repro.compiler.frontend.lower import lower_program
from repro.compiler.frontend.parser import parse


def unit_of(src):
    return lower_program(parse(src)).main


def test_figure5_triply_nested_classification():
    """Fig 5's shape: A written, B only read, inside DO J/K/I."""
    unit = unit_of("""
      PROGRAM P
      REAL*8 A(100,100,100), B(100,200,101)
      DO J = 1, 100
        DO K = 1, 100
          DO I = 1, 100
            A(I,J,K) = B(I,2*J,K+1)
          ENDDO
        ENDDO
      ENDDO
      END
""")
    loop_j = unit.body[0]
    summary, ctx = summarize_loop(loop_j, unit.symtab)
    a = summary.arrays["A"]
    b = summary.arrays["B"]
    assert a.classification == WRITE_FIRST
    assert b.classification == READ_ONLY
    # The statement-level LMAD of A has strides 1 (I), 100 (J), 10000 (K).
    strides = sorted(d.stride for d in a.writes[0].dims)
    assert strides == [1, 100, 10000]
    # B's J dimension moves with stride 2*100.
    b_strides = sorted(d.stride for d in b.reads[0].dims)
    assert 200 in b_strides


def test_read_write_classification_for_accumulation():
    unit = unit_of("""
      PROGRAM P
      REAL*8 C(10)
      DO I = 1, 10
        C(I) = C(I) + 1.0
      ENDDO
      END
""")
    summary, _ = summarize_loop(unit.body[0], unit.symtab)
    assert summary.arrays["C"].classification == READ_WRITE


def test_write_then_read_is_write_first():
    unit = unit_of("""
      PROGRAM P
      REAL*8 A(10), B(10)
      DO I = 1, 10
        A(I) = 2.0
        B(I) = A(I) * 3.0
      ENDDO
      END
""")
    summary, _ = summarize_loop(unit.body[0], unit.symtab)
    assert summary.arrays["A"].classification == WRITE_FIRST
    assert summary.arrays["B"].classification == WRITE_FIRST


def test_read_different_region_than_written_is_read_write():
    # Reads A(I+1) are not covered by writes A(I) within the iteration.
    unit = unit_of("""
      PROGRAM P
      REAL*8 A(11), B(10)
      DO I = 1, 10
        B(I) = A(I+1)
        A(I) = 0.0
      ENDDO
      END
""")
    summary, _ = summarize_loop(unit.body[0], unit.symtab)
    assert summary.arrays["A"].classification == READ_WRITE


def test_conditional_write_forces_read_write():
    unit = unit_of("""
      PROGRAM P
      REAL*8 A(10)
      INTEGER M
      DO I = 1, 10
        IF (I .GT. 5) THEN
          A(I) = 1.0
        ENDIF
      ENDDO
      END
""")
    summary, _ = summarize_loop(unit.body[0], unit.symtab)
    assert summary.arrays["A"].classification == READ_WRITE


def test_scalar_summaries_track_exposure():
    unit = unit_of("""
      PROGRAM P
      REAL*8 A(10)
      REAL*8 T, S
      DO I = 1, 10
        T = A(I) * 2.0
        A(I) = T
        S = S + T
      ENDDO
      END
""")
    loop = unit.body[0]
    summary = summarize_statements(loop.body, unit.symtab)
    t = summary.scalars["T"]
    assert t.written and not t.exposed_read  # written before read: private
    s = summary.scalars["S"]
    assert s.written and s.exposed_read  # classic reduction shape


def test_loop_indices_not_scalar_summarized():
    unit = unit_of("""
      PROGRAM P
      REAL*8 A(10,10)
      DO I = 1, 10
        DO J = 1, 10
          A(I,J) = 1.0
        ENDDO
      ENDDO
      END
""")
    summary, _ = summarize_loop(unit.body[0], unit.symtab)
    assert "I" not in summary.scalars
    assert "J" not in summary.scalars


def test_triangular_inner_loop_widens_conservatively():
    unit = unit_of("""
      PROGRAM P
      REAL*8 A(10,10)
      DO I = 1, 10
        DO J = 1, I
          A(J,I) = 1.0
        ENDDO
      ENDDO
      END
""")
    summary, _ = summarize_loop(unit.body[0], unit.symtab)
    a = summary.arrays["A"]
    # The widened region must cover everything actually written.
    touched = {(j - 1) + (i - 1) * 10 for i in range(1, 11) for j in range(1, i + 1)}
    covered = set()
    for l in a.writes:
        covered |= set(l.enumerate().tolist())
    assert touched <= covered


def test_print_items_count_as_reads():
    unit = unit_of("""
      PROGRAM P
      REAL*8 A(5)
      DO I = 1, 5
        PRINT *, A(I)
      ENDDO
      END
""")
    summary, _ = summarize_loop(unit.body[0], unit.symtab)
    assert summary.arrays["A"].classification == READ_ONLY


def test_classified_helper():
    unit = unit_of("""
      PROGRAM P
      REAL*8 A(5), B(5), C(5)
      DO I = 1, 5
        A(I) = B(I) + C(I)
        C(I) = C(I) * 2.0
      ENDDO
      END
""")
    summary, _ = summarize_loop(unit.body[0], unit.symtab)
    names = lambda cls: sorted(a.array for a in summary.classified(cls))
    assert names(WRITE_FIRST) == ["A"]
    assert names(READ_ONLY) == ["B"]
    assert names(READ_WRITE) == ["C"]
