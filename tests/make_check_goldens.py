"""Regenerate the static-verifier golden CheckReports.

Run after an intentional diagnostic change (new code, reworded detail,
schema bump — remember to bump CHECK_SCHEMA_VERSION):

    PYTHONPATH=src python tests/make_check_goldens.py

Each tests/badprogs program pins its full ``CheckReport.to_jsonable()``
bytes under tests/golden/check_<stem>.json (docs/CHECK.md).
"""

import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.sweep.cache import canonical_json  # noqa: E402
from repro.tools.check import check_source  # noqa: E402

BADPROG_DIR = Path(__file__).parent / "badprogs"
GOLDEN_DIR = Path(__file__).parent / "golden"


def main() -> None:
    manifest = json.loads((BADPROG_DIR / "manifest.json").read_text())
    for fname, spec in manifest.items():
        source = (BADPROG_DIR / fname).read_text()
        report = check_source(source, cache_dir=None, **spec["options"])
        stem = os.path.splitext(fname)[0]
        out = GOLDEN_DIR / f"check_{stem}.json"
        out.write_text(canonical_json(report.to_jsonable()) + "\n")
        print(f"wrote {out} ({', '.join(sorted(report.codes()))})")


if __name__ == "__main__":
    main()
