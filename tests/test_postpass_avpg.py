"""Tests for the AVPG (paper §5.2, Figure 7)."""

from repro.compiler.analysis.parallel import detect_parallelism
from repro.compiler.frontend.lower import lower_program
from repro.compiler.frontend.parser import parse
from repro.compiler.postpass.avpg import (
    INVALID,
    PROPAGATE,
    VALID,
    build_avpg,
)
from repro.compiler.postpass.spmd import build_regions
from repro.workloads import synthetic


def graph_for(src, live_out=None):
    unit = lower_program(parse(src)).main
    detect_parallelism(unit)
    regions = build_regions(unit.body)
    return build_avpg(regions, unit.symtab, live_out=live_out)


def test_figure7_attributes():
    """The Figure 7 pattern over four loops and arrays A, B, C (+D)."""
    g = graph_for(synthetic.avpg_chain(16), live_out={"D"})
    # Node order: loop0 (A,B), loop1 (C), loop2 (C->D), loop3 (A->D).
    attrs = {arr: [n.attrs[arr] for n in g.nodes] for arr in g.arrays}
    assert attrs["A"] == [VALID, PROPAGATE, PROPAGATE, VALID]
    assert attrs["B"] == [VALID, INVALID, INVALID, INVALID]
    assert attrs["C"] == [PROPAGATE, VALID, VALID, INVALID]
    assert attrs["D"] == [PROPAGATE, PROPAGATE, VALID, VALID]


def test_figure7_eliminated_edge_for_dead_array():
    g = graph_for(synthetic.avpg_chain(16), live_out={"D"})
    elim = g.eliminated_edges()
    assert (0, 1, "B") in elim  # Valid -> Invalid right after loop 0
    assert all(arr != "A" for _a, _b, arr in elim)


def test_figure7_delayed_span_for_propagating_array():
    g = graph_for(synthetic.avpg_chain(16), live_out={"D"})
    spans = g.delayed_spans()
    assert (0, 3, "A") in spans  # A: valid at 0, propagates, valid at 3


def test_default_live_out_keeps_everything_alive():
    g = graph_for(synthetic.avpg_chain(16))  # live_out=None
    # With all arrays observable at exit, nothing is Invalid.
    for n in g.nodes:
        for arr in g.arrays:
            assert n.attrs[arr] != INVALID
    assert g.eliminated_edges() == []


def test_reads_after():
    g = graph_for(synthetic.avpg_chain(16), live_out=set())
    loop_ids = [n.region_id for n in g.nodes]
    assert g.reads_after(loop_ids[0], "A")  # A read in node 3
    assert not g.reads_after(loop_ids[0], "B")  # B never read again
    assert g.reads_after(loop_ids[1], "C")  # C read in node 2
    assert not g.reads_after(loop_ids[3], "D")


def test_reads_after_respects_live_out():
    g = graph_for(synthetic.avpg_chain(16), live_out={"B"})
    assert g.reads_after(g.nodes[0].region_id, "B")


def test_back_edge_liveness_in_seq_loop():
    """An array read earlier in a repeating time loop is live across it."""
    g = graph_for("""
      PROGRAM P
      PARAMETER (N = 8, STEPS = 4)
      REAL*8 A(N), B(N)
      INTEGER I, T
      DO T = 1, STEPS
        DO I = 1, N
          B(I) = A(I) + 1.0
        ENDDO
        DO I = 1, N
          A(I) = B(I) * 0.5
        ENDDO
      ENDDO
      END
""", live_out=set())
    # The A-writing loop is the last node, but A is read by the first node
    # on the next time step: still live.
    last = g.nodes[-1]
    assert g.reads_after(last.region_id, "A")


def test_uses_record_reads_and_writes():
    g = graph_for(synthetic.avpg_chain(8), live_out=set())
    n3 = g.nodes[3]  # D(I) = D(I) + A(I)
    assert n3.uses["D"] == (True, True)
    assert n3.uses["A"] == (True, False)
