"""Tests for MPI derived datatypes and datatype-shaped window ops."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi2 import Mpi2Runtime, MpiError
from repro.mpi2.datatypes import Contiguous, Vector
from repro.mpi2.window import Win
from repro.vbus import build_cluster


def test_contiguous_descriptor():
    t = Contiguous(5)
    assert t.size == 5 and t.extent == 5
    assert t.indices(3).tolist() == [3, 4, 5, 6, 7]
    assert t.segments() == [(0, 5, 1)]
    with pytest.raises(MpiError):
        Contiguous(0)


def test_vector_descriptor():
    t = Vector(count=3, blocklength=2, stride=5)
    assert t.size == 6
    assert t.extent == 2 * 5 + 2
    assert t.indices().tolist() == [0, 1, 5, 6, 10, 11]
    assert t.segments() == [(0, 2, 1), (5, 2, 1), (10, 2, 1)]


def test_vector_blocklength_one_is_strided():
    t = Vector(count=4, blocklength=1, stride=3)
    assert t.segments() == [(0, 4, 3)]


def test_vector_dense_degenerate():
    t = Vector(count=4, blocklength=2, stride=2)
    assert t.segments() == [(0, 8, 1)]


def test_vector_validation():
    with pytest.raises(MpiError):
        Vector(count=2, blocklength=3, stride=2)  # overlapping blocks
    with pytest.raises(MpiError):
        Vector(count=0, blocklength=1, stride=1)


@settings(max_examples=50)
@given(
    count=st.integers(1, 6),
    blocklength=st.integers(1, 4),
    extra=st.integers(0, 4),
    offset=st.integers(0, 5),
)
def test_property_segments_cover_indices(count, blocklength, extra, offset):
    """The hardware decomposition touches exactly the type's indices."""
    t = Vector(count=count, blocklength=blocklength, stride=blocklength + extra)
    from_segments = sorted(
        offset + rel + k * stride
        for rel, n, stride in t.segments()
        for k in range(n)
    )
    assert from_segments == sorted(t.indices(offset).tolist())


def run_with_window(size, fn):
    cluster = build_cluster(2)
    runtime = Mpi2Runtime(cluster)
    comms = [runtime.comm(0), runtime.comm(1)]
    wins = Win.create(comms, [np.zeros(size), np.zeros(size)])
    results = {}

    def make(r):
        def body():
            results[r] = yield from fn(comms[r], wins[r], r)

        return body

    for r in range(2):
        cluster.sim.process(make(r)(), name=f"rank{r}")
    cluster.sim.run()
    return results, wins


def test_put_datatype_vector():
    t = Vector(count=3, blocklength=2, stride=4)

    def body(comm, win, rank):
        if rank == 0:
            yield from win.put_datatype(np.arange(1.0, 7.0), 1, t, offset=2)
        yield from win.fence()
        return win.local.copy()

    results, wins = run_with_window(16, body)
    expected = np.zeros(16)
    expected[[2, 3, 6, 7, 10, 11]] = [1, 2, 3, 4, 5, 6]
    assert np.array_equal(results[1], expected)
    # Three blocks -> three contiguous DMA puts.
    assert wins[0].puts_contig == 3 and wins[0].puts_strided == 0


def test_put_datatype_strided_uses_pio():
    t = Vector(count=4, blocklength=1, stride=3)

    def body(comm, win, rank):
        if rank == 0:
            yield from win.put_datatype(np.ones(4), 1, t)
        yield from win.fence()
        return None

    _results, wins = run_with_window(16, body)
    assert wins[0].puts_strided == 1


def test_put_datatype_size_mismatch():
    t = Contiguous(4)

    def body(comm, win, rank):
        if rank == 0:
            with pytest.raises(MpiError):
                yield from win.put_datatype(np.ones(3), 1, t)
        yield from win.fence()
        return None

    run_with_window(8, body)


def test_get_datatype_roundtrip():
    t = Vector(count=2, blocklength=3, stride=5)

    def body(comm, win, rank):
        win.local[:] = rank * 100 + np.arange(win.local.size)
        yield from win.fence()
        out = None
        if rank == 1:
            out = yield from win.get_datatype(0, t, offset=1)
        yield from win.fence()
        return out

    results, _wins = run_with_window(16, body)
    assert results[1].tolist() == [1, 2, 3, 6, 7, 8]
