"""Per-region mixed-grain plans: correctness, tuning, caching, CLI.

The granularity of a region changes *how* data moves, never *what* ends
up in the arrays — so every mixed-grain plan must produce numeric state
bit-identical to the single-grain oracles, healthy or faulted.  On top
of that invariant, the per-region tuner's plan must never lose to the
best global grain, its plan cache must round-trip byte-identically, and
the CLI artifact must drive ``repro run --tune-plan``.
"""

import json

import numpy as np
import pytest

from repro.compiler.pipeline import CompileOptions, compile_source
from repro.compiler.postpass.granularity import GRAINS
from repro.faults.plan import FaultPlan, FaultSpec
from repro.runtime.executor import run_program
from repro.sweep.cache import canonical_json
from repro.sweep.runner import BACKENDS
from repro.tools.tuneplan import TunePlan, tune_per_region
from repro.vbus import params as P
from repro.workloads import source_for

#: Two parallel regions with opposing grain preferences (see
#: ``synthetic.crossover_kernel``): the canonical mixed-plan workload.
XOVER = source_for("XOVER-64")

#: Multi-region stencil (region ids 0, 2, 4, 5 at these parameters).
JACOBI = source_for("JACOBI-32x3")


def _digest(source, options, faults=None, backend="vbus"):
    params = P.cluster_for(
        options.nprocs, getattr(P, BACKENDS[backend])
    )
    prog = compile_source(source, options=options)
    rep = run_program(
        prog, cluster_params=params, execute=True, faults=faults
    )
    return rep.array_digest()


# ------------------------------------------------- CompileOptions


def test_grain_map_canonicalizes_and_validates():
    a = CompileOptions(nprocs=4, granularity="fine", grain_map={2: "coarse", 0: "middle"})
    b = CompileOptions(nprocs=4, granularity="fine", grain_map=[(0, "middle"), (2, "coarse")])
    assert a == b and hash(a) == hash(b)
    assert a.grain_map == ((0, "middle"), (2, "coarse"))
    assert a.mixed_grain
    assert a.grain_for(0) == "middle"
    assert a.grain_for(2) == "coarse"
    assert a.grain_for(7) == "fine"  # falls back to the default grain
    # Empty maps normalize to None: the options stay single-grain.
    c = CompileOptions(nprocs=4, granularity="fine", grain_map={})
    assert c.grain_map is None and not c.mixed_grain
    with pytest.raises(ValueError):
        CompileOptions(grain_map={-1: "fine"})
    with pytest.raises(ValueError):
        CompileOptions(grain_map={0: "chunky"})
    with pytest.raises(ValueError):
        CompileOptions(grain_map=[(0, "fine"), (0, "coarse")])


# ------------------------------------------------- bit-identical runs


@pytest.mark.parametrize(
    "grain_map",
    [
        {1: "coarse"},
        {2: "coarse"},
        {1: "middle", 2: "coarse"},
        {1: "coarse", 2: "fine"},
    ],
)
def test_xover_mixed_plans_match_single_grain_oracles(grain_map):
    oracle = {
        g: _digest(XOVER, CompileOptions(nprocs=4, granularity=g))
        for g in GRAINS
    }
    # Granularity is results-invariant to begin with ...
    assert len(set(oracle.values())) == 1
    # ... and every mixed plan lands on the same digest.
    mixed = _digest(
        XOVER,
        CompileOptions(nprocs=4, granularity="fine", grain_map=grain_map),
    )
    assert mixed == oracle["fine"]


def test_jacobi_mixed_plan_matches_oracle_on_gige():
    opts = CompileOptions(
        nprocs=4, granularity="fine", grain_map={0: "coarse", 4: "middle"}
    )
    assert _digest(JACOBI, opts, backend="gige") == _digest(
        JACOBI, CompileOptions(nprocs=4, granularity="fine"), backend="gige"
    )


def test_mixed_plan_matches_oracle_under_active_faults():
    plan = FaultPlan(
        seed=23, specs=(FaultSpec(kind="drop", rate=0.03),), max_sim_s=10.0
    )
    clean = _digest(XOVER, CompileOptions(nprocs=4, granularity="fine"))
    faulted = _digest(
        XOVER,
        CompileOptions(
            nprocs=4, granularity="fine", grain_map={2: "coarse"}
        ),
        faults=plan,
    )
    assert faulted == clean


def test_executor_report_carries_grain_map():
    opts = CompileOptions(nprocs=4, granularity="fine", grain_map={2: "coarse"})
    prog = compile_source(XOVER, options=opts)
    rep = run_program(prog, execute=False)
    assert rep.granularity == "mixed"
    assert rep.grain_map == {2: "coarse"}
    assert rep.to_jsonable()["grain_map"] == {"2": "coarse"}
    # Single-grain rows keep the pre-PR7 shape (no key at all).
    plain = run_program(
        compile_source(XOVER, nprocs=4, granularity="fine"), execute=False
    )
    assert "grain_map" not in plain.to_jsonable()


# ------------------------------------------------- the tuner


def _comm(source, options, backend):
    params = P.cluster_for(options.nprocs, getattr(P, BACKENDS[backend]))
    prog = compile_source(source, options=options)
    return run_program(prog, cluster_params=params, execute=False).comm_max_s


@pytest.mark.parametrize("backend", ["gige", "vbus"])
def test_tuned_plan_never_loses_to_globals(backend):
    plan = tune_per_region(
        XOVER, nprocs=4, metric="comm", backend=backend, cache_dir=None
    )
    tuned = _comm(XOVER, plan.options(), backend)
    for g in GRAINS:
        glob = _comm(
            XOVER, CompileOptions(nprocs=4, granularity=g), backend
        )
        assert tuned <= glob


def test_tuned_plan_strictly_beats_globals_on_gige():
    """The acceptance cell: per-region disagreement -> strict comm win."""
    src = source_for("XOVER-256")
    plan = tune_per_region(
        src, nprocs=4, metric="comm", backend="gige", cache_dir=None
    )
    assert plan.mixed  # regions genuinely disagree
    tuned = _comm(src, plan.options(), "gige")
    for g in GRAINS:
        glob = _comm(src, CompileOptions(nprocs=4, granularity=g), "gige")
        assert tuned < glob


def test_uniform_preference_compresses_to_global_plan():
    # MM has one parallel region: the plan must stay single-grain.
    plan = tune_per_region(
        source_for("MM-16"), nprocs=4, backend="gige", cache_dir=None
    )
    assert not plan.mixed
    assert plan.options().grain_map is None


def test_tuner_validates_inputs():
    with pytest.raises(ValueError):
        tune_per_region(XOVER, metric="vibes", cache_dir=None)
    with pytest.raises(ValueError):
        tune_per_region(XOVER, epsilon=1.5, cache_dir=None)
    with pytest.raises(ValueError):
        tune_per_region(XOVER, backend="myrinet", cache_dir=None)


# ------------------------------------------------- plan cache + artifact


def test_plan_cache_warm_hit_is_byte_identical(tmp_path):
    cache = str(tmp_path / "cache")
    cold = tune_per_region(XOVER, nprocs=4, backend="gige", cache_dir=cache)
    warm = tune_per_region(XOVER, nprocs=4, backend="gige", cache_dir=cache)
    assert not cold.cached and warm.cached
    assert canonical_json(cold.to_jsonable()) == canonical_json(
        warm.to_jsonable()
    )
    p_cold, p_warm = tmp_path / "cold.json", tmp_path / "warm.json"
    cold.save(str(p_cold))
    warm.save(str(p_warm))
    assert p_cold.read_bytes() == p_warm.read_bytes()


def test_tuneplan_json_round_trip(tmp_path):
    plan = tune_per_region(XOVER, nprocs=4, backend="gige", cache_dir=None)
    path = str(tmp_path / "plan.json")
    plan.save(path)
    loaded = TunePlan.load(path)
    assert loaded == plan
    assert loaded.options() == plan.options()
    with pytest.raises(ValueError):
        TunePlan.from_jsonable({"kind": "nonsense"})


def test_cli_round_trip(tmp_path, capsys):
    from repro.tools.cli import main

    plan_path = str(tmp_path / "plan.json")
    assert main(
        [
            "autotune", "XOVER-64", "--per-region", "--backend", "gige",
            "--plan-out", plan_path,
            "--cache-dir", str(tmp_path / "cache"),
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "per-region tune plan" in out
    assert main(
        [
            "run", "XOVER-64", "--backend", "gige", "--timing",
            "--tune-plan", plan_path,
        ]
    ) == 0
    assert "mixed" in capsys.readouterr().out


# ------------------------------------------------- sweep integration


def test_sweep_job_honors_tune_plan():
    from repro.sweep.cache import job_key
    from repro.sweep.runner import run_job

    plan = tune_per_region(XOVER, nprocs=4, backend="gige", cache_dir=None)
    base = {
        "workload": "XOVER-64", "nprocs": 4, "backend": "gige",
        "granularity": plan.default_grain, "fast_path": True,
        "execute": True, "faults": None, "seed": None,
    }
    tuned_cfg = dict(base)
    tuned_cfg["tune_plan"] = {
        str(rid): g for rid, g in plan.grain_map.items()
    }
    plain = run_job(base, job_key(base))
    tuned = run_job(tuned_cfg, job_key(tuned_cfg))
    assert plain["status"] == tuned["status"] == "ok"
    assert (
        tuned["result"]["array_digest"] == plain["result"]["array_digest"]
    )
    if plan.mixed:
        assert tuned["result"]["granularity"] == "mixed"
        assert tuned["key"] != plain["key"]


def test_grid_validates_tune_plan():
    from repro.sweep.grid import SweepConfigError, expand_grid

    good = {
        "axes": {"workload": ["XOVER-64"]},
        "defaults": {"tune_plan": {"2": "coarse"}},
    }
    cfgs = expand_grid(good)
    assert cfgs[0]["tune_plan"] == {"2": "coarse"}
    with pytest.raises(SweepConfigError):
        expand_grid(
            {
                "axes": {"workload": ["XOVER-64"]},
                "defaults": {"tune_plan": {"2": "chunky"}},
            }
        )
    with pytest.raises(SweepConfigError):
        expand_grid(
            {
                "axes": {"workload": ["XOVER-64"]},
                "defaults": {"tune_plan": {}},
            }
        )
