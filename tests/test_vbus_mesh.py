"""Tests for mesh topology and XY routing."""

import pytest
from hypothesis import given, strategies as st

from repro.vbus.mesh import MeshTopology


def test_rank_coord_roundtrip():
    topo = MeshTopology(3, 4)
    for rank in range(12):
        assert topo.rank(topo.coord(rank)) == rank


def test_coord_layout_row_major():
    topo = MeshTopology(2, 3)
    assert topo.coord(0) == (0, 0)
    assert topo.coord(2) == (0, 2)
    assert topo.coord(3) == (1, 0)
    assert topo.coord(5) == (1, 2)


def test_bad_shapes_and_ranks():
    with pytest.raises(ValueError):
        MeshTopology(0, 3)
    topo = MeshTopology(2, 2)
    with pytest.raises(ValueError):
        topo.coord(4)
    with pytest.raises(ValueError):
        topo.rank((2, 0))


def test_neighbors_corner_edge_center():
    topo = MeshTopology(3, 3)
    assert sorted(topo.neighbors(0)) == [1, 3]  # corner
    assert sorted(topo.neighbors(1)) == [0, 2, 4]  # edge
    assert sorted(topo.neighbors(4)) == [1, 3, 5, 7]  # center


def test_links_are_directed_pairs():
    topo = MeshTopology(2, 2)
    links = set(topo.links())
    assert (0, 1) in links and (1, 0) in links
    assert (0, 3) not in links  # not adjacent
    assert len(links) == 8  # 4 undirected edges x 2 directions


def test_route_x_then_y():
    topo = MeshTopology(3, 3)
    # 0=(0,0) -> 8=(2,2): X first to (0,2), then Y down to (2,2).
    path = topo.route(0, 8)
    assert path == [(0, 1), (1, 2), (2, 5), (5, 8)]


def test_route_same_node_empty():
    assert MeshTopology(2, 2).route(1, 1) == []


def test_route_negative_directions():
    topo = MeshTopology(2, 3)
    # 5=(1,2) -> 0=(0,0): X decreasing then Y decreasing.
    path = topo.route(5, 0)
    assert path == [(5, 4), (4, 3), (3, 0)]


def test_hops_is_manhattan():
    topo = MeshTopology(4, 4)
    assert topo.hops(0, 15) == 6
    assert topo.hops(5, 5) == 0
    assert topo.diameter == 6


@given(st.integers(1, 5), st.integers(1, 5), st.data())
def test_route_connects_and_has_hop_length(rows, cols, data):
    """Property: routes are adjacent-step chains of Manhattan length."""
    topo = MeshTopology(rows, cols)
    src = data.draw(st.integers(0, topo.nnodes - 1))
    dst = data.draw(st.integers(0, topo.nnodes - 1))
    path = topo.route(src, dst)
    assert len(path) == topo.hops(src, dst)
    at = src
    for u, v in path:
        assert u == at
        assert v in topo.neighbors(u)
        at = v
    if path:
        assert at == dst


# -- XY-route memoization ----------------------------------------------------
def test_route_cache_hits_and_identity():
    topo = MeshTopology(2, 4)
    first = topo.route(0, 7)
    again = topo.route(0, 7)
    assert again is first  # memoized object, not a recomputation
    stats = topo.route_cache_stats()
    assert stats["misses"] == 1 and stats["hits"] == 1
    assert stats["hit_rate"] == 0.5


def test_route_cache_returns_correct_routes():
    topo = MeshTopology(3, 3)
    for src in range(topo.nnodes):
        for dst in range(topo.nnodes):
            path = topo.route(src, dst)
            assert len(path) == topo.hops(src, dst)
            # warmed: every pair resolves from the cache now
    warm = topo.route_cache_stats()["misses"]
    for src in range(topo.nnodes):
        for dst in range(topo.nnodes):
            topo.route(src, dst)
    assert topo.route_cache_stats()["misses"] == warm
