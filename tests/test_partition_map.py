"""Per-region partition plans: §5.3 overrides, invariance, tuner, CLI.

The partition strategy of a region changes which rank runs which
iteration — never what the iterations compute — so every strategy mix
must produce numeric state bit-identical to the §5.3 auto oracle,
healthy or faulted.  On top of that invariant, the joint grain x
strategy tuner must never lose to the best uniform variant (on MM over
GigE that means out-tuning the paper's own rule), its plan artifacts
must round-trip byte-identically through the plan cache and the CLI,
and bad overrides must surface as :class:`PartitionError` with region
provenance rather than a traceback.
"""

import pytest

from repro.compiler.pipeline import CompileOptions, compile_source
from repro.compiler.postpass.granularity import GRAINS
from repro.compiler.postpass.partition import STRATEGIES, PartitionError
from repro.faults.plan import FaultPlan, FaultSpec
from repro.runtime.executor import run_program
from repro.sweep.cache import canonical_json
from repro.sweep.runner import BACKENDS
from repro.tools.tuneplan import TunePlan, tune_per_region
from repro.vbus import params as P
from repro.workloads import source_for

#: Triangular accumulation + rectangular stencil with opposing §5.3
#: preferences (see ``synthetic.partition_crossover_kernel``).
PXOVER = source_for("PXOVER-16")

FAULTS = FaultPlan(
    seed=29, specs=(FaultSpec(kind="drop", rate=0.03),), max_sim_s=10.0
)


def _run(source, options, backend="vbus", faults=None, execute=True):
    params = P.cluster_for(options.nprocs, getattr(P, BACKENDS[backend]))
    prog = compile_source(source, options=options)
    return run_program(
        prog, cluster_params=params, execute=execute, faults=faults
    )


def _digest(source, options, **kw):
    return _run(source, options, **kw).array_digest()


# ------------------------------------------------- CompileOptions


def test_partition_map_canonicalizes_and_validates():
    a = CompileOptions(nprocs=4, partition_map={2: "cyclic", 0: "block:1"})
    b = CompileOptions(
        nprocs=4, partition_map=[(0, "block:1"), (2, "cyclic")]
    )
    assert a == b and hash(a) == hash(b)
    assert a.partition_map == ((0, "block:1"), (2, "cyclic"))
    assert a.mixed_partition
    assert a.partition_for(0) == "block:1"
    assert a.partition_for(2) == "cyclic"
    assert a.partition_for(7) == "auto"  # falls back to the global spec
    # Empty maps normalize to None: the options stay uniform.
    c = CompileOptions(nprocs=4, partition_map={})
    assert c.partition_map is None and not c.mixed_partition
    with pytest.raises(ValueError):
        CompileOptions(partition_map={-1: "block"})
    with pytest.raises(ValueError):
        CompileOptions(partition_map={0: "zigzag"})
    with pytest.raises(ValueError):
        CompileOptions(partition_map=[(0, "block"), (0, "cyclic")])
    with pytest.raises(ValueError):
        CompileOptions(partition="diagonal")
    # Global split-dim specs are legal CompileOptions values.
    assert CompileOptions(partition="block:1").partition == "block:1"


# ------------------------------------------------- bit-identical runs


@pytest.mark.parametrize("backend", ["vbus", "gige"])
def test_pxover_strategies_match_auto_oracle(backend):
    oracle = _digest(
        PXOVER, CompileOptions(nprocs=4, partition="auto"), backend=backend
    )
    for s in STRATEGIES:
        assert (
            _digest(
                PXOVER,
                CompileOptions(nprocs=4, partition=s),
                backend=backend,
            )
            == oracle
        )
    # A hand-mixed per-region override lands on the same digest too.
    mixed = _digest(
        PXOVER,
        CompileOptions(
            nprocs=4, partition_map={0: "block", 1: "cyclic"}
        ),
        backend=backend,
    )
    assert mixed == oracle


def test_partition_mix_matches_oracle_under_active_faults():
    clean = _digest(PXOVER, CompileOptions(nprocs=4))
    for options in (
        CompileOptions(nprocs=4, partition="cyclic"),
        CompileOptions(nprocs=4, partition_map={0: "block"}),
    ):
        assert _digest(PXOVER, options, faults=FAULTS) == clean


def test_split_dim_partition_matches_oracle():
    # MM's rectangular nest is perfect: splitting dimension 1 is a
    # genuinely different comm shape that must still digest identically.
    src = source_for("MM-16")
    oracle = _digest(src, CompileOptions(nprocs=4))
    assert _digest(src, CompileOptions(nprocs=4, partition="block:1")) == oracle
    assert _digest(src, CompileOptions(nprocs=4, partition="cyclic:1")) == oracle


def test_executor_report_carries_partition():
    rep = _run(
        PXOVER,
        CompileOptions(nprocs=4, partition_map={1: "block"}),
        execute=False,
    )
    assert rep.partition == "auto"
    assert rep.partition_map == {1: "block"}
    assert rep.to_jsonable()["partition_map"] == {"1": "block"}
    # Default (auto, no overrides) rows keep the pre-PR8 byte shape.
    plain = _run(PXOVER, CompileOptions(nprocs=4), execute=False)
    doc = plain.to_jsonable()
    assert "partition" not in doc and "partition_map" not in doc


# ------------------------------------------------- PartitionError


def test_partition_error_carries_provenance():
    with pytest.raises(PartitionError) as err:
        compile_source(
            source_for("MM-16"),
            options=CompileOptions(nprocs=4, partition_map={0: "block:7"}),
        )
    assert err.value.region_id == 0
    assert "region 0" in str(err.value)
    assert "split dimension 7" in str(err.value)


def test_cli_surfaces_partition_error(tmp_path, capsys):
    from repro.tools.cli import main

    assert main(["run", "MM-16", "--partition", "block:7"]) == 2
    msg = capsys.readouterr().err
    assert msg.startswith("partition:") and "region 0" in msg
    # Syntactically bad specs die in argparse, before compilation.
    with pytest.raises(SystemExit):
        main(["run", "MM-16", "--partition", "zigzag"])


# ------------------------------------------------- the joint tuner


def _uniform_comms(source, backend):
    out = {}
    for g in GRAINS:
        for s in ("auto",) + STRATEGIES:
            rep = _run(
                source,
                CompileOptions(nprocs=4, granularity=g, partition=s),
                backend=backend,
                execute=False,
            )
            out[f"{g}/{s}"] = rep.comm_max_s
    return out


@pytest.mark.parametrize("spec,backend", [
    ("PXOVER-32", "gige"),
    ("MM-32", "gige"),
    ("MM-32", "vbus"),
])
def test_joint_plan_never_loses_to_any_uniform_variant(spec, backend):
    src = source_for(spec)
    plan = tune_per_region(
        src, nprocs=4, metric="comm", backend=backend, cache_dir=None,
        tune_partition=True,
    )
    tuned = _run(
        src, plan.options(), backend=backend, execute=False
    ).comm_max_s
    best = min(_uniform_comms(src, backend).values())
    assert tuned <= best * (1 + 1e-9)


def test_joint_tuner_out_tunes_the_paper_rule_on_mm_gige():
    """MM is rectangular, so §5.3 says block — but on switched GigE at
    small n the block scatter serializes through the master's NIC and
    cyclic wins by ~3x.  The tuner must override auto."""
    src = source_for("MM-32")
    plan = tune_per_region(
        src, nprocs=4, metric="comm", backend="gige", cache_dir=None,
        tune_partition=True,
    )
    assert plan.partition_map == {0: "cyclic"}
    tuned = _run(src, plan.options(), backend="gige", execute=False)
    auto = _run(
        src, CompileOptions(nprocs=4), backend="gige", execute=False
    )
    assert tuned.comm_max_s < auto.comm_max_s


def test_family_flip_probe_decides_mm_at_larger_n():
    """At n = 64 bandwidth overtakes latency and block is best again.
    The analytic model (cyclic-optimistic on Ethernet) cannot see that;
    the decision must come from a measured whole-program flip probe."""
    plan = tune_per_region(
        source_for("MM-64"), nprocs=4, metric="comm", backend="gige",
        cache_dir=None, tune_partition=True,
    )
    d = plan.decisions[0]
    assert (d.grain, d.partition) == ("coarse", "block")
    assert d.how == "profile"  # flip-probe measured, not model margin
    assert plan.partition_map == {}  # block == auto: nothing to carry


def test_grain_only_tuner_is_unchanged_by_partition_fields():
    """tune_partition=False must keep pre-PR8 artifacts byte-identical:
    no partition keys in the JSON, no strategy in the decisions."""
    plan = tune_per_region(
        source_for("MM-32"), nprocs=4, backend="gige", cache_dir=None
    )
    doc = plan.to_jsonable()
    assert "tune_partition" not in doc and "partition_map" not in doc
    assert all("partition" not in d for d in doc["decisions"])


# ------------------------------------------------- plan cache + CLI


def test_joint_plan_cache_warm_hit_is_byte_identical(tmp_path):
    cache = str(tmp_path / "cache")
    kw = dict(
        nprocs=4, backend="gige", cache_dir=cache, tune_partition=True
    )
    cold = tune_per_region(PXOVER, **kw)
    warm = tune_per_region(PXOVER, **kw)
    assert not cold.cached and warm.cached
    assert canonical_json(cold.to_jsonable()) == canonical_json(
        warm.to_jsonable()
    )
    # The joint search keys its cache entries separately: a grain-only
    # call with the same inputs must NOT hit the joint entry.
    grain_only = tune_per_region(
        PXOVER, nprocs=4, backend="gige", cache_dir=cache
    )
    assert not grain_only.cached


def test_joint_plan_json_round_trip(tmp_path):
    plan = tune_per_region(
        source_for("MM-32"), nprocs=4, backend="gige", cache_dir=None,
        tune_partition=True,
    )
    path = str(tmp_path / "plan.json")
    plan.save(path)
    loaded = TunePlan.load(path)
    assert loaded == plan
    assert loaded.partition_map == {0: "cyclic"}
    assert loaded.options().partition_map == ((0, "cyclic"),)


def test_cli_joint_round_trip(tmp_path, capsys):
    from repro.tools.cli import main

    plan_path = str(tmp_path / "plan.json")
    assert main(
        [
            "autotune", "MM-32", "--per-region", "--tune-partition",
            "--backend", "gige", "--plan-out", plan_path,
            "--cache-dir", str(tmp_path / "cache"),
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "partition override" in out
    assert main(
        [
            "run", "MM-32", "--backend", "gige", "--timing",
            "--tune-plan", plan_path,
        ]
    ) == 0
    assert "0:cyclic" in capsys.readouterr().out


def test_cli_tune_partition_needs_per_region(capsys):
    from repro.tools.cli import main

    assert main(["autotune", "MM-32", "--tune-partition"]) == 2
    assert "--per-region" in capsys.readouterr().err


# ------------------------------------------------- sweep integration


def test_sweep_job_honors_partition_axis():
    from repro.sweep.cache import job_key
    from repro.sweep.runner import run_job

    base = {
        "workload": "PXOVER-16", "nprocs": 4, "backend": "gige",
        "granularity": "fine", "fast_path": True, "execute": True,
        "faults": None, "seed": None,
    }
    cyc = dict(base, partition="cyclic")
    mixed = dict(base, partition={"0": "block", "1": "cyclic"})
    rows = {
        name: run_job(cfg, job_key(cfg))
        for name, cfg in (("auto", base), ("cyc", cyc), ("mixed", mixed))
    }
    assert all(r["status"] == "ok" for r in rows.values())
    digests = {r["result"]["array_digest"] for r in rows.values()}
    assert len(digests) == 1  # results-invariant across the axis
    assert rows["cyc"]["key"] != rows["auto"]["key"]
    assert rows["mixed"]["key"] != rows["cyc"]["key"]
    # Unset partition keeps the pre-PR8 row bytes: no key at all.
    assert "partition" not in rows["auto"]["result"]
    assert rows["cyc"]["result"]["partition"] == "cyclic"


def test_grid_validates_partition_axis():
    from repro.sweep.grid import SweepConfigError, expand_grid

    cfgs = expand_grid(
        {
            "axes": {
                "workload": ["PXOVER-16"],
                "partition": ["auto", "block", "cyclic"],
            }
        }
    )
    assert [c["partition"] for c in cfgs] == ["auto", "block", "cyclic"]
    with pytest.raises(SweepConfigError):
        expand_grid(
            {
                "axes": {"workload": ["PXOVER-16"]},
                "defaults": {"partition": "zigzag"},
            }
        )
    with pytest.raises(SweepConfigError):
        expand_grid(
            {
                "axes": {"workload": ["PXOVER-16"]},
                "defaults": {"partition": {}},
            }
        )


# ------------------------------------------------- rollup observability


def test_rollup_reports_net_mpi_time():
    from repro.obs.rollup import region_rollup

    rep = _run(
        PXOVER,
        CompileOptions(nprocs=4),
        backend="gige",
        execute=False,
    )
    prog = compile_source(PXOVER, options=CompileOptions(nprocs=4))
    params = P.cluster_for(4, getattr(P, BACKENDS["gige"]))
    traced = run_program(
        prog, cluster_params=params, execute=False, trace=True
    )
    rollup = region_rollup(traced.trace)
    assert rollup  # both parallel regions attributed
    for rid, ru in rollup.items():
        # Net MPI time excludes the fence share of the busiest rank, so
        # it can never exceed the gross per-rank maximum.
        assert 0.0 <= ru.mpi_net_max_s <= ru.mpi_max_s + 1e-12
    assert any(ru.mpi_net_max_s > 0.0 for ru in rollup.values())
