"""Tests for wormhole routing, the freeze domain, and the V-Bus broadcast."""

import pytest

from repro.sim import Simulator
from repro.vbus.mesh import MeshTopology
from repro.vbus.params import LinkParams
from repro.vbus.router import WormholeMesh
from repro.vbus.signal import bandwidth_Bps
from repro.vbus.vbusctl import FreezeDomain, VBusController


def make_mesh(rows=2, cols=2, **link_kw):
    sim = Simulator()
    domain = FreezeDomain(sim)
    link = LinkParams(**link_kw)
    mesh = WormholeMesh(sim, MeshTopology(rows, cols), link, domain)
    return sim, domain, mesh


def run_unicast(sim, mesh, src, dst, nbytes):
    proc = sim.process(mesh.unicast(src, dst, nbytes))
    return sim.run(until=proc)


def test_unicast_latency_formula():
    sim, _domain, mesh = make_mesh()
    nbytes = 4000
    t = run_unicast(sim, mesh, 0, 3, nbytes)  # 2 hops on a 2x2
    expected = 2 * mesh.link.router_delay_s + nbytes / mesh.link_rate_Bps
    assert t == pytest.approx(expected)


def test_unicast_same_node_free():
    sim, _domain, mesh = make_mesh()
    assert run_unicast(sim, mesh, 1, 1, 1000) == 0.0


def test_rate_cap_slows_streaming():
    sim, _domain, mesh = make_mesh()
    cap = mesh.link_rate_Bps / 10
    proc = sim.process(mesh.unicast(0, 1, 10000, rate_cap_Bps=cap))
    t = sim.run(until=proc)
    expected = mesh.link.router_delay_s + 10000 / cap
    assert t == pytest.approx(expected)


def test_contention_serializes_on_shared_channel():
    """Two messages over the same link: the second waits for the first."""
    sim, _domain, mesh = make_mesh(1, 3)  # line: 0-1-2
    done = {}

    def send(tag, src, dst, nbytes):
        t = yield from mesh.unicast(src, dst, nbytes)
        done[tag] = sim.now

    sim.process(send("a", 0, 2, 8000))
    sim.process(send("b", 0, 2, 8000))
    sim.run()
    solo = 2 * mesh.link.router_delay_s + 8000 / mesh.link_rate_Bps
    assert done["a"] == pytest.approx(solo)
    # b cannot even start hop 0 until a releases the whole path (wormhole).
    assert done["b"] == pytest.approx(2 * solo, rel=0.01)


def test_disjoint_paths_run_concurrently():
    sim, _domain, mesh = make_mesh(2, 2)
    done = {}

    def send(tag, src, dst):
        yield from mesh.unicast(src, dst, 8000)
        done[tag] = sim.now

    sim.process(send("a", 0, 1))
    sim.process(send("b", 2, 3))
    sim.run()
    assert done["a"] == pytest.approx(done["b"])


def test_freeze_pauses_streaming_and_resumes():
    sim, domain, mesh = make_mesh()
    nbytes = 50000
    proc = sim.process(mesh.unicast(0, 1, nbytes))

    freeze_len = 1e-3

    def freezer():
        yield sim.timeout(mesh.link.router_delay_s + 1e-6)  # mid-stream
        domain.freeze()
        yield sim.timeout(freeze_len)
        domain.thaw()

    sim.process(freezer())
    t = sim.run(until=proc)
    unfrozen = mesh.link.router_delay_s + nbytes / mesh.link_rate_Bps
    assert t == pytest.approx(unfrozen + freeze_len, rel=1e-6)
    assert domain.freeze_count == 1
    assert domain.total_frozen_s == pytest.approx(freeze_len)


def test_head_advancement_blocked_while_frozen():
    sim, domain, mesh = make_mesh(1, 3)
    domain.freeze()
    proc = sim.process(mesh.unicast(0, 2, 100))

    def thawer():
        yield sim.timeout(5e-3)
        domain.thaw()

    sim.process(thawer())
    t = sim.run(until=proc)
    assert t >= 5e-3


def test_vbus_broadcast_timing():
    sim = Simulator()
    domain = FreezeDomain(sim)
    ctl = VBusController(sim, domain, setup_s=2e-6)
    rate = 50e6
    proc = sim.process(ctl.broadcast(10000, rate))
    sim.run(until=proc)
    assert sim.now == pytest.approx(2e-6 + 10000 / rate)
    assert ctl.broadcast_count == 1
    assert ctl.broadcast_bytes == 10000
    assert not domain.frozen


def test_vbus_broadcast_freezes_p2p_traffic():
    sim, domain, mesh = make_mesh()
    ctl = VBusController(sim, domain, setup_s=2e-6)
    events = []

    def p2p():
        t = yield from mesh.unicast(0, 1, 100000)
        events.append(("p2p", sim.now, t))

    def bcaster():
        yield sim.timeout(100e-6)  # let p2p get going
        yield from ctl.broadcast(5000, 50e6)
        events.append(("bcast", sim.now))

    sim.process(p2p())
    sim.process(bcaster())
    sim.run()
    by_tag = {e[0]: e for e in events}
    p2p_done, p2p_time = by_tag["p2p"][1], by_tag["p2p"][2]
    b_done = by_tag["bcast"][1]
    # The broadcast finishes first; the p2p transfer was paused for its
    # entire duration and completes later than it would have unfrozen.
    unfrozen = mesh.link.router_delay_s + 100000 / mesh.link_rate_Bps
    bcast_busy = 2e-6 + 5000 / 50e6
    assert b_done < p2p_done
    assert p2p_time == pytest.approx(unfrozen + bcast_busy, rel=1e-6)


def test_broadcasts_serialize_on_the_bus():
    sim = Simulator()
    domain = FreezeDomain(sim)
    ctl = VBusController(sim, domain, setup_s=1e-6)
    ends = []

    def b():
        yield from ctl.broadcast(50000, 50e6)
        ends.append(sim.now)

    sim.process(b())
    sim.process(b())
    sim.run()
    one = 1e-6 + 50000 / 50e6
    assert ends == [pytest.approx(one), pytest.approx(2 * one)]


def test_channel_stats_accumulate():
    sim, _domain, mesh = make_mesh()
    run_unicast(sim, mesh, 0, 1, 1000)
    ch = mesh.channels[(0, 1)]
    assert ch.messages == 1
    assert ch.busy_s > 0
    assert mesh.messages == 1
    assert mesh.bytes == 1000


def test_skwp_mesh_faster_than_conventional():
    _s1, _d1, skwp = make_mesh(mode="skwp")
    _s2, _d2, conv = make_mesh(mode="conventional")
    assert skwp.link_rate_Bps > 3 * conv.link_rate_Bps
