"""Property tests for the trace-calibrated cost model (docs/AUTOTUNE.md).

The calibration pipeline makes three promises worth pinning as
properties rather than examples.  **Determinism**: the fit is a pure
function of the (deterministic) microbenchmark suite, so two fresh
calibrations of the same backend produce byte-identical artifacts, and
a warm cache returns the same bytes without touching the simulator.
**Results-invariance**: calibration only changes which plan the tuner
*picks*, never what a plan *computes* — calibrated and uncalibrated
tuned programs must produce bit-identical numeric state.  **Physical
sanity**: the fitted per-byte coefficient must order the backends by
their actual bandwidth, or the model would rank cross-family champions
with nonsense.
"""

import importlib
import json

import pytest

from repro.compiler.pipeline import compile_source
from repro.runtime.executor import run_program
from repro.sweep.cache import canonical_json, job_key
from repro.sweep.grid import SweepConfigError, expand_grid
from repro.sweep.runner import BACKENDS, run_job
from repro.tools.calibrate import CalibratedModel, calibrate

#: The submodule itself — ``repro.tools`` re-exports the ``calibrate``
#: *function* under the same name, so plain attribute access finds that.
cal_mod = importlib.import_module("repro.tools.calibrate")
from repro.tools.cli import main
from repro.tools.tuneplan import plan_cache_key, tune_per_region
from repro.vbus import params as P
from repro.workloads import synthetic

PXOVER = synthetic.partition_crossover_kernel(16)


def _fit(backend, cache_dir):
    return calibrate(backend, nprocs=4, cache_dir=cache_dir)


def test_artifact_roundtrip_and_hash(tmp_path):
    model = _fit("gige", cache_dir=None)
    doc = model.to_jsonable()
    again = CalibratedModel.from_jsonable(doc)
    assert again == model
    assert again.sha256() == model.sha256()

    path = tmp_path / "cal.json"
    model.save(str(path))
    assert CalibratedModel.load(str(path)) == model
    # The saved artifact is the canonical JSON encoding — the same bytes
    # the sha256 content address is computed over.
    assert path.read_text() == canonical_json(doc) + "\n"


def test_fit_deterministic_across_fresh_caches(tmp_path):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    _fit("gige", cache_dir=str(tmp_path / "cache-a")).save(str(a))
    _fit("gige", cache_dir=str(tmp_path / "cache-b")).save(str(b))
    assert a.read_bytes() == b.read_bytes()


def test_warm_cache_byte_identical_without_simulating(tmp_path, monkeypatch):
    cache = str(tmp_path / "cache")
    cold = _fit("gige", cache_dir=cache)
    assert not cold.cached

    def boom(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("warm calibration touched the simulator")

    monkeypatch.setattr(cal_mod, "_measure_cell", boom)
    warm = _fit("gige", cache_dir=cache)
    assert warm.cached
    assert warm == cold
    assert canonical_json(warm.to_jsonable()) == canonical_json(
        cold.to_jsonable()
    )


def test_per_byte_monotone_in_backend_bandwidth():
    fits = {b: _fit(b, cache_dir=None) for b in ("vbus", "gige", "ethernet100")}
    # Faster wire -> smaller fitted per-byte cost: V-Bus < switched GigE
    # < shared 100 Mb Ethernet.  Every coefficient is non-negative by
    # construction of the clamped least-squares fit.
    assert (
        fits["vbus"].per_byte_s
        < fits["gige"].per_byte_s
        < fits["ethernet100"].per_byte_s
    )
    for model in fits.values():
        assert all(c >= 0.0 for c in model.constants().values())
    # Only V-Bus has a fused broadcast, so only V-Bus can fit a nonzero
    # fan-out term.
    assert fits["vbus"].fanout_per_dest_s > 0.0
    assert fits["gige"].fanout_per_dest_s == 0.0


def test_results_invariance_calibrated_vs_uncalibrated():
    model = _fit("gige", cache_dir=None)
    digests = []
    for calibration in (None, model):
        plan = tune_per_region(
            PXOVER,
            backend="gige",
            nprocs=4,
            cache_dir=None,
            tune_partition=True,
            calibration=calibration,
        )
        prog = compile_source(PXOVER, options=plan.options())
        params = P.cluster_for(4, getattr(P, BACKENDS["gige"]))
        report = run_program(prog, cluster_params=params, execute=True)
        digests.append(report.to_jsonable()["array_digest"])
    assert digests[0] == digests[1]


def test_calibration_joins_plan_cache_key_and_artifact(tmp_path):
    model = _fit("gige", cache_dir=None)
    base = dict(
        source=PXOVER,
        nprocs=4,
        metric="comm",
        backend="gige",
        epsilon=0.05,
        tune_partition=True,
    )
    uncal = plan_cache_key(**base)
    cal = plan_cache_key(**base, calibration_sha256=model.sha256())
    assert uncal != cal
    # Uncalibrated searches key and serialize exactly as before the
    # calibration field existed (byte-compat with old plan caches).
    assert uncal == plan_cache_key(**base, calibration_sha256="")

    plan = tune_per_region(
        PXOVER,
        backend="gige",
        nprocs=4,
        cache_dir=str(tmp_path),
        tune_partition=True,
        calibration=model,
    )
    assert plan.calibration_sha256 == model.sha256()
    doc = plan.to_jsonable()
    assert doc["calibration_sha256"] == model.sha256()
    warm = tune_per_region(
        PXOVER,
        backend="gige",
        nprocs=4,
        cache_dir=str(tmp_path),
        tune_partition=True,
        calibration=model,
    )
    assert warm.cached and warm == plan

    unplan = tune_per_region(
        PXOVER,
        backend="gige",
        nprocs=4,
        cache_dir=str(tmp_path),
        tune_partition=True,
    )
    assert "calibration_sha256" not in unplan.to_jsonable()


def test_sweep_axis_prices_rows_and_keeps_byte_compat(tmp_path):
    model = _fit("gige", cache_dir=None)
    grid = {
        "name": "cal",
        "axes": {"workload": ["MM-16"]},
        "defaults": {"backend": "gige"},
    }
    plain_cfg = expand_grid(grid)[0]
    assert "calibration" not in plain_cfg  # unset axis is omitted
    cal_grid = dict(grid)
    cal_grid["defaults"] = dict(
        grid["defaults"], calibration=model.to_jsonable()
    )
    cal_cfg = expand_grid(cal_grid)[0]
    assert job_key(plain_cfg) != job_key(cal_cfg)

    plain_row = run_job(plain_cfg, job_key(plain_cfg))
    cal_row = run_job(cal_cfg, job_key(cal_cfg))
    assert plain_row["status"] == cal_row["status"] == "ok"
    assert "model" not in plain_row
    assert cal_row["model"]["comm_s"] > 0.0
    assert cal_row["model"]["messages"] > 0
    # The axis never perturbs what the job computes.
    assert (
        plain_row["result"]["array_digest"]
        == cal_row["result"]["array_digest"]
    )

    bad = dict(grid)
    bad["defaults"] = dict(grid["defaults"], calibration={"kind": "nope"})
    with pytest.raises(SweepConfigError, match="calibration"):
        expand_grid(bad)


def test_calibrate_rejects_bad_inputs():
    with pytest.raises(ValueError, match="unknown backend"):
        calibrate("token-ring", cache_dir=None)
    with pytest.raises(ValueError, match="nprocs"):
        calibrate("vbus", nprocs=1, cache_dir=None)
    with pytest.raises(ValueError, match="calibration document"):
        CalibratedModel.from_jsonable({"kind": "tuneplan"})
    with pytest.raises(ValueError, match="missing"):
        CalibratedModel.from_jsonable(
            {"kind": "calibration", "backend": "vbus", "nprocs": 4,
             "constants": {"per_message_s": 1e-6}}
        )


def test_cli_calibrate_and_autotune_calibration(tmp_path, capsys):
    art = tmp_path / "cal.json"
    src = tmp_path / "pxover.f"
    src.write_text(PXOVER)
    cache = str(tmp_path / "cache")

    assert main([
        "calibrate", "--backend", "gige", "--cache-dir", cache,
        "-o", str(art),
    ]) == 0
    out = capsys.readouterr().out
    assert "calibrated model (gige" in out
    saved = json.loads(art.read_text())
    assert saved["kind"] == "calibration" and saved["backend"] == "gige"

    assert main([
        "autotune", str(src), "--backend", "gige", "--per-region",
        "--tune-partition", "--calibration", str(art),
        "--cache-dir", cache,
    ]) == 0
    assert "per-region tune plan" in capsys.readouterr().out

    # --calibration without --per-region is a usage error: the global
    # tuner profiles every grain, so fitted constants decide nothing.
    assert main([
        "autotune", str(src), "--calibration", str(art),
    ]) == 2
    assert "--per-region" in capsys.readouterr().err
