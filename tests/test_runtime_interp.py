"""Tests for the interpreter: evaluation, vectorization parity, costs."""

import numpy as np
import pytest

from repro.compiler.frontend.lower import lower_program
from repro.compiler.frontend.parser import parse
from repro.runtime.interp import Interpreter, InterpError
from repro.runtime.memory import RankMemory
from repro.vbus.params import CpuParams


def interp_for(src, execute=True):
    unit = lower_program(parse(src)).main
    mem = RankMemory(unit.symtab)
    it = Interpreter(mem, unit.symtab, CpuParams(), execute=execute)
    return unit, mem, it


def run(src, execute=True):
    unit, mem, it = interp_for(src, execute)
    it.exec_stmts(unit.body, {})
    return mem, it


def test_scalar_arithmetic_and_types():
    mem, _ = run("""
      PROGRAM P
      REAL*8 X
      INTEGER I
      X = 3.5 * 2.0 + 1.0
      I = 7 / 2
      END
""")
    assert mem.scalars["X"] == 8.0
    assert mem.scalars["I"] == 3  # Fortran integer division


def test_negative_integer_division_truncates_to_zero():
    mem, _ = run("""
      PROGRAM P
      INTEGER I, J
      J = -7
      I = J / 2
      END
""")
    assert mem.scalars["I"] == -3


def test_array_store_and_column_major_layout():
    mem, _ = run("""
      PROGRAM P
      REAL*8 A(3,2)
      A(2,1) = 5.0
      A(1,2) = 7.0
      END
""")
    assert mem.array("A")[1] == 5.0  # (2,1) -> offset 1
    assert mem.array("A")[3] == 7.0  # (1,2) -> offset 3
    assert mem.shaped("A")[1, 0] == 5.0


def test_intrinsics():
    mem, _ = run("""
      PROGRAM P
      REAL*8 A, B, C, D, E
      INTEGER I
      A = SQRT(16.0)
      B = MAX(3.0, 7.0, 5.0)
      C = MOD(7.0, 3.0)
      I = MOD(7, 3)
      D = ABS(-2.5)
      E = ATAN2(0.0, 1.0)
      END
""")
    assert mem.scalars["A"] == 4.0
    assert mem.scalars["B"] == 7.0
    assert mem.scalars["C"] == 1.0
    assert mem.scalars["I"] == 1
    assert mem.scalars["D"] == 2.5
    assert mem.scalars["E"] == 0.0


def test_if_branches():
    mem, _ = run("""
      PROGRAM P
      INTEGER I, R
      I = 5
      IF (I .LT. 3) THEN
        R = 1
      ELSE IF (I .EQ. 5) THEN
        R = 2
      ELSE
        R = 3
      ENDIF
      END
""")
    assert mem.scalars["R"] == 2


def test_print_formats(capsys=None):
    _, it = run("""
      PROGRAM P
      REAL*8 X
      X = 2.5
      PRINT *, 'value is', X
      END
""")
    assert it.prints == ["value is 2.5"]


def test_do_variable_after_loop():
    mem, _ = run("""
      PROGRAM P
      REAL*8 A(10)
      INTEGER I
      DO I = 1, 10, 3
        A(I) = 1.0
      ENDDO
      END
""")
    assert mem.scalars["I"] == 13  # first value past the end


def test_unbound_variable_raises():
    unit, mem, it = interp_for("""
      PROGRAM P
      REAL*8 X, Y
      Y = X + 1.0
      END
""")
    del mem.scalars["X"]
    with pytest.raises(InterpError, match="unbound"):
        it.exec_stmts(unit.body, {})


# ---------------------------------------------------------------------------
# Vectorization parity: every vectorizable shape must match scalar loops
# ---------------------------------------------------------------------------


VECTOR_CASES = {
    "elementwise": """
      PROGRAM P
      REAL*8 A(20), B(20)
      INTEGER I
      DO I = 1, 20
        B(I) = DBLE(I)
      ENDDO
      DO I = 1, 20
        A(I) = 2.0 * B(I) + 1.0
      ENDDO
      END
""",
    "strided_write": """
      PROGRAM P
      REAL*8 A(40)
      INTEGER I
      DO I = 1, 13
        A(3*I - 2) = DBLE(I) * 0.5
      ENDDO
      END
""",
    "self_shift_disjoint": """
      PROGRAM P
      REAL*8 A(40)
      INTEGER I
      DO I = 1, 20
        A(I) = DBLE(I)
      ENDDO
      DO I = 1, 20
        A(I) = A(I + 20) + 1.0
      ENDDO
      END
""",
    "aligned_self_read": """
      PROGRAM P
      REAL*8 A(20)
      INTEGER I
      DO I = 1, 20
        A(I) = DBLE(I)
      ENDDO
      DO I = 1, 20
        A(I) = A(I) * 3.0
      ENDDO
      END
""",
    "scalar_sum_reduction": """
      PROGRAM P
      REAL*8 A(20)
      REAL*8 S
      INTEGER I
      DO I = 1, 20
        A(I) = DBLE(I)
      ENDDO
      S = 100.0
      DO I = 1, 20
        S = S + A(I) * 2.0
      ENDDO
      END
""",
    "scalar_minus_reduction": """
      PROGRAM P
      REAL*8 S
      INTEGER I
      S = 0.0
      DO I = 1, 10
        S = S - DBLE(I)
      ENDDO
      END
""",
    "max_reduction": """
      PROGRAM P
      REAL*8 A(20)
      REAL*8 M
      INTEGER I
      DO I = 1, 20
        A(I) = ABS(DBLE(I) - 10.5)
      ENDDO
      M = -1.0
      DO I = 1, 20
        M = MAX(M, A(I))
      ENDDO
      END
""",
    "last_value_scalar": """
      PROGRAM P
      REAL*8 T
      INTEGER I
      DO I = 1, 7
        T = DBLE(I) * 2.0
      ENDDO
      END
""",
    "array_slot_accumulate": """
      PROGRAM P
      REAL*8 A(20), ACC(4)
      INTEGER I
      DO I = 1, 20
        A(I) = DBLE(I)
      ENDDO
      DO I = 1, 20
        ACC(2) = ACC(2) + A(I)
      ENDDO
      END
""",
}


class _NoVectorInterp(Interpreter):
    def _vector_assign(self, *a, **kw):
        return False


@pytest.mark.parametrize("name", sorted(VECTOR_CASES))
def test_vectorized_matches_scalar(name):
    src = VECTOR_CASES[name]
    unit = lower_program(parse(src)).main

    mem_v = RankMemory(unit.symtab)
    iv = Interpreter(mem_v, unit.symtab, CpuParams())
    iv.exec_stmts(unit.body, {})

    mem_s = RankMemory(unit.symtab)
    isc = _NoVectorInterp(mem_s, unit.symtab, CpuParams())
    isc.exec_stmts(unit.body, {})

    for arr in mem_v.arrays:
        assert np.allclose(mem_v.arrays[arr], mem_s.arrays[arr]), arr
    for s in mem_v.scalars:
        assert mem_v.scalars[s] == pytest.approx(mem_s.scalars[s]), s
    # Cycle accounting is identical regardless of execution strategy.
    assert iv.cycles == pytest.approx(isc.cycles, rel=1e-9)


def test_overlapping_self_read_falls_back():
    """A(I) = A(I+1): vectorizing would read updated values; the scalar
    fallback must produce the sequential semantics."""
    src = """
      PROGRAM P
      REAL*8 A(11)
      INTEGER I
      DO I = 1, 11
        A(I) = DBLE(I)
      ENDDO
      DO I = 1, 10
        A(I) = A(I + 1)
      ENDDO
      END
"""
    mem, _ = run(src)
    assert np.array_equal(mem.array("A"), np.r_[np.arange(2, 12), 11.0])


def test_duplicate_target_falls_back():
    """A(1 + MOD(I,2)) revisits targets: order matters."""
    src = """
      PROGRAM P
      REAL*8 A(4)
      INTEGER I
      DO I = 1, 7
        A(1 + MOD(I, 2)) = DBLE(I)
      ENDDO
      END
"""
    mem, _ = run(src)
    # Last writes: I=7 -> A(2)=7; I=6 -> A(1)=6.
    assert mem.array("A")[0] == 6.0
    assert mem.array("A")[1] == 7.0


# ---------------------------------------------------------------------------
# Timing mode
# ---------------------------------------------------------------------------


def test_timing_mode_matches_value_mode_cycles():
    src = VECTOR_CASES["elementwise"]
    unit = lower_program(parse(src)).main
    mem1 = RankMemory(unit.symtab)
    full = Interpreter(mem1, unit.symtab, CpuParams(), execute=True)
    full.exec_stmts(unit.body, {})
    mem2 = RankMemory(unit.symtab)
    fast = Interpreter(mem2, unit.symtab, CpuParams(), execute=False)
    fast.exec_stmts(unit.body, {})
    assert fast.cycles == pytest.approx(full.cycles, rel=1e-9)
    # ... but no values were computed.
    assert mem2.array("A").sum() == 0.0


def test_timing_mode_triangular_analytic():
    src = """
      PROGRAM P
      REAL*8 L(30,30)
      INTEGER I, J
      DO I = 1, 30
        DO J = 1, I
          L(J,I) = 1.0
        ENDDO
      ENDDO
      END
"""
    unit = lower_program(parse(src)).main
    mem1 = RankMemory(unit.symtab)
    full = Interpreter(mem1, unit.symtab, CpuParams(), execute=True)
    full.exec_stmts(unit.body, {})
    mem2 = RankMemory(unit.symtab)
    fast = Interpreter(mem2, unit.symtab, CpuParams(), execute=False)
    fast.exec_stmts(unit.body, {})
    assert fast.cycles == pytest.approx(full.cycles, rel=1e-9)


def test_take_seconds_drains():
    _, it = run("""
      PROGRAM P
      REAL*8 X
      X = 1.0 + 2.0
      END
""")
    s = it.take_seconds()
    assert s > 0
    assert it.take_seconds() == 0.0


# -- exact integer division (regression: float64 round-trip lost low bits) --
def test_trunc_div_exact_above_2_53():
    from repro.runtime.interp import _trunc_div

    big = (1 << 62) + 1
    assert _trunc_div(big, 1) == big
    assert _trunc_div(big, -1) == -big
    assert _trunc_div(-big, 1) == -big
    assert _trunc_div(big, 3) == big // 3
    # Truncation toward zero, not floor, for negative quotients.
    assert _trunc_div(-7, 2) == -3
    assert _trunc_div(7, -2) == -3
    assert _trunc_div(-7, -2) == 3


def test_trunc_div_exact_int64_arrays():
    from repro.runtime.interp import _trunc_div

    a = np.array([(1 << 62) + 1, -((1 << 60) + 7), 9, -9], dtype=np.int64)
    b = np.array([1, 3, -2, -2], dtype=np.int64)
    out = _trunc_div(a, b)
    expected = np.array(
        [(1 << 62) + 1, -(((1 << 60) + 7) // 3), -4, 4], dtype=np.int64
    )
    np.testing.assert_array_equal(out, expected)


def test_trunc_div_float_operands_keep_old_semantics():
    from repro.runtime.interp import _trunc_div

    assert _trunc_div(7.9, 2.0) == 3
    assert _trunc_div(-7.9, 2.0) == -3
