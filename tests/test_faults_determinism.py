"""Determinism regression: same seed + same plan => byte-identical runs.

Fault injection draws every random number from
``RandomState(mix(plan.seed, src, dst, message-ordinal))`` — keyed by the
message's identity, not by event-loop interleaving — so two runs of the
same program under the same plan must agree to the last byte: identical
``RunReport`` timings, identical fault counters, and identical Chrome
trace files.  This holds with the fast path requested too (an active
plan demotes it wholesale).
"""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_source
from repro.faults import FaultPlan, FaultSpec
from repro.obs.export import write_chrome_trace, write_metrics_json
from repro.runtime.executor import run_program
from repro.vbus.params import VBUS_SKWP, cluster_for
from repro.workloads import jacobi, mm


PLAN = FaultPlan(
    seed=21,
    specs=(
        FaultSpec(kind="drop", rate=0.03),
        FaultSpec(kind="delay", rate=0.2, delay_s=5e-6),
        FaultSpec(kind="stall", node=1, t0=0.0, t1=1e-4),
    ),
    max_sim_s=10.0,
)


@pytest.fixture(scope="module")
def jacobi4():
    return compile_source(jacobi.source(n=16, steps=2), nprocs=4, granularity="coarse")


def _params(fast):
    from dataclasses import replace

    return replace(cluster_for(4, VBUS_SKWP), fast_path=fast)


@pytest.mark.parametrize("fast", [False, True])
def test_same_seed_same_plan_identical_reports(jacobi4, fast):
    a = run_program(jacobi4, cluster_params=_params(fast), faults=PLAN)
    b = run_program(jacobi4, cluster_params=_params(fast), faults=PLAN)
    assert a.total_s == b.total_s
    assert a.compute_s == b.compute_s
    assert a.comm_s == b.comm_s
    assert a.hw == b.hw
    assert a.fault_stats == b.fault_stats
    assert a.fault_stats["fault_dropped_flits"] > 0
    for name in a.memory.arrays:
        assert np.array_equal(a.memory.arrays[name], b.memory.arrays[name])


def test_roundtripped_plan_is_equivalent(jacobi4, tmp_path):
    # A plan that went through JSON (the CLI path) injects identically.
    path = tmp_path / "plan.json"
    PLAN.dump(str(path))
    reloaded = FaultPlan.load(str(path))
    a = run_program(jacobi4, cluster_params=_params(False), faults=PLAN)
    b = run_program(jacobi4, cluster_params=_params(False), faults=reloaded)
    assert a.total_s == b.total_s
    assert a.fault_stats == b.fault_stats


@pytest.mark.parametrize("fast", [False, True])
def test_trace_and_metrics_bytes_identical(jacobi4, tmp_path, fast):
    paths = []
    for tag in ("a", "b"):
        rep = run_program(
            jacobi4, cluster_params=_params(fast), faults=PLAN, trace=True
        )
        tpath = tmp_path / f"{tag}.trace.json"
        mpath = tmp_path / f"{tag}.metrics.json"
        write_chrome_trace(rep.trace, str(tpath))
        write_metrics_json(rep.metrics_rows, str(mpath))
        paths.append((tpath, mpath))
    (ta, ma), (tb, mb) = paths
    assert ta.read_bytes() == tb.read_bytes()
    assert ma.read_bytes() == mb.read_bytes()


def test_different_seed_changes_injection(jacobi4):
    from dataclasses import replace as dc_replace

    a = run_program(jacobi4, cluster_params=_params(False), faults=PLAN)
    other = dc_replace(PLAN, seed=PLAN.seed + 1)
    b = run_program(jacobi4, cluster_params=_params(False), faults=other)
    # Seeds must actually steer the injection (not be ignored): with a 3%
    # drop rate over hundreds of flits, identical totals would mean the
    # seed never reached the RNG.
    assert (
        a.fault_stats["fault_dropped_flits"]
        != b.fault_stats["fault_dropped_flits"]
        or a.total_s != b.total_s
    )


def test_determinism_with_mm_workload():
    prog = compile_source(mm.source(12), nprocs=4, granularity="coarse")
    a = run_program(prog, cluster_params=_params(False), faults=PLAN)
    b = run_program(prog, cluster_params=_params(False), faults=PLAN)
    assert a.total_s == b.total_s
    assert a.fault_stats == b.fault_stats
