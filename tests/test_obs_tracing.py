"""Tracing must observe, never perturb.

Every scenario here runs with tracing off and on (crossed with both
routing paths) and asserts ``==`` — no tolerances — on simulated end
times, transfer receipts, hardware counters, and per-channel usage:
attaching a :class:`repro.obs.Tracer` may only *record*.  The second
half checks trace *content* (tracks, spans, metrics) and pins the
exporters with golden files.
"""

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.obs import Tracer
from repro.obs.export import (
    chrome_trace,
    metrics_rows,
    timeline_summary,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_json,
)
from repro.sim import AllOf, Simulator
from repro.vbus.cluster import Cluster
from repro.vbus.params import VBUS_SKWP
from repro.vbus.stats import cluster_metrics_rows

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Keys that only exist (or only count) on the fast path.
def _is_fast_key(key):
    return key.startswith("fast_")


def _params(fast: bool, trace: bool, mesh=(2, 2)):
    return replace(VBUS_SKWP, mesh=mesh, fast_path=fast, trace=trace)


def _run(params, scenario):
    """Run ``scenario(cluster) -> [(name, gen)]``; snapshot like the
    fast-path equivalence suite does."""
    sim = Simulator()
    cluster = Cluster(sim, params)
    records = []

    def wrap(name, gen):
        def body():
            out = yield from gen
            if out is not None and hasattr(out, "total_s"):
                out = (out.nbytes, out.elements, out.contiguous,
                       out.cpu_s, out.total_s)
            records.append((name, sim.now, out))

        return body()

    for name, gen in scenario(cluster):
        sim.process(wrap(name, gen), name=name)
    sim.run()
    snapshot = {
        "now": sim.now,
        "records": sorted(records),
        "stats": {
            k: v for k, v in cluster.stats().items() if not _is_fast_key(k)
        },
        "channels": {
            key: (ch.messages, ch.busy_s)
            for key, ch in cluster.mesh.channels.items()
        },
    }
    return snapshot, cluster


# ---------------------------------------------------------------------------
# Scenarios (mirroring test_fastpath_equivalence.py's coverage)
# ---------------------------------------------------------------------------
def _scn_dma(cluster):
    n = cluster.nprocs
    return [("dma", cluster.transfer(0, n - 1, 64 * 1024, contiguous=True))]


def _scn_pio(cluster):
    return [
        ("pio", cluster.transfer(0, 1, 8 * 1024, elements=1024,
                                 contiguous=False)),
    ]


def _scn_staggered(cluster):
    n = cluster.nprocs
    sim = cluster.sim

    def staggered(delay, src, dst, nbytes, contiguous):
        yield sim.timeout(delay)
        r = yield from cluster.transfer(src, dst, nbytes,
                                        contiguous=contiguous)
        return r

    jobs = []
    for i in range(n):
        jobs.append(
            (f"t{i}", staggered(i * 3e-6, i, (i + 1) % n, 16 * 1024, True))
        )
        jobs.append(
            (f"s{i}", staggered(i * 5e-6, i, (i + 2) % n, 2048, False))
        )
    return jobs


def _scn_broadcast_freeze(cluster):
    sim = cluster.sim

    def bcast():
        yield sim.timeout(0.5e-3)
        r = yield from cluster.hw_broadcast(1, 4096)
        return r

    return [
        ("long", cluster.transfer(0, cluster.nprocs - 1, 64 * 1024)),
        ("bcast", bcast()),
    ]


def _scn_rma(cluster):
    sim = cluster.sim
    n = cluster.nprocs

    def origin(rank):
        pending = []
        _cpu, done = yield from cluster.rma_start(
            rank, (rank + 1) % n, 4096, contiguous=True
        )
        pending.append(done)
        _cpu, done = yield from cluster.rma_start(
            rank, (rank + 2) % n, 1024, elements=128,
            contiguous=False, direction="get",
        )
        pending.append(done)
        live = [p for p in pending if not p.triggered]
        if live:
            yield AllOf(sim, live)
        return sim.now

    return [(f"rma{r}", origin(r)) for r in range(n)]


SCENARIOS = {
    "dma": _scn_dma,
    "pio": _scn_pio,
    "staggered": _scn_staggered,
    "broadcast_freeze": _scn_broadcast_freeze,
    "rma": _scn_rma,
}


# ---------------------------------------------------------------------------
# Tracing on/off is bit-identical (both routing paths)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("fast", [False, True], ids=["stepwise", "fastpath"])
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_tracing_is_bit_identical(name, fast):
    scenario = SCENARIOS[name]
    base, _ = _run(_params(fast, trace=False), scenario)
    traced, cluster = _run(_params(fast, trace=True), scenario)
    assert cluster.tracer is not None
    assert traced == base


def test_tracing_is_bit_identical_whole_program():
    from repro.compiler.pipeline import compile_source
    from repro.runtime.executor import run_program
    from repro.workloads import mm

    prog = compile_source(mm.source(24), nprocs=4)
    base = run_program(prog)
    traced = run_program(prog, trace=True)
    assert base.trace is None and traced.trace is not None
    assert traced.total_s == base.total_s
    assert traced.hw == base.hw
    assert traced.comm_s == base.comm_s
    assert traced.compute_s == base.compute_s
    assert traced.stdout == base.stdout


def test_traces_match_across_routing_paths():
    """Wire/held spans must be identical stepwise vs fast path, so traces
    stay comparable across ``fast_path`` settings."""
    _, slow = _run(_params(False, trace=True), _scn_staggered)
    _, fast = _run(_params(True, trace=True), _scn_staggered)

    def network_spans(cluster):
        return sorted(
            s for s in cluster.tracer.spans
            if s[0][0] == "chan" or s[1].startswith("wire ")
        )

    assert network_spans(fast) == network_spans(slow)


# ---------------------------------------------------------------------------
# Trace content
# ---------------------------------------------------------------------------
def test_trace_content_covers_all_layers():
    _, cluster = _run(_params(False, trace=True), _scn_broadcast_freeze)
    tr = cluster.tracer
    groups = {t[0] for t in tr.tracks()}
    assert {"node", "chan", "vbus"} <= groups
    names = {s[1] for s in tr.spans}
    assert "dma send" in names
    assert "freeze" in names and "broadcast" in names
    assert any(n.startswith("wire ") for n in names)
    for metric in ("nic.dma_bytes", "mesh.messages", "vbus.freezes",
                   "vbus.broadcast_bytes"):
        assert metric in tr.metrics, metric
    assert tr.metrics.get("vbus.freezes").value == 1.0
    assert tr.kernel_events > 0


def test_cluster_metrics_rows_cover_acceptance_set():
    _, cluster = _run(_params(False, trace=True), _scn_staggered)
    rows = metrics_rows(cluster.tracer, cluster_metrics_rows(cluster))
    names = {r["name"] for r in rows}
    assert "nic.dma_bytes" in names and "nic.pio_bytes" in names
    assert "hw.freezes" in names and "hw.frozen_s" in names
    assert any(n.startswith("channel.utilization{") for n in names)
    assert names == {r["name"] for r in sorted(rows, key=lambda r: r["name"])}
    by_name = {r["name"]: r for r in rows}
    assert by_name["nic.dma_bytes"]["unit"] == "B"
    util = [r for r in rows if r["name"].startswith("channel.utilization{")]
    assert all(0.0 <= r["value"] <= 1.0 for r in util)


def test_mpi_call_spans_on_rank_tracks():
    from repro.mpi2 import Mpi2Runtime

    sim = Simulator()
    cluster = Cluster(sim, _params(False, trace=True))
    runtime = Mpi2Runtime(cluster)

    def sender():
        yield from runtime.comm(0).send(b"x" * 1024, dest=1, tag=7)

    def receiver():
        data = yield from runtime.comm(1).recv(source=0, tag=7)
        assert data == b"x" * 1024

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    tr = sim.tracer
    assert [s[1] for s in tr.spans_on(("rank", 0))] == ["MPI_Send"]
    assert [s[1] for s in tr.spans_on(("rank", 1))] == ["MPI_Recv"]
    assert tr.metrics.get("mpi.MPI_Send.calls").value == 1.0
    assert tr.metrics.get("mpi.MPI_Recv.s").count == 1


def test_interp_loop_counters():
    from repro.compiler.pipeline import compile_source
    from repro.runtime.executor import run_program
    from repro.workloads import mm

    prog = compile_source(mm.source(16), nprocs=4)
    rep = run_program(prog, trace=True)
    assert rep.trace.metrics.get("interp.loops_vectorized").value > 0
    rep_t = run_program(prog, execute=False, trace=True)
    assert rep_t.trace.metrics.get("interp.loops_analytic").value > 0


def test_timeline_summary_mentions_every_active_track():
    _, cluster = _run(_params(False, trace=True), _scn_dma)
    text = timeline_summary(cluster.tracer)
    assert "node 0:" in text and "span(s)" in text
    assert text.startswith("trace:")


# ---------------------------------------------------------------------------
# Exporters: structure + golden files
# ---------------------------------------------------------------------------
def _golden_tracer():
    """A small deterministic run exercising every track group."""
    params = _params(False, trace=True)
    sim = Simulator()
    cluster = Cluster(sim, params)

    def bcast():
        yield sim.timeout(2e-5)
        yield from cluster.hw_broadcast(0, 512)

    def xfer():
        yield from cluster.transfer(
            0, 3, 4096, contiguous=True
        )
        yield from cluster.transfer(
            1, 2, 1024, elements=128, contiguous=False
        )

    sim.process(bcast(), name="bcast")
    sim.process(xfer(), name="xfer")
    sim.run()
    return cluster


def test_chrome_trace_structure():
    cluster = _golden_tracer()
    doc = chrome_trace(cluster.tracer)
    events = doc["traceEvents"]
    assert doc["displayTimeUnit"] == "ms"
    phases = {e["ph"] for e in events}
    assert phases <= {"M", "X", "i"}
    names = {
        e["args"]["name"] for e in events if e["name"] == "process_name"
    }
    assert {"nodes (NIC)", "mesh channels", "V-Bus"} <= names
    body = [e for e in events if e["ph"] != "M"]
    keys = [(e["ts"], e["pid"], e["tid"], e["name"]) for e in body]
    assert keys == sorted(keys)
    assert all(e["dur"] >= 0 for e in body if e["ph"] == "X")


def test_exporter_golden_files(tmp_path):
    """Byte-stable exports: identical runs produce identical files.

    Regenerate after an intentional schema change with:
    ``PYTHONPATH=src python tests/make_obs_goldens.py``
    """
    cluster = _golden_tracer()
    trace_path = tmp_path / "trace.json"
    mjson_path = tmp_path / "metrics.json"
    mcsv_path = tmp_path / "metrics.csv"
    write_chrome_trace(cluster.tracer, str(trace_path))
    rows = metrics_rows(cluster.tracer, cluster_metrics_rows(cluster))
    write_metrics_json(rows, str(mjson_path))
    write_metrics_csv(rows, str(mcsv_path))

    golden_trace = json.loads((GOLDEN_DIR / "obs_trace.json").read_text())
    golden_metrics = json.loads((GOLDEN_DIR / "obs_metrics.json").read_text())
    assert json.loads(trace_path.read_text()) == golden_trace
    assert json.loads(mjson_path.read_text()) == golden_metrics
    assert (
        mcsv_path.read_text() == (GOLDEN_DIR / "obs_metrics.csv").read_text()
    )


# ---------------------------------------------------------------------------
# Plumbing
# ---------------------------------------------------------------------------
def test_tracer_off_by_default():
    sim = Simulator()
    Cluster(sim, _params(False, trace=False))
    assert sim.tracer is None


def test_external_tracer_is_reused():
    sim = Simulator()
    mine = Tracer(sim)
    sim.tracer = mine
    cluster = Cluster(sim, _params(False, trace=True))
    assert cluster.tracer is mine


# ---------------------------------------------------------------------------
# Region-rollup edge cases: mpi_net_max_s on degenerate traces
# ---------------------------------------------------------------------------
# region_rollup only reads ``tracer.spans`` — hand-built 5-tuples
# ``(track, name, t0, dur, args)`` let each edge case state its expected
# attribution exactly, including the truncated span stream a killed node
# leaves behind (the executor surfaces the kill itself as a typed
# MpiFaultError, so the trace a monitor sees is precisely this: a rank
# track that just stops).
from types import SimpleNamespace

from repro.obs.rollup import region_rollup


def _trace(*spans):
    return SimpleNamespace(spans=list(spans))


def test_rollup_single_rank_net_excludes_own_fence():
    roll = region_rollup(_trace(
        (("rank", 0), "par-region 0", 0.0, 10.0, None),
        (("rank", 0), "MPI_Put", 1.0, 3.0, None),
        (("rank", 0), "win-drain", 5.0, 4.0, None),
    ))
    ru = roll[0]
    assert ru.visits == 1
    assert ru.mpi_max_s == pytest.approx(7.0)
    assert ru.fence_max_s == pytest.approx(4.0)
    # The single rank is the busiest rank; net strips its fence share.
    assert ru.mpi_net_max_s == pytest.approx(3.0)


def test_rollup_all_fence_region_nets_exactly_zero():
    # A region that only synchronizes (fences + barrier, no data calls)
    # must net to exactly 0.0 — not a small float residue — because the
    # per-rank net is computed as (mpi - fence) of identical sums.
    spans = [(("rank", r), "par-region 0", 0.0, 10.0, None) for r in (0, 1)]
    for r in (0, 1):
        spans += [
            (("rank", r), "MPI_Win_fence", 1.0, 2.0, None),
            (("rank", r), "MPI_Barrier", 4.0, 1.0, None),
            (("rank", r), "win-drain", 6.0, 3.0, None),
        ]
    ru = region_rollup(_trace(*spans))[0]
    assert ru.mpi_max_s == pytest.approx(6.0)
    assert ru.mpi_net_max_s == 0.0
    assert ru.fence_s == pytest.approx(12.0)


def test_rollup_without_master_track_is_empty():
    # Region phases are defined by rank 0's timeline; a trace that lost
    # the master track (e.g. a killed node 0) attributes nothing rather
    # than guessing.
    assert region_rollup(_trace(
        (("rank", 3), "par-region 0", 0.0, 10.0, None),
        (("rank", 3), "MPI_Put", 1.0, 2.0, None),
    )) == {}


def test_rollup_killed_node_truncated_trace():
    # Rank 2 died between regions: its track has region 0 but no region
    # 1 interval, plus one orphan span after death.  Survivors' region 1
    # must still roll up, the orphan must be dropped (it starts outside
    # every rank-2 region interval), and the net invariant must hold for
    # both regions.
    spans = []
    for r in (0, 1, 3):
        spans += [
            (("rank", r), "par-region 0", 0.0, 10.0, None),
            (("rank", r), "MPI_Put", 1.0, 2.0, None),
            (("rank", r), "win-drain", 4.0, 1.0, None),
            (("rank", r), "par-region 1", 20.0, 10.0, None),
            (("rank", r), "MPI_Put", 21.0, 4.0, None),
            (("rank", r), "win-drain", 26.0, 2.0, None),
        ]
    spans += [
        (("rank", 2), "par-region 0", 0.0, 10.0, None),
        (("rank", 2), "MPI_Put", 1.0, 5.0, None),
        (("rank", 2), "win-drain", 7.0, 1.0, None),
        (("rank", 2), "MPI_Put", 15.0, 9.0, None),  # orphan: after death
    ]
    roll = region_rollup(_trace(*spans))
    assert sorted(roll) == [0, 1]
    # Region 0's busiest rank is the dead one's last full region...
    assert roll[0].mpi_max_s == pytest.approx(6.0)
    assert roll[0].mpi_net_max_s == pytest.approx(5.0)
    # ...region 1 rolls up from survivors only, orphan span dropped.
    assert roll[1].mpi_max_s == pytest.approx(6.0)
    assert roll[1].mpi_net_max_s == pytest.approx(4.0)
    for ru in roll.values():
        assert 0.0 <= ru.mpi_net_max_s <= ru.mpi_max_s + 1e-12
