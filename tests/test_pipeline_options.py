"""Tests for CompileOptions, compile_file, and pipeline-level behavior."""

import numpy as np
import pytest

from repro.compiler.pipeline import CompileOptions, compile_file, compile_source
from repro.runtime.executor import run_program
from repro.workloads import mm, synthetic


def test_options_validation():
    with pytest.raises(ValueError):
        CompileOptions(nprocs=0)
    with pytest.raises(ValueError):
        CompileOptions(granularity="chunky")
    with pytest.raises(ValueError):
        CompileOptions(partition="diagonal")


def test_options_live_out_frozen():
    opts = CompileOptions(live_out={"A", "B"})
    assert isinstance(opts.live_out, frozenset)


def test_compile_source_kwargs_shortcut():
    prog = compile_source(
        mm.source(8), nprocs=2, granularity="middle", partition="block"
    )
    assert prog.options.nprocs == 2
    assert prog.options.granularity == "middle"
    assert prog.options.partition == "block"


def test_compile_source_with_options_object():
    opts = CompileOptions(nprocs=3, granularity="coarse")
    prog = compile_source(mm.source(8), options=opts)
    assert prog.nprocs == 3


def test_compile_file(tmp_path):
    path = tmp_path / "mm.f"
    path.write_text(mm.source(8))
    prog = compile_file(str(path), nprocs=2)
    assert prog.unit.name == "MM"


def test_parallelize_false_trusts_only_directives():
    src = """
      PROGRAM P
      PARAMETER (N = 16)
      REAL*8 A(N), B(N)
      INTEGER I
CSRD$ PARALLEL
      DO I = 1, N
        A(I) = DBLE(I)
      ENDDO
      DO I = 1, N
        B(I) = A(I)
      ENDDO
      END
"""
    prog = compile_source(src, nprocs=4, parallelize=False)
    regions = prog.parallel_regions()
    assert len(regions) == 1  # only the annotated loop
    assert regions[0].loop.var == "I"


def test_forced_block_partition_on_triangular():
    """The user may override the auto policy; results stay correct."""
    src = synthetic.triangular_kernel(10)
    prog = compile_source(src, nprocs=2, granularity="fine", partition="block")
    region = prog.parallel_regions()[0]
    assert region.partition.strategy == "block"
    from repro.runtime.executor import run_sequential

    seq = run_sequential(prog)
    par = run_program(prog)
    assert np.array_equal(par.memory.array("L"), seq.memory.array("L"))


def test_forced_cyclic_partition_on_square():
    init = mm.init_arrays(12)
    prog = compile_source(mm.source(12), nprocs=3, partition="cyclic")
    region = prog.parallel_regions()[0]
    assert region.partition.strategy == "cyclic"
    par = run_program(prog, init=init)
    assert np.allclose(par.memory.shaped("C"), mm.reference(init))


def test_figure9_kernel_compiles_with_strided_plans():
    prog = compile_source(
        synthetic.figure9_kernel(4), nprocs=2, granularity="fine"
    )
    region = prog.parallel_regions()[0]
    aplan = prog.plans[region.region_id].arrays["A"]
    strided = [
        t for ts in aplan.collect.values() for t in ts if not t.contiguous
    ]
    assert strided and all(t.stride == 3 for t in strided)


def test_fortran_emission_stable_across_compiles():
    a = compile_source(mm.source(8), nprocs=2).fortran
    b = compile_source(mm.source(8), nprocs=2).fortran
    assert a == b


# -- compile cache ----------------------------------------------------------
def test_compile_cache_returns_same_program_object():
    from repro.compiler.pipeline import clear_compile_cache, compile_cache_stats

    clear_compile_cache()
    src = mm.source(16)
    p1 = compile_source(src, nprocs=4, granularity="fine")
    p2 = compile_source(src, nprocs=4, granularity="fine")
    assert p2 is p1
    stats = compile_cache_stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    # Different options miss.
    p3 = compile_source(src, nprocs=4, granularity="coarse")
    assert p3 is not p1
    assert compile_cache_stats()["misses"] == 2
    clear_compile_cache()


def test_cached_program_reruns_identically():
    from repro.compiler.pipeline import clear_compile_cache

    clear_compile_cache()
    src = mm.source(16)
    prog = compile_source(src, nprocs=4, granularity="fine")
    r1 = run_program(prog)
    prog2 = compile_source(src, nprocs=4, granularity="fine")
    assert prog2 is prog
    r2 = run_program(prog2)
    assert r1.total_s == r2.total_s
    clear_compile_cache()
