"""Tests for one-sided windows: put/get/accumulate, fence, locks."""

import numpy as np
import pytest

from repro.mpi2 import Mpi2Runtime, MpiError, SUM
from repro.mpi2.window import Win
from repro.vbus import build_cluster


def run_with_windows(nprocs, win_size, fn):
    """Run ``fn(comm, win, rank)`` on every rank with a shared window."""
    cluster = build_cluster(nprocs)
    runtime = Mpi2Runtime(cluster)
    buffers = [np.zeros(win_size) for _ in range(nprocs)]
    comms = [runtime.comm(r) for r in range(nprocs)]
    wins = Win.create(comms, buffers)
    results = {}

    def make_body(r):
        def body():
            out = yield from fn(comms[r], wins[r], r)
            results[r] = out

        return body

    for r in range(nprocs):
        cluster.sim.process(make_body(r)(), name=f"rank{r}")
    cluster.sim.run()
    assert len(results) == nprocs
    return results, wins, cluster


def test_put_contiguous_visible_after_fence():
    def body(comm, win, rank):
        yield from win.fence()
        if rank == 0:
            yield from win.put(np.arange(10.0), target=1, offset=5)
        yield from win.fence()
        return win.local.copy()

    results, wins, _cl = run_with_windows(4, 32, body)
    assert np.array_equal(results[1][5:15], np.arange(10.0))
    assert results[1][:5].sum() == 0
    assert wins[0].puts_contig == 1


def test_put_strided_writes_every_kth_element():
    def body(comm, win, rank):
        yield from win.fence()
        if rank == 0:
            yield from win.put(np.array([1.0, 2.0, 3.0]), target=1, offset=2, stride=4)
        yield from win.fence()
        return win.local.copy()

    results, wins, _cl = run_with_windows(2, 16, body)
    expected = np.zeros(16)
    expected[[2, 6, 10]] = [1.0, 2.0, 3.0]
    assert np.array_equal(results[1], expected)
    assert wins[0].puts_strided == 1
    assert wins[0].puts_contig == 0


def test_get_contiguous_and_strided():
    # Every rank does two fences; rank 1 issues its gets in between.
    def body2(comm, win, rank):
        win.local[:] = rank * 100 + np.arange(win.local.size)
        yield from win.fence()
        out = None
        if rank == 1:
            contig = yield from win.get(target=0, offset=3, count=4)
            strided = yield from win.get(target=0, offset=0, count=3, stride=5)
            out = (contig, strided)
        yield from win.fence()
        return out

    results, wins, _cl = run_with_windows(2, 16, body2)
    contig, strided = results[1]
    assert np.array_equal(contig, [3.0, 4.0, 5.0, 6.0])
    assert np.array_equal(strided, [0.0, 5.0, 10.0])
    assert wins[1].gets_contig == 1
    assert wins[1].gets_strided == 1


def test_accumulate_sums_into_target():
    def body(comm, win, rank):
        yield from win.fence()
        # All ranks accumulate 1s into rank 0's window, under lock.
        yield from win.lock(0)
        yield from win.accumulate(np.ones(4), target=0, op=SUM, offset=0)
        win.unlock(0)
        yield from win.fence()
        return win.local[:4].copy()

    results, _wins, _cl = run_with_windows(4, 8, body)
    assert np.array_equal(results[0], np.full(4, 4.0))


def test_put_to_self_is_free_and_correct():
    def body(comm, win, rank):
        t0 = comm.sim.now
        yield from win.put(np.array([7.0]), target=rank, offset=0)
        assert comm.sim.now == t0
        yield from win.fence()
        return win.local[0]

    results, _wins, _cl = run_with_windows(2, 4, body)
    assert results == {0: 7.0, 1: 7.0}


def test_bounds_checking():
    def body(comm, win, rank):
        if rank == 0:
            with pytest.raises(MpiError):
                yield from win.put(np.ones(10), target=1, offset=60)
            with pytest.raises(MpiError):
                yield from win.put(np.ones(4), target=1, offset=0, stride=30)
            with pytest.raises(MpiError):
                yield from win.get(target=9, offset=0, count=1)
            with pytest.raises(MpiError):
                yield from win.put(np.ones(1), target=1, offset=0, stride=0)
        yield from win.fence()
        return None

    run_with_windows(2, 64, body)


def test_strided_put_costs_more_cpu_than_contiguous():
    """The §2.2 claim: strided PUT uses PIO and occupies the processor."""

    def body2(comm, win, rank):
        out = None
        if rank == 0:
            t0 = comm.sim.now
            yield from win.put(np.ones(500), target=1, offset=0, stride=1)
            contig_cpu = comm.sim.now - t0
            t0 = comm.sim.now
            yield from win.put(np.ones(500), target=1, offset=0, stride=2)
            strided_cpu = comm.sim.now - t0
            out = (contig_cpu, strided_cpu)
        yield from win.fence()
        return out

    results, _wins, _cl = run_with_windows(2, 1024, body2)
    contig_cpu, strided_cpu = results[0]
    assert strided_cpu > 5 * contig_cpu


def test_fence_waits_for_outstanding_dma():
    """A fence immediately after a big put must drain the wire leg."""

    def body(comm, win, rank):
        out = None
        if rank == 0:
            yield from win.put(np.zeros(500_000), target=1)  # 4 MB
            initiate_t = comm.sim.now
            assert win.outstanding == 1
            yield from win.fence()
            out = (initiate_t, comm.sim.now, win.fence_wait_s)
        else:
            yield from win.fence()
        return out

    results, _wins, cl = run_with_windows(2, 500_000, body)
    initiate_t, fence_done, fence_wait = results[0]
    # Initiation returns long before the 4 MB have streamed at ~50 MB/s.
    stream_time = 4e6 / cl.params.nic.dma_rate_Bps
    assert initiate_t < 0.2 * stream_time
    assert fence_done >= stream_time
    assert fence_wait > 0.8 * stream_time


def test_compute_overlaps_dma_before_fence():
    """Computation between put and fence hides the streaming time."""

    def body(comm, win, rank):
        out = None
        if rank == 0:
            yield from win.put(np.zeros(500_000), target=1)  # 4 MB
            yield comm.sim.timeout(1.0)  # "compute" for a full second
            t0 = comm.sim.now
            yield from win.fence()
            out = comm.sim.now - t0
        else:
            yield from win.fence()
        return out

    results, _wins, _cl = run_with_windows(2, 500_000, body)
    # The wire drained during the compute second; fence is just a barrier.
    assert results[0] < 1e-3


def test_window_creation_validation():
    cluster = build_cluster(2)
    runtime = Mpi2Runtime(cluster)
    comms = [runtime.comm(0), runtime.comm(1)]
    with pytest.raises(MpiError):
        Win.create(comms, [np.zeros(4)])  # wrong buffer count
    with pytest.raises(MpiError):
        Win.create(comms, [np.zeros((2, 2)), np.zeros(4)])  # not 1-D
    with pytest.raises(MpiError):
        Win.create([], [])
