"""The sweep engine's contracts: grid expansion, the content-addressed
cache, serial/parallel byte-identity, and lost-worker isolation.

These pin the determinism guarantees documented in docs/SWEEP.md:

* expansion order is fixed (axes iterate in ``AXIS_KEYS`` order), so the
  merged rows and the JSONL bytes never depend on execution order;
* a serial sweep and a ``--jobs N`` sweep emit byte-identical JSONL;
* warm runs replay cached rows bit-for-bit; any config or version change
  misses the cache;
* a job that kills its worker process becomes one typed
  ``SweepWorkerLost`` row while every other job completes normally.
"""

import json
import os

import pytest

from repro.sweep import (
    AXIS_KEYS,
    SweepConfigError,
    cache_path,
    expand_grid,
    job_key,
    parse_workload,
    run_sweep,
    summary_table,
    write_jsonl,
)

#: Small but non-trivial: 2 workloads x 2 nprocs, sub-second serially.
GRID = {
    "name": "unit",
    "axes": {
        "workload": ["MM-12", "CFFZINIT-5"],
        "nprocs": [2, 4],
    },
    "defaults": {"granularity": "coarse"},
}


def _read(path):
    with open(path, "rb") as fh:
        return fh.read()


# ---------------------------------------------------------------- grid


def test_expansion_order_is_deterministic():
    configs = expand_grid(GRID)
    assert [(c["workload"], c["nprocs"]) for c in configs] == [
        ("MM-12", 2), ("MM-12", 4), ("CFFZINIT-5", 2), ("CFFZINIT-5", 4),
    ]
    # Every config carries every axis key, in AXIS_KEYS order — except
    # tune_plan (post-PR6), partition (post-PR8), and calibration
    # (post-PR9), omitted when unset so pre-existing cache keys and
    # committed result rows keep their exact bytes.
    for cfg in configs:
        assert tuple(cfg) == tuple(
            k for k in AXIS_KEYS
            if k not in ("tune_plan", "partition", "calibration")
        )


def test_grid_validation_errors():
    with pytest.raises(SweepConfigError):
        expand_grid({"axes": {}})  # no axes
    with pytest.raises(SweepConfigError):
        expand_grid({"axes": {"workload": ["MM-12"]}, "bogus": 1})
    with pytest.raises(SweepConfigError):
        expand_grid({"axes": {"nprocs": [2]}})  # workload required
    with pytest.raises(SweepConfigError):  # axis/default clash
        expand_grid({
            "axes": {"workload": ["MM-12"], "nprocs": [2]},
            "defaults": {"nprocs": 4},
        })
    with pytest.raises(SweepConfigError):  # unknown backend
        expand_grid({
            "axes": {"workload": ["MM-12"]},
            "defaults": {"backend": "myrinet"},
        })
    with pytest.raises(SweepConfigError):  # bad workload spec
        expand_grid({"axes": {"workload": ["mm-12"]}})


def test_parse_workload():
    assert parse_workload("MM-256") == ("MM", 256, None)
    assert parse_workload("JACOBI-64x10") == ("JACOBI", 64, 10)
    assert parse_workload("SWIM-32x2") == ("SWIM", 32, 2)
    with pytest.raises(SweepConfigError):
        parse_workload("MM")  # size required
    with pytest.raises(SweepConfigError):
        parse_workload("FFT-64")


# --------------------------------------------------------------- cache


def test_job_key_changes_with_config_and_version():
    cfg = expand_grid(GRID)[0]
    key = job_key(cfg)
    assert key == job_key(dict(cfg))  # insertion order is irrelevant
    changed = dict(cfg, nprocs=8)
    assert job_key(changed) != key
    assert job_key(cfg, version="0.0.0-other") != key
    assert job_key(cfg, schema=999) != key


def test_cold_then_warm_identical_rows(tmp_path):
    cache = str(tmp_path / "cache")
    cold = run_sweep(GRID, cache_dir=cache)
    warm = run_sweep(GRID, cache_dir=cache)
    assert cold.misses == len(cold.rows) and cold.hits == 0
    assert warm.hits == len(warm.rows) and warm.misses == 0
    assert warm.rows == cold.rows
    # Every cached entry landed at its content-addressed path.
    for key in cold.keys:
        assert os.path.exists(cache_path(cache, key))


def test_config_change_invalidates_cache(tmp_path):
    cache = str(tmp_path / "cache")
    run_sweep(GRID, cache_dir=cache)
    bumped = dict(GRID, defaults={"granularity": "fine"})
    again = run_sweep(bumped, cache_dir=cache)
    assert again.hits == 0 and again.misses == len(again.rows)


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cache = str(tmp_path / "cache")
    first = run_sweep(GRID, cache_dir=cache)
    path = cache_path(cache, first.keys[0])
    with open(path, "w") as fh:
        fh.write("{truncated")
    again = run_sweep(GRID, cache_dir=cache)
    assert again.hits == len(again.rows) - 1 and again.misses == 1
    assert again.rows == first.rows


# ------------------------------------------- serial/parallel identity


@pytest.mark.slow
def test_serial_and_parallel_jsonl_byte_identical(tmp_path):
    serial = run_sweep(GRID, jobs=1, cache_dir=str(tmp_path / "c1"))
    para = run_sweep(GRID, jobs=4, cache_dir=str(tmp_path / "c2"))
    s_path, p_path = str(tmp_path / "s.jsonl"), str(tmp_path / "p.jsonl")
    write_jsonl(serial.rows, s_path)
    write_jsonl(para.rows, p_path)
    assert _read(s_path) == _read(p_path)
    # And the rows are real: every job simulated something.
    for line in _read(s_path).decode().splitlines():
        row = json.loads(line)
        assert row["status"] == "ok"
        assert row["result"]["simulated_s"] > 0


@pytest.mark.slow
def test_killed_worker_yields_typed_row_without_corrupting_sweep(tmp_path):
    grid = {
        "name": "crash",
        "axes": {"workload": ["MM-12", "CRASH-9", "CFFZINIT-5"]},
        "defaults": {"nprocs": 2, "granularity": "coarse"},
    }
    result = run_sweep(grid, jobs=2, cache_dir=str(tmp_path / "c"))
    assert [r["status"] for r in result.rows] == ["ok", "error", "ok"]
    err = result.rows[1]["error"]
    assert err["type"] == "SweepWorkerLost"
    assert result.errors == 1
    # The innocent jobs cached; the lost-worker row did not.
    warm = run_sweep(grid, jobs=2, cache_dir=str(tmp_path / "c"))
    assert warm.hits == 2 and warm.misses == 1
    # The summary renders the error detail.
    assert "SweepWorkerLost" in summary_table(result)


# ------------------------------------------------------------ backends


def test_backend_axis_covers_ethernet_and_gige(tmp_path):
    grid = {
        "name": "backends",
        "axes": {"backend": ["vbus", "ethernet100", "gige"]},
        "defaults": {
            "workload": "MM-16", "nprocs": 4, "granularity": "fine",
        },
    }
    result = run_sweep(grid, cache_dir=None)
    sim = {r["backend"]: r["result"]["simulated_s"] for r in result.rows}
    assert all(r["status"] == "ok" for r in result.rows)
    # Fine-grain small messages: the V-Bus user-level stack beats both
    # Ethernet models, and the switched-GigE model beats shared 100 Mb/s
    # (more bandwidth + full duplex, same kernel-stack latency).
    assert sim["vbus"] < sim["gige"] < sim["ethernet100"]
