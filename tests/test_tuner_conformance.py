"""Conformance oracle suite for the tuner stack (docs/AUTOTUNE.md).

Every cell of a (workload x backend x fault-plan) matrix must satisfy
the tuner's external contract, independent of which tier decided it:
the plan is *valid* (region ids exist in the compiled program, grains
and §5.3 strategy specs parse), its cache key is *stable* and derivable
by hand from the documented fields, and a ``--tune-partition`` plan
never measures worse than either uniform strategy on a healthy run.
Fault plans perturb the tuner's profile timings, never its contract —
the faulted cells pin exactly that.
"""

import hashlib

import pytest

import repro.tools.tuneplan as tuneplan_mod
from repro.compiler.pipeline import CompileOptions, compile_source
from repro.compiler.postpass.granularity import GRAINS
from repro.compiler.postpass.partition import STRATEGIES, parse_strategy
from repro.faults.plan import FaultPlan, FaultSpec
from repro.runtime.executor import run_program
from repro.sweep.cache import job_key
from repro.sweep.runner import BACKENDS
from repro.tools.tuneplan import plan_cache_key, tune_per_region
from repro.vbus import params as P
from repro.workloads import source_for, synthetic

WORKLOADS = ("XOVER-48", "MM-24", "PXOVER-24")
MATRIX_BACKENDS = ("vbus", "gige")

#: Uniform delay noise on every flit: perturbs profile timings without
#: changing which transfers a plan emits.
DELAYS = FaultPlan(
    seed=7,
    specs=(FaultSpec(kind="delay", rate=0.25, delay_s=2e-6),),
    max_sim_s=10.0,
)

MATRIX = [
    (w, b, f)
    for w in WORKLOADS
    for b in MATRIX_BACKENDS
    for f in (None, DELAYS)
]


def _comm(src, options, backend):
    params = P.cluster_for(options.nprocs, getattr(P, BACKENDS[backend]))
    prog = compile_source(src, options=options)
    return run_program(prog, cluster_params=params, execute=False).comm_max_s


def _tune(src, backend, faults):
    return tune_per_region(
        src,
        nprocs=4,
        metric="comm",
        backend=backend,
        cache_dir=None,
        tune_partition=True,
        faults=faults,
    )


@pytest.mark.parametrize(
    "spec,backend,faults",
    MATRIX,
    ids=[f"{w}-{b}-{'delay' if f else 'healthy'}" for w, b, f in MATRIX],
)
def test_plan_is_valid_and_never_loses_to_uniform(spec, backend, faults):
    src = source_for(spec)
    plan = _tune(src, backend, faults)
    prog = compile_source(src, nprocs=4)

    # Validity: every tuned region exists, every choice parses.
    assert set(plan.grain_map) <= set(prog.plans)
    assert set(plan.partition_map) <= set(prog.plans)
    assert all(g in GRAINS for g in plan.grain_map.values())
    assert plan.default_grain in GRAINS
    for spec_str in plan.partition_map.values():
        parse_strategy(spec_str)  # raises ValueError on a bad spec
    for d in plan.decisions:
        assert d.region_id in prog.plans
        assert d.grain in GRAINS
        assert d.how in ("model", "profile")
    # The plan compiles: the ultimate validity check.
    compile_source(src, options=plan.options())

    # Oracle: the joint plan never measures worse than either uniform
    # strategy (healthy runs — faults only ever perturbed the search).
    tuned = _comm(src, plan.options(), backend)
    for strategy in STRATEGIES:
        uniform = _comm(
            src, CompileOptions(nprocs=4, partition=strategy), backend
        )
        assert tuned <= uniform * (1 + 1e-9), (
            f"tuned plan loses to uniform {strategy} on {spec}/{backend}"
        )


@pytest.mark.parametrize("spec,backend,faults", [MATRIX[0], MATRIX[-1]])
def test_cache_key_is_stable_and_hand_recomputable(spec, backend, faults):
    src = source_for(spec)
    key = plan_cache_key(
        source=src, backend=backend, nprocs=4, metric="comm",
        epsilon=0.05, tune_partition=True,
    )
    # Stable across calls...
    assert key == plan_cache_key(
        source=src, backend=backend, nprocs=4, metric="comm",
        epsilon=0.05, tune_partition=True,
    )
    # ...and exactly the documented derivation: the sweep-cache job key
    # of the tuning problem's canonical fields, with ``partition`` (and
    # ``calibration``) joining only when the search actually uses them.
    assert key == job_key({
        "kind": "tuneplan",
        "source_sha256": hashlib.sha256(src.encode("utf-8")).hexdigest(),
        "backend": backend,
        "nprocs": 4,
        "metric": "comm",
        "epsilon": 0.05,
        "partition": True,
    })
    grain_only = plan_cache_key(
        source=src, backend=backend, nprocs=4, metric="comm", epsilon=0.05,
    )
    assert grain_only != key
    assert grain_only == job_key({
        "kind": "tuneplan",
        "source_sha256": hashlib.sha256(src.encode("utf-8")).hexdigest(),
        "backend": backend,
        "nprocs": 4,
        "metric": "comm",
        "epsilon": 0.05,
    })


def test_warm_plan_round_trips_byte_identically(tmp_path):
    src = source_for("PXOVER-24")
    kw = dict(
        nprocs=4, metric="comm", backend="gige",
        cache_dir=str(tmp_path), tune_partition=True,
    )
    cold = tune_per_region(src, **kw)
    warm = tune_per_region(src, **kw)
    assert not cold.cached and warm.cached
    assert warm == cold
    assert warm.to_jsonable() == cold.to_jsonable()


def test_uniform_imbalance_skips_baseline_profile(monkeypatch):
    """A workload whose block and cyclic owner maps are equally (im)balanced
    gives the imbalance term a common factor across every candidate — a
    common factor cannot reorder them, so the joint tuner must not spin
    up the instrumented baseline profile at all.  copy_kernel(30) at
    np=4 owns 8/8/7/7 elements under both strategies; on V-Bus block
    then wins by a clear margin, so the whole search is model-decided:
    zero simulator runs."""
    calls = []
    real = tuneplan_mod.run_program

    def counting(*args, **kwargs):
        calls.append(1)
        return real(*args, **kwargs)

    monkeypatch.setattr(tuneplan_mod, "run_program", counting)
    plan = tune_per_region(
        synthetic.copy_kernel(30),
        nprocs=4,
        metric="comm",
        backend="vbus",
        cache_dir=None,
        tune_partition=True,
    )
    assert plan.profiles == 0
    assert not calls, f"{len(calls)} instrumented run(s) on a model-decidable search"
    assert all(d.how == "model" for d in plan.decisions)
