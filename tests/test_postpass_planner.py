"""Tests for the communication planner: scatter/collect plans, AVPG
filtering, broadcast detection, demotion, and triangular regions."""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_source
from repro.compiler.postpass.granularity import COARSE, FINE, MIDDLE
from repro.compiler.postpass.spmd import ParRegion, iter_regions
from repro.runtime.executor import run_program, run_sequential
from repro.workloads import cffzinit, mm, synthetic

MM16 = mm.source(16)


def plans_for(src, **kw):
    prog = compile_source(src, **kw)
    return prog, prog.plans


def par_regions(prog):
    return [r for r in iter_regions(prog.regions) if isinstance(r, ParRegion)]


def test_mm_classifications_and_roles():
    prog, plans = plans_for(MM16, nprocs=4, granularity="fine")
    plan = plans[par_regions(prog)[0].region_id]
    assert plan.arrays["A"].classification == "ReadOnly"
    assert plan.arrays["B"].classification == "ReadOnly"
    assert plan.arrays["C"].classification == "WriteFirst"
    assert not plan.arrays["A"].collect  # ReadOnly: scatter only
    assert not plan.arrays["C"].scatter  # WriteFirst: collect only


def test_mm_b_matrix_becomes_broadcast():
    prog, plans = plans_for(MM16, nprocs=4, granularity="fine")
    plan = plans[par_regions(prog)[0].region_id]
    assert plan.arrays["B"].scatter_bcast
    assert any("broadcast" in n for n in plan.notes)


def test_mm_coarse_demotes_collect_of_interleaved_rows():
    """Row-block C regions interleave across columns: coarse bounding
    boxes overlap, so the §5.6 check falls back to fine."""
    prog, plans = plans_for(MM16, nprocs=4, granularity="coarse")
    aplan = plans[par_regions(prog)[0].region_id].arrays["C"]
    assert aplan.grain == COARSE
    assert aplan.collect_grain == FINE
    assert "overlap" in aplan.demotion_reason


def test_single_rank_has_no_communication():
    prog, plans = plans_for(MM16, nprocs=1)
    plan = plans[par_regions(prog)[0].region_id]
    assert plan.total_messages() == 0


def test_cffzinit_middle_not_demoted():
    """Stride-2 pairs union to contiguous coverage: middle collect safe."""
    prog, plans = plans_for(cffzinit.source(6), nprocs=4, granularity="middle")
    region = par_regions(prog)[0]
    aplan = plans[region.region_id].arrays["TRIG"]
    assert aplan.collect_grain == MIDDLE
    assert aplan.demotion_reason is None
    # And at fine grain the same collects are strided.
    prog2, plans2 = plans_for(cffzinit.source(6), nprocs=4, granularity="fine")
    aplan2 = plans2[par_regions(prog2)[0].region_id].arrays["TRIG"]
    strided = [
        t for ts in aplan2.collect.values() for t in ts if not t.contiguous
    ]
    assert strided


def test_isolated_stride_write_demotes_middle_collect():
    """A lone stride-3 write: middle inflation would carry stale bytes."""
    prog, plans = plans_for(
        synthetic.stride_kernel(32, 3), nprocs=4, granularity="middle"
    )
    regions = par_regions(prog)
    aplan = plans[regions[1].region_id].arrays["A"]
    assert aplan.collect_grain == FINE
    assert "stale" in aplan.demotion_reason


def test_avpg_scatter_elimination_between_loops():
    """Second loop re-reads A unchanged: its scatter is eliminated."""
    src = """
      PROGRAM P
      PARAMETER (N = 32)
      REAL*8 A(N), B(N), C(N)
      INTEGER I
      DO I = 1, N
        A(I) = DBLE(I)
      ENDDO
      DO I = 1, N
        B(I) = A(I) + 1.0
      ENDDO
      DO I = 1, N
        C(I) = A(I) * 2.0
      ENDDO
      END
"""
    prog, plans = plans_for(src, nprocs=4, granularity="fine")
    regions = par_regions(prog)
    # Loop 2 scatters A to slaves (each needs only its block, which it
    # already holds from its own loop-1 writes... actually loop 1 wrote A,
    # so slaves hold their own blocks; reads in loops 2/3 are block-local).
    plan2 = plans[regions[1].region_id].arrays["A"]
    plan3 = plans[regions[2].region_id].arrays["A"]
    # Slaves computed their own A blocks in loop 1: both later scatters
    # are eliminated by the validity mask.
    assert not plan2.scatter
    assert len(plan2.scatter_skipped) == 3
    assert not plan3.scatter
    assert len(plan3.scatter_skipped) == 3


def test_scatter_needed_after_master_writes():
    """A master (sequential) write invalidates slave copies."""
    src = """
      PROGRAM P
      PARAMETER (N = 32)
      REAL*8 A(N), B(N)
      INTEGER I
      DO I = 1, N
        A(I) = DBLE(I)
      ENDDO
      A(20) = -1.0
      DO I = 1, N
        B(I) = A(I) + 1.0
      ENDDO
      END
"""
    prog, plans = plans_for(src, nprocs=4, granularity="fine")
    regions = par_regions(prog)
    plan2 = plans[regions[1].region_id].arrays["A"]
    # Element 20 lives in rank 2's block: that slave is re-scattered;
    # the other slaves' copies remain valid.
    assert list(plan2.scatter) == [2]
    assert sorted(plan2.scatter_skipped) == [1, 3]


def test_collect_elimination_with_live_out():
    src = synthetic.avpg_chain(32)
    prog, plans = plans_for(
        src, nprocs=4, granularity="fine", live_out=frozenset({"D"})
    )
    regions = par_regions(prog)
    # B is written in loop 0 and never used again: collect eliminated.
    plan0 = plans[regions[0].region_id]
    assert plan0.arrays["B"].collect_skipped is not None
    assert not plan0.arrays["B"].collect
    # A is used later: collected.
    assert plan0.arrays["A"].collect or plan0.arrays["A"].collect_skipped is None


def test_collect_kept_by_default_liveness():
    prog, plans = plans_for(synthetic.avpg_chain(32), nprocs=4)
    regions = par_regions(prog)
    plan0 = plans[regions[0].region_id]
    assert plan0.arrays["B"].collect  # default: everything observable


def test_triangular_loop_cyclic_and_exact_collect():
    """Triangular nest: cyclic partition, per-iteration exact regions,
    and a value-correct run."""
    src = synthetic.triangular_kernel(12)
    prog = compile_source(src, nprocs=3, granularity="fine")
    region = par_regions(prog)[0]
    assert region.partition.strategy == "cyclic"
    seq = run_sequential(prog)
    par = run_program(prog)
    assert np.array_equal(
        par.memory.array("L"), seq.memory.array("L")
    )


def test_triangular_coarse_demoted_when_overlapping():
    prog = compile_source(
        synthetic.triangular_kernel(12), nprocs=3, granularity="coarse"
    )
    region = par_regions(prog)[0]
    aplan = prog.plans[region.region_id].arrays["L"]
    # Cyclic column ownership interleaves: coarse regions overlap.
    assert aplan.collect_grain == FINE
    par = run_program(prog)
    seq = run_sequential(prog)
    assert np.array_equal(par.memory.array("L"), seq.memory.array("L"))


def test_scalars_in_recorded():
    src = """
      PROGRAM P
      PARAMETER (N = 16)
      REAL*8 A(N)
      REAL*8 ALPHA
      INTEGER I
      ALPHA = 2.5
      DO I = 1, N
        A(I) = ALPHA * DBLE(I)
      ENDDO
      END
"""
    prog, plans = plans_for(src, nprocs=4)
    region = par_regions(prog)[0]
    assert "ALPHA" in plans[region.region_id].scalars_in


def test_plan_message_and_byte_accounting():
    prog, plans = plans_for(MM16, nprocs=2, granularity="fine")
    plan = plans[par_regions(prog)[0].region_id]
    total = plan.total_messages()
    assert total == sum(
        a.scatter_messages() + a.collect_messages()
        for a in plan.arrays.values()
    )
    assert plan.total_bytes() > 0
