"""Tests for splitted LMADs (paper §5.4, Definition 2, Figure 8)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.analysis.lmad import LMAD
from repro.compiler.postpass.split import split_lmad


def test_figure8_splitted_lmad():
    """A(14,*) accessed A(K, J+2*(I-1)): mapping = K dim (stride 3),
    offsets = {0, 14, 28, 42}."""
    l = LMAD.from_counts("A", 0, [(3, 4), (14, 2), (28, 2)], ["K", "J", "I"])
    sp = split_lmad(l)
    assert sp.mapping.stride == 3
    assert sp.mapping.count == 4
    assert sorted(sp.offsets) == [0, 14, 28, 42]
    assert sp.transfers == 4
    assert sp.elements_per_transfer == 4


def test_split_scalar_region():
    l = LMAD("A", 7, ())
    sp = split_lmad(l)
    assert sp.offsets == (7,)
    assert sp.mapping.count == 1


def test_split_single_dim():
    l = LMAD.from_counts("A", 5, [(2, 10)])
    sp = split_lmad(l)
    assert sp.mapping.stride == 2
    assert sp.offsets == (5,)


def test_split_chooses_lowest_stride_dim():
    l = LMAD.from_counts("A", 0, [(100, 3), (7, 4)])
    sp = split_lmad(l)
    assert sp.mapping.stride == 7
    assert sorted(sp.offsets) == [0, 100, 200]


def test_paper_transfer_count_formula():
    """Fine/middle count = prod_{j>=2}(dj/aj + 1)."""
    l = LMAD.from_counts("A", 0, [(1, 8), (10, 5), (100, 3)])
    sp = split_lmad(l)
    assert sp.transfers == 5 * 3


def test_reassemble_roundtrip():
    l = LMAD.from_counts("A", 3, [(2, 5), (20, 4)])
    sp = split_lmad(l)
    back = sp.reassemble()
    assert np.array_equal(back.enumerate(), l.enumerate())


@settings(max_examples=60)
@given(
    base=st.integers(0, 30),
    d1=st.tuples(st.integers(1, 5), st.integers(1, 6)),
    d2=st.tuples(st.integers(6, 40), st.integers(1, 4)),
)
def test_property_split_covers_same_points(base, d1, d2):
    """mapping x offsets regenerates exactly the LMAD's point set."""
    l = LMAD.from_counts("A", base, [d1, d2])
    sp = split_lmad(l)
    pts = set()
    for o in sp.offsets:
        for k in range(sp.mapping.count):
            pts.add(o + k * sp.mapping.stride)
    assert pts == set(l.enumerate().tolist())
