"""Unit tests for Resource and Store."""

import pytest

from repro.sim import Resource, SimulationError, Simulator, Store


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    grants = []

    def user(tag, hold):
        yield res.request()
        grants.append((tag, sim.now))
        yield sim.timeout(hold)
        res.release()

    sim.process(user("a", 5.0))
    sim.process(user("b", 5.0))
    sim.process(user("c", 1.0))
    sim.run()
    # a and b acquire at t=0; c waits until one of them releases at t=5.
    assert grants == [("a", 0.0), ("b", 0.0), ("c", 5.0)]


def test_resource_fifo_queue_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(tag):
        yield res.request()
        order.append(tag)
        yield sim.timeout(1.0)
        res.release()

    for tag in "abcd":
        sim.process(user(tag))
    sim.run()
    assert order == list("abcd")


def test_resource_release_without_request_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_counts():
    sim = Simulator()
    res = Resource(sim, capacity=3)
    assert res.available == 3

    def holder():
        yield res.request()

    sim.process(holder())
    sim.run()
    assert res.in_use == 1
    assert res.available == 2


def test_resource_bad_capacity():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        yield store.put("m1")
        yield sim.timeout(1.0)
        yield store.put("m2")

    def consumer():
        for _ in range(2):
            item = yield store.get()
            got.append((sim.now, item))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == [(0.0, "m1"), (1.0, "m2")]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((sim.now, item))

    def producer():
        yield sim.timeout(4.0)
        yield store.put("late")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [(4.0, "late")]


def test_store_bounded_put_blocks_when_full():
    sim = Simulator()
    store = Store(sim, capacity=1)
    timeline = []

    def producer():
        yield store.put("a")
        timeline.append(("put-a", sim.now))
        yield store.put("b")  # blocks until the consumer drains "a"
        timeline.append(("put-b", sim.now))

    def consumer():
        yield sim.timeout(2.0)
        item = yield store.get()
        timeline.append(("got-" + item, sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert ("put-a", 0.0) in timeline
    assert ("put-b", 2.0) in timeline
    assert ("got-a", 2.0) in timeline
    assert list(store.items) == ["b"]


def test_store_fifo_ordering_of_items_and_getters():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(tag):
        item = yield store.get()
        got.append((tag, item))

    sim.process(consumer("c1"))
    sim.process(consumer("c2"))

    def producer():
        yield store.put("first")
        yield store.put("second")

    sim.process(producer())
    sim.run()
    assert got == [("c1", "first"), ("c2", "second")]


def test_store_len():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    store.put("y")
    assert len(store) == 2


def test_store_bad_capacity():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Store(sim, capacity=0)
