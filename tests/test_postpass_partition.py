"""Tests for work partitioning (paper §5.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.analysis.access import LoopCtx
from repro.compiler.frontend.lower import lower_program
from repro.compiler.frontend.parser import parse
from repro.compiler.postpass.partition import (
    Partition,
    choose_strategy,
    is_triangular,
)


def ctx(lo, hi, step=1):
    return LoopCtx("I", lo, hi, step)


def test_block_partition_splits_contiguously():
    p = Partition(pctx=ctx(1, 16), nprocs=4, strategy="block")
    chunks = [p.rank_ctx(r) for r in range(4)]
    assert [(c.lo, c.hi) for c in chunks] == [(1, 4), (5, 8), (9, 12), (13, 16)]
    assert all(c.step == 1 for c in chunks)


def test_block_partition_uneven():
    p = Partition(pctx=ctx(1, 10), nprocs=4, strategy="block")
    chunks = [p.rank_ctx(r) for r in range(4)]
    # ceil(10/4)=3: 3+3+3+1
    assert [(c.lo, c.hi) for c in chunks if c] == [(1, 3), (4, 6), (7, 9), (10, 10)]


def test_block_partition_more_ranks_than_iters():
    p = Partition(pctx=ctx(1, 2), nprocs=4, strategy="block")
    chunks = [p.rank_ctx(r) for r in range(4)]
    assert chunks[0] is not None and chunks[1] is not None
    assert chunks[2] is None and chunks[3] is None


def test_cyclic_partition_interleaves():
    p = Partition(pctx=ctx(1, 8), nprocs=3, strategy="cyclic")
    c0 = p.rank_ctx(0)
    assert (c0.lo, c0.hi, c0.step) == (1, 7, 3)
    c2 = p.rank_ctx(2)
    assert (c2.lo, c2.hi, c2.step) == (3, 6, 3)
    assert list(c2.values()) == [3, 6]


def test_cyclic_with_stepped_loop():
    p = Partition(pctx=ctx(1, 19, 2), nprocs=2, strategy="cyclic")
    v0 = list(p.rank_ctx(0).values())
    v1 = list(p.rank_ctx(1).values())
    assert v0 == [1, 5, 9, 13, 17]
    assert v1 == [3, 7, 11, 15, 19]


def test_owner_of():
    p = Partition(pctx=ctx(1, 16), nprocs=4, strategy="block")
    assert p.owner_of(1) == 0
    assert p.owner_of(4) == 0
    assert p.owner_of(5) == 1
    assert p.owner_of(16) == 3
    pc = Partition(pctx=ctx(1, 16), nprocs=4, strategy="cyclic")
    assert pc.owner_of(1) == 0
    assert pc.owner_of(2) == 1
    assert pc.owner_of(5) == 0
    with pytest.raises(ValueError):
        p.owner_of(17)


@settings(max_examples=80)
@given(
    lo=st.integers(-20, 20),
    n=st.integers(1, 60),
    step=st.integers(1, 4),
    nprocs=st.integers(1, 8),
    strategy=st.sampled_from(["block", "cyclic"]),
)
def test_property_partition_covers_exactly_once(lo, n, step, nprocs, strategy):
    """Every iteration lands on exactly one rank, and owner_of agrees."""
    hi = lo + (n - 1) * step
    p = Partition(pctx=ctx(lo, hi, step), nprocs=nprocs, strategy=strategy)
    expected = list(range(lo, hi + 1, step))
    assert p.coverage() == sorted(expected)
    for v in expected:
        owner = p.owner_of(v)
        rctx = p.rank_ctx(owner)
        assert v in list(rctx.values())


def test_strategy_validation():
    with pytest.raises(ValueError):
        Partition(pctx=ctx(1, 4), nprocs=2, strategy="diagonal")
    with pytest.raises(ValueError):
        Partition(pctx=ctx(1, 4), nprocs=0, strategy="block")
    with pytest.raises(ValueError):
        Partition(pctx=ctx(1, 4), nprocs=2, strategy="block").rank_ctx(5)


def loop_of(src):
    return lower_program(parse(src)).main.body[0]


def test_triangular_detection_and_policy():
    tri = loop_of("""
      PROGRAM P
      REAL*8 L(10,10)
      DO I = 1, 10
        DO J = 1, I
          L(J,I) = 1.0
        ENDDO
      ENDDO
      END
""")
    assert is_triangular(tri)
    assert choose_strategy(tri, "auto") == "cyclic"
    assert choose_strategy(tri, "block") == "block"  # explicit override

    square = loop_of("""
      PROGRAM P
      REAL*8 A(10,10)
      DO I = 1, 10
        DO J = 1, 10
          A(J,I) = 1.0
        ENDDO
      ENDDO
      END
""")
    assert not is_triangular(square)
    assert choose_strategy(square, "auto") == "block"
    with pytest.raises(ValueError):
        choose_strategy(square, "zigzag")
