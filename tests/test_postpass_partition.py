"""Tests for work partitioning (paper §5.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.analysis.access import LoopCtx
from repro.compiler.frontend.lower import lower_program
from repro.compiler.frontend.parser import parse
from repro.compiler.postpass.partition import (
    Partition,
    choose_strategy,
    is_triangular,
    parse_strategy,
    split_candidates,
)


def ctx(lo, hi, step=1):
    return LoopCtx("I", lo, hi, step)


def test_block_partition_splits_contiguously():
    p = Partition(pctx=ctx(1, 16), nprocs=4, strategy="block")
    chunks = [p.rank_ctx(r) for r in range(4)]
    assert [(c.lo, c.hi) for c in chunks] == [(1, 4), (5, 8), (9, 12), (13, 16)]
    assert all(c.step == 1 for c in chunks)


def test_block_partition_uneven():
    p = Partition(pctx=ctx(1, 10), nprocs=4, strategy="block")
    chunks = [p.rank_ctx(r) for r in range(4)]
    # ceil(10/4)=3: 3+3+3+1
    assert [(c.lo, c.hi) for c in chunks if c] == [(1, 3), (4, 6), (7, 9), (10, 10)]


def test_block_partition_more_ranks_than_iters():
    p = Partition(pctx=ctx(1, 2), nprocs=4, strategy="block")
    chunks = [p.rank_ctx(r) for r in range(4)]
    assert chunks[0] is not None and chunks[1] is not None
    assert chunks[2] is None and chunks[3] is None


def test_cyclic_partition_interleaves():
    p = Partition(pctx=ctx(1, 8), nprocs=3, strategy="cyclic")
    c0 = p.rank_ctx(0)
    assert (c0.lo, c0.hi, c0.step) == (1, 7, 3)
    c2 = p.rank_ctx(2)
    assert (c2.lo, c2.hi, c2.step) == (3, 6, 3)
    assert list(c2.values()) == [3, 6]


def test_cyclic_with_stepped_loop():
    p = Partition(pctx=ctx(1, 19, 2), nprocs=2, strategy="cyclic")
    v0 = list(p.rank_ctx(0).values())
    v1 = list(p.rank_ctx(1).values())
    assert v0 == [1, 5, 9, 13, 17]
    assert v1 == [3, 7, 11, 15, 19]


def test_owner_of():
    p = Partition(pctx=ctx(1, 16), nprocs=4, strategy="block")
    assert p.owner_of(1) == 0
    assert p.owner_of(4) == 0
    assert p.owner_of(5) == 1
    assert p.owner_of(16) == 3
    pc = Partition(pctx=ctx(1, 16), nprocs=4, strategy="cyclic")
    assert pc.owner_of(1) == 0
    assert pc.owner_of(2) == 1
    assert pc.owner_of(5) == 0
    with pytest.raises(ValueError):
        p.owner_of(17)


@settings(max_examples=80)
@given(
    lo=st.integers(-20, 20),
    n=st.integers(1, 60),
    step=st.integers(1, 4),
    nprocs=st.integers(1, 8),
    strategy=st.sampled_from(["block", "cyclic"]),
)
def test_property_partition_covers_exactly_once(lo, n, step, nprocs, strategy):
    """Every iteration lands on exactly one rank, and owner_of agrees."""
    hi = lo + (n - 1) * step
    p = Partition(pctx=ctx(lo, hi, step), nprocs=nprocs, strategy=strategy)
    expected = list(range(lo, hi + 1, step))
    assert p.coverage() == sorted(expected)
    for v in expected:
        owner = p.owner_of(v)
        rctx = p.rank_ctx(owner)
        assert v in list(rctx.values())


def test_strategy_validation():
    with pytest.raises(ValueError):
        Partition(pctx=ctx(1, 4), nprocs=2, strategy="diagonal")
    with pytest.raises(ValueError):
        Partition(pctx=ctx(1, 4), nprocs=0, strategy="block")
    with pytest.raises(ValueError):
        Partition(pctx=ctx(1, 4), nprocs=2, strategy="block").rank_ctx(5)


def loop_of(src):
    return lower_program(parse(src)).main.body[0]


def test_triangular_detection_and_policy():
    tri = loop_of("""
      PROGRAM P
      REAL*8 L(10,10)
      DO I = 1, 10
        DO J = 1, I
          L(J,I) = 1.0
        ENDDO
      ENDDO
      END
""")
    assert is_triangular(tri)
    assert choose_strategy(tri, "auto") == "cyclic"
    assert choose_strategy(tri, "block") == "block"  # explicit override

    square = loop_of("""
      PROGRAM P
      REAL*8 A(10,10)
      DO I = 1, 10
        DO J = 1, 10
          A(J,I) = 1.0
        ENDDO
      ENDDO
      END
""")
    assert not is_triangular(square)
    assert choose_strategy(square, "auto") == "block"
    with pytest.raises(ValueError):
        choose_strategy(square, "zigzag")


TRIANGULAR = """
      PROGRAM P
      REAL*8 L(12,12)
      DO I = 1, 12
        DO J = 1, I
          L(J,I) = 1.0
        ENDDO
      ENDDO
      END
"""

RECT_NEST = """
      PROGRAM P
      REAL*8 A(8,16)
      DO I = 1, 16
        DO J = 1, 8
          A(J,I) = 2.0
        ENDDO
      ENDDO
      END
"""


def test_explicit_override_beats_auto_on_triangular():
    """requested= is honored verbatim — auto's shape rule never vetoes."""
    tri = loop_of(TRIANGULAR)
    assert choose_strategy(tri, "auto") == "cyclic"
    # An explicit block request on a triangular loop is legal (it only
    # costs balance, never correctness) and must come back canonically.
    assert choose_strategy(tri, "block") == "block"
    assert choose_strategy(tri, "cyclic") == "cyclic"
    # The triangular inner loop's bounds move with I, so it is not a
    # split candidate: only the outer dimension is legal.
    assert split_candidates(tri) == [0]
    with pytest.raises(ValueError, match="split dimension 1"):
        choose_strategy(tri, "block:1")


def test_nprocs_1_degenerate_partitions():
    """One rank owns everything under either strategy, any split dim."""
    for strategy in ("block", "cyclic"):
        p = Partition(pctx=ctx(3, 17, 2), nprocs=1, strategy=strategy)
        only = p.rank_ctx(0)
        assert list(only.values()) == list(range(3, 18, 2))
        assert p.coverage() == list(range(3, 18, 2))
        assert all(p.owner_of(v) == 0 for v in range(3, 18, 2))
    # Zero-iteration space: every rank (there is one) gets nothing.
    empty = Partition(pctx=LoopCtx("I", 1, 0, 1), nprocs=1, strategy="block")
    assert empty.rank_ctx(0) is None
    assert empty.coverage() == []


def test_multi_dim_split_selection():
    rect = loop_of(RECT_NEST)
    # Perfect 2-deep nest with constant bounds: dims 0 and 1 are legal.
    assert split_candidates(rect) == [0, 1]
    assert choose_strategy(rect, "block:1") == "block:1"
    assert choose_strategy(rect, "cyclic:1") == "cyclic:1"
    # Dim 0 is the canonical spelling of the bare strategy.
    assert choose_strategy(rect, "block:0") == "block"
    with pytest.raises(ValueError, match="split dimension 2"):
        choose_strategy(rect, "block:2")
    # An imperfect nest (straight-line statement next to the inner DO)
    # stops the candidate walk at dim 0.
    imperfect = loop_of("""
      PROGRAM P
      REAL*8 A(8,16)
      REAL*8 S(16)
      DO I = 1, 16
        S(I) = 0.0
        DO J = 1, 8
          A(J,I) = 2.0
        ENDDO
      ENDDO
      END
""")
    assert split_candidates(imperfect) == [0]


def test_parse_strategy_grammar():
    assert parse_strategy("block") == ("block", 0)
    assert parse_strategy("cyclic:3") == ("cyclic", 3)
    for bad in ("auto", "zigzag", "block:", "block:x", "block:-1", ""):
        with pytest.raises(ValueError):
            parse_strategy(bad)
    with pytest.raises(ValueError):
        parse_strategy(5)


def test_split_partition_restricts_inner_loop():
    """rank_loop rewrites the depth-1 bounds, leaving the outer loop whole."""
    rect = loop_of(RECT_NEST)
    inner_ctx = LoopCtx("J", 1, 8, 1)
    p = Partition(pctx=inner_ctx, nprocs=4, strategy="block", split_dim=1)
    assert p.spec == "block:1"
    r2 = p.rank_loop(2, rect)
    assert (r2.lo.value, r2.hi.value) == (rect.lo.value, rect.hi.value)
    assert (r2.body[0].lo.value, r2.body[0].hi.value) == (5, 6)
    # Ranks partition the inner space exactly once between them.
    inner_vals = []
    for r in range(4):
        rl = p.rank_loop(r, rect)
        if rl is not None:
            lo, hi = rl.body[0].lo.value, rl.body[0].hi.value
            inner_vals.extend(range(lo, hi + 1))
    assert sorted(inner_vals) == list(range(1, 9))
