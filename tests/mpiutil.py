"""Shared helper: run an SPMD generator function across simulated ranks."""

from repro.mpi2 import Mpi2Runtime
from repro.vbus import build_cluster


def run_ranks(nprocs, fn, params=None):
    """Run ``fn(comm, rank)`` (a generator function) on every rank.

    Returns ``(results, runtime, cluster)`` where ``results[rank]`` is each
    rank's return value.
    """
    cluster = build_cluster(nprocs, params=params)
    runtime = Mpi2Runtime(cluster)
    results = {}

    def make_body(r):
        def body():
            out = yield from fn(runtime.comm(r), r)
            results[r] = out

        return body

    for r in range(nprocs):
        cluster.sim.process(make_body(r)(), name=f"rank{r}")
    cluster.sim.run()
    assert len(results) == nprocs, (
        f"only {sorted(results)} of {nprocs} ranks finished (deadlock?)"
    )
    return results, runtime, cluster
