"""Scale tests: larger meshes, concurrent broadcasts, window contention.

The paper's testbed is 4 nodes; the simulator has no such limit — these
tests check the machinery holds up on 3x3 and 4x4 meshes where routes
are longer, freezes hit more in-flight messages, and the master's links
become genuinely hot."""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_source
from repro.mpi2 import Mpi2Runtime, SUM
from repro.runtime.executor import run_program, run_sequential
from repro.vbus import build_cluster, network_usage
from repro.workloads import mm, swim

from tests.mpiutil import run_ranks


@pytest.mark.parametrize("nprocs", [8, 9, 16])
def test_mm_on_larger_meshes(nprocs):
    n = 16
    init = mm.init_arrays(n)
    prog = compile_source(mm.source(n), nprocs=nprocs, granularity="coarse")
    par = run_program(prog, init=init)
    assert np.allclose(par.memory.shaped("C"), mm.reference(init))


def test_swim_on_3x3():
    prog = compile_source(swim.source(12, 1), nprocs=9, granularity="fine")
    par = run_program(prog)
    ref = swim.reference_step(12, 1)
    assert np.allclose(par.memory.shaped("P"), ref["P"])


def test_collectives_on_4x4():
    def body(comm, rank):
        data = yield from comm.bcast(rank if rank == 5 else None, root=5)
        total = yield from comm.allreduce(1, SUM)
        return data, total

    results, _rt, cl = run_ranks(16, body)
    assert all(v == (5, 16) for v in results.values())
    assert cl.topology.diameter == 6


def test_concurrent_broadcasts_serialize_on_the_bus():
    cl = build_cluster(9)
    ends = []

    def b(src):
        yield from cl.hw_broadcast(src, 50_000)
        ends.append(cl.sim.now)

    for src in (0, 4, 8):
        cl.sim.process(b(src))
    cl.sim.run()
    assert len(ends) == 3
    # One virtual bus: strictly increasing completion times.
    assert ends == sorted(ends)
    assert ends[0] < ends[1] < ends[2]
    assert cl.domain.freeze_count == 3


def test_freeze_hits_many_in_flight_messages():
    cl = build_cluster(16)
    done = {}

    def p2p(tag, src, dst):
        yield from cl.transfer(src, dst, 200_000)
        done[tag] = cl.sim.now

    # Several long transfers on disjoint-ish paths...
    pairs = [(0, 15), (3, 12), (1, 14), (7, 8)]
    for i, (s, d) in enumerate(pairs):
        cl.sim.process(p2p(i, s, d))

    def bcaster():
        yield cl.sim.timeout(500e-6)
        yield from cl.hw_broadcast(5, 10_000)

    cl.sim.process(bcaster())
    cl.sim.run()
    assert len(done) == len(pairs)
    # Every in-flight stream paused for the same broadcast window.
    assert cl.domain.freeze_count == 1
    assert cl.domain.total_frozen_s > 0


def test_master_links_are_hottest_for_collects():
    """Master-centric collect traffic concentrates on rank 0's links."""
    prog = compile_source(mm.source(24), nprocs=9, granularity="fine")
    ex_cluster = None

    # Run and inspect the cluster the executor used.
    from repro.runtime.executor import _Execution

    ex = _Execution(prog, None, False, None)
    for r in range(9):
        ex.sim.process(ex.run_rank(r), name=f"rank{r}")
    ex.sim.run()
    rows = network_usage(ex.cluster)
    # The hottest channel sits on the master's corner of the mesh: either
    # touching rank 0 itself or its immediate relay neighbors (1, 3).
    hot = rows[0]
    near_master = {0, 1, 3}
    assert {hot.src, hot.dst} & near_master
    assert hot.busy_s > 0


def test_window_lock_contention_many_ranks():
    """16 ranks accumulate under one exclusive lock: serialized, correct."""
    from repro.mpi2.window import Win

    cl = build_cluster(16)
    rt = Mpi2Runtime(cl)
    comms = [rt.comm(r) for r in range(16)]
    wins = Win.create(comms, [np.zeros(2) for _ in range(16)])

    def body(rank):
        win = wins[rank]
        yield from win.lock(0)
        yield from win.accumulate(np.array([1.0]), target=0, op=SUM, offset=0)
        win.unlock(0)
        yield from win.fence()

    for r in range(16):
        cl.sim.process(body(r), name=f"r{r}")
    cl.sim.run()
    assert wins[0].local[0] == 16.0
