"""Tests for collectives: barrier, bcast, scatter, gather, reductions."""

import numpy as np
import pytest

from repro.mpi2 import MAX, MIN, PROD, SUM, MpiError
from repro.vbus.params import ClusterParams, LinkParams, cluster_for

from tests.mpiutil import run_ranks

#: A V-Bus cluster with the hardware broadcast disabled (software tree).
NO_HW_BCAST = cluster_for(4, ClusterParams(vbus_broadcast=False))


def test_barrier_synchronizes_ranks():
    arrival = {}

    def body(comm, rank):
        yield comm.sim.timeout(rank * 1e-3)  # stagger arrivals
        yield from comm.barrier()
        arrival[rank] = comm.sim.now
        return None

    run_ranks(4, body)
    # Everyone leaves the barrier at (essentially) the same time, after the
    # slowest arrival.
    times = list(arrival.values())
    assert max(times) - min(times) < 1e-9
    assert min(times) >= 3e-3


def test_bcast_hw_delivers_to_all():
    def body(comm, rank):
        data = {"key1": [7, 2.72], "key2": ("abc", "xyz")} if rank == 0 else None
        data = yield from comm.bcast(data, root=0)
        return data

    results, _rt, cl = run_ranks(4, body)
    for r in range(4):
        assert results[r] == {"key1": [7, 2.72], "key2": ("abc", "xyz")}
    assert cl.vbusctl.broadcast_count == 1


def test_bcast_numpy_isolated_copies():
    def body(comm, rank):
        data = np.arange(10.0) if rank == 0 else None
        data = yield from comm.bcast(data, root=0)
        data[0] += rank  # must not leak to other ranks
        return data[0]

    results, _rt, _cl = run_ranks(4, body)
    assert results == {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0}


def test_bcast_nonzero_root():
    def body(comm, rank):
        data = "payload" if rank == 2 else None
        data = yield from comm.bcast(data, root=2)
        return data

    results, _rt, _cl = run_ranks(4, body)
    assert all(v == "payload" for v in results.values())


def test_bcast_software_tree_matches_hw_values():
    def body(comm, rank):
        data = np.full(50, 3.5) if rank == 1 else None
        data = yield from comm.bcast(data, root=1)
        return float(data.sum())

    results, _rt, cl = run_ranks(4, body, params=NO_HW_BCAST)
    assert all(v == pytest.approx(175.0) for v in results.values())
    assert cl.vbusctl.broadcast_count == 0  # tree used point-to-point sends


def test_bcast_tree_on_five_ranks():
    def body(comm, rank):
        data = rank if rank == 0 else None
        data = yield from comm.bcast(data, root=0)
        return data

    params = cluster_for(5, ClusterParams(vbus_broadcast=False))
    results, _rt, _cl = run_ranks(5, body, params=params)
    assert all(v == 0 for v in results.values())


def test_hw_bcast_faster_than_tree_for_large_payload():
    def body(comm, rank):
        data = np.zeros(250_000) if rank == 0 else None  # 2 MB
        yield from comm.bcast(data, root=0)
        return comm.sim.now

    hw, _rt, _cl = run_ranks(4, body)
    sw, _rt2, _cl2 = run_ranks(4, body, params=NO_HW_BCAST)
    assert max(hw.values()) < max(sw.values())


def test_scatter():
    def body(comm, rank):
        items = [(i + 1) ** 2 for i in range(comm.size)] if rank == 0 else None
        item = yield from comm.scatter(items, root=0)
        return item

    results, _rt, _cl = run_ranks(4, body)
    assert results == {0: 1, 1: 4, 2: 9, 3: 16}


def test_scatter_requires_exact_list():
    def body(comm, rank):
        if rank == 0:
            with pytest.raises(MpiError):
                yield from comm.scatter([1, 2], root=0)
        # Other ranks do not join a broken scatter.
        return None
        yield

    run_ranks(1, body)


def test_gather():
    def body(comm, rank):
        data = yield from comm.gather((rank + 1) ** 2, root=0)
        return data

    results, _rt, _cl = run_ranks(4, body)
    assert results[0] == [1, 4, 9, 16]
    assert results[1] is None


def test_allgather():
    def body(comm, rank):
        data = yield from comm.allgather(rank * 2)
        return data

    results, _rt, _cl = run_ranks(4, body)
    for r in range(4):
        assert results[r] == [0, 2, 4, 6]


@pytest.mark.parametrize(
    "op,expect", [(SUM, 6), (PROD, 0), (MAX, 3), (MIN, 0)]
)
def test_reduce_ops(op, expect):
    def body(comm, rank):
        out = yield from comm.reduce(rank, op, root=0)
        return out

    results, _rt, _cl = run_ranks(4, body)
    assert results[0] == expect
    assert results[2] is None


def test_reduce_numpy_elementwise():
    def body(comm, rank):
        vec = np.full(5, float(rank + 1))
        out = yield from comm.allreduce(vec, SUM)
        return out

    results, _rt, _cl = run_ranks(4, body)
    for r in range(4):
        assert np.array_equal(results[r], np.full(5, 10.0))


def test_reduce_rejects_plain_callable():
    def body(comm, rank):
        with pytest.raises(MpiError):
            yield from comm.reduce(1, max, root=0)
        return None
        yield

    run_ranks(1, body)


def test_collective_mismatch_detected():
    def body(comm, rank):
        if rank == 0:
            yield from comm.barrier()
        else:
            with pytest.raises(MpiError):
                yield from comm.bcast(1, root=0)
            # Join the barrier so rank 0 can finish.
            comm._coll_ordinal -= 1
            yield from comm.barrier()
        return None

    run_ranks(2, body)


def test_collectives_single_rank():
    def body(comm, rank):
        yield from comm.barrier()
        b = yield from comm.bcast("solo", root=0)
        g = yield from comm.gather(5, root=0)
        r = yield from comm.allreduce(3, SUM)
        return (b, g, r)

    results, _rt, _cl = run_ranks(1, body)
    assert results[0] == ("solo", [5], 3)


def test_slots_are_freed_after_use():
    def body(comm, rank):
        for _ in range(10):
            yield from comm.barrier()
        return None

    _res, rt, _cl = run_ranks(4, body)
    assert rt.comm(0)._state.slots == {}
