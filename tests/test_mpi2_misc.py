"""Additional MPI-2 coverage: requests, Ethernet collectives, hypothesis
properties on collective results."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi2 import SUM
from repro.vbus.params import ClusterParams, ETHERNET_100, cluster_for

from tests.mpiutil import run_ranks


def test_request_test_and_double_wait():
    def body(comm, rank):
        if rank == 0:
            req = comm.isend("payload", dest=1)
            assert req.test() in (True, False)
            yield from req.wait()
            assert req.test() is True
        else:
            data = yield from comm.recv(source=0)
            return data

    results, _rt, _cl = run_ranks(2, body)
    assert results[1] == "payload"


def test_collectives_over_ethernet():
    """The MPI layer is interconnect-agnostic: same results on Ethernet."""

    def body(comm, rank):
        data = yield from comm.bcast("x" if rank == 0 else None, root=0)
        total = yield from comm.allreduce(rank, SUM)
        gathered = yield from comm.gather(rank * rank, root=1)
        return data, total, gathered

    results, _rt, cl = run_ranks(4, body, params=cluster_for(4, ETHERNET_100))
    for r in range(4):
        assert results[r][0] == "x"
        assert results[r][1] == 6
    assert results[1][2] == [0, 1, 4, 9]
    assert cl.ethernet.messages > 0


def test_barrier_heavy_sequence():
    """Many consecutive barriers stay matched and cheap."""

    def body(comm, rank):
        for _ in range(20):
            yield from comm.barrier()
        return comm.sim.now

    results, rt, _cl = run_ranks(4, body)
    times = set(results.values())
    assert len(times) == 1  # everyone exits the last barrier together
    assert rt.comm(0)._state.slots == {}


@settings(max_examples=30, deadline=None)
@given(
    nprocs=st.integers(1, 5),
    root=st.data(),
    values=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=8),
)
def test_property_allreduce_matches_numpy(nprocs, root, values):
    """Simulated Allreduce(SUM) of per-rank vectors == numpy's sum."""
    vec = np.array(values)

    def body(comm, rank):
        out = yield from comm.allreduce(vec * (rank + 1), SUM)
        return out

    results, _rt, _cl = run_ranks(nprocs, body)
    expected = vec * sum(r + 1 for r in range(nprocs))
    for r in range(nprocs):
        assert np.allclose(results[r], expected)


@settings(max_examples=25, deadline=None)
@given(nprocs=st.integers(2, 5), root=st.integers(0, 4))
def test_property_bcast_any_root(nprocs, root):
    root = root % nprocs

    def body(comm, rank):
        payload = {"v": 42} if rank == root else None
        out = yield from comm.bcast(payload, root=root)
        return out["v"]

    results, _rt, _cl = run_ranks(nprocs, body)
    assert all(v == 42 for v in results.values())


def test_elif_region_execution():
    """Replicated ELSE IF control in a compiled program."""
    from repro.compiler.pipeline import compile_source
    from repro.runtime.executor import run_program, run_sequential

    src = """
      PROGRAM P
      PARAMETER (N = 16)
      REAL*8 A(N)
      INTEGER MODE, I
      MODE = 2
      IF (MODE .EQ. 1) THEN
        DO I = 1, N
          A(I) = 1.0
        ENDDO
      ELSE IF (MODE .EQ. 2) THEN
        DO I = 1, N
          A(I) = 2.0
        ENDDO
      ELSE
        DO I = 1, N
          A(I) = 3.0
        ENDDO
      ENDIF
      END
"""
    prog = compile_source(src, nprocs=4)
    seq = run_sequential(prog)
    par = run_program(prog)
    assert np.array_equal(par.memory.array("A"), seq.memory.array("A"))
    assert par.memory.array("A")[0] == 2.0
