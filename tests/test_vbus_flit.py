"""Tests for message/flit framing."""

import pytest

from repro.sim import Simulator
from repro.vbus.flit import CONTROL_FLITS, Message, flit_count
from repro.vbus.mesh import MeshTopology
from repro.vbus.params import LinkParams
from repro.vbus.router import WormholeMesh
from repro.vbus.vbusctl import FreezeDomain


def test_flit_count_includes_header_and_tail():
    # 8-bit links carry one byte per flit.
    assert flit_count(10, 8) == 10 + CONTROL_FLITS
    assert flit_count(0, 8) == CONTROL_FLITS
    # 32-bit links carry four bytes per flit (ceil).
    assert flit_count(10, 32) == 3 + CONTROL_FLITS


def test_message_validation():
    m = Message(src=0, dst=1, nbytes=100)
    assert not m.is_broadcast
    b = Message(src=0, dst=None, nbytes=100, kind="bcast")
    assert b.is_broadcast
    assert b.msg_id != m.msg_id
    with pytest.raises(ValueError):
        Message(src=0, dst=None, nbytes=10)  # p2p needs a destination
    with pytest.raises(ValueError):
        Message(src=0, dst=1, nbytes=-1)
    with pytest.raises(ValueError):
        Message(src=0, dst=1, nbytes=1, kind="carrier-pigeon")


def test_mesh_counts_flits():
    sim = Simulator()
    mesh = WormholeMesh(
        sim, MeshTopology(2, 2), LinkParams(), FreezeDomain(sim)
    )
    proc = sim.process(mesh.unicast(0, 1, 100))
    sim.run(until=proc)
    assert mesh.flits == flit_count(100, mesh.link.width_bits)
