"""Tests for lowering: parameter folding, inlining, induction substitution."""

import pytest

from repro.compiler.frontend import fast as F
from repro.compiler.frontend.lower import (
    LowerError,
    expr_as_int,
    fold_expr,
    lower_program,
)
from repro.compiler.frontend.parser import parse


def lowered(src):
    return lower_program(parse(src)).main


def test_parameters_become_literals():
    unit = lowered("""
      PROGRAM P
      PARAMETER (N = 16)
      REAL*8 A(N)
      DO I = 1, N
        A(I) = N * 2
      ENDDO
      END
""")
    loop = unit.body[0]
    assert isinstance(loop.hi, F.Num) and loop.hi.value == 16
    assign = loop.body[0]
    assert isinstance(assign.rhs, F.Num) and assign.rhs.value == 32


def test_fold_fortran_integer_division():
    assert expr_as_int(F.BinOp("/", F.Num(7), F.Num(2))) == 3
    assert expr_as_int(F.BinOp("/", F.Num(-7), F.Num(2))) == -3  # trunc to 0


def test_fold_power():
    e = fold_expr(F.BinOp("**", F.Num(2), F.Num(10)))
    assert isinstance(e, F.Num) and e.value == 1024


def test_nonconstant_step_rejected():
    src = """
      PROGRAM P
      INTEGER M
      REAL*8 A(10)
      DO I = 1, 10, M
        A(I) = 0.0
      ENDDO
      END
"""
    with pytest.raises(LowerError, match="step"):
        lowered(src)


def test_inlining_substitutes_arrays_and_scalars():
    unit = lowered("""
      PROGRAM P
      REAL*8 V(10)
      CALL FILL(V)
      END

      SUBROUTINE FILL(X)
      REAL*8 X(10)
      DO I = 1, 10
        X(I) = 2.0
      ENDDO
      END
""")
    # The CALL is gone; the loop now writes V directly.
    loop = unit.body[0]
    assert isinstance(loop, F.Do)
    assign = loop.body[0]
    assert isinstance(assign.lhs, F.ArrayRef) and assign.lhs.name == "V"


def test_inlining_renames_callee_locals():
    unit = lowered("""
      PROGRAM P
      REAL*8 V(4)
      INTEGER T
      T = 5
      CALL WORK(V)
      END

      SUBROUTINE WORK(X)
      REAL*8 X(4)
      REAL*8 T
      T = 1.5
      X(1) = T
      END
""")
    # The callee's local T must not clobber the caller's T.
    names = [
        s.lhs.name
        for s in F.walk_stmts(unit.body)
        if isinstance(s, F.Assign) and isinstance(s.lhs, F.Var)
    ]
    assert "T" in names
    renamed = [n for n in names if n.startswith("T_WORK")]
    assert len(renamed) == 1
    assert unit.symtab.lookup(renamed[0]) is not None


def test_inline_rejects_expression_array_args():
    src = """
      PROGRAM P
      REAL*8 V(4)
      CALL W(V(2))
      END

      SUBROUTINE W(X)
      REAL*8 X(2)
      X(1) = 0.0
      END
"""
    with pytest.raises(LowerError, match="inlinable"):
        lowered(src)


def test_induction_variable_substitution():
    unit = lowered("""
      PROGRAM P
      REAL*8 A(64)
      INTEGER KK
      KK = 0
      DO I = 1, 10
        KK = KK + 2
        A(KK) = 1.0
      ENDDO
      END
""")
    loop = unit.body[1]
    # The increment statement is gone; the subscript is affine in I.
    assert len(loop.body) == 1
    ref = loop.body[0].lhs
    vars_in = {
        e.name for e in F.walk_exprs(ref.subs[0]) if isinstance(e, F.Var)
    }
    assert "I" in vars_in
    # A post-loop update keeps KK live-out correct.
    post = unit.body[2]
    assert isinstance(post, F.Assign) and post.lhs.name == "KK"


def test_induction_use_before_increment():
    unit = lowered("""
      PROGRAM P
      REAL*8 A(64)
      INTEGER KK
      KK = 1
      DO I = 1, 10
        A(KK) = 1.0
        KK = KK + 3
      ENDDO
      END
""")
    loop = unit.body[1]
    assert len(loop.body) == 1  # increment removed
    sub = loop.body[0].lhs.subs[0]
    vars_in = {e.name for e in F.walk_exprs(sub) if isinstance(e, F.Var)}
    assert vars_in == {"KK", "I"}


def test_induction_skips_noninteger():
    unit = lowered("""
      PROGRAM P
      REAL*8 A(64)
      REAL*8 S
      DO I = 1, 10
        S = S + 2.0
        A(I) = S
      ENDDO
      END
""")
    loop = unit.body[0]
    assert len(loop.body) == 2  # untouched: S is REAL (a reduction, not IV)


def test_loop_ids_assigned_in_program_order():
    unit = lowered("""
      PROGRAM P
      REAL*8 A(4)
      DO I = 1, 4
        A(I) = 0.0
      ENDDO
      DO J = 1, 4
        DO K = 1, 4
          A(J) = A(K)
        ENDDO
      ENDDO
      END
""")
    ids = [s.loop_id for s in F.walk_stmts(unit.body) if isinstance(s, F.Do)]
    assert ids == [0, 1, 2]


def test_call_to_unknown_subroutine_rejected():
    src = """
      PROGRAM P
      CALL NOPE()
      END
"""
    with pytest.raises(LowerError, match="no such subroutine"):
        lowered(src)
