"""Tests for affine integer expressions."""

import pytest

from repro.compiler.analysis.intaffine import Affine, AffineError, affine_from_expr
from repro.compiler.frontend import fast as F


def test_basic_algebra():
    a = Affine.var("I", 2) + Affine.constant(3)
    b = Affine.var("J") - Affine.constant(1)
    c = a + b
    assert c.const == 2
    assert c.coef("I") == 2 and c.coef("J") == 1


def test_zero_coefficients_dropped():
    a = Affine.var("I") - Affine.var("I")
    assert a.is_const and a.const == 0
    assert a.vars() == set()


def test_scale_and_mul():
    a = (Affine.var("I") + Affine.constant(1)).scale(3)
    assert a.coef("I") == 3 and a.const == 3
    b = a * Affine.constant(2)
    assert b.coef("I") == 6
    with pytest.raises(AffineError):
        _ = Affine.var("I") * Affine.var("J")


def test_evaluate_and_unbound():
    a = Affine(5, {"I": 2, "J": -1})
    assert a.evaluate({"I": 3, "J": 4}) == 7
    with pytest.raises(AffineError):
        a.evaluate({"I": 3})


def test_substitute():
    a = Affine(0, {"K": 2})
    # K := 3*I + 1  =>  2K = 6I + 2
    out = a.substitute("K", Affine(1, {"I": 3}))
    assert out.const == 2 and out.coef("I") == 6 and out.coef("K") == 0


def test_from_expr_affine_shapes():
    # 2*I - 1
    e = F.BinOp("-", F.BinOp("*", F.Num(2), F.Var("I")), F.Num(1))
    a = affine_from_expr(e)
    assert a.coef("I") == 2 and a.const == -1


def test_from_expr_env_binds_scalars():
    e = F.BinOp("+", F.Var("I"), F.Var("N"))
    a = affine_from_expr(e, {"N": 10})
    assert a.const == 10 and a.coef("I") == 1


def test_from_expr_rejects_nonaffine():
    assert affine_from_expr(F.BinOp("*", F.Var("I"), F.Var("J"))) is None
    assert affine_from_expr(F.Intrinsic("MOD", [F.Var("I"), F.Num(2)])) is None
    assert affine_from_expr(F.Num(2.5, is_int=False)) is None


def test_from_expr_exact_division():
    # (4*I + 8) / 4 -> I + 2
    e = F.BinOp(
        "/",
        F.BinOp("+", F.BinOp("*", F.Num(4), F.Var("I")), F.Num(8)),
        F.Num(4),
    )
    a = affine_from_expr(e)
    assert a.coef("I") == 1 and a.const == 2


def test_from_expr_inexact_division_rejected():
    e = F.BinOp("/", F.Var("I"), F.Num(2))
    assert affine_from_expr(e) is None


def test_str_roundtrip_smoke():
    assert str(Affine(0)) == "0"
    assert "I" in str(Affine.var("I"))
