"""Chaos/property tests: randomized fault plans over real workloads.

The standing invariant of the fault subsystem (docs/FAULTS.md): a run
under an active fault plan either **recovers** — producing results
bit-identical to the fault-free run, with the recovery work visible in
``fault_stats`` — or raises a **typed**
:class:`~repro.mpi2.exceptions.MpiFaultError`.  Never a silently
corrupted result, never a hung scheduler (every plan here carries a
``max_sim_s`` watchdog, so a hang would surface as ``MpiWatchdogError``).
"""

import json

import numpy as np
import pytest

from repro.compiler.pipeline import compile_source
from repro.faults import FaultPlan, FaultSpec, RetxParams
from repro.mpi2.exceptions import (
    MpiFaultError,
    MpiLinkError,
    MpiNodeDeadError,
    MpiWatchdogError,
)
from repro.runtime.executor import run_program
from repro.tools.cli import main as cli_main
from repro.vbus.params import VBUS_SKWP, cluster_for
from repro.workloads import jacobi, mm


def _arrays_equal(a, b):
    assert set(a.memory.arrays) == set(b.memory.arrays)
    for name in a.memory.arrays:
        assert np.array_equal(a.memory.arrays[name], b.memory.arrays[name]), name


@pytest.fixture(scope="module")
def jacobi4():
    return compile_source(jacobi.source(n=16, steps=2), nprocs=4, granularity="coarse")


@pytest.fixture(scope="module")
def mm4():
    return compile_source(mm.source(12), nprocs=4, granularity="coarse")


@pytest.fixture(scope="module")
def params4():
    return cluster_for(4, VBUS_SKWP)


@pytest.fixture(scope="module")
def clean4(jacobi4, mm4, params4):
    return {
        "jacobi": run_program(jacobi4, cluster_params=params4),
        "mm": run_program(mm4, cluster_params=params4),
    }


# ---------------------------------------------------------------------------
# The acceptance scenario: 4x4 mesh Jacobi, >= 5% flit drop, full recovery
# ---------------------------------------------------------------------------
@pytest.mark.slow
def test_jacobi_4x4_drop5_recovers_bit_identical():
    prog = compile_source(
        jacobi.source(n=32, steps=3), nprocs=16, granularity="coarse"
    )
    params = cluster_for(16, VBUS_SKWP)
    clean = run_program(prog, cluster_params=params)
    plan = FaultPlan(
        seed=11, specs=(FaultSpec(kind="drop", rate=0.05),), max_sim_s=10.0
    )
    faulty = run_program(prog, cluster_params=params, faults=plan)
    # Retransmission did real work ...
    assert faulty.fault_stats["fault_dropped_flits"] > 0
    assert faulty.fault_stats["fault_retx_rounds"] > 0
    assert faulty.total_s > clean.total_s
    # ... and recovered to the bit-identical result.
    _arrays_equal(clean, faulty)
    assert "faults" in faulty.summary()


# ---------------------------------------------------------------------------
# Randomized plans (property style): recover bit-identically or raise typed
# ---------------------------------------------------------------------------
def _random_plan(rng, nprocs):
    specs = []
    for _ in range(int(rng.randint(1, 4))):
        kind = ["drop", "corrupt", "delay", "stall", "kill"][
            int(rng.choice(5, p=[0.35, 0.2, 0.2, 0.15, 0.1]))
        ]
        if kind in ("drop", "corrupt"):
            specs.append(
                FaultSpec(
                    kind=kind,
                    rate=float(rng.uniform(0.005, 0.08)),
                    src=int(rng.randint(nprocs)) if rng.rand() < 0.3 else None,
                )
            )
        elif kind == "delay":
            specs.append(
                FaultSpec(
                    kind="delay",
                    rate=float(rng.uniform(0.05, 0.5)),
                    delay_s=float(rng.uniform(1e-6, 40e-6)),
                )
            )
        elif kind == "stall":
            t0 = float(rng.uniform(0.0, 2e-4))
            specs.append(
                FaultSpec(
                    kind="stall",
                    node=int(rng.randint(nprocs)),
                    t0=t0,
                    t1=t0 + float(rng.uniform(1e-5, 3e-4)),
                )
            )
        else:
            specs.append(
                FaultSpec(
                    kind="kill",
                    node=int(rng.randint(nprocs)),
                    at_s=float(rng.uniform(1e-5, 2e-3)),
                )
            )
    return FaultPlan(seed=int(rng.randint(1 << 30)), specs=tuple(specs), max_sim_s=10.0)


@pytest.mark.parametrize("workload", ["jacobi", "mm"])
@pytest.mark.parametrize("case", range(6))
def test_random_plans_never_corrupt_never_hang(
    workload, case, jacobi4, mm4, params4, clean4
):
    prog = {"jacobi": jacobi4, "mm": mm4}[workload]
    rng = np.random.RandomState(7000 + 31 * case)
    plan = _random_plan(rng, params4.nprocs)
    try:
        rep = run_program(prog, cluster_params=params4, faults=plan)
    except MpiFaultError:
        # A typed error is an allowed outcome (node death, link give-up,
        # watchdog) — the forbidden outcomes are silent corruption and a
        # hang, both of which would fail below / never return.
        return
    _arrays_equal(clean4[workload], rep)
    assert rep.fault_stats["fault_silent_corruptions"] == 0


# ---------------------------------------------------------------------------
# Targeted outcomes
# ---------------------------------------------------------------------------
def test_timed_node_kill_raises_typed_error(jacobi4, params4):
    plan = FaultPlan(
        seed=1,
        specs=(FaultSpec(kind="kill", node=2, at_s=5e-5),),
        max_sim_s=5.0,
    )
    with pytest.raises(MpiNodeDeadError):
        run_program(jacobi4, cluster_params=params4, faults=plan)


def test_after_sends_node_kill_raises_typed_error(jacobi4, params4):
    plan = FaultPlan(
        seed=1,
        specs=(FaultSpec(kind="kill", node=1, after_sends=3),),
        max_sim_s=5.0,
    )
    with pytest.raises(MpiNodeDeadError):
        run_program(jacobi4, cluster_params=params4, faults=plan)


def test_watchdog_bounds_overlong_runs(jacobi4, params4):
    # A half-second stall of every channel out of node 0 cannot finish
    # inside a 1 ms watchdog: the run must end with the typed error, not
    # by hanging or silently overrunning.
    plan = FaultPlan(
        seed=1,
        specs=(FaultSpec(kind="stall", node=0, t0=0.0, t1=0.5),),
        max_sim_s=1e-3,
    )
    with pytest.raises(MpiWatchdogError):
        run_program(jacobi4, cluster_params=params4, faults=plan)


def test_exhausted_retransmission_raises_link_error(jacobi4, params4):
    plan = FaultPlan(
        seed=2,
        specs=(FaultSpec(kind="drop", rate=0.9),),
        retx=RetxParams(max_rounds=2),
        max_sim_s=5.0,
    )
    with pytest.raises(MpiLinkError):
        run_program(jacobi4, cluster_params=params4, faults=plan)


def test_crc_off_counts_silent_corruptions(jacobi4, params4):
    # With the CRC check disabled, corrupted flits are accepted — but the
    # injector still counts them, so the harness can always prove whether
    # a run was exposed to undetected corruption.
    plan = FaultPlan(
        seed=3,
        specs=(FaultSpec(kind="corrupt", rate=0.05),),
        retx=RetxParams(crc_check=False),
        max_sim_s=5.0,
    )
    rep = run_program(jacobi4, cluster_params=params4, faults=plan)
    assert rep.fault_stats["fault_silent_corruptions"] > 0
    assert rep.fault_stats["fault_retx_rounds"] == 0


def test_recovered_stall_is_accounted(jacobi4, params4, clean4):
    plan = FaultPlan(
        seed=4,
        specs=(FaultSpec(kind="stall", node=1, t0=0.0, t1=2e-4),),
        max_sim_s=5.0,
    )
    rep = run_program(jacobi4, cluster_params=params4, faults=plan)
    assert rep.fault_stats["fault_stalls"] > 0
    assert rep.fault_stats["fault_stall_s"] > 0.0
    _arrays_equal(clean4["jacobi"], rep)


def test_delay_faults_slow_but_never_corrupt(mm4, params4, clean4):
    plan = FaultPlan(
        seed=5,
        specs=(FaultSpec(kind="delay", rate=0.5, delay_s=20e-6),),
        max_sim_s=5.0,
    )
    rep = run_program(mm4, cluster_params=params4, faults=plan)
    assert rep.fault_stats["fault_delays"] > 0
    assert rep.total_s > clean4["mm"].total_s
    _arrays_equal(clean4["mm"], rep)


# ---------------------------------------------------------------------------
# CLI surface: --faults plan.json, retry counters in `repro trace` output
# ---------------------------------------------------------------------------
@pytest.fixture
def jacobi_file(tmp_path):
    path = tmp_path / "jac.f"
    path.write_text(jacobi.source(n=16, steps=2))
    return str(path)


def test_cli_trace_shows_retry_counters(jacobi_file, tmp_path, capsys):
    plan = FaultPlan(seed=11, specs=(FaultSpec(kind="drop", rate=0.05),))
    plan_path = tmp_path / "plan.json"
    plan.dump(str(plan_path))
    prefix = str(tmp_path / "out")
    assert cli_main([
        "trace", jacobi_file, "--nprocs", "4", "--granularity", "coarse",
        "--faults", str(plan_path), "--out", prefix,
    ]) == 0
    out = capsys.readouterr().out
    assert "faults" in out  # summary line with dropped/retx counters
    metrics = json.loads((tmp_path / "out.metrics.json").read_text())
    names = {row["name"] for row in metrics["metrics"]}
    assert "faults.retx_rounds" in names
    trace = json.loads((tmp_path / "out.trace.json").read_text())
    assert any(
        ev.get("cat") == "fault" and ev["name"].startswith("retx")
        for ev in trace["traceEvents"]
    )


def test_cli_run_fault_error_exit_code(jacobi_file, tmp_path, capsys):
    plan = FaultPlan(
        seed=1,
        specs=(FaultSpec(kind="kill", node=1, at_s=5e-5),),
        max_sim_s=5.0,
    )
    plan_path = tmp_path / "kill.json"
    plan.dump(str(plan_path))
    assert cli_main([
        "run", jacobi_file, "--nprocs", "4", "--granularity", "coarse",
        "--faults", str(plan_path),
    ]) == 3
    assert "MpiNodeDeadError" in capsys.readouterr().err
