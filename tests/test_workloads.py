"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.compiler.frontend.lower import lower_program
from repro.compiler.frontend.parser import parse
from repro.workloads import cffzinit, mm, swim, synthetic


def parses(src):
    return lower_program(parse(src)).main


def test_mm_source_parses_and_parameterizes():
    unit = parses(mm.source(32))
    assert unit.symtab.lookup("A").dims == [(1, 32), (1, 32)]
    with pytest.raises(ValueError):
        mm.source(0)


def test_mm_reference_matches_numpy():
    init = mm.init_arrays(16, seed=3)
    ref = mm.reference(init)
    assert np.allclose(ref, init["A"] @ init["B"])


def test_mm_init_deterministic():
    a = mm.init_arrays(8, seed=1)
    b = mm.init_arrays(8, seed=1)
    assert np.array_equal(a["A"], b["A"])


def test_mm_sizes_constant():
    assert mm.SIZES == (256, 512, 1024)


def test_swim_source_parses():
    unit = parses(swim.source(16, 2))
    names = {s.name for s in unit.symtab.arrays()}
    assert {"U", "V", "P", "CU", "CV", "Z", "H"} <= names
    with pytest.raises(ValueError):
        swim.source(4)


def test_swim_reference_shapes():
    ref = swim.reference_step(12, itmax=1)
    assert ref["U"].shape == (12, 12)
    # A second step changes the fields.
    ref2 = swim.reference_step(12, itmax=2)
    assert not np.allclose(ref["P"], ref2["P"])


def test_cffzinit_source_and_reference():
    unit = parses(cffzinit.source(5))
    trig = unit.symtab.lookup("TRIG")
    assert trig.size == 2 * 32
    ref = cffzinit.reference(5)
    # cos^2 + sin^2 == 1 for every entry.
    assert np.allclose(ref[0::2] ** 2 + ref[1::2] ** 2, 1.0)
    with pytest.raises(ValueError):
        cffzinit.source(1)


def test_synthetic_kernels_parse():
    for src in (
        synthetic.stride_kernel(16, 3),
        synthetic.phased_stride_kernel(16, 3),
        synthetic.copy_kernel(16),
        synthetic.reduction_kernel(16),
        synthetic.triangular_kernel(8),
        synthetic.avpg_chain(16),
        synthetic.figure9_kernel(2),
    ):
        assert parses(src) is not None


def test_synthetic_validation():
    with pytest.raises(ValueError):
        synthetic.stride_kernel(8, 0)
    with pytest.raises(ValueError):
        synthetic.phased_stride_kernel(8, 0)
