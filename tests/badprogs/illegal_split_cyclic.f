      PROGRAM SPLITC
C     Planted defect: as illegal_split_block.f, but with a cyclic:1
C     split — every chunk boundary of the interleaving breaks the
C     J-recurrence (RV401).
      PARAMETER (N = 8, M = 16)
      REAL*8 A(N, M)
      DO I = 1, N
        DO J = 1, M
          A(I, J) = I * 2.0
        ENDDO
      ENDDO
      DO I = 1, N
        DO J = 2, M
          A(I, J) = A(I, J - 1) + 1.0
        ENDDO
      ENDDO
      S = 0.0
      DO I = 1, N
        DO J = 1, M
          S = S + A(I, J)
        ENDDO
      ENDDO
      PRINT *, 'SUM', S
      END
