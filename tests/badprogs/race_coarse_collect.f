      PROGRAM RACECOLL
C     Planted defect: under a cyclic partition every rank's coarse
C     collect bounding box spans nearly the whole array; the planner's
C     §5.6 check demotes the collect to fine grain, and the pragma
C     undoes the demotion (RV201 overlap + RV202 stale gaps).
      PARAMETER (N = 32)
      REAL*8 A(N)
      DO I = 1, N
        A(I) = I * 1.5
      ENDDO
      S = 0.0
      DO I = 1, N
        S = S + A(I)
      ENDDO
      PRINT *, 'SUM', S
C$BUG KEEP-GRAIN A
      END
