      PROGRAM SPLITB
C     Planted defect: the inner J dimension carries a flow dependence
C     (A(I,J) reads A(I,J-1)), so the requested block:1 split computes
C     wrong answers silently (RV401) — no pragma needed, the bad
C     partition spec comes from the manifest.
      PARAMETER (N = 8, M = 16)
      REAL*8 A(N, M)
      DO I = 1, N
        DO J = 1, M
          A(I, J) = I * 2.0
        ENDDO
      ENDDO
      DO I = 1, N
        DO J = 2, M
          A(I, J) = A(I, J - 1) + 1.0
        ENDDO
      ENDDO
      S = 0.0
      DO I = 1, N
        DO J = 1, M
          S = S + A(I, J)
        ENDDO
      ENDDO
      PRINT *, 'SUM', S
      END
