      PROGRAM NOFENCS
C     Planted defect: the fence epoch closing the scatter phase is
C     dropped, so slaves may compute before the master's puts land
C     (RV301; sanitizer S-FENCE).
      PARAMETER (N = 32)
      REAL*8 A(N), B(N)
      S = 0.0
      DO I = 1, N
        S = S + 0.25
        B(I) = S
      ENDDO
      DO I = 1, N
        A(I) = B(I) * 2.0
      ENDDO
      T = 0.0
      DO I = 1, N
        T = T + A(I)
      ENDDO
      PRINT *, 'SUM', T
C$BUG DROP-FENCE SCATTER
      END
