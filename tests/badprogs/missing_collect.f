      PROGRAM NOCOLL
C     Planted defect: the collect of A after the first parallel loop is
C     dropped, so the master's copy is stale when the second loop
C     scatters it back out reversed (RV102; sanitizer S-READ).
      PARAMETER (N = 32)
      REAL*8 A(N), B(N)
      DO I = 1, N
        A(I) = I * 2.0
      ENDDO
      DO I = 1, N
        B(I) = A(N + 1 - I)
      ENDDO
      S = 0.0
      DO I = 1, N
        S = S + B(I)
      ENDDO
      PRINT *, 'SUM', S
C$BUG DROP-COLLECT A
      END
