      PROGRAM NOFENCC
C     Planted defect: the fence epoch closing the collect phase is
C     dropped, so the master may read results before slave puts land
C     (RV302; sanitizer S-FENCE).
      PARAMETER (N = 32)
      REAL*8 A(N)
      DO I = 1, N
        A(I) = I * 3.0
      ENDDO
      S = 0.0
      DO I = 1, N
        S = S + A(I)
      ENDDO
      PRINT *, 'SUM', S
C$BUG DROP-FENCE COLLECT
      END
