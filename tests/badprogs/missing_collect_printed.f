      PROGRAM NOCOLLP
C     Planted defect: the collect of A is dropped while the master
C     PRINTs A directly afterwards (RV102; the sanitizer catches the
C     master reading an element only a slave ever wrote).
      PARAMETER (N = 32)
      REAL*8 A(N)
      DO I = 1, N
        A(I) = I * 2.0
      ENDDO
      PRINT *, 'FIRST', A(1), 'LAST', A(N)
C$BUG DROP-COLLECT A
      END
