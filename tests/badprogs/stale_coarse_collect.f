      PROGRAM STALECOL
C     Planted defect: each rank writes only the even elements of its
C     block, so the coarse bounding box carries stale odd gaps; the
C     planner demotes the collect to fine grain and the pragma undoes
C     it (RV202, no overlap so no RV201).  A is initialized through a
C     scalar recurrence (serial) so slaves never hold the gap values.
      PARAMETER (N = 64, H = 32)
      REAL*8 A(N)
      S = 0.0
      DO I = 1, N
        S = S + 1.0
        A(I) = S
      ENDDO
      DO I = 1, H
        A(2 * I) = I * 1.0
      ENDDO
      T = 0.0
      DO I = 1, N
        T = T + A(I)
      ENDDO
      PRINT *, 'SUM', T
C$BUG KEEP-GRAIN A
      END
