      PROGRAM UNCOVRD
C     Planted defect: the scatter of B to rank 2 is dropped, so rank 2
C     reads stale window memory (RV101; sanitizer S-READ).
C     B is initialized through a scalar recurrence so the init loop
C     stays serial and every slave genuinely needs the scatter.
      PARAMETER (N = 32)
      REAL*8 A(N), B(N)
      S = 0.0
      DO I = 1, N
        S = S + 0.5
        B(I) = S
      ENDDO
      DO I = 1, N
        A(I) = B(I) + 1.0
      ENDDO
      T = 0.0
      DO I = 1, N
        T = T + A(I)
      ENDDO
      PRINT *, 'SUM', T
C$BUG DROP-SCATTER B 2
      END
