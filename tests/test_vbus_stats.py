"""Tests for network utilization reporting and the AVPG DOT export."""

import pytest

from repro.compiler.frontend.lower import lower_program
from repro.compiler.frontend.parser import parse
from repro.compiler.analysis.parallel import detect_parallelism
from repro.compiler.postpass.avpg import build_avpg
from repro.compiler.postpass.spmd import build_regions
from repro.vbus import ETHERNET_100, build_cluster
from repro.vbus.params import cluster_for
from repro.vbus.stats import network_usage, usage_report
from repro.workloads import synthetic


def busy_cluster():
    cl = build_cluster(4)
    done = []

    def send(src, dst, n):
        yield from cl.transfer(src, dst, n)
        done.append((src, dst))

    cl.sim.process(send(0, 3, 100_000))
    cl.sim.process(send(1, 2, 50_000))
    cl.sim.run()
    assert len(done) == 2
    return cl


def test_network_usage_orders_by_busy_time():
    cl = busy_cluster()
    rows = network_usage(cl)
    assert len(rows) == 8  # 4 undirected edges x 2 on a 2x2 mesh
    busy = [r.busy_s for r in rows]
    assert busy == sorted(busy, reverse=True)
    assert rows[0].messages >= 1
    assert 0.0 <= rows[0].utilization <= 1.0


def test_usage_counts_match_transfers():
    cl = busy_cluster()
    rows = {(r.src, r.dst): r for r in network_usage(cl)}
    # 0 -> 3 routes X-first through 1 on the 2x2 mesh (0=(0,0), 3=(1,1)).
    assert rows[(0, 1)].messages == 1
    assert rows[(1, 3)].messages == 1
    # 1=(0,1) -> 2=(1,0): X-first through 0, then down to 2.
    assert rows[(1, 0)].messages == 1
    assert rows[(0, 2)].messages == 1
    # (1,2) is not a mesh edge on the 2x2, so it has no channel at all.
    assert (1, 2) not in rows


def test_usage_report_text():
    cl = busy_cluster()
    text = usage_report(cl, top=3)
    assert "channel utilization" in text
    assert text.count("->") == 3
    assert "freezes" in text


def test_usage_requires_mesh():
    cl = build_cluster(4, params=cluster_for(4, ETHERNET_100))
    with pytest.raises(ValueError):
        network_usage(cl)


def test_avpg_to_dot():
    unit = lower_program(parse(synthetic.avpg_chain(8))).main
    detect_parallelism(unit)
    regions = build_regions(unit.body)
    g = build_avpg(regions, unit.symtab, live_out={"D"})
    dot = g.to_dot()
    assert dot.startswith("digraph avpg")
    assert "cluster_A" in dot and "cluster_B" in dot
    assert "eliminated" in dot  # B's Valid -> Invalid edge
    assert dot.count("subgraph") == len(g.arrays)
