"""The autotuner's static pruning tier (docs/CHECK.md, docs/AUTOTUNE.md).

The contract: ``static_prune`` saves work, never changes answers.
Pruned and unpruned searches emit byte-identical TunePlan artifacts on
statically-legal programs (the corpus-wide version runs in
tools/check_smoke.py over the PR 8/9 study cells), while the pruned
search performs strictly fewer analytic price evaluations.
"""

from pathlib import Path

from repro.sweep.cache import canonical_json
from repro.tools.tuneplan import TunePlan, _plan_price_key, tune_per_region
from repro.workloads import source_for

BADPROG_DIR = Path(__file__).parent / "badprogs"


def _both(source, **kw):
    pruned = tune_per_region(source, cache_dir=None, static_prune=True, **kw)
    full = tune_per_region(source, cache_dir=None, static_prune=False, **kw)
    return pruned, full


def test_pruned_search_is_byte_identical_and_cheaper():
    pruned, full = _both(
        source_for("MM-24"), nprocs=4, metric="comm", backend="gige",
        tune_partition=True,
    )
    assert canonical_json(pruned.to_jsonable()) == canonical_json(
        full.to_jsonable()
    )
    assert pruned.evaluated_candidates < full.evaluated_candidates
    assert pruned.pruned_candidates > 0
    # The baseline prices every (region, candidate) pair and collapses
    # nothing.
    assert full.pruned_candidates == 0


def test_counters_stay_out_of_the_artifact():
    pruned, _ = _both(
        source_for("MM-16"), nprocs=4, metric="comm", backend="vbus"
    )
    row = pruned.to_jsonable()
    assert "evaluated_candidates" not in row
    assert "pruned_candidates" not in row
    # ...so round-tripped plans count zero but still compare equal.
    again = TunePlan.from_jsonable(row)
    assert again.evaluated_candidates == 0
    assert again == pruned


def test_all_illegal_region_falls_back_to_full_list():
    """A seeded-bug region is illegal at *every* candidate; the tuner
    must keep the full list (something has to be chosen) and still
    match the unpruned artifact."""
    source = (BADPROG_DIR / "unfenced_scatter.f").read_text()
    pruned, full = _both(source, nprocs=4, metric="comm", backend="vbus")
    assert canonical_json(pruned.to_jsonable()) == canonical_json(
        full.to_jsonable()
    )


def test_price_key_identifies_structural_duplicates():
    """Variants whose region plans emit the same transfers share a
    price key even though the plan objects differ (grain field)."""
    from repro.compiler.pipeline import compile_source

    source = source_for("MM-16")
    auto = compile_source(source, nprocs=4, granularity="fine")
    block = compile_source(
        source, nprocs=4, granularity="fine", partition="block"
    )
    rid = sorted(auto.plans)[0]
    # MM's rectangular loops resolve auto -> block, so the forced-block
    # variant is a structural duplicate of the auto one.
    assert _plan_price_key(auto.plans[rid]) == _plan_price_key(
        block.plans[rid]
    )
    cyclic = compile_source(
        source, nprocs=4, granularity="fine", partition="cyclic"
    )
    assert _plan_price_key(auto.plans[rid]) != _plan_price_key(
        cyclic.plans[rid]
    )
