"""Tests for RankMemory and RunReport."""

import numpy as np
import pytest

from repro.compiler.frontend.lower import lower_program
from repro.compiler.frontend.parser import parse
from repro.runtime.memory import RankMemory
from repro.runtime.report import RunReport


def symtab_of(src):
    return lower_program(parse(src)).main.symtab


SRC = """
      PROGRAM P
      PARAMETER (N = 4)
      REAL*8 A(N,N), V(8)
      INTEGER COUNT
      REAL*8 X
      END
"""


def test_memory_allocates_arrays_and_scalars():
    mem = RankMemory(symtab_of(SRC), rank=2)
    assert mem.array("A").shape == (16,)
    assert mem.array("A").dtype == np.float64
    assert mem.scalars["COUNT"] == 0
    assert isinstance(mem.scalars["COUNT"], int)
    assert mem.scalars["X"] == 0.0
    assert "N" not in mem.scalars  # parameters are folded, not stored


def test_memory_integer_array_dtype():
    mem = RankMemory(symtab_of("""
      PROGRAM P
      INTEGER IDX(6)
      END
"""))
    assert mem.array("IDX").dtype == np.int64


def test_load_shaped_and_flat():
    mem = RankMemory(symtab_of(SRC))
    shaped = np.arange(16.0).reshape(4, 4)
    mem.load("A", shaped)
    # Column-major flattening: A(2,1) is element (1,0).
    assert mem.array("A")[1] == shaped[1, 0]
    assert np.array_equal(mem.shaped("A"), shaped)
    mem.load("V", np.ones(8))
    assert mem.array("V").sum() == 8


def test_load_size_mismatch():
    mem = RankMemory(symtab_of(SRC))
    with pytest.raises(ValueError):
        mem.load("V", np.ones(9))


def test_scalar_env_roundtrip():
    mem = RankMemory(symtab_of(SRC))
    mem.update_scalars({"X": 2.5, "COUNT": 7})
    env = mem.scalar_env()
    assert env["X"] == 2.5 and env["COUNT"] == 7
    env["X"] = -1  # copies, not views
    assert mem.scalars["X"] == 2.5


def test_report_aggregates():
    rep = RunReport(nprocs=2, granularity="fine")
    rep.comm_s = {0: 0.5, 1: 0.2}
    rep.comm_cpu_s = {0: 0.1, 1: 0.05}
    rep.compute_s = {0: 1.0, 1: 1.5}
    assert rep.comm_max_s == 0.5
    assert rep.comm_master_s == 0.5
    assert rep.comm_cpu_max_s == 0.1
    assert rep.comm_cpu_total_s == pytest.approx(0.15)
    assert rep.compute_max_s == 1.5


def test_report_speedup_and_summary():
    rep = RunReport(nprocs=4, granularity="coarse", total_s=0.5)
    assert rep.speedup_vs(2.0) == 4.0
    rep.hw = {"messages": 10, "bytes": 1000, "hw_broadcasts": 2}
    text = rep.summary()
    assert "V-Bus broadcasts" in text
    assert "4 rank(s)" in text


def test_report_empty_defaults():
    rep = RunReport(nprocs=1, granularity="n/a")
    assert rep.comm_max_s == 0.0
    assert rep.compute_max_s == 0.0
