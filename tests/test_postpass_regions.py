"""Tests for region-tree construction (SPMDization), environment
generation, and the emitted Fortran+MPI-2 text."""

from repro.compiler.frontend import fast as F
from repro.compiler.pipeline import compile_source
from repro.compiler.postpass.env import generate_environment
from repro.compiler.postpass.spmd import (
    IfRegion,
    ParRegion,
    SeqBlock,
    SeqLoop,
    build_regions,
    iter_regions,
)
from repro.compiler.frontend.lower import lower_program
from repro.compiler.frontend.parser import parse
from repro.compiler.analysis.parallel import detect_parallelism


def prepared(src):
    unit = lower_program(parse(src)).main
    detect_parallelism(unit)
    return unit


SRC_MIXED = """
      PROGRAM P
      PARAMETER (N = 16, STEPS = 3)
      REAL*8 A(N), B(N), LOCALX(N)
      REAL*8 ALPHA
      INTEGER I, T
      ALPHA = 1.5
      DO I = 1, N
        A(I) = DBLE(I)
      ENDDO
      DO T = 1, STEPS
        DO I = 1, N
          B(I) = A(I) * ALPHA
        ENDDO
      ENDDO
      DO I = 1, N
        LOCALX(I) = 0.0
        LOCALX(I) = LOCALX(I) + 1.0
      ENDDO
      PRINT *, B(1)
      END
"""


def test_build_regions_structure():
    unit = prepared(SRC_MIXED)
    regions = build_regions(unit.body)
    kinds = [type(r).__name__ for r in regions]
    # ALPHA=... block, parallel init, seq time loop, parallel LOCALX, print.
    assert kinds == ["SeqBlock", "ParRegion", "SeqLoop", "ParRegion", "SeqBlock"]
    seqloop = regions[2]
    assert isinstance(seqloop.body[0], ParRegion)
    assert seqloop.loop.var == "T"


def test_region_ids_unique():
    unit = prepared(SRC_MIXED)
    regions = build_regions(unit.body)
    ids = [r.region_id for r in iter_regions(regions)]
    assert len(ids) == len(set(ids))


def test_serial_loop_without_parallel_stays_in_seqblock():
    unit = prepared("""
      PROGRAM P
      REAL*8 A(8)
      INTEGER I
      A(1) = 0.0
      DO I = 2, 8
        A(I) = A(I-1) + 1.0
      ENDDO
      END
""")
    regions = build_regions(unit.body)
    assert len(regions) == 1
    assert isinstance(regions[0], SeqBlock)
    assert any(isinstance(s, F.Do) for s in regions[0].stmts)


def test_if_region_with_parallel_branch():
    unit = prepared("""
      PROGRAM P
      PARAMETER (N = 8)
      REAL*8 A(N)
      INTEGER FLAG, I
      FLAG = 1
      IF (FLAG .GT. 0) THEN
        DO I = 1, N
          A(I) = 1.0
        ENDDO
      ELSE
        A(1) = -1.0
      ENDIF
      END
""")
    regions = build_regions(unit.body)
    node = [r for r in regions if isinstance(r, IfRegion)][0]
    assert any(isinstance(r, ParRegion) for r in node.then)
    assert all(isinstance(r, SeqBlock) for r in node.orelse)


def test_environment_windows_and_scalars():
    unit = prepared(SRC_MIXED)
    regions = build_regions(unit.body)
    env = generate_environment(regions, unit.symtab)
    assert "A" in env.window_arrays
    assert "B" in env.window_arrays
    assert "LOCALX" in env.window_arrays  # written in a parallel region
    assert "ALPHA" in env.replicated_scalars
    assert env.sizes["A"] == 16
    assert env.itemsize["A"] == 8


def test_environment_master_private_array():
    unit = prepared("""
      PROGRAM P
      PARAMETER (N = 8)
      REAL*8 A(N), PRIV(N)
      INTEGER I
      PRIV(1) = 5.0
      DO I = 1, N
        A(I) = 1.0
      ENDDO
      END
""")
    regions = build_regions(unit.body)
    env = generate_environment(regions, unit.symtab)
    assert "PRIV" in env.local_arrays
    assert "PRIV" not in env.window_arrays


def test_emitted_fortran_contains_mpi_calls():
    prog = compile_source(SRC_MIXED, nprocs=4, granularity="coarse")
    text = prog.fortran
    assert "MPI_INIT" in text
    assert "MPI_WIN_CREATE" in text
    assert "MPI_WIN_FENCE" in text
    assert "MPI_BARRIER" in text
    assert "MPI_PUT" in text
    assert "MYRANK" in text
    assert "replicated control" in text  # the T loop
    assert text.count("PROGRAM P_SPMD") == 1


def test_emitted_fortran_shows_reductions():
    prog = compile_source("""
      PROGRAM R
      PARAMETER (N = 32)
      REAL*8 A(N)
      REAL*8 S
      INTEGER I
      DO I = 1, N
        A(I) = DBLE(I)
      ENDDO
      S = 0.0
      DO I = 1, N
        S = S + A(I)
      ENDDO
      PRINT *, S
      END
""", nprocs=4)
    assert "MPI_WIN_LOCK" in prog.fortran
    assert "MPI_ACCUMULATE" in prog.fortran


def test_program_summary_mentions_regions():
    prog = compile_source(SRC_MIXED, nprocs=4)
    s = prog.summary()
    assert "parallel regions: 3" in s
    assert "windows" in s
