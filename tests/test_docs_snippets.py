"""Documentation snippets must actually run.

Extracts every fenced ``python`` block from README.md and ``docs/`` and
executes it in a clean subprocess, and runs the ``bash`` blocks'
``python -m repro ...`` command lines.  Docs that drift from the code
fail here, not in a reader's terminal.  ``tools/check_docs.sh`` runs
this module standalone; it also rides along in the normal suite.
"""

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]
DOC_FILES = (
    ROOT / "README.md",
    ROOT / "docs" / "TRACE_FORMAT.md",
    ROOT / "docs" / "ARCHITECTURE.md",
    ROOT / "docs" / "FAULTS.md",
    ROOT / "docs" / "SWEEP.md",
    ROOT / "docs" / "AUTOTUNE.md",
    ROOT / "docs" / "PARTITION.md",
    ROOT / "docs" / "CHECK.md",
    ROOT / "docs" / "INDEX.md",
)

#: Snippets matching any of these substrings get the ``slow`` marker.
_SLOW_HINTS = ("source(256)", "three_backend")

#: bash lines that are environment setup, not runnable examples.
_SKIP_PREFIXES = ("pip ", "pytest ", "#")


def _fenced_blocks(path: Path, lang: str):
    pattern = rf"^```{lang}\n(.*?)^```"
    return re.findall(pattern, path.read_text(), re.S | re.M)


def _env():
    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _python_cases():
    for path in DOC_FILES:
        if not path.exists():
            continue
        for i, block in enumerate(_fenced_blocks(path, "python")):
            marks = (
                [pytest.mark.slow]
                if any(h in block for h in _SLOW_HINTS)
                else []
            )
            yield pytest.param(
                block, id=f"{path.name}-python-{i}", marks=marks
            )


def _bash_cases():
    for path in DOC_FILES:
        if not path.exists():
            continue
        for i, block in enumerate(_fenced_blocks(path, "bash")):
            for j, raw in enumerate(block.splitlines()):
                line = raw.strip()
                if not line or line.startswith(_SKIP_PREFIXES):
                    continue
                if "python -m repro" not in line:
                    continue
                # The PYTHONPATH prefix is supplied by the test env.
                line = re.sub(r"^PYTHONPATH=\S+\s+", "", line)
                # Source paths are repo-relative; runs happen in a tmp dir.
                line = line.replace(
                    "examples/", str(ROOT / "examples") + "/"
                )
                line = line.replace(
                    "benchmarks/", str(ROOT / "benchmarks") + "/"
                )
                marks = (
                    [pytest.mark.slow]
                    if any(h in line for h in _SLOW_HINTS)
                    else []
                )
                yield pytest.param(
                    line, id=f"{path.name}-bash-{i}.{j}", marks=marks
                )


@pytest.mark.parametrize("block", _python_cases())
def test_python_snippet_runs(block, tmp_path):
    proc = subprocess.run(
        [sys.executable, "-c", block],
        cwd=tmp_path,
        env=_env(),
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"snippet failed:\n{block}\n--- stderr ---\n{proc.stderr}"
    )


@pytest.mark.parametrize("command", _bash_cases())
def test_cli_example_runs(command, tmp_path):
    proc = subprocess.run(
        [sys.executable, "-m"] + command.split()[2:],
        cwd=tmp_path,
        env=_env(),
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"CLI example failed: {command}\n--- stderr ---\n{proc.stderr}"
    )


def test_readme_links_resolve():
    """Every relative markdown link in README/docs points at a real file."""
    for path in DOC_FILES:
        base = path.parent
        for target in re.findall(r"\]\(([^)#]+)(?:#[^)]*)?\)", path.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            assert (base / target).exists(), f"{path.name} links to {target}"
