"""Tests for the Access Region Test and parallelism detection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.analysis.art import test_loop_parallel as art_verdict
from repro.compiler.analysis.parallel import detect_parallelism
from repro.compiler.analysis.reduction import find_reductions
from repro.compiler.frontend import fast as F
from repro.compiler.frontend.lower import lower_program
from repro.compiler.frontend.parser import parse


def unit_of(src):
    return lower_program(parse(src)).main


def first_loop(unit):
    return unit.body[0] if isinstance(unit.body[0], F.Do) else unit.body[1]


def verdict(src):
    unit = unit_of(src)
    loop = first_loop(unit)
    return art_verdict(loop, unit.symtab)


def test_independent_elementwise():
    r = verdict("""
      PROGRAM P
      REAL*8 A(100), B(100)
      DO I = 1, 100
        A(I) = B(I) * 2.0
      ENDDO
      END
""")
    assert r.independent


def test_flow_dependence_detected():
    r = verdict("""
      PROGRAM P
      REAL*8 A(101)
      DO I = 1, 100
        A(I+1) = A(I)
      ENDDO
      END
""")
    assert not r.independent


def test_anti_dependence_detected():
    r = verdict("""
      PROGRAM P
      REAL*8 A(101)
      DO I = 1, 100
        A(I) = A(I+1)
      ENDDO
      END
""")
    assert not r.independent


def test_output_dependence_same_location():
    r = verdict("""
      PROGRAM P
      REAL*8 A(100)
      DO I = 1, 100
        A(1) = I
      ENDDO
      END
""")
    assert not r.independent


def test_stride_disjoint_writes_independent():
    # Writes evens, reads odds: no cross-iteration conflict.
    r = verdict("""
      PROGRAM P
      REAL*8 A(201)
      DO I = 1, 100
        A(2*I) = A(2*I+1)
      ENDDO
      END
""")
    assert r.independent


def test_offset_halves_independent():
    r = verdict("""
      PROGRAM P
      REAL*8 A(200)
      DO I = 1, 100
        A(I) = A(I+100)
      ENDDO
      END
""")
    assert r.independent


def test_offset_overlap_dependent():
    r = verdict("""
      PROGRAM P
      REAL*8 A(200)
      DO I = 1, 100
        A(I) = A(I+50)
      ENDDO
      END
""")
    assert not r.independent


def test_matmul_outer_loop_independent():
    r = verdict("""
      PROGRAM P
      PARAMETER (N = 16)
      REAL*8 A(N,N), B(N,N), C(N,N)
      DO I = 1, N
        DO J = 1, N
          C(I,J) = 0.0
          DO K = 1, N
            C(I,J) = C(I,J) + A(I,K) * B(K,J)
          ENDDO
        ENDDO
      ENDDO
      END
""")
    assert r.independent


def test_inner_loop_parallel_under_serial_outer():
    """Outer recurrence serial, inner loop parallel (outer var cancels)."""
    unit = unit_of("""
      PROGRAM P
      PARAMETER (N = 16)
      REAL*8 A(N,N)
      DO I = 2, N
        DO J = 1, N
          A(J,I) = A(J,I-1) + 1.0
        ENDDO
      ENDDO
      END
""")
    outer = unit.body[0]
    r_outer = art_verdict(outer, unit.symtab)
    assert not r_outer.independent
    inner = outer.body[0]
    r_inner = art_verdict(inner, unit.symtab)
    assert r_inner.independent


def test_nonaffine_subscript_conservative():
    r = verdict("""
      PROGRAM P
      REAL*8 A(100)
      INTEGER IDX(100)
      DO I = 1, 100
        A(IDX(I)) = 1.0
      ENDDO
      END
""")
    assert not r.independent


def test_single_iteration_loop_trivially_parallel():
    r = verdict("""
      PROGRAM P
      REAL*8 A(10)
      DO I = 5, 5
        A(1) = A(2)
      ENDDO
      END
""")
    assert r.independent


# ---------------------------------------------------------------------------
# Reduction recognition
# ---------------------------------------------------------------------------


def loop_of(src):
    return first_loop(unit_of(src))


def test_sum_reduction_recognized():
    loop = loop_of("""
      PROGRAM P
      REAL*8 A(100)
      REAL*8 S
      DO I = 1, 100
        S = S + A(I)
      ENDDO
      END
""")
    assert find_reductions(loop) == [("S", "+")]


def test_minus_and_reversed_forms():
    loop = loop_of("""
      PROGRAM P
      REAL*8 A(100)
      REAL*8 S, T
      DO I = 1, 100
        S = S - A(I)
        T = A(I) + T
      ENDDO
      END
""")
    assert sorted(find_reductions(loop)) == [("S", "+"), ("T", "+")]


def test_max_reduction():
    loop = loop_of("""
      PROGRAM P
      REAL*8 A(100)
      REAL*8 M
      DO I = 1, 100
        M = MAX(M, A(I))
      ENDDO
      END
""")
    assert find_reductions(loop) == [("M", "MAX")]


def test_reduction_disqualified_by_other_use():
    loop = loop_of("""
      PROGRAM P
      REAL*8 A(100), B(100)
      REAL*8 S
      DO I = 1, 100
        S = S + A(I)
        B(I) = S
      ENDDO
      END
""")
    assert find_reductions(loop) == []


def test_reduction_disqualified_by_mixed_ops():
    loop = loop_of("""
      PROGRAM P
      REAL*8 A(100)
      REAL*8 S
      DO I = 1, 100
        S = S + A(I)
        S = S * 2.0
      ENDDO
      END
""")
    assert find_reductions(loop) == []


# ---------------------------------------------------------------------------
# Whole-unit detection driver
# ---------------------------------------------------------------------------


def test_detect_parallelism_marks_and_logs():
    unit = unit_of("""
      PROGRAM P
      PARAMETER (N = 32)
      REAL*8 A(N), B(N), C(N)
      REAL*8 S
      DO I = 1, N
        A(I) = B(I)
      ENDDO
      DO I = 2, N
        C(I) = C(I-1)
      ENDDO
      DO I = 1, N
        S = S + A(I)
      ENDDO
      END
""")
    log = detect_parallelism(unit)
    loops = [s for s in unit.body if isinstance(s, F.Do)]
    assert loops[0].parallel
    assert not loops[1].parallel
    assert loops[2].parallel
    assert loops[2].reductions == [("S", "+")]
    assert "serial" in str(log)


def test_detect_descends_into_serial_outer():
    unit = unit_of("""
      PROGRAM P
      PARAMETER (N = 16)
      REAL*8 A(N,N)
      DO I = 2, N
        DO J = 1, N
          A(J,I) = A(J,I-1) + 1.0
        ENDDO
      ENDDO
      END
""")
    detect_parallelism(unit)
    outer = unit.body[0]
    assert not outer.parallel
    assert outer.body[0].parallel


def test_private_scalar_enables_parallelism():
    unit = unit_of("""
      PROGRAM P
      PARAMETER (N = 32)
      REAL*8 A(N), B(N)
      REAL*8 T
      DO I = 1, N
        T = A(I) * 2.0
        B(I) = T + 1.0
      ENDDO
      END
""")
    detect_parallelism(unit)
    loop = unit.body[0]
    assert loop.parallel
    assert "T" in loop.private


def test_shared_scalar_blocks_parallelism():
    unit = unit_of("""
      PROGRAM P
      PARAMETER (N = 32)
      REAL*8 A(N)
      REAL*8 T
      T = 0.0
      DO I = 1, N
        T = A(I)
      ENDDO
      PRINT *, T
      END
""")
    detect_parallelism(unit)
    loop = [s for s in unit.body if isinstance(s, F.Do)][0]
    # T = A(I) is last-value semantics, not a reduction: stays serial.
    assert not loop.parallel


def test_directive_overrides_analysis():
    unit = unit_of("""
      PROGRAM P
      REAL*8 A(101)
CSRD$ PARALLEL
      DO I = 1, 100
        A(I+1) = A(I)
      ENDDO
      END
""")
    detect_parallelism(unit)
    assert unit.body[0].parallel  # user said so


# ---------------------------------------------------------------------------
# Property: ART is conservative w.r.t. brute-force execution
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    cw=st.integers(-3, 3),
    cr=st.integers(-3, 3),
    dw=st.integers(0, 6),
    dr=st.integers(0, 6),
    n=st.integers(2, 12),
)
def test_property_art_never_claims_false_independence(cw, cr, dw, dr, n):
    """Compare ART's verdict on A(cw*I+dw) = A(cr*I+dr) with brute force."""
    size = 3 * 12 + 7  # large enough for all generated subscripts
    lo = 1
    # Fortran subscripts must stay within [1, size].
    def sub(c, d, i):
        return c * i + d

    vals = [sub(cw, dw, i) for i in range(lo, lo + n)] + [
        sub(cr, dr, i) for i in range(lo, lo + n)
    ]
    if min(vals) < 1 or max(vals) > size:
        return  # skip out-of-bounds programs

    src = f"""
      PROGRAM P
      REAL*8 A({size})
      DO I = {lo}, {lo + n - 1}
        A({cw}*I+{dw}) = A({cr}*I+{dr}) + 1.0
      ENDDO
      END
"""
    unit = unit_of(src)
    loop = unit.body[0]
    r = art_verdict(loop, unit.symtab)

    # Brute force: does any pair of distinct iterations conflict?
    writes = {i: {sub(cw, dw, i)} for i in range(lo, lo + n)}
    reads = {i: {sub(cr, dr, i)} for i in range(lo, lo + n)}
    conflict = any(
        (writes[i1] & (reads[i2] | writes[i2]))
        for i1 in writes
        for i2 in writes
        if i1 != i2
    )
    if r.independent:
        assert not conflict, f"ART claimed independence but {src} conflicts"
