"""End-to-end property: for randomly generated programs in the compiler's
subset, the compiled SPMD program run on the simulated cluster produces
exactly the sequential program's results — at every granularity and for
arbitrary rank counts.

This is the system's central correctness contract (the paper's target
code "keeps data coherency between processors" via scattering/collecting
+ fences); hypothesis explores loop shapes, strides, offsets, reductions,
and loop chains the hand-written tests don't."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.pipeline import compile_source
from repro.runtime.executor import run_program, run_sequential

N = 24  # array extent used by all generated programs


@st.composite
def elementwise_stmt(draw, arrays, loop_var="I"):
    """One assignment inside DO I = lo, hi."""
    target = draw(st.sampled_from(arrays))
    coef = draw(st.sampled_from([1, 2]))
    off = draw(st.integers(0, 3))
    # Subscript target(coef*I - coef + 1 + off) stays within bounds for
    # I in [1, N//coef - off].
    lhs = f"{target}({coef}*I - {coef} + 1 + {off})"
    src_arr = draw(st.sampled_from(arrays))
    s_off = draw(st.integers(0, 2))
    shape = draw(st.sampled_from(["lin", "mul", "intr"]))
    if shape == "lin":
        rhs = f"{src_arr}(I + {s_off}) + DBLE(I) * 0.25"
    elif shape == "mul":
        rhs = f"{src_arr}(I + {s_off}) * 1.5 - 2.0"
    else:
        rhs = f"ABS({src_arr}(I + {s_off})) + 1.0"
    return lhs, rhs, coef, off


@st.composite
def program_source(draw):
    arrays = ["A", "B", "C"]
    lines = [
        "      PROGRAM RAND",
        f"      PARAMETER (N = {N})",
        "      REAL*8 A(3*N), B(3*N), C(3*N)",
        "      REAL*8 S",
        "      INTEGER I",
    ]
    # Deterministic initialization loop.
    lines += [
        "      DO I = 1, 3*N",
        "        A(I) = DBLE(I) * 0.5",
        "        B(I) = DBLE(2*I) - 3.0",
        "        C(I) = 1.0",
        "      ENDDO",
    ]
    nloops = draw(st.integers(1, 3))
    for _ in range(nloops):
        lhs, rhs, coef, off = draw(elementwise_stmt(arrays))
        hi = N - max(2, off)
        lines += [
            f"      DO I = 1, {hi}",
            f"        {lhs} = {rhs}",
            "      ENDDO",
        ]
    if draw(st.booleans()):
        lines += [
            "      S = 0.0",
            f"      DO I = 1, {N}",
            "        S = S + A(I) * 0.125",
            "      ENDDO",
            "      PRINT *, S",
        ]
    lines.append("      END")
    return "\n".join(lines)


@settings(max_examples=25, deadline=None)
@given(
    src=program_source(),
    nprocs=st.sampled_from([2, 3, 4]),
    grain=st.sampled_from(["fine", "middle", "coarse"]),
)
def test_property_parallel_equals_sequential(src, nprocs, grain):
    prog = compile_source(src, nprocs=nprocs, granularity=grain)
    seq = run_sequential(prog)
    par = run_program(prog)
    for name in ("A", "B", "C"):
        assert np.array_equal(
            par.memory.array(name), seq.memory.array(name)
        ), f"{name} differs (nprocs={nprocs}, grain={grain})\n{src}"
    assert par.stdout == seq.stdout


@settings(max_examples=15, deadline=None)
@given(
    stride=st.integers(1, 4),
    nprocs=st.sampled_from([2, 4]),
    grain=st.sampled_from(["fine", "middle", "coarse"]),
)
def test_property_strided_writes_survive_any_grain(stride, nprocs, grain):
    """Strided writes + the demotion machinery never corrupt results."""
    from repro.workloads import synthetic

    src = synthetic.phased_stride_kernel(N, stride)
    prog = compile_source(src, nprocs=nprocs, granularity=grain)
    seq = run_sequential(prog)
    par = run_program(prog)
    assert np.array_equal(par.memory.array("A"), seq.memory.array("A"))
