"""Tests for the Fortran lexer."""

import pytest

from repro.compiler.frontend.lexer import LexError, tokenize


def kinds(src):
    return [(t.kind, t.value) for t in tokenize(src) if t.kind != "NEWLINE"]


def test_basic_tokens():
    toks = kinds("X = A(I,J) + 2.5\n")
    assert toks == [
        ("NAME", "X"), ("OP", "="), ("NAME", "A"), ("OP", "("),
        ("NAME", "I"), ("OP", ","), ("NAME", "J"), ("OP", ")"),
        ("OP", "+"), ("NUM", "2.5"), ("EOF", ""),
    ]


def test_keywords_case_insensitive():
    toks = kinds("do i = 1, n\nenddo\n")
    assert ("KEYWORD", "DO") in toks
    assert ("KEYWORD", "ENDDO") in toks
    assert ("NAME", "I") in toks


def test_comment_lines_skipped():
    toks = kinds("C this is a comment\n* star comment\n! bang\nX = 1\n")
    assert toks[0] == ("NAME", "X")


def test_trailing_comment():
    toks = kinds("X = 1  ! trailing\n")
    assert ("NUM", "1") in toks
    assert all(v != "trailing" for _k, v in toks)


def test_directive_token():
    toks = kinds("CSRD$ PARALLEL\nDO I=1,4\nENDDO\n")
    assert toks[0] == ("DIRECTIVE", "PARALLEL")
    toks2 = kinds("C$PAR PARALLEL\nDO I=1,4\nENDDO\n")
    assert toks2[0] == ("DIRECTIVE", "PARALLEL")


def test_dot_operators():
    toks = kinds("IF (A .LT. B .AND. C .GE. 2) THEN\n")
    vals = [v for _k, v in toks]
    assert "<" in vals and ".AND." in vals and ">=" in vals


def test_modern_relational_ops():
    toks = kinds("IF (A <= B) THEN\n")
    assert ("OP", "<=") in toks


def test_numeric_literals():
    toks = kinds("X = 1.5E3 + 2D0 + .5 + 10\n")
    nums = [v for k, v in toks if k == "NUM"]
    assert nums == ["1.5E3", "2D0", ".5", "10"]


def test_statement_label():
    toks = kinds("      DO 10 I = 1, 4\n10    CONTINUE\n")
    assert ("LABEL", "10") in toks
    assert ("KEYWORD", "CONTINUE") in toks


def test_continuation_joins_lines():
    src = "X = 1 + &\n    2\n"
    toks = tokenize(src)
    newlines = [t for t in toks if t.kind == "NEWLINE"]
    assert len(newlines) == 1  # the two physical lines form one statement


def test_string_literal():
    toks = kinds("PRINT *, 'hello world'\n")
    assert ("STR", "hello world") in toks


def test_unterminated_string_raises():
    with pytest.raises(LexError):
        tokenize("PRINT *, 'oops\n")


def test_bad_character_raises():
    with pytest.raises(LexError):
        tokenize("X = 1 @ 2\n")


def test_power_operator():
    assert ("OP", "**") in kinds("X = Y ** 2\n")
