"""Tests for fine/middle/coarse transfer planning (paper §5.6, Figure 9)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.analysis.lmad import LMAD
from repro.compiler.postpass.granularity import (
    COARSE,
    FINE,
    MIDDLE,
    Transfer,
    collect_demotion,
    plan_bytes,
    plan_mask,
    plan_transfers,
)


def test_transfer_validation():
    with pytest.raises(ValueError):
        Transfer(offset=0, count=0)
    with pytest.raises(ValueError):
        Transfer(offset=0, count=1, stride=0)
    t = Transfer(offset=3, count=4, stride=2)
    assert not t.contiguous
    assert t.last == 9
    assert t.indices().tolist() == [3, 5, 7, 9]


def test_fine_strided_region():
    l = LMAD.from_counts("A", 0, [(3, 5)])  # 0 3 6 9 12
    ts = plan_transfers(l, FINE)
    assert ts == [Transfer(offset=0, count=5, stride=3)]
    assert not ts[0].contiguous


def test_fine_contiguous_region():
    l = LMAD.from_counts("A", 4, [(1, 8)])
    ts = plan_transfers(l, FINE)
    assert ts == [Transfer(offset=4, count=8, stride=1)]
    assert ts[0].contiguous


def test_middle_converts_stride_to_bounding_run():
    l = LMAD.from_counts("A", 0, [(3, 5)])
    ts = plan_transfers(l, MIDDLE)
    assert ts == [Transfer(offset=0, count=13, stride=1)]


def test_coarse_single_bounding_transfer():
    l = LMAD.from_counts("A", 2, [(3, 4), (20, 3)])
    ts = plan_transfers(l, COARSE)
    assert len(ts) == 1
    assert ts[0].offset == l.min_offset
    assert ts[0].count == l.extent
    assert ts[0].contiguous


def test_figure9_regions():
    """Fig 9: stride-3 mapping within groups of 14 across 2 processors.

    Fine: one strided PUT per group; middle: one contiguous run per
    group (redundant bytes); coarse: one big contiguous region."""
    l = LMAD.from_counts("A", 0, [(3, 5), (14, 2)])
    fine = plan_transfers(l, FINE)
    assert len(fine) == 2 and all(t.stride == 3 for t in fine)
    middle = plan_transfers(l, MIDDLE)
    assert len(middle) == 2 and all(t.contiguous for t in middle)
    assert middle[0].count == 13  # span+1 covers the 5 strided elements
    coarse = plan_transfers(l, COARSE)
    assert len(coarse) == 1 and coarse[0].count == l.extent


def test_message_count_formulas():
    """Fine/middle = prod_{j>=2}(count_j); coarse = 1 per region."""
    l = LMAD.from_counts("A", 0, [(2, 6), (20, 4), (100, 3)])
    assert len(plan_transfers(l, FINE)) == 4 * 3
    assert len(plan_transfers(l, MIDDLE)) == 4 * 3
    assert len(plan_transfers(l, COARSE)) == 1


def test_plan_bytes():
    l = LMAD.from_counts("A", 0, [(3, 5)])
    assert plan_bytes(plan_transfers(l, FINE)) == 5 * 8
    assert plan_bytes(plan_transfers(l, MIDDLE)) == 13 * 8
    assert plan_bytes(plan_transfers(l, FINE), itemsize=4) == 20


def test_unknown_grain_rejected():
    with pytest.raises(ValueError):
        plan_transfers(LMAD("A", 0, ()), "extra-chunky")


@settings(max_examples=60)
@given(
    base=st.integers(0, 20),
    dims=st.lists(
        st.tuples(st.integers(1, 6), st.integers(1, 5)), min_size=1, max_size=3
    ),
    grain=st.sampled_from([FINE, MIDDLE, COARSE]),
)
def test_property_plans_cover_region(base, dims, grain):
    """Every granularity's transfers cover (at least) the exact region;
    fine covers it exactly."""
    l = LMAD.from_counts("A", base, dims)
    size = l.max_offset + 5
    exact = l.mask(size)
    planned = plan_mask(plan_transfers(l, grain), size)
    assert not (exact & ~planned).any()
    if grain == FINE:
        assert np.array_equal(exact, planned)
    if grain == COARSE:
        # One dense interval.
        idx = np.flatnonzero(planned)
        assert len(idx) == idx[-1] - idx[0] + 1


@settings(max_examples=40)
@given(
    base=st.integers(0, 20),
    dims=st.lists(
        st.tuples(st.integers(1, 6), st.integers(1, 5)), min_size=1, max_size=3
    ),
)
def test_property_redundancy_ordering(base, dims):
    """bytes(fine) <= bytes(middle) <= bytes(coarse) for non-degenerate
    descriptors (a self-overlapping LMAD double-sends its duplicates at
    fine grain, which compilers never generate from real subscripts)."""
    l = LMAD.from_counts("A", base, dims)
    if l.nominal_count != l.count_distinct():
        return
    b = {g: plan_bytes(plan_transfers(l, g)) for g in (FINE, MIDDLE, COARSE)}
    m = {g: len(plan_transfers(l, g)) for g in (FINE, MIDDLE, COARSE)}
    # Exact regions move the fewest bytes; approximation only inflates.
    assert b[FINE] <= b[MIDDLE]
    assert b[FINE] <= b[COARSE]
    # Coarse always moves the fewest messages; middle never adds any.
    assert m[COARSE] == 1
    assert m[MIDDLE] == m[FINE]
    # (middle vs coarse bytes can order either way: overlapping inflated
    # runs may exceed the single bounding interval.)


# ---------------------------------------------------------------------------
# The §5.6 collect bound check
# ---------------------------------------------------------------------------


def _no_scatter(size, ranks):
    return {r: np.zeros(size, dtype=bool) for r in ranks}


def test_demotion_on_overlapping_coarse_regions():
    """Interleaved rank regions: coarse bounding boxes overlap -> fine."""
    size = 40
    writes = {
        0: [LMAD.from_counts("A", 0, [(2, 10)])],  # evens
        1: [LMAD.from_counts("A", 1, [(2, 10)])],  # odds
    }
    grain, reason = collect_demotion(writes, _no_scatter(size, [0, 1]), COARSE, size)
    assert grain == FINE
    assert "overlap" in reason


def test_no_demotion_for_disjoint_blocks():
    size = 40
    writes = {
        0: [LMAD.from_counts("A", 0, [(1, 10)])],
        1: [LMAD.from_counts("A", 20, [(1, 10)])],
    }
    grain, reason = collect_demotion(writes, _no_scatter(size, [0, 1]), COARSE, size)
    assert grain == COARSE and reason is None


def test_demotion_on_stale_inflation():
    """Middle inflation carries elements the rank neither wrote nor
    received -> fine."""
    size = 40
    writes = {1: [LMAD.from_counts("A", 0, [(3, 5)])]}
    grain, reason = collect_demotion(writes, _no_scatter(size, [1]), MIDDLE, size)
    assert grain == FINE
    assert "stale" in reason


def test_inflation_covered_by_scatter_is_safe():
    size = 40
    writes = {1: [LMAD.from_counts("A", 0, [(3, 5)])]}
    scattered = {1: np.ones(size, dtype=bool)}  # everything was scattered
    grain, reason = collect_demotion(writes, scattered, MIDDLE, size)
    assert grain == MIDDLE and reason is None


def test_inflation_covered_by_own_writes_is_safe():
    """The CFFZINIT pattern: two stride-2 LMADs unioning to full coverage."""
    size = 20
    writes = {
        1: [
            LMAD.from_counts("A", 0, [(2, 10)]),
            LMAD.from_counts("A", 1, [(2, 10)]),
        ]
    }
    grain, reason = collect_demotion(writes, _no_scatter(size, [1]), MIDDLE, size)
    assert grain == MIDDLE and reason is None


def test_fine_never_demoted():
    size = 10
    writes = {1: [LMAD.from_counts("A", 0, [(3, 3)])]}
    grain, reason = collect_demotion(writes, _no_scatter(size, [1]), FINE, size)
    assert grain == FINE and reason is None
