"""Fault injection on the Ethernet baseline network.

The same ``FaultPlan`` JSON drives both networks: on Ethernet, drops and
corruption apply per MTU-sized frame instead of per flit, kills behave
identically, and stall specs are a no-op (there are no wormhole channels
to hold).  The degradation comparison here backs the numbers quoted in
EXPERIMENTS.md: under identical loss the degraded mesh still wins in
absolute terms, while Ethernet's coarser loss unit (frame vs flit) gives
it the smaller relative penalty.
"""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_source
from repro.faults import FaultPlan, FaultSpec
from repro.mpi2.exceptions import MpiNodeDeadError
from repro.runtime.executor import run_program
from repro.vbus.params import ETHERNET_100, VBUS_SKWP, cluster_for
from repro.workloads import jacobi


DROP_PLAN = FaultPlan(
    seed=11, specs=(FaultSpec(kind="drop", rate=0.05),), max_sim_s=10.0
)


@pytest.fixture(scope="module")
def jacobi4():
    return compile_source(jacobi.source(n=16, steps=2), nprocs=4, granularity="coarse")


@pytest.fixture(scope="module")
def eth4():
    return cluster_for(4, ETHERNET_100)


def test_ethernet_drop_recovers_bit_identical(jacobi4, eth4):
    clean = run_program(jacobi4, cluster_params=eth4)
    faulty = run_program(jacobi4, cluster_params=eth4, faults=DROP_PLAN)
    assert faulty.fault_stats["fault_dropped_flits"] > 0
    assert faulty.fault_stats["fault_retx_rounds"] > 0
    assert faulty.total_s > clean.total_s
    for name in clean.memory.arrays:
        assert np.array_equal(
            clean.memory.arrays[name], faulty.memory.arrays[name]
        ), name


def test_ethernet_node_kill_raises_typed_error(jacobi4, eth4):
    plan = FaultPlan(
        seed=1,
        specs=(FaultSpec(kind="kill", node=2, at_s=5e-4),),
        max_sim_s=5.0,
    )
    with pytest.raises(MpiNodeDeadError):
        run_program(jacobi4, cluster_params=eth4, faults=plan)


def test_ethernet_runs_deterministic_under_plan(jacobi4, eth4):
    a = run_program(jacobi4, cluster_params=eth4, faults=DROP_PLAN)
    b = run_program(jacobi4, cluster_params=eth4, faults=DROP_PLAN)
    assert a.total_s == b.total_s
    assert a.fault_stats == b.fault_stats


def test_vbus_degrades_less_than_ethernet_under_same_plan(jacobi4, eth4):
    # EXPERIMENTS.md degradation claim: under the same 5% loss plan both
    # networks recover bit-identically; the mesh keeps its absolute lead
    # while Ethernet shows the smaller relative penalty.
    vbus = cluster_for(4, VBUS_SKWP)
    v_clean = run_program(jacobi4, cluster_params=vbus)
    v_fault = run_program(jacobi4, cluster_params=vbus, faults=DROP_PLAN)
    e_clean = run_program(jacobi4, cluster_params=eth4)
    e_fault = run_program(jacobi4, cluster_params=eth4, faults=DROP_PLAN)
    for rep in (v_fault, e_fault):
        assert rep.fault_stats["fault_retx_rounds"] > 0
    v_slowdown = v_fault.total_s / v_clean.total_s
    e_slowdown = e_fault.total_s / e_clean.total_s
    assert v_slowdown > 1.0 and e_slowdown > 1.0
    # Absolute win: the degraded mesh still beats degraded Ethernet.
    assert v_fault.total_s < e_fault.total_s
    # Relative robustness: per-flit loss granularity exposes the mesh to
    # many more lost units (and retx rounds) than Ethernet's MTU frames.
    assert (
        v_fault.fault_stats["fault_retx_rounds"]
        > e_fault.fault_stats["fault_retx_rounds"]
    )
    assert v_slowdown > e_slowdown
