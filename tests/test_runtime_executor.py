"""Integration tests: compiled programs run on the simulated cluster and
produce bit-identical results to sequential execution."""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_source
from repro.runtime.executor import run_program, run_sequential
from repro.workloads import cffzinit, mm, swim, synthetic

GRAINS = ("fine", "middle", "coarse")


def check_parallel_matches_sequential(src, arrays, nprocs=4, init=None, **kw):
    results = {}
    for grain in GRAINS:
        prog = compile_source(src, nprocs=nprocs, granularity=grain, **kw)
        seq = run_sequential(prog, init=init)
        par = run_program(prog, init=init)
        for name in arrays:
            assert np.array_equal(
                par.memory.array(name), seq.memory.array(name)
            ), f"{name} differs at {grain}"
        results[grain] = (seq, par)
    return results


def test_mm_all_granularities_and_sizes():
    for n in (8, 16):
        init = mm.init_arrays(n)
        res = check_parallel_matches_sequential(
            mm.source(n), ["C"], nprocs=4, init=init
        )
        seq, par = res["fine"]
        assert np.allclose(par.memory.shaped("C"), mm.reference(init))


@pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 6])
def test_mm_various_rank_counts(nprocs):
    n = 12
    init = mm.init_arrays(n)
    prog = compile_source(mm.source(n), nprocs=nprocs, granularity="coarse")
    par = run_program(prog, init=init)
    assert np.allclose(par.memory.shaped("C"), mm.reference(init))


def test_swim_matches_numpy_reference():
    n, itmax = 16, 2
    prog = compile_source(swim.source(n, itmax), nprocs=4, granularity="fine")
    par = run_program(prog)
    ref = swim.reference_step(n, itmax)
    for name in ("U", "V", "P", "CU", "CV", "Z", "H"):
        assert np.allclose(par.memory.shaped(name), ref[name]), name


def test_swim_all_granularities():
    check_parallel_matches_sequential(
        swim.source(12, 1), ["U", "V", "P", "CU", "CV", "Z", "H"], nprocs=4
    )


def test_cffzinit_all_granularities():
    for grain in GRAINS:
        prog = compile_source(cffzinit.source(6), nprocs=4, granularity=grain)
        par = run_program(prog)
        assert np.allclose(par.memory.array("TRIG"), cffzinit.reference(6))


def test_reduction_program():
    prog = compile_source(synthetic.reduction_kernel(64), nprocs=4)
    seq = run_sequential(prog)
    par = run_program(prog)
    expected = 64 * 65 / 2
    assert par.stdout == [f"SUM {expected:.6g}"]
    assert par.stdout == seq.stdout
    # Master's scalar also holds the combined value.
    assert par.memory.scalars["S"] == expected


def test_triangular_program():
    check_parallel_matches_sequential(
        synthetic.triangular_kernel(10), ["L"], nprocs=3
    )


def test_avpg_chain_with_dead_arrays():
    src = synthetic.avpg_chain(24)
    prog = compile_source(
        src, nprocs=4, granularity="fine", live_out=frozenset({"D"})
    )
    seq = run_sequential(prog)
    par = run_program(prog)
    # D (the live-out array) must match; B may legitimately be stale on
    # the master because its collect was eliminated.
    assert np.array_equal(par.memory.array("D"), seq.memory.array("D"))


def test_time_stepping_loop_replicated_control():
    src = swim.source(12, 3)
    prog = compile_source(src, nprocs=2, granularity="fine")
    par = run_program(prog)
    ref = swim.reference_step(12, 3)
    assert np.allclose(par.memory.shaped("P"), ref["P"])


def test_if_region_parallel_branch():
    src = """
      PROGRAM P
      PARAMETER (N = 16)
      REAL*8 A(N)
      INTEGER FLAG, I
      FLAG = 1
      IF (FLAG .GT. 0) THEN
        DO I = 1, N
          A(I) = DBLE(I)
        ENDDO
      ELSE
        DO I = 1, N
          A(I) = -DBLE(I)
        ENDDO
      ENDIF
      END
"""
    check_parallel_matches_sequential(src, ["A"], nprocs=4)


def test_timing_mode_same_schedule_as_value_mode():
    n = 16
    init = mm.init_arrays(n)
    prog = compile_source(mm.source(n), nprocs=4, granularity="fine")
    rv = run_program(prog, init=init, execute=True)
    rt = run_program(prog, execute=False)
    assert rt.total_s == pytest.approx(rv.total_s, rel=1e-9)
    assert rt.hw["messages"] == rv.hw["messages"]
    assert rt.scatter_bytes == rv.scatter_bytes
    assert rt.collect_bytes == rv.collect_bytes


def test_report_contents():
    prog = compile_source(mm.source(8), nprocs=4, granularity="fine")
    r = run_program(prog, init=mm.init_arrays(8))
    assert r.nprocs == 4
    assert r.total_s > 0
    assert set(r.compute_s) == {0, 1, 2, 3}
    assert r.comm_max_s > 0
    assert r.hw["messages"] > 0
    assert r.contiguous_transfers > 0
    assert "total time" in r.summary()


def test_speedup_increases_with_ranks():
    n = 48
    seq = run_sequential(
        compile_source(mm.source(n), nprocs=1), execute=False
    )
    speedups = []
    for nodes in (1, 2, 4):
        prog = compile_source(mm.source(n), nprocs=nodes, granularity="coarse")
        par = run_program(prog, execute=False)
        speedups.append(par.speedup_vs(seq.total_s))
    assert speedups[0] == pytest.approx(1 / 1.04, rel=1e-3)  # Table 1's 0.96
    assert speedups[0] < speedups[1] < speedups[2]


def test_hw_broadcast_used_for_mm_b():
    prog = compile_source(mm.source(16), nprocs=4, granularity="coarse")
    r = run_program(prog, init=mm.init_arrays(16))
    assert r.hw["hw_broadcasts"] >= 1
    assert r.hw["freezes"] >= 1


def test_print_happens_once_on_master():
    src = """
      PROGRAM P
      PARAMETER (N = 8)
      REAL*8 A(N)
      INTEGER I
      DO I = 1, N
        A(I) = 2.0
      ENDDO
      PRINT *, 'done', A(3)
      END
"""
    prog = compile_source(src, nprocs=4)
    r = run_program(prog)
    assert r.stdout == ["done 2"]
