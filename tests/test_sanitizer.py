"""Tests for the shadow-access sanitizer (docs/CHECK.md).

The sanitizer is the dynamic cross-check of the static verifier:
static-clean programs must run sanitizer-clean (the whole-corpus
version of this contract lives in tools/check_smoke.py), every seeded
bug must trip a matching S-code, and installing the probes must never
change a run's results or its simulated timing.
"""

import json
from pathlib import Path

import pytest

from repro.compiler.pipeline import compile_source
from repro.runtime.executor import ExecutionError, run_program
from repro.tools.check import check_source
from repro.workloads import source_for

BADPROG_DIR = Path(__file__).parent / "badprogs"
MANIFEST = json.loads((BADPROG_DIR / "manifest.json").read_text())

#: Which sanitizer codes may witness each static diagnostic at runtime.
#: (S-READ shows up alongside several, because reading a stale element
#: is how most planted plan defects first become observable.)
STATIC_TO_DYNAMIC = {
    "RV101": {"S-READ"},
    "RV102": {"S-READ"},
    "RV201": {"S-READ", "S-STALE", "S-RACE"},
    "RV202": {"S-STALE"},
    "RV301": {"S-FENCE"},
    "RV302": {"S-FENCE"},
    "RV401": {"S-RACE"},
}


def _sanitized(source, **options):
    prog = compile_source(source, **options)
    return run_program(prog, execute=True, sanitize=True)


@pytest.mark.parametrize("spec", ["MM-16", "JACOBI-12", "XOVER-24"])
def test_healthy_workloads_sanitize_clean(spec):
    report = _sanitized(source_for(spec), nprocs=4)
    assert report.sanitizer == {"clean": True, "violations": []}


def test_sanitizer_never_perturbs_results_or_timing():
    """Probes observe — a sanitized run's digest, stdout, and simulated
    clock are bit-identical to the plain run's."""
    prog = compile_source(source_for("MM-16"), nprocs=4)
    plain = run_program(prog, execute=True)
    shadowed = run_program(prog, execute=True, sanitize=True)
    assert shadowed.array_digest() == plain.array_digest()
    assert shadowed.stdout == plain.stdout
    assert shadowed.total_s == plain.total_s
    # The verdict rides the report; plain rows keep their exact bytes.
    assert "sanitizer" not in plain.to_jsonable()
    assert shadowed.to_jsonable()["sanitizer"]["clean"] is True


@pytest.mark.parametrize("fname", sorted(MANIFEST))
def test_every_badprog_trips_a_matching_s_code(fname):
    spec = MANIFEST[fname]
    report = _sanitized((BADPROG_DIR / fname).read_text(), **spec["options"])
    verdict = report.sanitizer
    assert verdict["clean"] is False
    got = {v["code"] for v in verdict["violations"]}
    for rv in spec["expected"]:
        assert got & STATIC_TO_DYNAMIC[rv], (
            f"{fname}: static {rv} expected a dynamic witness in "
            f"{STATIC_TO_DYNAMIC[rv]}, sanitizer saw {got}"
        )


def test_static_clean_implies_sanitizer_clean_spotcheck():
    """The contract the smoke harness asserts corpus-wide, on one
    non-trivial variant mix here."""
    for spec, options in [
        ("SWIM-16", {"granularity": "coarse", "partition": "cyclic"}),
        ("PXOVER-24", {"granularity": "middle"}),
    ]:
        source = source_for(spec)
        assert check_source(source, nprocs=4, **options).clean
        report = _sanitized(source, nprocs=4, **options)
        assert report.sanitizer["clean"] is True, (spec, report.sanitizer)


def test_violations_deduplicate_with_counts():
    """unfenced_collect.f skips one fence epoch per region visit: one
    deduplicated S-FENCE entry whose count tallies the repeats."""
    spec = MANIFEST["unfenced_collect.f"]
    report = _sanitized(
        (BADPROG_DIR / "unfenced_collect.f").read_text(), **spec["options"]
    )
    violations = report.sanitizer["violations"]
    keys = [(v["code"], v.get("region_id"), v.get("array"), v.get("rank"))
            for v in violations]
    assert len(keys) == len(set(keys))  # deduped...
    assert any(v["count"] > 1 for v in violations)  # ...but counted


def test_sanitize_requires_value_mode():
    prog = compile_source(source_for("MM-16"), nprocs=4)
    with pytest.raises(ExecutionError):
        run_program(prog, execute=False, sanitize=True)
