"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
    Timeout,
)


def test_timeout_advances_clock():
    sim = Simulator()
    log = []

    def proc():
        yield sim.timeout(1.5)
        log.append(sim.now)
        yield sim.timeout(2.5)
        log.append(sim.now)

    sim.process(proc())
    sim.run()
    assert log == [1.5, 4.0]


def test_timeout_carries_value():
    sim = Simulator()
    got = []

    def proc():
        v = yield sim.timeout(1.0, value="hello")
        got.append(v)

    sim.process(proc())
    sim.run()
    assert got == ["hello"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    ev = sim.event()
    seen = []

    def waiter():
        val = yield ev
        seen.append((sim.now, val))

    def trigger():
        yield sim.timeout(3.0)
        ev.succeed(42)

    sim.process(waiter())
    sim.process(trigger())
    sim.run()
    assert seen == [(3.0, 42)]


def test_event_double_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(waiter())
    ev.fail(ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_failure_propagates_from_run():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("nobody caught me"))
    with pytest.raises(RuntimeError, match="nobody caught me"):
        sim.run()


def test_process_return_value_via_run_until():
    sim = Simulator()

    def proc():
        yield sim.timeout(2.0)
        return 99

    p = sim.process(proc())
    assert sim.run(until=p) == 99
    assert sim.now == 2.0


def test_process_waits_on_process():
    sim = Simulator()
    order = []

    def child():
        yield sim.timeout(5.0)
        order.append("child")
        return "payload"

    def parent():
        val = yield sim.process(child())
        order.append("parent")
        assert val == "payload"

    sim.process(parent())
    sim.run()
    assert order == ["child", "parent"]


def test_waiting_on_already_processed_event():
    sim = Simulator()
    results = []

    def early():
        yield sim.timeout(1.0)
        return "done-early"

    p = sim.process(early())

    def late():
        yield sim.timeout(10.0)
        v = yield p  # p completed long ago
        results.append((sim.now, v))

    sim.process(late())
    sim.run()
    assert results == [(10.0, "done-early")]


def test_yield_non_event_raises():
    sim = Simulator()

    def bad():
        yield 123

    sim.process(bad())
    with pytest.raises(SimulationError, match="non-event"):
        sim.run()


def test_exception_in_process_propagates():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise KeyError("inner")

    sim.process(bad())
    with pytest.raises(KeyError):
        sim.run()


def test_exception_in_child_caught_by_parent():
    sim = Simulator()
    seen = []

    def child():
        yield sim.timeout(1.0)
        raise ValueError("child died")

    def parent():
        try:
            yield sim.process(child())
        except ValueError as exc:
            seen.append(str(exc))

    sim.process(parent())
    sim.run()
    assert seen == ["child died"]


def test_run_until_time_stops_clock():
    sim = Simulator()
    ticks = []

    def clock():
        while True:
            yield sim.timeout(1.0)
            ticks.append(sim.now)

    sim.process(clock())
    sim.run(until=3.5)
    assert ticks == [1.0, 2.0, 3.0]
    assert sim.now == 3.5


def test_run_until_past_time_rejected():
    sim = Simulator()
    sim.process(iter_timeout(sim, 5.0))
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def iter_timeout(sim, t):
    yield sim.timeout(t)


def test_deterministic_fifo_order_at_same_time():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        sim.process(proc(tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_all_of_waits_for_every_event():
    sim = Simulator()
    done = []

    def proc():
        t1 = sim.timeout(1.0, value="x")
        t2 = sim.timeout(3.0, value="y")
        vals = yield AllOf(sim, [t1, t2])
        done.append((sim.now, sorted(vals.values())))

    sim.process(proc())
    sim.run()
    assert done == [(3.0, ["x", "y"])]


def test_any_of_fires_on_first():
    sim = Simulator()
    done = []

    def proc():
        t1 = sim.timeout(1.0, value="fast")
        t2 = sim.timeout(3.0, value="slow")
        vals = yield AnyOf(sim, [t1, t2])
        done.append((sim.now, list(vals.values())))

    sim.process(proc())
    sim.run()
    assert done == [(1.0, ["fast"])]


def test_all_of_empty_triggers_immediately():
    sim = Simulator()
    cond = AllOf(sim, [])
    assert cond.triggered


def test_interrupt_raises_in_target():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as exc:
            log.append((sim.now, exc.cause))

    def killer(proc):
        yield sim.timeout(2.0)
        proc.interrupt("wakeup")

    p = sim.process(sleeper())
    sim.process(killer(p))
    sim.run()
    assert log == [(2.0, "wakeup")]


def test_interrupt_dead_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(7.0)
    assert sim.peek() == 7.0


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = Event(sim)
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


# -- fast-path kernel primitives (cancellation, pooling, absolute timeouts) --
def test_cancel_removes_pending_timeout():
    sim = Simulator()
    fired = []
    t1 = sim.timeout(1.0)
    t1._add_cb(lambda ev: fired.append("t1"))
    t2 = sim.timeout(2.0)
    t2._add_cb(lambda ev: fired.append("t2"))
    sim.cancel(t1)
    sim.run()
    assert fired == ["t2"]
    assert sim.now == 2.0
    assert not t1.processed


def test_cancel_processed_event_rejected():
    sim = Simulator()
    t = sim.timeout(1.0)
    sim.run()
    with pytest.raises(SimulationError):
        sim.cancel(t)


def test_cancelled_head_does_not_pollute_peek():
    sim = Simulator()
    t1 = sim.timeout(1.0)
    sim.timeout(2.0)
    sim.cancel(t1)
    assert sim.peek() == 2.0


def test_timeout_at_fires_at_exact_absolute_time():
    sim = Simulator()
    sim.run(until=0.3)
    at = 0.3 + 0.7  # deliberately not representable as a round sum
    t = sim.timeout_at(at, value="v")
    sim.run()
    assert sim.now == at
    assert t.value == "v"


def test_timeout_at_in_past_rejected():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    with pytest.raises(SimulationError):
        sim.timeout_at(1.0)


def test_pooled_timeout_recycled_and_reused():
    sim = Simulator()
    calls = []
    t = sim.pooled_timeout_at(1.0, lambda ev: calls.append(sim.now))
    sim.run()
    assert calls == [1.0]
    # The fired object returns to the free list and is handed out again.
    t2 = sim.pooled_timeout_at(2.0, lambda ev: calls.append(sim.now))
    assert t2 is t
    sim.run()
    assert calls == [1.0, 2.0]


def test_cancelled_pooled_timeout_is_recycled():
    sim = Simulator()
    t = sim.pooled_timeout_at(1.0, lambda ev: None)
    sim.timeout(2.0)
    sim.cancel(t)
    sim.run()
    assert sim.now == 2.0
    t2 = sim.pooled_timeout_at(3.0, lambda ev: None)
    assert t2 is t


def test_completed_event_is_processed_and_free():
    sim = Simulator()
    ev = sim.completed_event(value=42)
    assert ev.processed and ev.ok and ev.value == 42
    # Waiting on it resumes via the ping path without advancing time.
    out = []

    def proc():
        v = yield ev
        out.append((sim.now, v))

    sim.process(proc())
    sim.run()
    assert out == [(0.0, 42)]


def test_all_of_skips_pre_completed_events():
    sim = Simulator()
    done = sim.completed_event(value="x")
    t = sim.timeout(1.0, value="y")
    results = []

    def proc():
        got = yield AllOf(sim, [done, t])
        results.append(got)

    sim.process(proc())
    sim.run()
    assert sim.now == 1.0 and len(results) == 1


# ---------------------------------------------------------------------------
# Process.kill / Simulator.reclaim (fault-injection support)
# ---------------------------------------------------------------------------
def test_kill_reclaims_orphaned_timeout():
    """Killing a process must not leave its pending timeout dragging the
    clock: the orphaned event is reclaimed from the heap, so the run ends
    at the last *live* event's time."""
    sim = Simulator()
    log = []

    def victim():
        yield sim.timeout(10.0)
        log.append("victim")  # pragma: no cover - must never run

    def other():
        yield sim.timeout(1.0)
        log.append("other")

    p = sim.process(victim())
    sim.process(other())

    def killer():
        yield sim.timeout(0.5)
        p.kill(RuntimeError("node down"))

    sim.process(killer())
    sim.run()
    assert log == ["other"]
    assert sim.now == 1.0  # not 10.0: the orphan did not advance the clock
    assert not sim._queue  # nothing leaked into the heap
    assert p.processed and not p.ok
    assert isinstance(p.value, RuntimeError)


def test_kill_runs_finally_blocks_releasing_resources():
    """kill() closes the generator, so try/finally cleanup runs and held
    resources are released to waiters (no orphaned lock after node death)."""
    from repro.sim import Resource

    sim = Simulator()
    res = Resource(sim)
    got = []

    def holder():
        yield res.request()
        try:
            yield sim.timeout(100.0)
        finally:
            res.release()

    def waiter():
        yield sim.timeout(1.0)
        yield res.request()
        got.append(sim.now)
        res.release()

    p = sim.process(holder())
    sim.process(waiter())

    def killer():
        yield sim.timeout(2.0)
        p.kill()

    sim.process(killer())
    sim.run()
    assert got == [2.0]  # waiter acquired the instant the holder died


def test_kill_defuses_failure():
    """A killed process nobody waits on must not crash the run."""
    sim = Simulator()

    def victim():
        yield sim.timeout(5.0)

    p = sim.process(victim())

    def killer():
        yield sim.timeout(1.0)
        p.kill(ValueError("boom"))

    sim.process(killer())
    sim.run()  # no SimulationError: the failure is pre-defused
    assert not p.ok and isinstance(p.value, ValueError)


def test_kill_propagates_to_condition_waiters():
    """AllOf over a killed process fails with the kill cause."""
    sim = Simulator()
    seen = []

    def victim():
        yield sim.timeout(5.0)

    def bystander():
        yield sim.timeout(3.0)

    pv = sim.process(victim())
    pb = sim.process(bystander())

    def watcher():
        try:
            yield AllOf(sim, [pv, pb])
        except RuntimeError as exc:
            seen.append((sim.now, str(exc)))

    sim.process(watcher())

    def killer():
        yield sim.timeout(1.0)
        pv.kill(RuntimeError("node 3 died"))

    sim.process(killer())
    sim.run()
    assert seen == [(1.0, "node 3 died")]


def test_kill_reclaims_condition_orphans():
    """A victim parked on AnyOf(timeouts) leaves no heap entries behind."""
    sim = Simulator()

    def victim():
        yield AnyOf(sim, [sim.timeout(50.0), sim.timeout(80.0)])

    p = sim.process(victim())

    def killer():
        yield sim.timeout(1.0)
        p.kill()

    sim.process(killer())
    sim.run()
    assert sim.now == 1.0
    assert not sim._queue


def test_reclaim_returns_pooled_timeout_to_pool():
    """The event pool leaks nothing when a pooled timeout is reclaimed
    (the kill path routes orphaned poolable events through reclaim): the
    object is recycled and handed out again by the very next request."""
    sim = Simulator()
    hits = []
    t = sim.pooled_timeout_at(5.0, hits.append)
    sim.reclaim(t)
    assert not sim._queue  # eagerly removed, clock will not reach 5.0
    t2 = sim.pooled_timeout_at(1.0, hits.append)
    assert t2 is t  # recycled, not leaked
    sim.run()
    assert sim.now == 1.0
    assert hits == [t2]


def test_kill_is_idempotent_and_noop_after_completion():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)
        return "done"

    p = sim.process(quick())
    sim.run()
    assert p.ok and p.value == "done"
    p.kill()  # no-op on a completed process
    assert p.ok and p.value == "done"


def test_kill_after_interrupt_swallows_stale_ping():
    """interrupt() queues an URGENT resume ping that is *not* the victim's
    target; a kill() in the same timestep cannot detach it.  When the stale
    ping pops, _resume must drop it instead of resuming a closed generator."""
    sim = Simulator()
    log = []

    def victim():
        try:
            yield sim.timeout(10.0)
        except Interrupt:  # pragma: no cover - the kill must win
            log.append("interrupted")

    p = sim.process(victim())

    def killer():
        yield sim.timeout(1.0)
        p.interrupt("hiccup")  # stale ping enters the heap ...
        p.kill(RuntimeError("node down"))  # ... and the kill lands first

    sim.process(killer())
    sim.run()
    assert log == []
    assert not p.ok and isinstance(p.value, RuntimeError)


def test_reclaim_unprocessed_event():
    sim = Simulator()
    t = sim.timeout(5.0)
    sim.timeout(1.0)
    sim.reclaim(t)
    sim.run()
    assert sim.now == 1.0


def test_reclaim_processed_event_rejected():
    sim = Simulator()
    t = sim.timeout(1.0)
    sim.run()
    with pytest.raises(SimulationError):
        sim.reclaim(t)
