"""Tests for the granularity auto-tuner."""

import numpy as np
import pytest

from repro.compiler.pipeline import CompileOptions
from repro.runtime.executor import run_program
from repro.tools.autotune import choose_granularity
from repro.workloads import cffzinit, mm


def test_autotune_picks_a_grain_and_returns_program():
    rep = choose_granularity(mm.source(16), nprocs=4, metric="comm")
    assert rep.best in ("fine", "middle", "coarse")
    assert set(rep.values) == {"fine", "middle", "coarse"}
    assert rep.program is not None
    assert rep.program.options.granularity == rep.best
    assert "selected" in rep.summary()


def test_autotune_cffzinit_prefers_approximate_grains():
    """Stride-2 regions: fine (strided PIO) must never win."""
    rep = choose_granularity(cffzinit.source(9), nprocs=4, metric="comm")
    assert rep.best in ("middle", "coarse")
    assert rep.values[rep.best] < rep.values["fine"]


def test_autotune_comm_cpu_metric_mm():
    """On the CPU metric, MM's coarse aggregation wins (Table 2 shape)."""
    rep = choose_granularity(mm.source(48), nprocs=4, metric="comm_cpu")
    assert rep.best == "coarse"


def test_autotuned_program_is_runnable_and_correct():
    rep = choose_granularity(mm.source(12), nprocs=4)
    init = mm.init_arrays(12)
    r = run_program(rep.program, init=init)
    assert np.allclose(r.memory.shaped("C"), mm.reference(init))


def test_autotune_respects_options():
    opts = CompileOptions(nprocs=2, granularity="fine", partition="block")
    rep = choose_granularity(mm.source(12), nprocs=2, options=opts)
    assert rep.program.options.partition == "block"
    assert rep.program.nprocs == 2


def test_autotune_metric_validation():
    with pytest.raises(ValueError):
        choose_granularity(mm.source(8), metric="vibes")
