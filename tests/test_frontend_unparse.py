"""Tests for the unparser: round-trip and semantic equivalence."""

import numpy as np
import pytest

from repro.compiler.frontend.lower import lower_program
from repro.compiler.frontend.parser import parse
from repro.compiler.frontend.unparse import unparse_expr, unparse_unit
from repro.compiler.frontend import fast as F
from repro.compiler.pipeline import compile_source
from repro.runtime.executor import run_sequential
from repro.workloads import cffzinit, jacobi, mm, swim, synthetic


def lowered(src):
    return lower_program(parse(src)).main


def _structure(stmts):
    """Shape signature of a statement list (for structural comparison)."""
    sig = []
    for s in stmts:
        if isinstance(s, F.Assign):
            sig.append(("=", str(s.lhs), str(s.rhs)))
        elif isinstance(s, F.Do):
            sig.append(("do", s.var, _structure(s.body)))
        elif isinstance(s, F.If):
            sig.append(
                ("if", _structure(s.then), _structure(s.orelse))
            )
        elif isinstance(s, F.PrintStmt):
            sig.append(("print", len(s.items)))
    return tuple(sig)


WORKLOAD_SOURCES = {
    "mm": mm.source(8),
    "swim": swim.source(12, 1),
    "cffzinit": cffzinit.source(4),
    "jacobi": jacobi.source(16, 2),
    "triangular": synthetic.triangular_kernel(6),
    "reduction": synthetic.reduction_kernel(8),
}


@pytest.mark.parametrize("name", sorted(WORKLOAD_SOURCES))
def test_roundtrip_structure(name):
    src = WORKLOAD_SOURCES[name]
    unit = lowered(src)
    text = unparse_unit(unit)
    unit2 = lowered(text)
    assert _structure(unit.body) == _structure(unit2.body)


@pytest.mark.parametrize("name", ["mm", "jacobi", "reduction"])
def test_roundtrip_semantics(name):
    """The unparsed program computes exactly the same results."""
    src = WORKLOAD_SOURCES[name]
    unit = lowered(src)
    text = unparse_unit(unit)

    init = mm.init_arrays(8) if name == "mm" else None
    p1 = compile_source(src, nprocs=1)
    p2 = compile_source(text, nprocs=1)
    r1 = run_sequential(p1, init=init)
    r2 = run_sequential(p2, init=init)
    for arr in r1.memory.arrays:
        assert np.array_equal(r1.memory.arrays[arr], r2.memory.arrays[arr])
    assert r1.stdout == r2.stdout


def test_unparse_expr_forms():
    assert unparse_expr(F.Num(3)) == "3"
    assert unparse_expr(F.Num(2.5, is_int=False)) == "2.5"
    assert unparse_expr(F.Str("hi")) == "'hi'"
    assert unparse_expr(F.UnOp("-", F.Var("X"))) == "(-X)"
    assert (
        unparse_expr(F.RelOp("<=", F.Var("A"), F.Num(2))) == "(A .LE. 2)"
    )
    assert (
        unparse_expr(F.LogOp(".NOT.", None, F.Var("B"))) == "(.NOT. B)"
    )


def test_unparse_if_and_print():
    unit = lowered("""
      PROGRAM P
      INTEGER I
      IF (I .GT. 0) THEN
        I = 1
      ELSE IF (I .EQ. 0) THEN
        I = 2
      ELSE
        I = 3
      ENDIF
      PRINT *, 'x', I
      END
""")
    text = unparse_unit(unit)
    assert "ELSE IF" in text
    assert "PRINT *, 'x', I" in text
    # And it reparses.
    assert lowered(text) is not None


def test_unparse_explicit_bounds_declaration():
    unit = lowered("""
      PROGRAM P
      REAL*8 A(0:9)
      A(0) = 1.0
      END
""")
    text = unparse_unit(unit)
    assert "A(0:9)" in text
    assert lowered(text).symtab.lookup("A").dims == [(0, 9)]
