"""Integration variants: alternative loop orders, multi-step stencils,
and mixed program shapes — the compiled result must always equal the
sequential one."""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_source
from repro.runtime.executor import run_program, run_sequential
from repro.workloads import mm, swim


def mm_variant(order: str, n: int) -> str:
    """MM with a chosen loop order (all compute the same C)."""
    loops = {"i": "I = 1, N", "j": "J = 1, N", "k": "K = 1, N"}
    l1, l2, l3 = order
    return f"""
      PROGRAM MMV
      PARAMETER (N = {n})
      REAL*8 A(N,N), B(N,N), C(N,N)
      INTEGER I, J, K
      DO I = 1, N
        DO J = 1, N
          C(I,J) = 0.0
        ENDDO
      ENDDO
      DO {loops[l1]}
        DO {loops[l2]}
          DO {loops[l3]}
            C(I,J) = C(I,J) + A(I,K) * B(K,J)
          ENDDO
        ENDDO
      ENDDO
      END
"""


@pytest.mark.parametrize("order", ["ijk", "jik", "ikj", "jki", "kij"])
def test_mm_loop_orders(order):
    """Every loop order compiles and computes A@B.

    Orders with K outermost make the accumulation loop the candidate —
    the detector must reject K (C(I,J) written by every K iteration) and
    find the parallel loop deeper, or keep the nest serial; either way
    results must be exact.
    """
    n = 10
    init = mm.init_arrays(n)
    prog = compile_source(mm_variant(order, n), nprocs=4, granularity="fine")
    par = run_program(prog, init=init)
    assert np.allclose(par.memory.shaped("C"), mm.reference(init))


@pytest.mark.parametrize("order", ["ijk", "jik"])
def test_mm_variant_outer_parallelized(order):
    prog = compile_source(mm_variant(order, 12), nprocs=4)
    # The compute nest's outermost loop parallelizes for i/j-outer orders.
    assert len(prog.parallel_regions()) == 2  # init nest + compute nest


@pytest.mark.parametrize("nprocs", [2, 3, 4])
@pytest.mark.parametrize("itmax", [1, 3])
def test_swim_steps_and_ranks(nprocs, itmax):
    n = 12
    prog = compile_source(
        swim.source(n, itmax), nprocs=nprocs, granularity="coarse"
    )
    par = run_program(prog)
    ref = swim.reference_step(n, itmax)
    for name in ("U", "V", "P"):
        assert np.allclose(par.memory.shaped(name), ref[name]), (
            name,
            nprocs,
            itmax,
        )


def test_two_reductions_in_one_loop():
    src = """
      PROGRAM P
      PARAMETER (N = 40)
      REAL*8 A(N)
      REAL*8 S, M
      INTEGER I
      DO I = 1, N
        A(I) = SIN(DBLE(I))
      ENDDO
      S = 0.0
      M = -10.0
      DO I = 1, N
        S = S + A(I)
        M = MAX(M, A(I))
      ENDDO
      PRINT *, S, M
      END
"""
    prog = compile_source(src, nprocs=4)
    loopz = prog.parallel_regions()
    assert any(len(r.loop.reductions) == 2 for r in loopz)
    seq = run_sequential(prog)
    par = run_program(prog)
    assert par.stdout == seq.stdout


def test_scalar_carried_between_regions():
    """A master-computed scalar feeds a later parallel region's bounds
    and body through the replicated environment."""
    src = """
      PROGRAM P
      PARAMETER (N = 32)
      REAL*8 A(N)
      REAL*8 SCALE
      INTEGER I, LIMIT
      SCALE = 2.0
      LIMIT = N / 2
      DO I = 1, LIMIT
        A(I) = SCALE * DBLE(I)
      ENDDO
      SCALE = SCALE + 1.0
      DO I = 1, LIMIT
        A(I) = A(I) * SCALE
      ENDDO
      END
"""
    prog = compile_source(src, nprocs=4, granularity="fine")
    seq = run_sequential(prog)
    par = run_program(prog)
    assert np.array_equal(par.memory.array("A"), seq.memory.array("A"))
    assert par.memory.array("A")[0] == pytest.approx(6.0)
    assert par.memory.array("A")[16:].sum() == 0.0


def test_empty_iteration_parallel_loop():
    """A parallel loop whose range is empty at runtime is harmless."""
    src = """
      PROGRAM P
      PARAMETER (N = 8)
      REAL*8 A(N)
      INTEGER I
      DO I = 1, N
        A(I) = 1.0
      ENDDO
      DO I = 5, 4
        A(I) = 99.0
      ENDDO
      END
"""
    prog = compile_source(src, nprocs=4)
    par = run_program(prog)
    assert par.memory.array("A").tolist() == [1.0] * 8
