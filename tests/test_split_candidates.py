"""Edge-case coverage for ``split_candidates`` (docs/PARTITION.md).

The structural filter behind block:D / cyclic:D requests — and now
behind the verifier's RV401 partition-legality analysis — so its
corner cases (imperfect nests, bounds that move, 1-trip dimensions)
need pinning beyond the happy paths in test_postpass_partition.py.
"""

from repro.compiler.frontend.lower import lower_program
from repro.compiler.frontend.parser import parse
from repro.compiler.postpass.partition import split_candidates


def loop_of(body: str):
    src = f"""      PROGRAM P
      PARAMETER (N = 8)
      REAL*8 A(8, 8, 8)
      REAL*8 S(8)
{body}      END
"""
    return lower_program(parse(src)).main.body[0]


def test_three_deep_perfect_nest_offers_every_dim():
    loop = loop_of("""      DO I = 1, 8
        DO J = 1, 8
          DO K = 1, 8
            A(K, J, I) = 1.0
          ENDDO
        ENDDO
      ENDDO
""")
    assert split_candidates(loop) == [0, 1, 2]


def test_imperfect_below_depth_one_stops_the_walk():
    """A statement beside the depth-2 DO keeps dim 1 but blocks dim 2."""
    loop = loop_of("""      DO I = 1, 8
        DO J = 1, 8
          S(J) = 0.0
          DO K = 1, 8
            A(K, J, I) = 1.0
          ENDDO
        ENDDO
      ENDDO
""")
    assert split_candidates(loop) == [0, 1]


def test_two_sibling_inner_loops_are_imperfect():
    loop = loop_of("""      DO I = 1, 8
        DO J = 1, 8
          A(J, I, 1) = 1.0
        ENDDO
        DO K = 1, 8
          A(K, I, 2) = 2.0
        ENDDO
      ENDDO
""")
    assert split_candidates(loop) == [0]


def test_nonconstant_bound_blocks_its_dim_and_deeper_ones():
    """DO J = 1, I is not rectangular; the constant-bound K below it
    must NOT resurface as a candidate (the walk stops, it doesn't
    skip)."""
    loop = loop_of("""      DO I = 1, 8
        DO J = 1, I
          DO K = 1, 8
            A(K, J, I) = 1.0
          ENDDO
        ENDDO
      ENDDO
""")
    assert split_candidates(loop) == [0]


def test_nonconstant_lower_bound_blocks_the_dim():
    """DO J = I, 8 — a lower bound that moves with the outer index is
    just as non-rectangular as a moving upper bound.  (Non-constant
    *steps* never reach this filter: loop normalization rejects them
    with a LowerError at the frontend.)"""
    loop = loop_of("""      DO I = 1, 8
        DO J = I, 8
          A(J, I, 1) = 1.0
        ENDDO
      ENDDO
""")
    assert split_candidates(loop) == [0]


def test_parameter_bounds_are_compile_time_constants():
    """PARAMETER symbols fold during lowering, so N-bounded dims stay
    legal split candidates."""
    loop = loop_of("""      DO I = 1, N
        DO J = 1, N
          A(J, I, 1) = 1.0
        ENDDO
      ENDDO
""")
    assert split_candidates(loop) == [0, 1]


def test_one_trip_inner_dim_is_still_a_candidate():
    """A 1-trip dimension is degenerate but legal — every rank beyond
    the first simply owns nothing of it."""
    loop = loop_of("""      DO I = 1, 8
        DO J = 3, 3
          A(J, I, 1) = 1.0
        ENDDO
      ENDDO
""")
    assert split_candidates(loop) == [0, 1]


def test_non_do_body_offers_only_dim_zero():
    loop = loop_of("""      DO I = 1, 8
        S(I) = 2.0
      ENDDO
""")
    assert split_candidates(loop) == [0]
