"""Tests for the per-region profile and the Jacobi workload."""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_source
from repro.runtime.executor import run_program, run_sequential
from repro.workloads import jacobi, mm


def test_jacobi_matches_reference():
    n, steps = 64, 10
    prog = compile_source(jacobi.source(n, steps), nprocs=4, granularity="fine")
    par = run_program(prog)
    x_ref, res_ref = jacobi.reference(n, steps)
    assert np.allclose(par.memory.array("X"), x_ref)
    assert par.stdout == [f"residual {res_ref:.6g}"]


def test_jacobi_sequential_matches_parallel():
    n, steps = 48, 7
    prog = compile_source(jacobi.source(n, steps), nprocs=3, granularity="coarse")
    seq = run_sequential(prog)
    par = run_program(prog)
    assert np.array_equal(par.memory.array("X"), seq.memory.array("X"))
    assert par.stdout == seq.stdout


def test_jacobi_source_validation():
    with pytest.raises(ValueError):
        jacobi.source(4)


def test_region_profile_visits_and_times():
    n, steps = 32, 5
    prog = compile_source(jacobi.source(n, steps), nprocs=2)
    par = run_program(prog)
    profile = par.region_profile
    assert profile, "profile must not be empty"
    visits = sorted({v for v, _t in profile.values()})
    # The init block/loop runs once; the three in-step regions run 5x.
    assert 1 in visits and steps in visits
    assert sum(v == steps for v, _t in profile.values()) >= 3
    for _v, t in profile.values():
        assert t >= 0.0
    # The profile accounts for (almost) the entire run.
    total = sum(t for _v, t in profile.values())
    assert total == pytest.approx(par.total_s, rel=0.05)


def test_region_profile_single_region():
    prog = compile_source(mm.source(8), nprocs=2)
    par = run_program(prog, init=mm.init_arrays(8))
    assert len(par.region_profile) == 1
    (visits, elapsed), = par.region_profile.values()
    assert visits == 1
    assert elapsed == pytest.approx(par.total_s, rel=0.05)
