"""Tests for the skew model and SKWP cycle-time math (paper §2.1)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.vbus.params import LinkParams
from repro.vbus.signal import (
    SkewSampler,
    bandwidth_Bps,
    cycle_time_s,
    effective_spread_s,
    generate_line_skews,
    mode_comparison,
)


def test_generate_skews_pins_extremes():
    skews = generate_line_skews(8, 8e-9)
    assert skews.min() == 0.0
    assert skews.max() == pytest.approx(8e-9)
    assert len(skews) == 8


def test_generate_skews_single_line():
    assert generate_line_skews(1, 8e-9).tolist() == [0.0]


def test_generate_skews_rejects_zero_lines():
    with pytest.raises(ValueError):
        generate_line_skews(0, 1e-9)


def test_sampler_compensation_never_negative_and_quantized():
    sampler = SkewSampler(0.5e-9)
    skews = generate_line_skews(8, 8e-9, seed=3)
    comp = sampler.compensations(skews)
    assert (comp >= -1e-18).all()
    steps = comp / 0.5e-9
    assert np.allclose(steps, np.round(steps))


def test_sampler_residual_below_resolution():
    sampler = SkewSampler(0.5e-9)
    skews = generate_line_skews(32, 8e-9, seed=1)
    assert sampler.residual_spread(skews) <= 0.5e-9 + 1e-15


def test_sampler_rejects_nonpositive_resolution():
    with pytest.raises(ValueError):
        SkewSampler(0.0)


@given(
    st.lists(st.floats(min_value=0.0, max_value=50e-9), min_size=2, max_size=64),
    st.sampled_from([0.1e-9, 0.25e-9, 0.5e-9, 1e-9]),
)
def test_sampler_residual_property(skews, resolution):
    """Property: after compensation, all lines align within one step."""
    sampler = SkewSampler(resolution)
    assert sampler.residual_spread(skews) <= resolution + 1e-15


def test_default_cycle_times():
    """Defaults give 20 / 12 / 5 ns cycles: the paper's ~4x SKWP claim."""
    conv = cycle_time_s(LinkParams(mode="conventional"))
    wave = cycle_time_s(LinkParams(mode="wave"))
    skwp = cycle_time_s(LinkParams(mode="skwp"))
    assert conv == pytest.approx(20e-9)
    assert wave == pytest.approx(12e-9)
    assert skwp == pytest.approx(5e-9, rel=0.05)
    assert skwp < wave < conv


def test_skwp_bandwidth_about_4x_conventional():
    conv, _wave, skwp = mode_comparison(LinkParams())
    assert 3.5 <= skwp / conv <= 4.5


def test_wave_spread_magnifies_with_hops_but_skwp_does_not():
    wave = LinkParams(mode="wave")
    skwp = LinkParams(mode="skwp")
    assert effective_spread_s(wave, hops=3) == pytest.approx(
        3 * effective_spread_s(wave, hops=1)
    )
    assert effective_spread_s(skwp, hops=3) == pytest.approx(
        effective_spread_s(skwp, hops=1)
    )
    # After enough hops untuned wave pipelining is slower than conventional.
    assert cycle_time_s(wave, hops=5) > cycle_time_s(
        LinkParams(mode="conventional"), hops=5
    )


def test_conventional_cycle_independent_of_hops():
    conv = LinkParams(mode="conventional")
    assert cycle_time_s(conv, hops=1) == cycle_time_s(conv, hops=7)


def test_bandwidth_scales_with_width():
    # Conventional mode: cycle time does not depend on line count, so
    # doubling the width exactly doubles bandwidth.  (Under SKWP the
    # quantization residual varies slightly with the number of lines.)
    narrow = LinkParams(width_bits=8, mode="conventional")
    wide = LinkParams(width_bits=16, mode="conventional")
    assert bandwidth_Bps(wide) == pytest.approx(2 * bandwidth_Bps(narrow))


def test_hops_validation():
    with pytest.raises(ValueError):
        effective_spread_s(LinkParams(), hops=0)


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        LinkParams(mode="quantum")
